"""Ablation: detailed placement passes.

Detailed placement (legal-to-legal median moves + swaps) sits outside
the paper's scope but inside any shippable placer.  This bench
quantifies what each pass buys on top of FBP global placement +
legalization, and that it never breaks legality or movebounds.
"""

import pytest

from repro.metrics import Table, format_ratio
from repro.place import BonnPlaceFBP, BonnPlaceOptions
from repro.workloads import movebound_instance

from harness import emit, full_run, run_placer

CHIPS = ["Rabe", "Erhard"] if not full_run() else [
    "Rabe", "Erhard", "Erik"
]
PASSES = [0, 1, 2]


def compute_rows(seed=1):
    rows = []
    for name in CHIPS:
        per_pass = {}
        for passes in PASSES:
            inst = movebound_instance(name, seed=seed)
            factory = lambda p=passes: BonnPlaceFBP(
                BonnPlaceOptions(detailed_passes=p)
            )
            per_pass[passes] = run_placer(factory, inst)
        rows.append((name, per_pass))
    return rows


def render(rows):
    table = Table(
        ["Chip"] + [f"{p} passes HPWL/time" for p in PASSES],
        title="Ablation: detailed placement passes",
    )
    for name, per_pass in rows:
        cells = [name]
        for p in PASSES:
            res = per_pass[p]
            cells.append(f"{res.hpwl:.0f} / {res.total_seconds:.1f}s")
        table.add_row(*cells)
    return table


def test_ablation_detailed(benchmark):
    rows = compute_rows()
    emit("ablation_detailed", render(rows))

    for name, per_pass in rows:
        for p in PASSES:
            res = per_pass[p]
            assert res.legality.is_legal
            assert res.violations == 0
        # each pass is monotone non-worsening by construction
        assert per_pass[1].hpwl <= per_pass[0].hpwl * 1.001
        assert per_pass[2].hpwl <= per_pass[1].hpwl * 1.02

    def kernel():
        inst = movebound_instance("Rabe", seed=1)
        return run_placer(
            lambda: BonnPlaceFBP(BonnPlaceOptions(detailed_passes=2)),
            inst,
        ).hpwl

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    emit("ablation_detailed", render(compute_rows()))
