"""Table I: sizes and runtimes of the flow-based partitioning instances.

Paper: Erhard (2.58M cells, 43 movebounds) partitioned on finer and
finer grids; reported are |V|, |E|, |E|/|V|, |W|, |R|, wall-clock of
the MinCostFlow computation and of the realization.

Here: the Erhard suite instance (scaled) on grids 2x2 ... 16x16
(REPRO_BENCH_FULL adds 32x32).  The shapes to reproduce: |V| and |E|
grow linearly with |W| + |R|, the |E|/|V| ratio stays in a narrow band
(paper: 5.5 down to 3.9), flow time grows with the grid while
realization time stays roughly flat.
"""

import time

import pytest

from repro.fbp import build_fbp_model, realize_flow
from repro.grid import Grid
from repro.metrics import Table
from repro.movebounds import decompose_regions
from repro.workloads import movebound_instance

from harness import emit, full_run


def compute_rows(grids=None):
    inst = movebound_instance("Erhard", seed=1)
    netlist, bounds = inst.netlist, inst.bounds
    decomposition = decompose_regions(
        netlist.die, bounds, netlist.blockages
    )
    grids = grids or ([2, 4, 8, 16, 32] if full_run() else [2, 4, 8, 16])
    rows = []
    for n in grids:
        grid = Grid(netlist.die, n, n)
        grid.build_regions(decomposition)
        snap = netlist.snapshot()
        t0 = time.perf_counter()
        model = build_fbp_model(netlist, bounds, grid, density_target=0.9)
        result = model.solve()
        flow_seconds = time.perf_counter() - t0
        assert result.feasible
        t1 = time.perf_counter()
        realize_flow(model, result, run_local_qp=False)
        realization_seconds = time.perf_counter() - t1
        netlist.restore(snap)
        num_regions = sum(len(w.regions) for w in grid)
        rows.append(
            dict(
                windows=len(grid),
                regions=num_regions,
                nodes=model.stats.num_nodes,
                arcs=model.stats.num_arcs,
                ratio=model.stats.arc_node_ratio,
                flow_seconds=flow_seconds,
                realization_seconds=realization_seconds,
            )
        )
    return rows


def render(rows):
    table = Table(
        ["|V|", "|E|", "|E|/|V|", "|W|", "|R|",
         "flow (s)", "realization (s)"],
        title="TABLE I: FBP instance sizes and runtimes (Erhard, scaled)",
    )
    for r in rows:
        table.add_row(
            r["nodes"], r["arcs"], f"{r['ratio']:.2f}",
            r["windows"], r["regions"],
            f"{r['flow_seconds']:.3f}", f"{r['realization_seconds']:.3f}",
        )
    return table


def test_table1(benchmark):
    rows = compute_rows()
    emit("table1_fbp_scaling", render(rows))

    # shape assertions: |V|, |E| linear in |W| + |R| with a constant
    # depending on |M| (the paper: "O(|M|) many copies of the graph");
    # Erhard has 9 movebounds + default here
    num_bounds = 10
    for r in rows:
        assert 2.0 <= r["ratio"] <= 7.0  # paper band is 3.9-5.5
        base = r["windows"] + r["regions"]
        assert r["nodes"] <= 8 * num_bounds * base
        assert r["arcs"] <= 40 * num_bounds * base
    # linearity as the grid refines: nodes per (|M|+1)(|W|+|R|) stays a
    # small constant — the instance size never becomes quadratic in |W|
    # (the contrast the paper draws with [1])
    for r in rows:
        per_unit = r["nodes"] / (num_bounds * (r["windows"] + r["regions"]))
        assert per_unit <= 4.0
    # |V| grows with the grid
    assert rows[-1]["nodes"] > rows[0]["nodes"]

    # benchmark kernel: model build + solve at the 8x8 grid
    inst = movebound_instance("Erhard", seed=1)
    decomposition = decompose_regions(
        inst.netlist.die, inst.bounds, inst.netlist.blockages
    )
    grid = Grid(inst.netlist.die, 8, 8)
    grid.build_regions(decomposition)

    def kernel():
        model = build_fbp_model(
            inst.netlist, inst.bounds, grid, density_target=0.9
        )
        return model.solve().feasible

    assert benchmark.pedantic(kernel, rounds=3, iterations=1)


if __name__ == "__main__":
    emit("table1_fbp_scaling", render(compute_rows()))
