"""Ablation: FBP vs the recursive partitioning it replaces (§IV intro).

The paper motivates FBP by the drawbacks of recursive partitioning:
local decisions, possible local infeasibility despite global
feasibility, and dependence on time-consuming reflow.  This bench
quantifies that on the reproduction suite:

* ``BonnPlaceFBP`` (the paper's tool),
* ``BonnPlaceFBP`` without the final reflow pass (pure FBP),
* ``RecursivePlacer`` with reflow (the [5]-style predecessor),
* ``RecursivePlacer`` without reflow.

Expected shape: FBP variants at least match the recursive ones, and
the recursive placer depends on reflow much more than FBP does.
"""

import pytest

from repro.metrics import Table, format_hms, format_ratio
from repro.place import (
    BonnPlaceFBP,
    BonnPlaceOptions,
    RecursiveOptions,
    RecursivePlacer,
)
from repro.workloads import movebound_instance, table2_instance

from harness import emit, full_run, run_placer

CHIPS = ["Rabe", "Erhard"] if not full_run() else [
    "Rabe", "Ashraf", "Erhard", "Erik"
]

VARIANTS = [
    ("FBP", lambda: BonnPlaceFBP()),
    ("FBP no-reflow",
     lambda: BonnPlaceFBP(BonnPlaceOptions(final_reflow=False))),
    ("Recursive+reflow",
     lambda: RecursivePlacer(RecursiveOptions(reflow_passes=1))),
    ("Recursive",
     lambda: RecursivePlacer(RecursiveOptions(reflow_passes=0))),
]


def compute_rows(seed=1):
    rows = []
    for name in CHIPS:
        per_chip = {}
        for label, factory in VARIANTS:
            inst = movebound_instance(name, seed=seed)
            per_chip[label] = run_placer(factory, inst)
        rows.append((name, per_chip))
    return rows


def render(rows):
    table = Table(
        ["Chip"] + [label for label, _f in VARIANTS],
        title="Ablation: partitioning scheme (HPWL, vs FBP)",
    )
    for name, per_chip in rows:
        base = per_chip["FBP"].hpwl
        cells = [name]
        for label, _f in VARIANTS:
            res = per_chip[label]
            if res.crashed:
                cells.append("crashed")
            else:
                cells.append(
                    f"{res.hpwl:.0f} ({format_ratio(res.hpwl, base)})"
                )
        table.add_row(*cells)
    return table


def test_ablation_partitioning(benchmark):
    rows = compute_rows()
    emit("ablation_partitioning", render(rows))

    for name, per_chip in rows:
        fbp = per_chip["FBP"]
        assert not fbp.crashed and fbp.legality.is_legal
        for label, res in per_chip.items():
            if not res.crashed:
                assert res.violations == 0
        rec = per_chip["Recursive+reflow"]
        if not rec.crashed:
            # FBP is competitive with the recursive predecessor
            assert fbp.hpwl <= rec.hpwl * 1.25

    def kernel():
        inst = movebound_instance("Rabe", seed=1)
        return run_placer(
            lambda: RecursivePlacer(RecursiveOptions(reflow_passes=0)),
            inst,
        ).hpwl

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    emit("ablation_partitioning", render(compute_rows()))
