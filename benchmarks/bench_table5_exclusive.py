"""Table V: results with exclusive movebounds.

Paper: the 5 chips whose movebounds admit exclusive semantics
(nested/overlapping ones are infeasible then); FBP legal everywhere
and 32 % shorter on average, RQL with hundreds/thousands of violations.

Same harness as Table IV with ``exclusive=True``; the suite refuses to
build exclusive variants of Tomoku/Trips, mirroring the paper's
instance list.
"""

import pytest

from repro.workloads import MOVEBOUND_SUITE, movebound_instance

from bench_table4_inclusive import check_shapes, compute_rows, render
from harness import emit, full_run, run_placer


def test_table5(benchmark):
    rows = compute_rows(exclusive=True)
    emit("table5_exclusive", render(
        rows, "TABLE V: results with exclusive movebounds"))
    check_shapes(rows)
    # exclusive variants exist only for the paper's Table V chips
    names = {name for name, _r, _f in rows}
    assert "Tomoku" not in names and "Trips" not in names

    def kernel():
        from repro.place import BonnPlaceFBP

        inst = movebound_instance("Rabe", seed=1, exclusive=True)
        return run_placer(BonnPlaceFBP, inst).violations

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) == 0


if __name__ == "__main__":
    rows = compute_rows(exclusive=True)
    emit("table5_exclusive", render(
        rows, "TABLE V: results with exclusive movebounds"))
