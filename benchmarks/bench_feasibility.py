"""Theorem 2 claim: fast clustered feasibility checking.

Paper: a (fractional) placement with movebounds can be decided in
O(|C| + |M|^2 |R|) by clustering cells per movebound — versus the
cell-level Theorem-1 network whose size grows with |C|.

Here: wall-clock of both checks as |C| grows with fixed |M|.  Expected
shape: the clustered check's runtime is roughly flat in |C| (only the
clustering pass scans cells), the cell-level check grows clearly; both
agree on the verdict.
"""

import time

import pytest

from repro.feasibility import check_feasibility, check_feasibility_cell_level
from repro.metrics import Table
from repro.workloads import (
    MoveBoundSpec,
    NetlistSpec,
    attach_movebounds,
    generate_netlist,
)

from harness import emit, full_run


def _instance(num_cells, seed=1):
    spec = NetlistSpec("feas", num_cells, utilization=0.5, num_pads=8)
    nl, logical = generate_netlist(spec, seed=seed)
    bounds = attach_movebounds(
        nl, logical,
        [MoveBoundSpec(f"m{i}", 0.06, density=0.6) for i in range(4)],
        seed=seed,
    )
    return nl, bounds


def compute_rows():
    sizes = [200, 400, 800, 1600] if not full_run() else [200, 400, 800, 1600, 3200]
    rows = []
    for n in sizes:
        nl, bounds = _instance(n)
        t0 = time.perf_counter()
        clustered = check_feasibility(nl, bounds)
        t_clustered = time.perf_counter() - t0
        t1 = time.perf_counter()
        cell_level = check_feasibility_cell_level(nl, bounds)
        t_cell = time.perf_counter() - t1
        assert clustered.feasible == cell_level.feasible
        rows.append((n, t_clustered, t_cell, clustered.feasible))
    return rows


def render(rows):
    table = Table(
        ["|C|", "Thm 2 (clustered) s", "Thm 1 (cell-level) s", "feasible"],
        title="Feasibility check scaling (Theorem 2 vs Theorem 1)",
    )
    for n, tc, t1, feas in rows:
        table.add_row(n, f"{tc:.4f}", f"{t1:.4f}", feas)
    return table


def test_feasibility_scaling(benchmark):
    rows = compute_rows()
    emit("feasibility_scaling", render(rows))

    # the clustered check stays cheap relative to cell-level at scale
    _n, tc_last, t1_last, _f = rows[-1]
    assert tc_last <= t1_last

    nl, bounds = _instance(400)

    def kernel():
        return check_feasibility(nl, bounds).feasible

    benchmark(kernel)


if __name__ == "__main__":
    emit("feasibility_scaling", render(compute_rows()))
