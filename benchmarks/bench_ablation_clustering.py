"""Ablation: BestChoice clustering ratio (paper §V experimental setup).

The paper runs the industrial comparisons with cluster ratio 5 and the
ISPD set with ratio 2.  This bench quantifies what clustering buys at
reproduction scale: quality and runtime of BonnPlaceFBP flat vs
clustered at ratios 2 and 5.
"""

import pytest

from repro.metrics import Table, format_ratio
from repro.place import BonnPlaceFBP, BonnPlaceOptions
from repro.workloads import movebound_instance

from harness import emit, full_run, run_placer

CHIPS = ["Erhard"] if not full_run() else ["Erhard", "Trips", "Erik"]
RATIOS = [None, 2.0, 5.0]


def compute_rows(seed=1):
    rows = []
    for name in CHIPS:
        per_ratio = {}
        for ratio in RATIOS:
            inst = movebound_instance(name, seed=seed)
            factory = lambda r=ratio: BonnPlaceFBP(
                BonnPlaceOptions(cluster_ratio=r)
            )
            per_ratio[ratio] = run_placer(factory, inst)
        rows.append((name, per_ratio))
    return rows


def render(rows):
    table = Table(
        ["Chip", "flat HPWL/time", "ratio 2 HPWL/time",
         "ratio 5 HPWL/time"],
        title="Ablation: BestChoice clustering",
    )
    for name, per_ratio in rows:
        cells = [name]
        for ratio in RATIOS:
            res = per_ratio[ratio]
            cells.append(f"{res.hpwl:.0f} / {res.total_seconds:.1f}s")
        table.add_row(*cells)
    return table


def test_ablation_clustering(benchmark):
    rows = compute_rows()
    emit("ablation_clustering", render(rows))

    for name, per_ratio in rows:
        flat = per_ratio[None]
        for ratio in RATIOS:
            res = per_ratio[ratio]
            assert not res.crashed
            assert res.legality.is_legal
            # clustering must not wreck quality
            assert res.hpwl <= flat.hpwl * 1.35

    def kernel():
        inst = movebound_instance("Rabe", seed=1)
        return run_placer(
            lambda: BonnPlaceFBP(BonnPlaceOptions(cluster_ratio=5.0)),
            inst,
        ).hpwl

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    emit("ablation_clustering", render(compute_rows()))
