"""Table III: industrial instances with movebounds — instance traits.

Paper: per chip, the number of movebounds |M|, cell count |C|, the
share of cells carrying movebounds, the maximum movebound density, and
the remarks (O) overlapping / (F) from-flattening.

Here: the generated suite must exhibit the same traits (by
construction), which this bench verifies and prints.
"""

import pytest

from repro.feasibility import check_feasibility
from repro.metrics import Table
from repro.workloads import MOVEBOUND_SUITE, movebound_instance

from harness import emit, full_run

SUBSET = ["Rabe", "Ashraf", "Erhard", "Erik"]


def chips():
    return list(MOVEBOUND_SUITE) if full_run() else SUBSET


def compute_rows(seed=1):
    rows = []
    for name in chips():
        inst = movebound_instance(name, seed=seed)
        nl, bounds = inst.netlist, inst.bounds
        n_bound_cells = sum(1 for c in nl.cells if c.movebound)
        share = n_bound_cells / nl.num_cells
        max_density = 0.0
        for bound in bounds:
            cells = sum(
                c.size for c in nl.cells if c.movebound == bound.name
            )
            if bound.area.area > 0:
                max_density = max(max_density, cells / bound.area.area)
        rows.append(
            (name, len(bounds), nl.num_cells, share, max_density,
             inst.meta["remarks"], inst)
        )
    return rows


def render(rows):
    table = Table(
        ["Chip", "|M|", "|C|", "% cells w/ mb", "max mb dens", "remarks"],
        title="TABLE III: instances with movebounds (generated traits)",
    )
    for name, m, c, share, dens, remarks, _inst in rows:
        table.add_row(
            name, m, c, f"{100 * share:.1f}%", f"{100 * dens:.0f}%", remarks
        )
    return table


def test_table3(benchmark):
    rows = compute_rows()
    emit("table3_instances", render(rows))

    for name, m, _c, share, dens, remarks, inst in rows:
        spec = MOVEBOUND_SUITE[name]
        assert m == spec.num_bounds
        assert share == pytest.approx(spec.cell_share, abs=0.05)
        assert dens <= spec.max_density * 1.05
        assert ("(O)" in remarks) == spec.overlapping
        assert ("(F)" in remarks) == spec.flattened
        # all generated instances are feasible by construction
        assert check_feasibility(inst.netlist, inst.bounds).feasible

    def kernel():
        return movebound_instance("Rabe", seed=2).netlist.num_cells

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    emit("table3_instances", render(compute_rows()))
