"""Placement-service latency and overload benchmark.

Two measurements against a live ``repro serve`` daemon (spawned as a
subprocess on a Unix socket, torn down afterwards):

* **submit-to-result latency** — N sequential ``check`` jobs, each
  timed from the submit call to the blocking ``result`` reply
  (p50/p99/mean, full protocol + dispatch + child-process round
  trip);
* **overload shedding** — a burst of mixed-priority submits against
  a deliberately tiny queue (``--max-queue 4 --max-running 1``);
  every submit must resolve *deterministically* into accepted, shed,
  or a structured ``ServiceOverloadError`` refusal — never a hang or
  a daemon crash — and the daemon must still answer ``ping``
  afterwards.

The record is emitted as ``BENCH_service.json`` (results dir + repo
root) via :func:`harness.emit_perf`.  ``--smoke`` shrinks both phases
for CI.
"""

import os
import shutil
import signal
import statistics
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.bookshelf import save_instance
from repro.geometry import Rect
from repro.metrics import Table
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist, Pin
from repro.resilience import ServiceOverloadError
from repro.service import JobSpec, ServiceClient

from harness import emit, emit_perf

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
DIE = Rect(0, 0, 100, 100)


def _write_instance(path, name="bench", cells=60, seed=0):
    rng = np.random.default_rng(seed)
    nl = Netlist(DIE, name=name)
    for i in range(cells):
        nl.add_cell(f"c{i}", 2.0, 1.0)
    for i in range(0, cells - 2, 2):
        nl.add_net(f"n{i}", [Pin(i), Pin(i + 1), Pin((i + 7) % cells)])
    nl.finalize()
    nl.x[:] = rng.uniform(5, 95, nl.num_cells)
    nl.y[:] = rng.uniform(5, 95, nl.num_cells)
    os.makedirs(path, exist_ok=True)
    save_instance(path, nl, MoveBoundSet(DIE))
    return name


def _start_daemon(state_dir, *flags):
    sock = os.path.join(state_dir, "svc.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", state_dir, "--socket", sock, *flags],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    assert "listening" in line, f"daemon failed to start: {line!r}"
    return proc, ServiceClient(sock, timeout=60.0)


def _stop(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def _latency_phase(workdir, jobs):
    """Sequential check jobs; submit-to-result wall seconds each."""
    inst_dir = os.path.join(workdir, "inst")
    name = _write_instance(inst_dir)
    state = os.path.join(workdir, "state_latency")
    proc, client = _start_daemon(state)
    latencies = []
    try:
        spec = JobSpec(kind="check", instance=name, dir=inst_dir)
        for _ in range(jobs):
            t0 = time.perf_counter()
            jid = client.submit(spec)
            client.result(jid, wait=True, timeout=120.0)
            latencies.append(time.perf_counter() - t0)
    finally:
        _stop(proc)
    latencies.sort()
    return {
        "jobs": jobs,
        "p50_seconds": statistics.median(latencies),
        "p99_seconds": latencies[min(len(latencies) - 1,
                                     int(0.99 * len(latencies)))],
        "mean_seconds": statistics.fmean(latencies),
        "max_seconds": latencies[-1],
    }


def _overload_phase(workdir, burst):
    """Burst submits against a tiny queue; count the three outcomes."""
    inst_dir = os.path.join(workdir, "inst")
    name = _write_instance(inst_dir)
    state = os.path.join(workdir, "state_overload")
    proc, client = _start_daemon(
        state, "--max-queue", "4", "--max-running", "1",
        "--tenant-max-queued", "64",
    )
    accepted, refused = [], 0
    try:
        for i in range(burst):
            spec = JobSpec(kind="check", instance=name, dir=inst_dir,
                           priority=i % 3)
            try:
                accepted.append(client.submit(spec))
            except ServiceOverloadError:
                refused += 1
        # the daemon must still be responsive under the burst
        assert client.ping()["ok"]
        # drain: every accepted job must reach a terminal state
        terminal = {}
        deadline = time.monotonic() + 300
        for jid in accepted:
            job = client.wait_for(
                jid, timeout=max(1.0, deadline - time.monotonic())
            )
            terminal[jid] = job["state"]
        stats = client.stats()["counters"]
    finally:
        _stop(proc)
    shed = sum(1 for s in terminal.values() if s == "shed")
    done = sum(1 for s in terminal.values() if s == "done")
    lost = sum(
        1 for s in terminal.values()
        if s not in ("done", "failed", "shed", "cancelled")
    )
    return {
        "burst": burst,
        "accepted": len(accepted),
        "refused": refused,
        "shed": shed,
        "done": done,
        "lost": lost,
        "shed_rate": (refused + shed) / burst,
        "svc_shed_counter": stats.get("svc.shed", 0),
        "svc_refused_counter": stats.get("svc.refused_queue_full", 0),
    }


def run_bench(smoke=False):
    workdir = tempfile.mkdtemp(prefix="bench_service_")
    try:
        record = {
            "smoke": smoke,
            "latency": _latency_phase(workdir, jobs=8 if smoke else 30),
            "overload": _overload_phase(workdir, burst=12 if smoke else 40),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return record


def render(record):
    lat, ovl = record["latency"], record["overload"]
    table = Table(
        ["metric", "value"],
        title="service daemon: submit-to-result latency and overload "
        "shedding",
    )
    table.add_row("latency p50 (s)", f"{lat['p50_seconds']:.3f}")
    table.add_row("latency p99 (s)", f"{lat['p99_seconds']:.3f}")
    table.add_row("latency mean (s)", f"{lat['mean_seconds']:.3f}")
    table.add_row("burst size", str(ovl["burst"]))
    table.add_row("accepted / refused / shed",
                  f"{ovl['accepted']} / {ovl['refused']} / {ovl['shed']}")
    table.add_row("shed rate", f"{ovl['shed_rate']:.2f}")
    table.add_row("jobs lost", str(ovl["lost"]))
    return table


def _check(record):
    ovl = record["overload"]
    # the hard contract: every submit resolved, nothing lost, and the
    # tiny queue actually pushed back
    assert ovl["lost"] == 0
    assert ovl["accepted"] + ovl["refused"] == ovl["burst"]
    assert ovl["refused"] + ovl["shed"] > 0
    assert ovl["done"] > 0
    assert record["latency"]["p50_seconds"] < 30.0


def test_service_latency_and_overload():
    record = run_bench(smoke=True)
    emit("service", render(record))
    emit_perf("service", record)
    _check(record)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    record = run_bench(smoke=smoke)
    emit("service", render(record))
    emit_perf("service", record)
    _check(record)
    print("service bench OK")
