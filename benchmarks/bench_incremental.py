"""Incremental re-place (ECO) latency benchmark.

Measures the tentpole claim of the transactional ECO engine: applying
a validated :class:`PlacementDelta` through the frontier-scoped
incremental solve is several times cheaper than re-running the full
multilevel placer on the patched instance.

Three phases on one synthetic instance:

* **delta-solve** — N distinct movebound deltas applied sequentially
  through :class:`EcoEngine` (journal commits included in the timing;
  every transaction must commit in ``eco`` mode and stay legal);
* **full re-run** — for each of the same deltas, the patched instance
  solved from scratch by a fresh :class:`BonnPlaceFBP` (the
  non-incremental baseline an ECO engine replaces);
* **fallback** — one apply with an injected solver fault
  (``eco.apply=stage``), proving the graceful-degradation rung is
  exercised and counted (``eco.fallbacks``).

The perf gate (`_check`): delta p50 must be at least 3x faster than
the full re-run p50, nothing may fall back in the timed phase, and the
fault phase must produce exactly the counted fallback.  The record is
emitted as ``BENCH_incremental.json`` (results dir + repo root) via
:func:`harness.emit_perf`.  ``--smoke`` shrinks the instance and trial
count for CI.
"""

import copy
import statistics
import sys
import tempfile
import time

from repro.eco import EcoEngine, PlacementDelta, build_patched_bounds
from repro.metrics import Table
from repro.movebounds import MoveBoundSet
from repro.obs import get_tracer
from repro.place.bonnplace import BonnPlaceFBP
from repro.resilience.faultinject import install_fault_plan, reset_faults
from repro.workloads.generator import NetlistSpec, generate_netlist

from harness import emit, emit_perf


def _mk_delta(i, die, movable, cells_per_delta=5):
    """A distinct, modest movebound delta per trial: one new bound in
    a rotating quadrant-ish rectangle, a handful of cells moved in."""
    w = die.x_hi - die.x_lo
    h = die.y_hi - die.y_lo
    fx = 0.05 + 0.10 * (i % 4)
    fy = 0.05 + 0.10 * ((i // 4) % 4)
    rect = [
        die.x_lo + fx * w,
        die.y_lo + fy * h,
        die.x_lo + (fx + 0.40) * w,
        die.y_lo + (fy + 0.40) * h,
    ]
    names = movable[cells_per_delta * i : cells_per_delta * (i + 1)]
    return PlacementDelta.from_dict(
        {"movebounds": [{"name": f"eco_mb{i}", "rects": [rect],
                         "cells": names}]}
    )


def _pctl(sorted_vals, q):
    return sorted_vals[min(len(sorted_vals) - 1,
                           int(q * len(sorted_vals)))]


def run_bench(smoke=False):
    cells = 400 if smoke else 1000
    trials = 4 if smoke else 10
    spec = NetlistSpec(
        name="ecobench", num_cells=cells, utilization=0.5, num_pads=16
    )
    netlist, _ = generate_netlist(spec, seed=3)
    placer = BonnPlaceFBP()
    t0 = time.perf_counter()
    placer.place(netlist, None)
    base_seconds = time.perf_counter() - t0
    die = netlist.die
    movable = [c.name for c in netlist.cells if not c.fixed]
    # pristine placed copy for the full re-run baseline — the engine
    # phase below accumulates movebound assignments on `netlist`
    pristine = copy.deepcopy(netlist)

    # -- phase 1: timed delta solves through the engine ----------------
    deltas = [_mk_delta(i, die, movable) for i in range(trials)]
    delta_times = []
    with tempfile.TemporaryDirectory(prefix="bench_eco_") as run_dir:
        engine = EcoEngine(netlist, placer=placer, run_dir=run_dir)
        for delta in deltas:
            t0 = time.perf_counter()
            eco = engine.apply(delta)
            delta_times.append(time.perf_counter() - t0)
            assert eco.mode == "eco", (eco.mode, eco.fallback_reason)
            assert eco.placement.legality.is_legal

        # -- phase 3: injected solver fault exercises the fallback rung
        tracer = get_tracer()
        fallbacks_before = tracer.counters.get("eco.fallbacks", 0)
        install_fault_plan("eco.apply=stage")
        try:
            t0 = time.perf_counter()
            degraded = engine.apply(_mk_delta(trials, die, movable))
            fallback_seconds = time.perf_counter() - t0
        finally:
            reset_faults()
        assert degraded.mode == "fallback", degraded.mode
        fallbacks = tracer.counters.get("eco.fallbacks", 0) - fallbacks_before

    # -- phase 2: the same deltas solved as full re-runs ---------------
    full_times = []
    for delta in deltas:
        nl = copy.deepcopy(pristine)
        for m in delta.movebounds:
            for name in m.cells:
                nl.cells[nl.cell_index(name)].movebound = m.name
        bounds = build_patched_bounds(MoveBoundSet(die), delta, die)
        t0 = time.perf_counter()
        BonnPlaceFBP().place(nl, bounds)
        full_times.append(time.perf_counter() - t0)

    delta_sorted = sorted(delta_times)
    full_sorted = sorted(full_times)
    delta_p50 = statistics.median(delta_sorted)
    full_p50 = statistics.median(full_sorted)
    return {
        "smoke": smoke,
        "cells": cells,
        "trials": trials,
        "base_place_seconds": base_seconds,
        "delta": {
            "p50_seconds": delta_p50,
            "p99_seconds": _pctl(delta_sorted, 0.99),
            "mean_seconds": statistics.fmean(delta_sorted),
        },
        "full": {
            "p50_seconds": full_p50,
            "p99_seconds": _pctl(full_sorted, 0.99),
            "mean_seconds": statistics.fmean(full_sorted),
        },
        "speedup_p50": full_p50 / delta_p50,
        "fallback": {
            "exercised": fallbacks,
            "mode": degraded.mode,
            "reason": degraded.fallback_reason,
            "seconds": fallback_seconds,
        },
    }


def render(record):
    table = Table(
        ["metric", "value"],
        title="incremental re-place: delta-solve vs full re-run "
        f"({record['cells']} cells, {record['trials']} deltas)",
    )
    table.add_row("delta p50 (s)", f"{record['delta']['p50_seconds']:.3f}")
    table.add_row("delta p99 (s)", f"{record['delta']['p99_seconds']:.3f}")
    table.add_row("full p50 (s)", f"{record['full']['p50_seconds']:.3f}")
    table.add_row("full p99 (s)", f"{record['full']['p99_seconds']:.3f}")
    table.add_row("speedup p50", f"{record['speedup_p50']:.2f}x")
    table.add_row("fallbacks exercised",
                  str(record["fallback"]["exercised"]))
    table.add_row("fallback solve (s)",
                  f"{record['fallback']['seconds']:.3f}")
    return table


def _check(record):
    assert record["speedup_p50"] >= 3.0, (
        f"delta p50 only {record['speedup_p50']:.2f}x faster than the "
        f"full re-run (gate: 3x)"
    )
    assert record["fallback"]["exercised"] >= 1
    assert record["fallback"]["mode"] == "fallback"


def test_incremental_latency():
    record = run_bench(smoke=True)
    emit("incremental", render(record))
    emit_perf("incremental", record)
    _check(record)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    record = run_bench(smoke=smoke)
    emit("incremental", render(record))
    emit_perf("incremental", record)
    _check(record)
    print("incremental bench OK")
