"""Scale sweep: sharded FBP from 10k to one million cells.

Each *arm* (one instance size x one solve mode) runs in a forked child
process so its peak RSS is measured in isolation
(``resource.getrusage`` of the child, not of the accumulated parent).
Per arm the child:

1. generates the synthetic instance (vectorized generator),
2. builds the window grid at the placer's natural depth for that size
   (``target_cells_per_window`` = 14, capped at 128 x 128),
3. runs one full FBP pass — model build, flow solve (monolithic or
   sharded), realization — and
4. reports wall seconds per phase, cells/second over the whole pass,
   RSS checkpoints after every phase, model sizes, and a position hash.

Modes:

* ``mono``  — monolithic MinCostFlow solve (small/medium sizes only;
  the flat solve is exactly what stops scaling past ~100k cells),
* ``shard`` — tile-sharded solve (``repro.fbp.sharding``), all sizes,
* ``pool``  — sharded solve through a 2-worker supervised pool,
* ``mono-pN`` — monolithic solve with an N-worker pool and
  ``REPRO_POOL_MIN_WORK=0``, forcing the tile-parallel realization
  dispatch; the serial ``mono`` arm is its pool-0 counterpart.

Contracts asserted before the record is written:

* every arm completes feasibly with no monolithic fallback;
* sharded runs are byte-identical across pool sizes (hash compare);
* realization is byte-identical at pool sizes 0/1/4 (``mono`` vs the
  ``mono-pN`` arms);
* the realization phase of the reference row stays >= 2.5x faster
  than the pre-vectorization baseline (the tentpole gate);
* when the sharded arm reports zero cut flow, its placement is
  byte-identical to the monolithic arm of the same size;
* otherwise its HPWL stays within 1.5x of the monolithic arm.

The machine-readable record lands as ``BENCH_scale.json`` (results
dir + repo root).  ``--smoke`` shrinks the sweep to one 5k-cell size
(keeping the realization identity arms and a loose absolute
realization cap) so the CI job ``bench-scale-smoke`` can upload the
record as an artifact in a couple of minutes; the full sweep
(default) includes the one- and two-million-cell arms.  Note the
container pins one CPU core, so the pool arms measure dispatch
overhead honestly rather than showing a wall-clock win — the
realization speedup comes from the closed-form fast path and
vectorization, not parallelism.
"""

import hashlib
import json
import math
import os
import resource
import subprocess
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))
from harness import emit_perf  # noqa: E402

FULL_SIZES = (10_000, 100_000, 1_000_000, 2_000_000)
#: the monolithic arm is the baseline the contract compares against;
#: past this size the flat solve is too slow to serve as one
MONO_LIMIT = 100_000
POOL_LIMIT = 100_000
SEED = 0
DENSITY = 0.9
SHARD_TILES = 8
#: pool sizes of the realization identity arms (``mono`` is pool-0)
REALIZE_POOLS = (1, 4)
#: realization seconds of the 100k monolithic row before the
#: tile-parallel/vectorized realization landed (the committed
#: BENCH_scale.json baseline); the tentpole gate is >= 2.5x on it
REALIZE_BASELINE_100K = 11.889
REALIZE_SPEEDUP_GATE = 2.5
#: loose absolute tripwire for the smoke row (5k cells)
REALIZE_SMOKE_CAP_S = 2.0


def natural_grid(num_cells: int) -> int:
    """Power-of-two grid matching ~14 cells per window, capped like the
    placer's level schedule at 128."""
    target = math.sqrt(max(num_cells, 1) / 14.0)
    return int(min(128, max(4, 2 ** round(math.log2(target)))))


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_arm(size: int, mode: str) -> dict:
    """One child-process arm; returns its metrics dict."""
    from repro.fbp.partitioner import fbp_partition
    from repro.grid import Grid
    from repro.movebounds import MoveBoundSet, decompose_regions
    from repro.workloads.generator import NetlistSpec, generate_netlist

    out = {"size": size, "mode": mode, "rss_mb": {}}
    t0 = time.perf_counter()
    spec = NetlistSpec(f"scale{size}", num_cells=size, utilization=0.5)
    netlist, _ = generate_netlist(spec, seed=SEED)
    out["seconds_generate"] = time.perf_counter() - t0
    out["num_nets"] = netlist.num_nets
    out["rss_mb"]["generate"] = _rss_mb()

    t1 = time.perf_counter()
    bounds = MoveBoundSet(netlist.die)
    n = natural_grid(size)
    grid = Grid(netlist.die, n, n)
    grid.build_regions(
        decompose_regions(netlist.die, bounds, netlist.blockages)
    )
    out["grid_n"] = n
    out["seconds_regions"] = time.perf_counter() - t1
    out["rss_mb"]["regions"] = _rss_mb()

    shard = SHARD_TILES if mode in ("shard", "pool") else None

    def partition():
        return fbp_partition(
            netlist,
            bounds,
            grid,
            density_target=DENSITY,
            run_local_qp=False,
            shard_tiles=shard,
        )

    pool_workers = 0
    if mode == "pool":
        pool_workers = 2
    elif mode.startswith("mono-p"):
        pool_workers = int(mode[len("mono-p"):])
        # force realize dispatch through the pool even though the
        # batch is below the min-work threshold — the arm exists to
        # prove pooled realization identity, not to win wall-clock
        os.environ["REPRO_POOL_MIN_WORK"] = "0"

    t2 = time.perf_counter()
    if pool_workers:
        from repro.runstate import WindowSolverPool, activated

        with WindowSolverPool(pool_workers) as pool, activated(pool):
            report = partition()
    else:
        report = partition()
    out["seconds_fbp_pass"] = time.perf_counter() - t2
    out["rss_mb"]["fbp_pass"] = _rss_mb()

    out["feasible"] = report.feasible
    out["flow_seconds"] = report.flow_seconds
    out["realization_seconds"] = report.realization_seconds
    out["model_nodes"] = report.stats.num_nodes
    out["model_arcs"] = report.stats.num_arcs
    #: the flow-array working set of one solve: one float64 per arc
    out["arc_array_mb"] = report.stats.num_arcs * 8 / 1e6
    #: the coordinate snapshot realization mutates: x + y float64
    out["snapshot_mb"] = netlist.num_cells * 16 / 1e6
    if report.shard is not None:
        out["shard_tiles"] = report.shard.num_tiles
        out["cut_flow_area"] = report.shard.cut_flow_area
        out["nonlocal_flow_area"] = report.shard.nonlocal_flow_area
        out["reconciled"] = report.shard.reconciled
        out["fallback"] = report.shard.fallback
        out["relaxed_tiles"] = len(report.shard.relaxed_tiles)
    total = time.perf_counter() - t0
    out["seconds_total"] = total
    out["cells_per_sec"] = size / total
    out["peak_rss_mb"] = _rss_mb()
    out["hpwl"] = netlist.hpwl()
    h = hashlib.sha256()
    h.update(netlist.x.tobytes())
    h.update(netlist.y.tobytes())
    out["position_hash"] = h.hexdigest()
    return out


def _spawn(size: int, mode: str) -> dict:
    """Run one arm in a child process for isolated peak-RSS."""
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--arm", mode, str(size)],
        capture_output=True,
        text=True,
        env=os.environ,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"arm {mode}/{size} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _check(arms: dict, smoke: bool = False) -> list:
    """Assert the sweep's contracts; returns human-readable notes."""
    notes = []
    for key, arm in arms.items():
        assert arm["feasible"], f"arm {key} infeasible"
        assert arm.get("fallback") is None, (
            f"arm {key} fell back to monolithic: {arm['fallback']}"
        )
    for size in sorted({a["size"] for a in arms.values()}):
        mono = arms.get(f"mono/{size}")
        shard = arms.get(f"shard/{size}")
        pool = arms.get(f"pool/{size}")
        pooled_realize = [
            (p, arms[f"mono-p{p}/{size}"])
            for p in REALIZE_POOLS
            if f"mono-p{p}/{size}" in arms
        ]
        if mono and pooled_realize:
            for p, arm in pooled_realize:
                assert mono["position_hash"] == arm["position_hash"], (
                    f"pool-{p} realization diverged from serial at {size}"
                )
            ps = "/".join(str(p) for p, _ in pooled_realize)
            notes.append(
                f"{size}: realization byte-identical at pool sizes 0/{ps}"
            )
        if shard and pool:
            assert shard["position_hash"] == pool["position_hash"], (
                f"pool arm diverged from serial shard at {size}"
            )
            notes.append(f"{size}: serial and pool-2 shard byte-identical")
        if mono and shard:
            if shard["cut_flow_area"] == 0.0 and shard[
                "nonlocal_flow_area"
            ] == 0.0:
                assert mono["position_hash"] == shard["position_hash"], (
                    f"zero-cut shard not byte-identical to mono at {size}"
                )
                notes.append(
                    f"{size}: zero-cut regime, shard == mono bit-for-bit"
                )
            else:
                ratio = shard["hpwl"] / mono["hpwl"]
                assert ratio <= 1.5, (
                    f"shard HPWL degraded {ratio:.3f}x at {size}"
                )
                notes.append(
                    f"{size}: cut flow {shard['cut_flow_area']:.1f}, "
                    f"HPWL ratio {ratio:.3f}"
                )
    ref = arms.get(f"mono/{MONO_LIMIT}")
    if ref is not None:
        speedup = REALIZE_BASELINE_100K / max(
            ref["realization_seconds"], 1e-9
        )
        assert speedup >= REALIZE_SPEEDUP_GATE, (
            f"realization speedup {speedup:.2f}x below the "
            f"{REALIZE_SPEEDUP_GATE}x gate "
            f"({ref['realization_seconds']:.3f}s vs "
            f"{REALIZE_BASELINE_100K}s baseline)"
        )
        notes.append(
            f"{MONO_LIMIT}: realization {ref['realization_seconds']:.3f}s, "
            f"{speedup:.1f}x over the {REALIZE_BASELINE_100K}s baseline "
            f"(gate >= {REALIZE_SPEEDUP_GATE}x)"
        )
    if smoke:
        for key, arm in arms.items():
            if key.startswith("mono"):
                assert arm["realization_seconds"] <= REALIZE_SMOKE_CAP_S, (
                    f"smoke realization {arm['realization_seconds']:.2f}s "
                    f"over the {REALIZE_SMOKE_CAP_S}s tripwire ({key})"
                )
        notes.append(
            f"smoke: realization under the {REALIZE_SMOKE_CAP_S}s tripwire"
        )
    return notes


def run_bench(smoke: bool = False) -> dict:
    sizes = (5_000,) if smoke else FULL_SIZES
    identity_size = max(s for s in sizes if s <= MONO_LIMIT)
    arms = {}
    for size in sizes:
        modes = ["shard"]
        if size <= MONO_LIMIT:
            modes.insert(0, "mono")
        if size <= POOL_LIMIT:
            modes.append("pool")
        if size == identity_size:
            modes.extend(f"mono-p{p}" for p in REALIZE_POOLS)
        for mode in modes:
            t = time.perf_counter()
            arm = _spawn(size, mode)
            arms[f"{mode}/{size}"] = arm
            print(
                f"[{mode:>5}/{size:>9}] grid {arm['grid_n']}x"
                f"{arm['grid_n']}  total {arm['seconds_total']:.1f}s "
                f"({arm['cells_per_sec']:.0f} cells/s)  "
                f"peak RSS {arm['peak_rss_mb']:.0f} MB  "
                f"(spawn overhead {time.perf_counter()-t-arm['seconds_total']:.1f}s)",
                flush=True,
            )
    notes = _check(arms, smoke=smoke)
    record = {
        "bench": "scale",
        "smoke": smoke,
        "seed": SEED,
        "density_target": DENSITY,
        "shard_tiles": SHARD_TILES,
        "sizes": list(sizes),
        "arms": arms,
        "contracts": notes,
    }
    return record


if __name__ == "__main__":
    argv = sys.argv[1:]
    if argv and argv[0] == "--arm":
        print(json.dumps(run_arm(int(argv[2]), argv[1])))
        sys.exit(0)
    smoke = "--smoke" in argv
    record = run_bench(smoke=smoke)
    emit_perf("scale", record)
    for note in record["contracts"]:
        print("  " + note)
    print("bench_scale OK" + (" (smoke)" if smoke else ""))
