"""Table IV: results with inclusive movebounds.

Paper: RQL vs BonnPlace FBP on 8 movebounded chips.  RQL produced
movebound violations on several chips and crashed on Ashraf; FBP was
legal everywhere, >35 % shorter HPWL on average and >9.5x faster.

Here: the reproduction suite with inclusive movebounds.  Expected
shape: FBP legal with zero violations on every chip; the RQL-style
baseline accumulates violations (its spreading/legalization ignore
region capacities); on the heavily-constrained chips FBP also wins
HPWL.  Since the baseline's violations let it "cheat" wirelength on
lightly-constrained chips, the honest comparison (like the paper's) is
HPWL *of legal placements* — violation counts are reported alongside.
"""

import math

import pytest

from repro.metrics import Table, format_hms, format_ratio
from repro.place import BonnPlaceFBP, RQLPlacer
from repro.workloads import MOVEBOUND_SUITE, movebound_instance

from harness import emit, full_run, run_placer

SUBSET = ["Rabe", "Ashraf", "Erhard", "Erik"]


def chips():
    return list(MOVEBOUND_SUITE) if full_run() else SUBSET


def compute_rows(seed=1, exclusive=False):
    rows = []
    for name in chips():
        if exclusive and not MOVEBOUND_SUITE[name].exclusive_variant:
            continue
        inst_rql = movebound_instance(name, seed=seed, exclusive=exclusive)
        rql = run_placer(RQLPlacer, inst_rql)
        inst_fbp = movebound_instance(name, seed=seed, exclusive=exclusive)
        fbp = run_placer(BonnPlaceFBP, inst_fbp)
        rows.append((name, rql, fbp))
    return rows


def render(rows, title):
    table = Table(
        ["Chip", "RQL HPWL", "RQL time", "RQL viol.",
         "FBP HPWL", "FBP time", "FBP viol.", "FBP/RQL"],
        title=title,
    )
    for name, rql, fbp in rows:
        rql_hpwl = "crashed" if rql.crashed else f"{rql.hpwl:.0f}"
        ratio = (
            "n/a" if rql.crashed or math.isnan(rql.hpwl)
            else format_ratio(fbp.hpwl, rql.hpwl)
        )
        table.add_row(
            name,
            rql_hpwl, format_hms(rql.total_seconds),
            rql.violations if not rql.crashed else "-",
            f"{fbp.hpwl:.0f}", format_hms(fbp.total_seconds),
            fbp.violations, ratio,
        )
    return table


def check_shapes(rows):
    total_rql_viol = 0
    for name, rql, fbp in rows:
        # FBP: legal placements on every design (the paper's headline)
        assert not fbp.crashed
        assert fbp.legality.is_legal, f"{name}: {fbp.legality.summary()}"
        assert fbp.violations == 0
        if not rql.crashed:
            total_rql_viol += rql.violations
    # the naive baseline violates movebounds somewhere in the suite
    assert total_rql_viol > 0


def test_table4(benchmark):
    rows = compute_rows()
    emit("table4_inclusive", render(
        rows, "TABLE IV: results with inclusive movebounds"))
    check_shapes(rows)

    def kernel():
        inst = movebound_instance("Rabe", seed=1)
        return run_placer(BonnPlaceFBP, inst).violations

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) == 0


if __name__ == "__main__":
    emit("table4_inclusive", render(
        compute_rows(), "TABLE IV: results with inclusive movebounds"))
