"""Make the shared harness importable when pytest runs from the repo
root, and keep benchmark discovery self-contained."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
