"""§IV.B parallelism claim: deterministic parallel realization.

Paper: realizations of independent external edges (disjoint coarse
windows) run in parallel with speedups up to 7.9x on 8 CPUs on large
grids, deterministically.

Here: the scheduler computes the same independence structure; the
reported quantity is the *achievable* speedup of the schedule
(sequential arc count over parallel rounds weighted by CPU count).
Expected shape: speedup grows with grid size and approaches the CPU
count on large grids.
"""

import numpy as np
import pytest

from repro.fbp import build_fbp_model, compute_schedule
from repro.grid import Grid
from repro.metrics import Table
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.workloads import NetlistSpec, generate_netlist

from harness import emit, full_run


def _clustered_instance(num_cells, seed):
    """Cells piled into one corner: lots of external flow to realize."""
    spec = NetlistSpec("sched", num_cells, utilization=0.6, num_pads=8)
    nl, _logical = generate_netlist(spec, seed=seed)
    rng = np.random.default_rng(seed)
    movable = [c.index for c in nl.cells if not c.fixed]
    die = nl.die
    nl.x[movable] = rng.uniform(die.x_lo, die.x_lo + die.width * 0.35,
                                len(movable))
    nl.y[movable] = rng.uniform(die.y_lo, die.y_lo + die.height * 0.35,
                                len(movable))
    return nl


def compute_rows(seed=1):
    grids = [4, 8, 16] if not full_run() else [4, 8, 16, 24]
    nl = _clustered_instance(1500, seed)
    mbs = MoveBoundSet(nl.die)
    decomposition = decompose_regions(nl.die, mbs, nl.blockages)
    rows = []
    for n in grids:
        grid = Grid(nl.die, n, n)
        grid.build_regions(decomposition)
        model = build_fbp_model(nl, mbs, grid, density_target=0.8)
        result = model.solve()
        assert result.feasible
        schedule = compute_schedule(model, model.external_flows(result))
        rows.append((n, schedule))
    return rows


def render(rows):
    table = Table(
        ["grid", "ext. arcs", "rounds", "max ||",
         "speedup(2)", "speedup(4)", "speedup(8)"],
        title="Parallel realization schedule (deterministic)",
    )
    for n, schedule in rows:
        table.add_row(
            f"{n}x{n}", schedule.num_arcs, schedule.num_rounds,
            schedule.max_parallelism,
            f"{schedule.speedup(2):.2f}",
            f"{schedule.speedup(4):.2f}",
            f"{schedule.speedup(8):.2f}",
        )
    return table


def test_parallel_schedule(benchmark):
    rows = compute_rows()
    emit("parallel_schedule", render(rows))

    small = rows[0][1]
    large = rows[-1][1]
    assert large.num_arcs > 0
    # speedup grows with the grid (paper: "good parallel speed-ups ...
    # on large grids")
    assert large.speedup(8) >= small.speedup(8)
    assert large.speedup(8) > 1.5
    assert large.speedup(8) <= 8.0 + 1e-9

    def kernel():
        return compute_rows(seed=2)[-1][1].speedup(8)

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    emit("parallel_schedule", render(compute_rows()))
