"""§IV.B parallelism claim: deterministic parallel realization.

Paper: realizations of independent external edges (disjoint coarse
windows) run in parallel with speedups up to 7.9x on 8 CPUs on large
grids, deterministically.

Two measurements:

1. *Schedule structure* — the realization scheduler computes the same
   independence graph as the paper; reported is the achievable speedup
   (sequential arc count over parallel rounds weighted by CPU count).
2. *Real worker pool* — the full FBP placer runs serially and on the
   supervised ``WindowSolverPool`` (2 and 4 workers); positions must be
   bit-identical across all configurations, and the measured wall time
   per configuration is emitted as ``results/BENCH_parallel.json``.
"""

import time

import numpy as np
import pytest

from repro.fbp import build_fbp_model, compute_schedule
from repro.grid import Grid
from repro.metrics import Table
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.place import BonnPlaceFBP
from repro.workloads import NetlistSpec, generate_netlist

from harness import emit, emit_perf, full_run


def _clustered_instance(num_cells, seed):
    """Cells piled into one corner: lots of external flow to realize."""
    spec = NetlistSpec("sched", num_cells, utilization=0.6, num_pads=8)
    nl, _logical = generate_netlist(spec, seed=seed)
    rng = np.random.default_rng(seed)
    movable = [c.index for c in nl.cells if not c.fixed]
    die = nl.die
    nl.x[movable] = rng.uniform(die.x_lo, die.x_lo + die.width * 0.35,
                                len(movable))
    nl.y[movable] = rng.uniform(die.y_lo, die.y_lo + die.height * 0.35,
                                len(movable))
    return nl


def compute_rows(seed=1):
    grids = [4, 8, 16] if not full_run() else [4, 8, 16, 24]
    nl = _clustered_instance(1500, seed)
    mbs = MoveBoundSet(nl.die)
    decomposition = decompose_regions(nl.die, mbs, nl.blockages)
    rows = []
    for n in grids:
        grid = Grid(nl.die, n, n)
        grid.build_regions(decomposition)
        model = build_fbp_model(nl, mbs, grid, density_target=0.8)
        result = model.solve()
        assert result.feasible
        schedule = compute_schedule(model, model.external_flows(result))
        rows.append((n, schedule))
    return rows


def render(rows):
    table = Table(
        ["grid", "ext. arcs", "rounds", "max ||",
         "speedup(2)", "speedup(4)", "speedup(8)"],
        title="Parallel realization schedule (deterministic)",
    )
    for n, schedule in rows:
        table.add_row(
            f"{n}x{n}", schedule.num_arcs, schedule.num_rounds,
            schedule.max_parallelism,
            f"{schedule.speedup(2):.2f}",
            f"{schedule.speedup(4):.2f}",
            f"{schedule.speedup(8):.2f}",
        )
    return table


def _pool_placement(num_cells, seed, workers):
    """Place a fresh copy of the instance with the given pool size.

    Returns ``(x, y, hpwl, seconds)``; ``workers == 0`` is the serial
    in-process path the pool must match bit-for-bit.
    """
    spec = NetlistSpec("poolbench", num_cells, utilization=0.5, num_pads=8)
    nl, _logical = generate_netlist(spec, seed=seed)
    placer = BonnPlaceFBP()
    placer.options.pool_workers = workers
    placer.options.legalize = False
    t0 = time.perf_counter()
    result = placer.place(nl, MoveBoundSet(nl.die))
    seconds = time.perf_counter() - t0
    return nl.x.copy(), nl.y.copy(), result.hpwl, seconds


def run_pool_bench(seed=3):
    num_cells = 600 if not full_run() else 1500
    pool_sizes = [0, 2, 4]
    rows = []
    ref = None
    for workers in pool_sizes:
        x, y, hpwl, seconds = _pool_placement(num_cells, seed, workers)
        if ref is None:
            ref = (x, y)
        identical = bool(
            np.array_equal(ref[0], x) and np.array_equal(ref[1], y)
        )
        rows.append({
            "workers": workers,
            "seconds": round(seconds, 4),
            "hpwl": hpwl,
            "identical_to_serial": identical,
        })
    record = {
        "bench": "parallel_pool",
        "num_cells": num_cells,
        "seed": seed,
        "rows": rows,
        "serial_seconds": rows[0]["seconds"],
    }
    return record


def render_pool(record):
    table = Table(
        ["pool", "seconds", "HPWL", "identical"],
        title="Supervised window-solver pool (real processes)",
    )
    serial = record["serial_seconds"]
    for row in record["rows"]:
        label = "serial" if row["workers"] == 0 else f"{row['workers']}w"
        table.add_row(
            label,
            f"{row['seconds']:.2f}",
            f"{row['hpwl']:.1f}",
            "yes" if row["identical_to_serial"] else "NO",
        )
    table.add_row("speedup(4w)", f"{serial / record['rows'][-1]['seconds']:.2f}x",
                  "", "")
    return table


def test_parallel_schedule(benchmark):
    rows = compute_rows()
    emit("parallel_schedule", render(rows))

    small = rows[0][1]
    large = rows[-1][1]
    assert large.num_arcs > 0
    # speedup grows with the grid (paper: "good parallel speed-ups ...
    # on large grids")
    assert large.speedup(8) >= small.speedup(8)
    assert large.speedup(8) > 1.5
    assert large.speedup(8) <= 8.0 + 1e-9

    def kernel():
        return compute_rows(seed=2)[-1][1].speedup(8)

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


def test_parallel_pool_real_workers():
    record = run_pool_bench()
    emit("parallel_pool", render_pool(record))
    emit_perf("parallel", record)
    # determinism is the hard requirement: every pool size must place
    # bit-identically to the serial run
    assert all(row["identical_to_serial"] for row in record["rows"])


if __name__ == "__main__":
    emit("parallel_schedule", render(compute_rows()))
    record = run_pool_bench()
    emit("parallel_pool", render_pool(record))
    emit_perf("parallel", record)
