"""§IV claim: FBP stays feasible under congestion-driven inflation.

The paper motivates FBP partly by this failure mode of recursive
partitioning: congestion avoidance *increases cell sizes* mid-flow, and
the purely local recursive scheme can then find no feasible split in a
window even though the global instance is still feasible — it has to
relax (overfill) locally.  FBP's global MinCostFlow sees the whole chip
and redistributes.

Protocol: place globally, inflate cells in congested bins at increasing
strengths, then re-partition once with (a) FBP and (b) the local
recursive scheme, comparing feasibility / relaxation / overflow.
"""

import numpy as np
import pytest

from repro.congestion import deflate_cells, inflate_cells
from repro.fbp import fbp_partition
from repro.grid import Grid
from repro.metrics import Table
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.partitioning import recursive_partition
from repro.place import BonnPlaceFBP, BonnPlaceOptions
from repro.workloads import NetlistSpec, generate_netlist

from harness import emit, full_run


def _placed_instance(seed=1, num_cells=500):
    spec = NetlistSpec("congestion", num_cells, utilization=0.62,
                       num_pads=12)
    nl, _ = generate_netlist(spec, seed=seed)
    bounds = MoveBoundSet(nl.die)
    BonnPlaceFBP(BonnPlaceOptions(legalize=False)).place(nl, bounds)
    return nl, bounds


def compute_rows(seed=1):
    strengths = [0.0, 0.3, 0.6, 0.9] if not full_run() else [
        0.0, 0.3, 0.6, 0.9, 1.2
    ]
    nl, bounds = _placed_instance(seed)
    decomposition = decompose_regions(nl.die, bounds, nl.blockages)
    base = nl.snapshot()
    rows = []
    for strength in strengths:
        nl.restore(base)
        inflation = inflate_cells(
            nl, threshold=1.1, strength=strength, max_factor=2.0, bins=8
        )
        util = nl.movable_area() / (nl.die.area - nl.blockages.area)

        grid = Grid(nl.die, 8, 8)
        grid.build_regions(decomposition)
        fbp = fbp_partition(
            nl, bounds, grid, density_target=0.97, run_local_qp=False
        )
        fbp_max_over = (
            fbp.realization.max_overflow if fbp.realization else 0.0
        )

        nl.restore(base)
        rec = recursive_partition(
            nl, bounds, decomposition, max_level=3, density_target=0.97
        )
        rows.append(
            dict(
                strength=strength,
                inflated=inflation.inflated_cells,
                utilization=util,
                fbp_feasible=fbp.feasible,
                fbp_max_over=fbp_max_over,
                max_cell=max(c.size for c in nl.cells if not c.fixed),
                rec_relaxations=rec.relaxations,
                rec_infeasible=rec.local_infeasibilities,
            )
        )
        deflate_cells(nl, inflation)
    return rows


def render(rows):
    table = Table(
        ["strength", "#inflated", "util",
         "FBP feasible", "FBP max overflow",
         "Recursive relaxations", "Recursive local-infeasible"],
        title="Congestion inflation: FBP vs recursive partitioning",
    )
    for r in rows:
        table.add_row(
            f"{r['strength']:.1f}", r["inflated"],
            f"{100 * r['utilization']:.0f}%",
            r["fbp_feasible"], f"{r['fbp_max_over']:.2f}",
            r["rec_relaxations"], r["rec_infeasible"],
        )
    return table


def test_congestion_inflation(benchmark):
    rows = compute_rows()
    emit("congestion_inflation", render(rows))

    # FBP stays globally feasible at every inflation level that keeps
    # total area under capacity, and its per-window overflow never
    # exceeds the almost-integral bound (one cell)
    for r in rows:
        if r["utilization"] <= 0.95:
            assert r["fbp_feasible"]
            assert r["fbp_max_over"] <= r["max_cell"] + 1e-6

    def kernel():
        return len(compute_rows(seed=2))

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    emit("congestion_inflation", render(compute_rows()))
