"""Table VI: BonnPlace FBP runtime split on movebounded instances.

Paper: global placement takes about half of the total placement
runtime (48.8 % over the suite), the rest being legalization.

Here: the same split measured on the reproduction suite.  Expected
shape: global placement a substantial fraction of the total — the
paper's point is that the new global placement is *fast*, not dwarfing
legalization.  (Our legalizer is comparatively lightweight Python, so
the global share runs higher than 50 %; the shape assertion is that
both phases are material.)
"""

import json
import os

import pytest

from repro.metrics import Table, format_hms
from repro.obs import get_tracer, reset_tracer
from repro.place import BonnPlaceFBP
from repro.workloads import MOVEBOUND_SUITE, movebound_instance

from harness import RESULTS_DIR, emit, full_run, run_placer

SUBSET = ["Rabe", "Ashraf", "Erhard", "Erik"]


def chips():
    return list(MOVEBOUND_SUITE) if full_run() else SUBSET


def compute_rows(seed=1):
    reset_tracer()  # the emitted stats profile covers just this bench
    rows = []
    for name in chips():
        inst = movebound_instance(name, seed=seed)
        res = run_placer(BonnPlaceFBP, inst)
        rows.append((name, res))
    return rows


def render(rows):
    table = Table(
        ["Chip", "Global Pl.", "Legalization", "Total", "Global/Total"],
        title="TABLE VI: BonnPlace FBP runtime split (inclusive movebounds)",
    )
    tot_g = tot_l = 0.0
    for name, res in rows:
        table.add_row(
            name,
            format_hms(res.global_seconds),
            format_hms(res.legal_seconds),
            format_hms(res.total_seconds),
            f"{100 * res.global_fraction:.1f}%",
        )
        tot_g += res.global_seconds
        tot_l += res.legal_seconds
    total = tot_g + tot_l
    table.add_row(
        "Total", format_hms(tot_g), format_hms(tot_l), format_hms(total),
        f"{100 * tot_g / total:.1f}%" if total else "n/a",
    )
    return table, tot_g, tot_l


def test_table6(benchmark):
    rows = compute_rows()
    table, tot_g, tot_l = render(rows)
    emit("table6_runtime_split", table)

    for name, res in rows:
        assert not res.crashed
        assert res.global_seconds > 0 and res.legal_seconds > 0
    # both phases are material; global placement dominates in Python
    assert tot_g / (tot_g + tot_l) > 0.3

    # the emitted machine-readable profile has the paper's phase split
    # (partitioning / QP / legalization) plus per-solver counters
    with open(
        os.path.join(RESULTS_DIR, "table6_runtime_split.stats.json")
    ) as f:
        stats = json.load(f)
    phases = stats["phases"]
    for key in ("place.global", "place.legalize"):
        assert key in phases and phases[key]["wall_s"] > 0
    paths = set(phases)
    assert any(p.endswith("place.partition") for p in paths)
    assert any(p.endswith("place.qp") for p in paths)
    counters = stats["trace"]["counters"]
    assert counters.get("mcf.solves", 0) > 0
    assert counters.get("fbp.partitions", 0) >= len(rows)

    def kernel():
        inst = movebound_instance("Rabe", seed=1)
        res = run_placer(BonnPlaceFBP, inst)
        return res.global_fraction

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    table, *_ = render(compute_rows())
    emit("table6_runtime_split", table)
