"""Ablation: quadratic net models inside BonnPlaceFBP.

DESIGN.md calls out the net-model choice (clique / star / hybrid) as a
design decision worth quantifying: the star-mesh equivalence makes
clique and star *mathematically identical* (tested in the unit suite),
so quality must match while runtime differs on high-degree nets;
hybrid picks the cheaper assembly per net.
"""

import pytest

from repro.metrics import Table, format_hms, format_ratio
from repro.place import BonnPlaceFBP, BonnPlaceOptions
from repro.qp import QPOptions
from repro.workloads import table2_instance

from harness import emit, full_run, run_placer

CHIPS = ["Rabe"] if not full_run() else ["Rabe", "Max", "Erhard"]
MODELS = ["clique", "star", "hybrid"]


def compute_rows(seed=1):
    rows = []
    for name in CHIPS:
        per_model = {}
        for model in MODELS:
            inst = table2_instance(name, seed=seed)
            factory = lambda m=model: BonnPlaceFBP(
                BonnPlaceOptions(qp=QPOptions(net_model=m))
            )
            per_model[model] = run_placer(factory, inst)
        rows.append((name, per_model))
    return rows


def render(rows):
    table = Table(
        ["Chip"] + [f"{m} HPWL / time" for m in MODELS],
        title="Ablation: QP net model",
    )
    for name, per_model in rows:
        cells = [name]
        for m in MODELS:
            res = per_model[m]
            cells.append(
                f"{res.hpwl:.0f} / {res.total_seconds:.1f}s"
            )
        table.add_row(*cells)
    return table


def test_ablation_netmodels(benchmark):
    rows = compute_rows()
    emit("ablation_netmodels", render(rows))

    for name, per_model in rows:
        for m in MODELS:
            assert per_model[m].legality.is_legal
        # clique == star exactly at the QP level (unit-tested); the
        # end-to-end pipeline amplifies solver rounding via discrete
        # partitioning decisions, so the placer-level band is wider
        c, s = per_model["clique"].hpwl, per_model["star"].hpwl
        assert s == pytest.approx(c, rel=0.10)
        assert per_model["hybrid"].hpwl == pytest.approx(c, rel=0.15)

    def kernel():
        inst = table2_instance("Rabe", seed=1)
        return run_placer(BonnPlaceFBP, inst).hpwl

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    emit("ablation_netmodels", render(compute_rows()))
