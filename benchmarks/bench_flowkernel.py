"""Array vs object flow-kernel A/B benchmark.

Two arms place the same Erik instance on the reflow-heavy ``ns``
schedule (two levels, six repartitioning passes) with the only
difference being the flow kernel:

* **object** — the scalar reference kernels (python lists, per-arc
  pricing loop);
* **array**  — the vectorized structure-of-arrays kernels (the
  default): numpy pricing-key cache with incremental reduced-cost
  maintenance, level-vectorized subtree relabeling, fused pivot.

The two arms are bit-identical by contract: the bench asserts equal
final positions and HPWL before reporting any timing.  The headline
number is the **in-kernel CPU ratio** (``kernel_cpu_seconds``, i.e.
time spent inside the simplex/SSP solvers only) — the rest of the
placer pipeline is shared code that dilutes a whole-run ratio.

Two Erik variants run:

* the gated **table2** row (no movebounds) — its transportation
  networks are pricing-bound, the work the array kernel vectorizes;
  acceptance gate ≥2x in-kernel CPU;
* the informational **movebound** row — its high-degree region nodes
  shift kernel time into tree surgery (subtree relabels), shared
  scalar machinery both kernels pay, so the ratio is structurally
  smaller; reported ungated with the same bit-identity assertion.

Timing uses ``time.process_time`` with interleaved repetitions and
min-of-N per arm.  The record is emitted as ``BENCH_flowkernel.json``
(results dir + repo root).

``--smoke`` runs one cheap rep (one level, two passes, table2 only)
and checks the identity contract only — the CI-sized variant.
"""

import sys
import time

import numpy as np

from repro.flows import kernel
from repro.flows.kernel import set_flow_backend
from repro.metrics import Table
from repro.obs import get_tracer, reset_tracer
from repro.place import BonnPlaceFBP
from repro.workloads import movebound_instance, table2_instance

from harness import emit, emit_perf, full_run

#: counters that tell the kernel story; snapshotted once per arm
COUNTER_PREFIXES = ("kernel.",)

#: suite -> instance factory for the two Erik variants
SUITES = {
    "table2": table2_instance,
    "movebound": movebound_instance,
}


def _run_arm(suite: str, backend: str, seed: int, levels: int, passes: int):
    """Place a fresh Erik instance on one kernel; returns positions,
    hpwl, whole-run cpu/wall, in-kernel cpu and kernel counters.

    Erik is the largest suite row; two levels with six reflow passes
    maximize the number of network-simplex solves, which is exactly
    the workload the array kernel targets.
    """
    inst = SUITES[suite]("Erik", seed=seed)
    placer = BonnPlaceFBP()
    placer.options.transport_method = "ns"
    placer.options.max_levels = levels
    placer.options.repartition_passes = passes
    placer.options.legalize = False
    set_flow_backend(backend)
    reset_tracer()
    kernel.reset_kernel_cpu()
    cpu0 = time.process_time()
    wall0 = time.perf_counter()
    result = placer.place(inst.netlist, inst.bounds)
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    kernel_cpu = kernel.kernel_cpu_seconds(backend)
    counters = {
        k: v
        for k, v in get_tracer().counters.items()
        if k.startswith(COUNTER_PREFIXES)
    }
    return (
        inst.netlist.x.copy(),
        inst.netlist.y.copy(),
        result.hpwl,
        cpu,
        wall,
        kernel_cpu,
        counters,
    )


def _run_suite(suite: str, seed: int, reps: int, levels: int, passes: int):
    cpu = {"object": [], "array": []}
    wall = {"object": [], "array": []}
    kcpu = {"object": [], "array": []}
    ref = {}
    counters = {}
    identical = True
    hpwl_equal = True
    for _ in range(reps):
        # interleaved arms: slow drift (thermal, other tenants) hits
        # both arms equally instead of biasing whichever ran last
        for arm in ("object", "array"):
            x, y, hpwl, c, w, kc, ctrs = _run_arm(
                suite, arm, seed, levels, passes
            )
            cpu[arm].append(c)
            wall[arm].append(w)
            kcpu[arm].append(kc)
            counters[arm] = ctrs
            if arm not in ref:
                ref[arm] = (x, y, hpwl)
        identical = identical and bool(
            np.array_equal(ref["object"][0], ref["array"][0])
            and np.array_equal(ref["object"][1], ref["array"][1])
        )
        hpwl_equal = hpwl_equal and ref["object"][2] == ref["array"][2]
    obj_k, arr_k = min(kcpu["object"]), min(kcpu["array"])
    return {
        "reps": reps,
        "object_kernel_cpu_seconds": round(obj_k, 4),
        "array_kernel_cpu_seconds": round(arr_k, 4),
        "object_cpu_seconds": round(min(cpu["object"]), 4),
        "array_cpu_seconds": round(min(cpu["array"]), 4),
        "object_wall_seconds": round(min(wall["object"]), 4),
        "array_wall_seconds": round(min(wall["array"]), 4),
        "speedup_kernel_cpu": round(obj_k / arr_k, 4) if arr_k > 0 else None,
        "speedup_total_cpu": round(
            min(cpu["object"]) / min(cpu["array"]), 4
        ),
        "identical_placement": identical,
        "hpwl_equal": hpwl_equal,
        "hpwl": ref["array"][2],
        "counters_object": counters["object"],
        "counters_array": counters["array"],
    }


def run_bench(seed=7, smoke=False):
    if smoke:
        reps, levels, passes = 1, 1, 2
    else:
        reps, levels, passes = (5 if full_run() else 3), 2, 6
    try:
        table2 = _run_suite("table2", seed, reps, levels, passes)
        movebound = (
            None
            if smoke
            else _run_suite("movebound", seed, 1, levels, passes)
        )
    finally:
        set_flow_backend(None)
    record = {
        "bench": "flowkernel",
        "instance": "Erik",
        "seed": seed,
        "smoke": smoke,
        "options": {
            "transport_method": "ns",
            "max_levels": levels,
            "repartition_passes": passes,
            "legalize": False,
        },
        # the gated numbers (table2 Erik, pricing-bound) at top level
        # where CI and the acceptance tooling look for them
        "speedup_cpu": table2["speedup_kernel_cpu"],
        "identical_placement": table2["identical_placement"]
        and (movebound is None or movebound["identical_placement"]),
        "hpwl_equal": table2["hpwl_equal"]
        and (movebound is None or movebound["hpwl_equal"]),
        "table2": table2,
        "movebound": movebound,
    }
    return record


def render(record):
    table = Table(
        ["suite/kernel", "kernel cpu s", "total cpu s", "HPWL", "identical"],
        title="Flow kernels: object vs array (min of interleaved reps)",
    )
    for suite in ("table2", "movebound"):
        sub = record[suite]
        if sub is None:
            continue
        table.add_row(
            f"{suite}/object",
            f"{sub['object_kernel_cpu_seconds']:.3f}",
            f"{sub['object_cpu_seconds']:.2f}",
            f"{sub['hpwl']:.1f}",
            "ref",
        )
        table.add_row(
            f"{suite}/array",
            f"{sub['array_kernel_cpu_seconds']:.3f}",
            f"{sub['array_cpu_seconds']:.2f}",
            f"{sub['hpwl']:.1f}",
            "yes" if sub["identical_placement"] else "NO",
        )
        speed = sub["speedup_kernel_cpu"]
        table.add_row(
            f"{suite}/speedup",
            f"{speed:.2f}x" if speed else "?",
            f"{sub['speedup_total_cpu']:.2f}x",
            "",
            "",
        )
    return table


def _check(record, smoke=False):
    # identity is the hard requirement: the kernels must place
    # bit-for-bit identically before any speedup is worth reporting
    assert record["identical_placement"]
    assert record["hpwl_equal"]
    # both arms must actually route their solves through the kernels
    t2 = record["table2"]
    assert t2["counters_object"], "object arm emitted no kernel.* counters"
    assert t2["counters_array"], "array arm emitted no kernel.* counters"
    if not smoke:
        # acceptance gate (ISSUE 5): >= 2x in-kernel CPU on the Erik
        # ns/2-level/6-pass schedule (table2 row; the movebound row is
        # relabel-bound — reported, not gated)
        assert record["speedup_cpu"] >= 2.0


def test_flowkernel_speedup():
    record = run_bench()
    emit("flowkernel", render(record))
    emit_perf("flowkernel", record)
    _check(record)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    record = run_bench(smoke=smoke)
    emit("flowkernel", render(record))
    if not smoke:
        emit_perf("flowkernel", record)
    _check(record, smoke=smoke)
    print(
        "flowkernel bench OK"
        + (" (smoke)" if smoke else f" — speedup {record['speedup_cpu']}x")
    )
