"""Flow-kernel A/B/C benchmark: object vs array vs batched.

Three arms place the same Erik instance on the reflow-heavy ``ns``
schedule (two levels, six repartitioning passes) with the only
difference being the flow kernel:

* **object**  — the scalar reference kernels (python lists, per-arc
  pricing loop);
* **array**   — the vectorized structure-of-arrays kernels: numpy
  pricing-key cache with incremental reduced-cost maintenance,
  level-vectorized subtree relabeling, fused pivot;
* **batched** — ``BatchedArraySimplex``: same-shaped window
  transportation instances packed into one padded structure-of-arrays
  call with per-batch pricing and convergence masking, single-instance
  buckets routed through the plain array kernel.

The arms are bit-identical by contract: the bench asserts equal final
positions and HPWL before reporting any timing.  The headline number
is the **total-CPU ratio of the table2 row, object vs batched** — the
batched kernel exists to amortize the per-window constant that
dilutes the in-kernel win, so whole-run CPU is exactly the number it
must move.  The in-kernel ratios are reported alongside and floored
so neither vectorized path can silently regress.

Two Erik variants run:

* the gated **table2** row (no movebounds) — its transportation
  networks are pricing-bound; acceptance gates: ≥2x **total** CPU
  object/batched (ISSUE 6) and ≥2x in-kernel CPU object/array (the
  PR-5 gate, kept as a regression floor);
* the **movebound** row — its high-degree region nodes shift kernel
  time into tree surgery (subtree relabels), shared scalar machinery
  all kernels pay, so the ratio is structurally smaller; floored at
  ≥1.2x in-kernel CPU object/array so the relabel path cannot
  silently regress while batching work lands.

Both suites run **cold** (``warm_start=False``): warm-starting is an
orthogonal optimization with its own A/B instrument (the
``--no-warm-start`` CLI flag and the warm-start test suite), and a
cold run maximizes the in-solver share so the kernel difference is
the thing actually measured rather than diluted by basis reuse.

Timing uses ``time.process_time`` with interleaved repetitions and
min-of-N per arm.  The record is emitted as ``BENCH_flowkernel.json``
(results dir + repo root) — in ``--smoke`` mode too, where the
``bench-batched-smoke`` CI job uploads it as a build artifact.

``--smoke`` runs one cheap rep (one level, two passes, table2 only)
across all three arms and checks the identity contract only — the
perf gates run on the full bench.
"""

import sys
import time

import numpy as np

from repro.flows import kernel
from repro.flows.kernel import set_flow_backend
from repro.metrics import Table
from repro.obs import get_tracer, reset_tracer
from repro.place import BonnPlaceFBP
from repro.workloads import movebound_instance, table2_instance

from harness import emit, emit_perf, full_run

#: counters that tell the kernel story; snapshotted once per arm
COUNTER_PREFIXES = ("kernel.",)

#: suite -> instance factory for the two Erik variants
SUITES = {
    "table2": table2_instance,
    "movebound": movebound_instance,
}

#: the three kernels under comparison; "object" is the reference arm
ARMS = ("object", "array", "batched")


def _run_arm(suite: str, backend: str, seed: int, levels: int, passes: int):
    """Place a fresh Erik instance on one kernel; returns positions,
    hpwl, whole-run cpu/wall, in-kernel cpu and kernel counters.

    Erik is the largest suite row; two levels with six reflow passes
    maximize the number of network-simplex solves, which is exactly
    the workload the vectorized kernels target.
    """
    inst = SUITES[suite]("Erik", seed=seed)
    placer = BonnPlaceFBP()
    placer.options.transport_method = "ns"
    placer.options.max_levels = levels
    placer.options.repartition_passes = passes
    placer.options.legalize = False
    # cold solves: basis reuse is measured by its own instrument (the
    # --no-warm-start CLI A/B); here it would only shrink the solver
    # share this bench exists to compare
    placer.options.warm_start = False
    set_flow_backend(backend)
    reset_tracer()
    kernel.reset_kernel_cpu()
    cpu0 = time.process_time()
    wall0 = time.perf_counter()
    result = placer.place(inst.netlist, inst.bounds)
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    kernel_cpu = kernel.kernel_cpu_seconds(backend)
    counters = {
        k: v
        for k, v in get_tracer().counters.items()
        if k.startswith(COUNTER_PREFIXES)
    }
    return (
        inst.netlist.x.copy(),
        inst.netlist.y.copy(),
        result.hpwl,
        cpu,
        wall,
        kernel_cpu,
        counters,
    )


def _run_suite(suite: str, seed: int, reps: int, levels: int, passes: int):
    cpu = {a: [] for a in ARMS}
    wall = {a: [] for a in ARMS}
    kcpu = {a: [] for a in ARMS}
    ref = {}
    counters = {}
    identical = True
    hpwl_equal = True
    for _ in range(reps):
        # interleaved arms: slow drift (thermal, other tenants) hits
        # every arm equally instead of biasing whichever ran last
        for arm in ARMS:
            x, y, hpwl, c, w, kc, ctrs = _run_arm(
                suite, arm, seed, levels, passes
            )
            cpu[arm].append(c)
            wall[arm].append(w)
            kcpu[arm].append(kc)
            counters[arm] = ctrs
            if arm not in ref:
                ref[arm] = (x, y, hpwl)
        for arm in ARMS[1:]:
            identical = identical and bool(
                np.array_equal(ref["object"][0], ref[arm][0])
                and np.array_equal(ref["object"][1], ref[arm][1])
            )
            hpwl_equal = hpwl_equal and ref["object"][2] == ref[arm][2]
    out = {
        "reps": reps,
        "identical_placement": identical,
        "hpwl_equal": hpwl_equal,
        "hpwl": ref["object"][2],
    }
    for arm in ARMS:
        out[f"{arm}_kernel_cpu_seconds"] = round(min(kcpu[arm]), 4)
        out[f"{arm}_cpu_seconds"] = round(min(cpu[arm]), 4)
        out[f"{arm}_wall_seconds"] = round(min(wall[arm]), 4)
        out[f"counters_{arm}"] = counters[arm]
    obj_k, obj_c = min(kcpu["object"]), min(cpu["object"])
    for arm in ARMS[1:]:
        k = min(kcpu[arm])
        out[f"speedup_kernel_cpu_{arm}"] = (
            round(obj_k / k, 4) if k > 0 else None
        )
        out[f"speedup_total_cpu_{arm}"] = round(obj_c / min(cpu[arm]), 4)
    # legacy aliases (PR-5 record shape) keep pointing at the array arm
    out["speedup_kernel_cpu"] = out["speedup_kernel_cpu_array"]
    out["speedup_total_cpu"] = out["speedup_total_cpu_array"]
    return out


def run_bench(seed=7, smoke=False):
    if smoke:
        reps, levels, passes = 1, 1, 2
    else:
        reps, levels, passes = (5 if full_run() else 3), 2, 6
    try:
        table2 = _run_suite("table2", seed, reps, levels, passes)
        movebound = (
            None
            if smoke
            else _run_suite("movebound", seed, reps, levels, passes)
        )
    finally:
        set_flow_backend(None)
    record = {
        "bench": "flowkernel",
        "instance": "Erik",
        "seed": seed,
        "smoke": smoke,
        "options": {
            "transport_method": "ns",
            "max_levels": levels,
            "repartition_passes": passes,
            "legalize": False,
            "warm_start": False,
        },
        # the gated number (table2 Erik, object vs batched, whole-run
        # CPU) at top level where CI and the acceptance tooling look
        "speedup_cpu": table2["speedup_total_cpu_batched"],
        "speedup_kernel_cpu_array": table2["speedup_kernel_cpu_array"],
        "identical_placement": table2["identical_placement"]
        and (movebound is None or movebound["identical_placement"]),
        "hpwl_equal": table2["hpwl_equal"]
        and (movebound is None or movebound["hpwl_equal"]),
        "table2": table2,
        "movebound": movebound,
    }
    return record


def render(record):
    table = Table(
        ["suite/kernel", "kernel cpu s", "total cpu s", "HPWL", "identical"],
        title="Flow kernels: object vs array vs batched "
        "(min of interleaved reps)",
    )
    for suite in ("table2", "movebound"):
        sub = record[suite]
        if sub is None:
            continue
        for arm in ARMS:
            table.add_row(
                f"{suite}/{arm}",
                f"{sub[f'{arm}_kernel_cpu_seconds']:.3f}",
                f"{sub[f'{arm}_cpu_seconds']:.2f}",
                f"{sub['hpwl']:.1f}",
                "ref"
                if arm == "object"
                else ("yes" if sub["identical_placement"] else "NO"),
            )
        for arm in ARMS[1:]:
            speed = sub[f"speedup_kernel_cpu_{arm}"]
            table.add_row(
                f"{suite}/speedup {arm}",
                f"{speed:.2f}x" if speed else "?",
                f"{sub[f'speedup_total_cpu_{arm}']:.2f}x",
                "",
                "",
            )
    return table


def _check(record, smoke=False):
    # identity is the hard requirement: the kernels must place
    # bit-for-bit identically before any speedup is worth reporting
    assert record["identical_placement"]
    assert record["hpwl_equal"]
    # all arms must actually route their solves through the kernels,
    # and the batched arm must have gone through the bucketing path
    # (the 1-level smoke schedule only produces singleton buckets, so
    # multi-instance batching is asserted on the full schedule only)
    t2 = record["table2"]
    for arm in ARMS:
        assert t2[f"counters_{arm}"], f"{arm} arm emitted no kernel.* counters"
    batch_ctrs = t2["counters_batched"]
    assert any(k.startswith("kernel.batch.") for k in batch_ctrs), (
        "batched arm emitted no kernel.batch.* counters"
    )
    if not smoke:
        assert batch_ctrs.get("kernel.batch.instances", 0) > 0, (
            "batched arm solved no instances through the batched kernel"
        )
        # acceptance gate (ISSUE 6): >= 2x whole-run CPU on the Erik
        # ns/2-level/6-pass schedule, object vs batched (table2 row)
        assert record["speedup_cpu"] >= 2.0
        # PR-5 gate kept as a regression floor: >= 2x in-kernel CPU
        # object vs array on the same row
        assert record["table2"]["speedup_kernel_cpu_array"] >= 2.0
        # the movebound row is relabel-bound, so its ratio is
        # structurally smaller — floored, not gated, at 1.2x so the
        # relabel path cannot silently regress while batching lands
        mb = record["movebound"]
        assert mb["speedup_kernel_cpu_array"] >= 1.2
        assert mb["speedup_kernel_cpu_batched"] >= 1.2


def test_flowkernel_speedup():
    record = run_bench()
    emit("flowkernel", render(record))
    emit_perf("flowkernel", record)
    _check(record)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    record = run_bench(smoke=smoke)
    emit("flowkernel", render(record))
    # the perf record is written in smoke mode too: CI's
    # bench-batched-smoke job uploads BENCH_flowkernel.json as an
    # artifact (if-no-files-found: error), record["smoke"] marks it
    emit_perf("flowkernel", record)
    _check(record, smoke=smoke)
    print(
        "flowkernel bench OK"
        + (" (smoke)" if smoke else f" — speedup {record['speedup_cpu']}x")
    )
