"""Shared benchmark harness.

Every ``bench_table*.py`` regenerates one table of the paper's
evaluation section at reproduction scale: same rows, same columns, same
comparison structure.  Absolute numbers differ (Python simulator at
1/1000 scale vs the authors' testbed); EXPERIMENTS.md records the
expected *shapes* and the measured values side by side.

Conventions:

* Default runs use a subset of each suite so the whole benchmark
  directory completes in minutes; set ``REPRO_BENCH_FULL=1`` for every
  row of the paper's tables.
* Each bench prints its table and also writes it to
  ``benchmarks/results/<name>.txt`` so output survives pytest capture.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics import Table
from repro.obs import write_stats_json
from repro.place import PlacerResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def full_run() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def emit(
    name: str,
    table: Table,
    notes: Sequence[str] = (),
    extra_stats: Optional[Dict] = None,
) -> str:
    """Print a table and persist it under benchmarks/results/.

    Alongside ``<name>.txt`` this writes ``<name>.stats.json`` with the
    current tracer state (per-phase spans + solver counters), so every
    benchmark run leaves a machine-readable runtime profile behind.
    """
    text = table.render()
    if notes:
        text += "\n" + "\n".join(notes)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    write_stats_json(
        os.path.join(RESULTS_DIR, f"{name}.stats.json"),
        extra=extra_stats,
    )
    return text


class PerfRecordMismatch(RuntimeError):
    """An existing BENCH_<name>.json pair disagrees between its two homes."""


def emit_perf(name: str, record: Dict) -> str:
    """Persist a machine-readable perf record.

    Writes ``benchmarks/results/BENCH_<name>.json`` — the structured
    counterpart of :func:`emit`'s human-readable tables — and mirrors
    it to ``BENCH_<name>.json`` at the repository root, where CI and
    the acceptance tooling look for the latest record.

    The payload is written exactly once to a temp file, ``os.replace``d
    into the results path, and then hard-linked (copy fallback across
    filesystems) to the repo root, each link also via ``os.replace`` —
    so neither home can ever hold a torn or stale-on-failed-rerun copy.
    If a pre-existing pair already disagrees (a stale root copy survived
    a failed rerun), :class:`PerfRecordMismatch` is raised before
    anything is overwritten so the divergence is investigated, not
    papered over.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    root_path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    if os.path.exists(path) and os.path.exists(root_path):
        if not os.path.samefile(path, root_path):
            with open(path) as f:
                existing = f.read()
            with open(root_path) as f:
                existing_root = f.read()
            if existing != existing_root:
                raise PerfRecordMismatch(
                    f"BENCH_{name}.json diverged: {path} and {root_path} "
                    f"hold different payloads; a stale copy survived a "
                    f"failed rerun. Delete the stale one and rerun."
                )
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    root_tmp = root_path + ".tmp"
    try:
        if os.path.exists(root_tmp):
            os.unlink(root_tmp)
        os.link(path, root_tmp)
    except OSError:  # cross-device: fall back to a byte copy
        with open(root_tmp, "w") as f:
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
    os.replace(root_tmp, root_path)
    print(f"perf record written to {path}")
    return path


def run_placer(placer_factory: Callable, instance) -> PlacerResult:
    """Place a fresh copy of the instance (placers mutate positions)."""
    placer = placer_factory()
    try:
        return placer.place(instance.netlist, instance.bounds)
    except Exception as exc:  # record as a crash row (cf. Table IV)
        return PlacerResult(
            placer=getattr(placer, "name", "?"),
            instance=instance.name,
            hpwl=float("nan"),
            global_seconds=0.0,
            legal_seconds=0.0,
            crashed=True,
            error=str(exc),
        )
