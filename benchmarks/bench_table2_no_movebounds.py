"""Table II: results on instances without movebounds.

Paper: 21 industrial chips, industrial RQL vs BonnPlace FBP; both
produce comparable HPWL (totals within ~1 %) with FBP 5.5x faster
wall-clock on the authors' machine.

Here: the named suite at reproduction scale, RQL-style baseline vs
BonnPlaceFBP.  Expected shape: both legal, HPWL within a few tens of
percent of each other on every chip (small instances favor the
force-directed baseline, large ones favor FBP — the totals stay
comparable).  The paper's absolute-runtime advantage is *not* expected
to transfer: their FBP is C++ with a NetworkSimplex; ours solves LPs
from Python (EXPERIMENTS.md discusses this).
"""

import math

import pytest

from repro.metrics import Table, format_hms, format_ratio
from repro.place import BonnPlaceFBP, RQLPlacer
from repro.workloads import TABLE2_SUITE, table2_instance

from harness import emit, full_run, run_placer

SUBSET = ["Dagmar", "Felix", "Rabe", "Max", "Ashraf", "Erhard"]


def chips():
    return list(TABLE2_SUITE) if full_run() else SUBSET


def compute_rows(seed=1):
    rows = []
    for name in chips():
        inst_rql = table2_instance(name, seed=seed)
        rql = run_placer(RQLPlacer, inst_rql)
        inst_fbp = table2_instance(name, seed=seed)
        fbp = run_placer(BonnPlaceFBP, inst_fbp)
        rows.append((name, inst_fbp.netlist.num_cells, rql, fbp))
    return rows


def render(rows):
    table = Table(
        ["Chip", "|C|", "RQL HPWL", "RQL time", "FBP HPWL", "FBP time",
         "FBP/RQL"],
        title="TABLE II: instances without movebounds",
    )
    total_rql = total_fbp = 0.0
    for name, n, rql, fbp in rows:
        table.add_row(
            name, n,
            f"{rql.hpwl:.0f}", format_hms(rql.total_seconds),
            f"{fbp.hpwl:.0f}", format_hms(fbp.total_seconds),
            format_ratio(fbp.hpwl, rql.hpwl),
        )
        total_rql += rql.hpwl
        total_fbp += fbp.hpwl
    table.add_row(
        "Total", "", f"{total_rql:.0f}", "", f"{total_fbp:.0f}", "",
        format_ratio(total_fbp, total_rql),
    )
    return table, total_rql, total_fbp


def test_table2(benchmark):
    rows = compute_rows()
    table, total_rql, total_fbp = render(rows)
    emit("table2_no_movebounds", table)

    for name, _n, rql, fbp in rows:
        assert not fbp.crashed and fbp.legality.is_legal
        assert not rql.crashed
        # comparable quality per chip (the paper's per-chip band is
        # 83 %-110 %; the reproduction band is wider since both tools
        # are reimplementations)
        assert fbp.hpwl <= rql.hpwl * 2.0
        assert rql.hpwl <= fbp.hpwl * 2.0
    # totals comparable-or-better for FBP (paper: 99.3 %; at our
    # scale FBP pulls ahead on the big chips, so the band is one-sided)
    assert 0.5 <= total_fbp / total_rql <= 1.3

    def kernel():
        inst = table2_instance("Rabe", seed=1)
        return run_placer(BonnPlaceFBP, inst).hpwl

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    table, *_ = render(compute_rows())
    emit("table2_no_movebounds", table)
