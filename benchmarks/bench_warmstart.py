"""Warm-start / region-cache A/B benchmark.

Two arms place the same movebound instance with the ``ns`` transport
backend and several reflow passes (the schedule that re-solves
near-identical transportation instances):

* **warm** — network-simplex warm starts, exact-instance memoization
  and the cross-level region/geometry cache enabled (the defaults);
* **cold** — everything disabled (``--no-warm-start
  --no-region-cache``), i.e. the pre-optimization code path.

The two arms are bit-identical by contract: the bench asserts equal
final positions and HPWL before reporting any timing.  Timing uses
``time.process_time`` (wall-clock noise on shared boxes dwarfs the
effect) with interleaved repetitions and min-of-N per arm, which is
the standard defense against drift.  The record is emitted as
``BENCH_warmstart.json`` (results dir + repo root).
"""

import time

import numpy as np

from repro.metrics import Table
from repro.obs import get_tracer, reset_tracer
from repro.place import BonnPlaceFBP
from repro.workloads import movebound_instance

from harness import emit, emit_perf, full_run

#: counters that tell the warm arm's story; snapshotted once per arm
COUNTER_PREFIXES = ("warmstart.", "cache.")


def _run_arm(warm: bool, seed: int = 7):
    """Place a fresh Erik instance; returns positions, hpwl, times, counters.

    Erik is the largest movebound-suite row; two levels with six reflow
    passes maximize the number of re-solved transportation instances,
    which is exactly the workload the warm-start layer targets.
    """
    inst = movebound_instance("Erik", seed=seed)
    placer = BonnPlaceFBP()
    placer.options.transport_method = "ns"
    placer.options.warm_start = warm
    placer.options.region_cache = warm
    placer.options.max_levels = 2
    placer.options.repartition_passes = 6
    placer.options.legalize = False
    reset_tracer()
    cpu0 = time.process_time()
    wall0 = time.perf_counter()
    result = placer.place(inst.netlist, inst.bounds)
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    counters = {
        k: v
        for k, v in get_tracer().counters.items()
        if k.startswith(COUNTER_PREFIXES)
    }
    return (
        inst.netlist.x.copy(),
        inst.netlist.y.copy(),
        result.hpwl,
        cpu,
        wall,
        counters,
    )


def run_bench(seed=7):
    reps = 5 if full_run() else 3
    cpu = {"warm": [], "cold": []}
    wall = {"warm": [], "cold": []}
    ref = {}
    counters = {}
    identical = True
    hpwl_equal = True
    for _ in range(reps):
        # interleaved arms: slow drift (thermal, other tenants) hits
        # both arms equally instead of biasing whichever ran last
        for arm, is_warm in (("cold", False), ("warm", True)):
            x, y, hpwl, c, w, ctrs = _run_arm(is_warm, seed=seed)
            cpu[arm].append(c)
            wall[arm].append(w)
            counters[arm] = ctrs
            if arm not in ref:
                ref[arm] = (x, y, hpwl)
        identical = identical and bool(
            np.array_equal(ref["cold"][0], ref["warm"][0])
            and np.array_equal(ref["cold"][1], ref["warm"][1])
        )
        hpwl_equal = hpwl_equal and ref["cold"][2] == ref["warm"][2]
    cold_cpu, warm_cpu = min(cpu["cold"]), min(cpu["warm"])
    cold_wall, warm_wall = min(wall["cold"]), min(wall["warm"])
    record = {
        "bench": "warmstart",
        "instance": "Erik",
        "seed": seed,
        "reps": reps,
        "options": {
            "transport_method": "ns",
            "max_levels": 2,
            "repartition_passes": 6,
            "legalize": False,
        },
        "cold_cpu_seconds": round(cold_cpu, 4),
        "warm_cpu_seconds": round(warm_cpu, 4),
        "cold_wall_seconds": round(cold_wall, 4),
        "warm_wall_seconds": round(warm_wall, 4),
        "speedup_cpu": round(cold_cpu / warm_cpu, 4),
        "speedup_wall": round(cold_wall / warm_wall, 4),
        "identical_placement": identical,
        "hpwl_equal": hpwl_equal,
        "hpwl": ref["warm"][2],
        "counters_warm": counters["warm"],
        "counters_cold": counters["cold"],
    }
    return record


def render(record):
    table = Table(
        ["arm", "cpu s", "wall s", "HPWL", "identical"],
        title="Warm-started flows + region cache (min of "
        f"{record['reps']} interleaved reps)",
    )
    table.add_row(
        "cold",
        f"{record['cold_cpu_seconds']:.2f}",
        f"{record['cold_wall_seconds']:.2f}",
        f"{record['hpwl']:.1f}",
        "ref",
    )
    table.add_row(
        "warm",
        f"{record['warm_cpu_seconds']:.2f}",
        f"{record['warm_wall_seconds']:.2f}",
        f"{record['hpwl']:.1f}",
        "yes" if record["identical_placement"] else "NO",
    )
    table.add_row(
        "speedup",
        f"{record['speedup_cpu']:.2f}x",
        f"{record['speedup_wall']:.2f}x",
        "",
        "",
    )
    return table


def test_warmstart_speedup():
    record = run_bench()
    emit("warmstart", render(record))
    emit_perf("warmstart", record)
    # identity is the hard requirement: warm and cold must place
    # bit-for-bit identically before any speedup is worth reporting
    assert record["identical_placement"]
    assert record["hpwl_equal"]
    # the warm arm must actually exercise every reuse channel
    warm = record["counters_warm"]
    assert warm.get("warmstart.hits", 0) > 0
    assert warm.get("warmstart.pivots_saved", 0) > 0
    assert warm.get("cache.hit", 0) > 0
    # acceptance gate (ISSUE 4): >= 1.3x on the reflow-heavy schedule
    assert record["speedup_cpu"] >= 1.3


if __name__ == "__main__":
    record = run_bench()
    emit("warmstart", render(record))
    emit_perf("warmstart", record)
