"""Table VII: ISPD-2006-style scoring vs a Kraftwerk2-style baseline.

Paper: BonnPlace FBP vs Kraftwerk2 (the then-best tool on the ISPD
2006 set) under the contest metric — HPWL (H), density penalty (D) and
CPU factor (C, truncated at -10 %).  FBP improves the best known
results slightly (99.4 % / 99.5 % on average).

Here: the ISPD-like suite scored with the same formula; the
Kraftwerk2-style baseline provides the reference runtime for the CPU
factor (as the contest's reference machine did).  Expected shape:
average scaled-HPWL ratio near 100 % — the two analytic placers are
close, with FBP at least competitive.
"""

import pytest

from repro.metrics import Table, ispd2006_score
from repro.place import BonnPlaceFBP, KraftwerkPlacer
from repro.workloads import ISPD_SUITE, ispd_like_instance

from harness import emit, full_run, run_placer

SUBSET = ["ad5", "nb1", "nb2", "nb4"]


def chips():
    return list(ISPD_SUITE) if full_run() else SUBSET


def compute_rows(seed=1):
    rows = []
    from repro.place import BonnPlaceOptions, KraftwerkOptions

    for name in chips():
        target = ISPD_SUITE[name][1]
        inst_kw = ispd_like_instance(name, seed=seed)
        kw = run_placer(
            lambda t=target: KraftwerkPlacer(
                KraftwerkOptions(density_target=t)
            ),
            inst_kw,
        )
        kw_score = ispd2006_score(
            inst_kw.netlist, target, kw.total_seconds, kw.total_seconds
        )
        inst_fbp = ispd_like_instance(name, seed=seed)
        fbp = run_placer(
            lambda t=target: BonnPlaceFBP(
                BonnPlaceOptions(density_target=t)
            ),
            inst_fbp,
        )
        fbp_score = ispd2006_score(
            inst_fbp.netlist, target, fbp.total_seconds, kw.total_seconds
        )
        rows.append((name, target, kw, kw_score, fbp, fbp_score))
    return rows


def render(rows):
    table = Table(
        ["", "KW H", "KW H+D", "FBP H", "FBP D", "FBP C",
         "FBP H+D", "FBP H+D+C", "ratio H+D"],
        title="TABLE VII: ISPD-2006-style scoring "
              "(Kraftwerk2-like reference)",
    )
    ratios = []
    for name, _t, kw, kws, fbp, fbps in rows:
        ratio = fbps.scaled_hd / kws.scaled_hd if kws.scaled_hd else float("nan")
        ratios.append(ratio)
        table.add_row(
            name,
            f"{kws.hpwl:.0f}", f"{kws.scaled_hd:.0f}",
            f"{fbps.hpwl:.0f}", f"{100 * fbps.dens:.2f}%",
            f"{100 * fbps.cpu:+.2f}%",
            f"{fbps.scaled_hd:.0f}", f"{fbps.scaled_hdc:.0f}",
            f"{100 * ratio:.1f}%",
        )
    avg = sum(ratios) / len(ratios)
    table.add_row("Average", "", "", "", "", "", "", "",
                  f"{100 * avg:.1f}%")
    return table, ratios


def test_table7(benchmark):
    rows = compute_rows()
    table, ratios = render(rows)
    emit("table7_ispd2006", table)

    for name, target, kw, kws, fbp, fbps in rows:
        assert not fbp.crashed and fbp.legality.is_legal
        assert not kw.crashed and kw.legality.is_legal
        assert 0 <= fbps.dens < 0.5
        assert fbps.cpu >= -0.10 - 1e-9  # the truncation bound
    # comparable-or-better scaled wirelength on average (paper: 99.4 %;
    # our Kraftwerk2-style baseline is weaker than the original tool,
    # so FBP's advantage runs larger — the one-sided band reflects that)
    avg = sum(ratios) / len(ratios)
    assert 0.4 <= avg <= 1.4

    def kernel():
        inst = ispd_like_instance("nb1", seed=1)
        return run_placer(BonnPlaceFBP, inst).hpwl

    assert benchmark.pedantic(kernel, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    table, _ = render(compute_rows())
    emit("table7_ispd2006", table)
