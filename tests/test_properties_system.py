"""System-level property-based tests (hypothesis).

These drive randomized instances through whole subsystem pipelines and
check the paper's invariants end to end.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fbp import build_fbp_model, realize_flow
from repro.feasibility import check_feasibility
from repro.geometry import Rect
from repro.grid import Grid
from repro.legalize import check_legality, legalize_with_movebounds
from repro.movebounds import DEFAULT_BOUND, MoveBoundSet, decompose_regions
from repro.netlist import Netlist, Pin

DIE = Rect(0, 0, 60, 60)

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw):
    """A random netlist + movebound set, biased toward feasibility."""
    seed = draw(st.integers(0, 10_000))
    num_cells = draw(st.integers(20, 120))
    num_bounds = draw(st.integers(0, 2))
    rng = np.random.default_rng(seed)
    nl = Netlist(DIE, row_height=1.0, site_width=0.5, name=f"prop{seed}")
    bounds = MoveBoundSet(DIE)
    bound_names = []
    for b in range(num_bounds):
        # row-aligned areas in separate corners so they never overlap
        x0 = 2.0 if b == 0 else 34.0
        side = float(rng.integers(16, 24))
        bounds.add_rects(
            f"m{b}", [Rect(x0, 2.0, x0 + side, 2.0 + side)]
        )
        bound_names.append(f"m{b}")
    for i in range(num_cells):
        mb = None
        if bound_names and i % 5 == 0:
            mb = bound_names[i % len(bound_names)]
        nl.add_cell(
            f"c{i}",
            float(rng.choice([1.0, 1.5, 2.0])),
            1.0,
            x=float(rng.uniform(1, 59)),
            y=float(rng.uniform(1, 59)),
            movebound=mb,
        )
    nl.finalize()
    for j in range(num_cells // 2):
        k = int(rng.integers(2, 4))
        members = rng.choice(num_cells, size=k, replace=False)
        nl.add_net(f"n{j}", [Pin(int(c)) for c in members])
    return nl, bounds


@SETTINGS
@given(instances())
def test_fbp_pipeline_invariants(instance):
    """Feasible instance => FBP flow feasible; after realization every
    (window, region) load fits its capacity up to one cell; movebound
    admissibility holds for every assignment."""
    nl, bounds = instance
    decomposition = decompose_regions(DIE, bounds, nl.blockages)
    feasible = check_feasibility(nl, bounds, decomposition, 0.9).feasible
    grid = Grid(DIE, 3, 3)
    grid.build_regions(decomposition)
    model = build_fbp_model(nl, bounds, grid, density_target=0.9)
    result = model.solve("ssp")
    assert result.feasible == feasible  # Theorem 3 == Theorem 2
    if not feasible:
        return
    out = realize_flow(model, result, run_local_qp=False)
    max_cell = max((c.size for c in nl.cells), default=0.0)
    load = {}
    for cell, key in out.assignment.items():
        load[key] = load.get(key, 0.0) + nl.cells[cell].size
        bound = nl.cells[cell].movebound or DEFAULT_BOUND
        widx, ridx = key
        wr = next(
            wr for wr in grid.windows[widx].regions
            if wr.region.index == ridx
        )
        assert wr.admits(bound)
    for key, used in load.items():
        cap = model.region_capacity.get(key, 0.0)
        assert used <= cap * 1.1 + max_cell + 1e-6


@SETTINGS
@given(instances())
def test_legalization_invariants(instance):
    """If the region partition succeeds, the output is fully legal and
    inside all movebounds."""
    nl, bounds = instance
    decomposition = decompose_regions(DIE, bounds, nl.blockages)
    if not check_feasibility(nl, bounds, decomposition, 0.85).feasible:
        return
    # start from an admissible rough placement: clamp bound cells in
    for c in nl.cells:
        if c.movebound:
            area = bounds.get(c.movebound).area
            nl.x[c.index], nl.y[c.index] = area.clamp_point(
                nl.x[c.index], nl.y[c.index]
            )
    try:
        legalize_with_movebounds(nl, bounds, decomposition)
    except ValueError:
        # allowed only for genuinely packed instances; rare by design
        return
    report = check_legality(nl, bounds)
    assert report.overlaps == 0
    assert report.out_of_die == 0
    assert report.off_row == 0
    assert report.movebound_violations == 0


@SETTINGS
@given(instances(), st.integers(2, 5))
def test_grid_region_capacity_consistency(instance, n):
    """Window-region capacities tile the global region capacities."""
    nl, bounds = instance
    decomposition = decompose_regions(DIE, bounds, nl.blockages)
    grid = Grid(DIE, n, n)
    grid.build_regions(decomposition)
    per_region = {}
    for w in grid:
        for wr in w.regions:
            per_region[wr.region.index] = (
                per_region.get(wr.region.index, 0.0) + wr.capacity(1.0)
            )
    for region in decomposition:
        assert per_region.get(region.index, 0.0) == pytest.approx(
            region.capacity(1.0), rel=1e-6, abs=1e-6
        )


@SETTINGS
@given(instances())
def test_bookshelf_roundtrip_property(instance):
    import tempfile

    nl, bounds = instance
    from repro.bookshelf import load_instance, save_instance

    with tempfile.TemporaryDirectory() as path:
        save_instance(path, nl, bounds)
        nl2, bounds2 = load_instance(path, nl.name)
    assert nl2.hpwl() == pytest.approx(nl.hpwl())
    assert nl2.total_cell_area() == pytest.approx(nl.total_cell_area())
    assert len(bounds2) == len(bounds)
