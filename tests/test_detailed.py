"""Tests for the detailed placement refinement."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.legalize import check_legality, legalize_with_movebounds
from repro.legalize.detailed import detailed_place
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.netlist import Netlist, Pin
from repro.place import BonnPlaceFBP
from repro.workloads import (
    MoveBoundSpec,
    NetlistSpec,
    attach_movebounds,
    generate_netlist,
)

DIE = Rect(0, 0, 40, 10)


class TestBasics:
    def test_moves_cell_toward_its_net(self):
        nl = Netlist(DIE, row_height=1.0, site_width=0.5)
        a = nl.add_cell("a", 2, 1, x=2, y=0.5)      # far from partner
        b = nl.add_cell("b", 2, 1, x=38, y=9.5, fixed=True)
        nl.finalize()
        nl.add_net("n", [Pin(a.index), Pin(b.index)])
        before = nl.hpwl()
        report = detailed_place(nl)
        assert report.moves >= 1
        assert nl.hpwl() < before
        assert check_legality(nl).is_legal

    def test_never_degrades(self):
        spec = NetlistSpec("dp", 150, utilization=0.5, num_pads=8)
        nl, _ = generate_netlist(spec, seed=0)
        BonnPlaceFBP().place(nl, MoveBoundSet(nl.die))
        before = nl.hpwl()
        report = detailed_place(nl)
        assert report.hpwl_after <= before + 1e-6
        assert report.hpwl_after == pytest.approx(nl.hpwl())

    def test_stays_legal(self):
        spec = NetlistSpec("dp", 200, utilization=0.55, num_pads=8)
        nl, _ = generate_netlist(spec, seed=1)
        BonnPlaceFBP().place(nl, MoveBoundSet(nl.die))
        detailed_place(nl)
        rep = check_legality(nl)
        assert rep.overlaps == 0
        assert rep.off_row == 0
        assert rep.out_of_die == 0

    def test_improvement_metric(self):
        spec = NetlistSpec("dp", 150, utilization=0.5, num_pads=8)
        nl, _ = generate_netlist(spec, seed=2)
        BonnPlaceFBP().place(nl, MoveBoundSet(nl.die))
        report = detailed_place(nl)
        assert 0.0 <= report.improvement < 1.0

    def test_empty_design(self):
        nl = Netlist(DIE)
        nl.finalize()
        report = detailed_place(nl)
        assert report.moves == 0 and report.swaps == 0


class TestWithMovebounds:
    def test_respects_movebounds(self):
        spec = NetlistSpec("dpmb", 200, utilization=0.5, num_pads=8)
        nl, logical = generate_netlist(spec, seed=3)
        bounds = attach_movebounds(
            nl, logical,
            [MoveBoundSpec("m", 0.2, density=0.6)],
            seed=3,
        )
        BonnPlaceFBP().place(nl, bounds)
        assert bounds.violations(nl) == []
        dec = decompose_regions(nl.die, bounds, nl.blockages)
        detailed_place(nl, bounds, dec)
        assert bounds.violations(nl) == []
        assert check_legality(nl, bounds).is_legal

    def test_swap_counts_reported(self):
        spec = NetlistSpec("dp", 180, utilization=0.6, num_pads=8)
        nl, _ = generate_netlist(spec, seed=4)
        BonnPlaceFBP().place(nl, MoveBoundSet(nl.die))
        report = detailed_place(nl, passes=3)
        assert report.passes >= 1
        assert report.moves + report.swaps >= 0
