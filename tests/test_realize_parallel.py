"""Tile-parallel, vectorized realization: identity and fault contract.

The contract under test (see ``repro/fbp/realize_windows.py``):

* the vectorized spread reproduces the scalar reference
  (``realization._spread_into_rects``) bit for bit;
* serial, pool-1, pool-4 and any realize-tile decomposition produce
  byte-identical placements — on synthetic, movebound-heavy, and
  Bookshelf instances;
* a ``worker.kill`` fault landing on a realize unit changes nothing
  (the unit is requeued whole and re-realized from scratch);
* the ``REPRO_VERIFY_REALIZE=1`` shadow mode accepts the fast path
  (closed-form single-region windows) against the general LP route;
* small batches short-circuit pool dispatch deterministically
  (``pool.serial_shortcircuits``) with identical output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bookshelf import load_instance
from repro.cli import main
from repro.fbp.partitioner import fbp_partition
from repro.fbp.realize_windows import (
    WindowSpec,
    _spread_group,
    tile_units,
)
from repro.fbp.realization import _spread_into_rects
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.obs import get_tracer
from repro.resilience import install_fault_plan, reset_faults
from repro.runstate import (
    WindowSolverPool,
    activated,
    solve_transport_batch,
)
from repro.workloads.generator import NetlistSpec, generate_netlist
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


@pytest.fixture(autouse=True)
def _force_dispatch(monkeypatch):
    """Disable the min-work short-circuit: these tests must exercise
    actual pool dispatch on small instances.  The short-circuit tests
    below delete the variable again to restore default behaviour."""
    monkeypatch.setenv("REPRO_POOL_MIN_WORK", "0")


def _instance(seed: int, num_cells: int = 1500):
    spec = NetlistSpec(
        f"realize{seed}", num_cells=num_cells, utilization=0.55
    )
    nl, _ = generate_netlist(spec, seed=seed)
    bounds = MoveBoundSet(nl.die)
    grid = Grid(nl.die, 8, 8)
    grid.build_regions(decompose_regions(nl.die, bounds, nl.blockages))
    return nl, bounds, grid


def _mb_instance(seed: int, num_cells: int = 600):
    """Movebound-heavy instance: multi-region windows keep the general
    LP route (not the closed-form fast path) busy."""
    mbs = MoveBoundSet(DIE)
    mbs.add_rects("west", [Rect(0, 0, 50, 100)])
    mbs.add_rects("ne", [Rect(50, 50, 100, 100)])

    def mb_of(i):
        if i % 3 == 0:
            return "west"
        if i % 7 == 0:
            return "ne"
        return None

    nl = build_random_netlist(num_cells, 300, seed, DIE, movebound_of=mb_of)
    grid = Grid(DIE, 8, 8)
    grid.build_regions(decompose_regions(DIE, mbs, nl.blockages))
    return nl, mbs, grid


def _partition(nl, bounds, grid, pool=0, realize_tiles=None):
    kwargs = dict(
        density_target=0.9,
        run_local_qp=False,
        realize_tiles=realize_tiles,
    )
    if pool:
        with WindowSolverPool(pool) as p, activated(p):
            return fbp_partition(nl, bounds, grid, **kwargs)
    return fbp_partition(nl, bounds, grid, **kwargs)


def _positions(nl):
    return (nl.x.tobytes(), nl.y.tobytes())


def _state(nl, rep):
    return (
        _positions(nl),
        sorted(rep.realization.assignment.items()),
        rep.realization.relaxed_windows,
    )


# ----------------------------------------------------------------------
# vectorized spread == scalar reference
# ----------------------------------------------------------------------
class TestSpreadReference:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    @pytest.mark.parametrize(
        "rects",
        [
            [Rect(10, 10, 40, 30)],
            [Rect(0, 0, 20, 20), Rect(20, 0, 50, 10)],
            [Rect(5, 5, 6, 40), Rect(6, 5, 30, 6), Rect(40, 40, 41, 41)],
        ],
    )
    def test_matches_scalar_reference(self, seed, rects):
        nl = build_random_netlist(80, 40, seed, DIE)
        rng = np.random.default_rng(seed)
        movable = [c.index for c in nl.cells if not c.fixed]
        cells = np.sort(
            rng.choice(movable, size=33, replace=False)
        ).astype(np.int64)
        # coincident positions exercise the lexsort tie-breaks
        nl.x[cells[:7]] = 17.5
        nl.y[cells[:7]] = 12.25

        ref = build_random_netlist(80, 40, seed, DIE)
        ref.x[:] = nl.x
        ref.y[:] = nl.y
        _spread_into_rects(ref, cells.tolist(), rects)

        _mv, half_w, half_h = nl._dim_arrays()
        rect_arr = np.array(
            [[r.x_lo, r.y_lo, r.x_hi, r.y_hi] for r in rects]
        )
        spec = WindowSpec(
            widx=0,
            cells=cells,
            codes=np.zeros(len(cells), dtype=np.int64),
            xs=np.asarray(nl.x[cells], dtype=np.float64),
            ys=np.asarray(nl.y[cells], dtype=np.float64),
            sizes=nl.cell_sizes()[cells],
            half_w=half_w[cells],
            half_h=half_h[cells],
            region_idx=(0,),
            caps=np.array([1.0]),
            admits=np.ones((1, 1), dtype=bool),
            free_rects=(rect_arr,),
            spread_rects=(rect_arr,),
            trivial=True,
        )
        new_x = spec.xs.copy()
        new_y = spec.ys.copy()
        _spread_group(
            spec, np.arange(len(cells)), rect_arr, new_x, new_y
        )
        assert new_x.tobytes() == ref.x[cells].tobytes()
        assert new_y.tobytes() == ref.y[cells].tobytes()


# ----------------------------------------------------------------------
# serial vs pool-N vs tiling: byte-identical
# ----------------------------------------------------------------------
class TestRealizeIdentity:
    def test_pool_and_tiling_invariant(self):
        baseline = None
        for pool, tiles in ((0, None), (1, 4), (4, 2), (4, 8)):
            nl, bounds, grid = _instance(3)
            rep = _partition(nl, bounds, grid, pool=pool, realize_tiles=tiles)
            assert rep.feasible
            state = _state(nl, rep)
            if baseline is None:
                baseline = state
            else:
                assert state == baseline

    def test_movebound_instance_invariant(self):
        baseline = None
        for pool, tiles in ((0, None), (4, 4)):
            nl, bounds, grid = _mb_instance(3)
            rep = _partition(nl, bounds, grid, pool=pool, realize_tiles=tiles)
            assert rep.feasible
            state = _state(nl, rep)
            if baseline is None:
                baseline = state
            else:
                assert state == baseline

    def test_fast_path_engages_on_unbounded_instance(self):
        counters = get_tracer().counters
        before = counters.get("realize.trivial_windows", 0)
        nl, bounds, grid = _instance(11)
        rep = _partition(nl, bounds, grid)
        assert rep.feasible
        assert counters.get("realize.trivial_windows", 0) > before

    def test_shadow_verify_accepts_fast_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_REALIZE", "1")
        counters = get_tracer().counters
        before = counters.get("realize.verified", 0)
        for build in (_instance, _mb_instance):
            nl, bounds, grid = build(5)
            rep = _partition(nl, bounds, grid)
            assert rep.feasible
        assert counters.get("realize.verified", 0) > before

    def test_worker_kill_mid_realization_is_invisible(self):
        nl_s, bounds_s, grid_s = _instance(7)
        rep_s = _partition(nl_s, bounds_s, grid_s)
        assert rep_s.feasible
        # run_local_qp=False and a monolithic flow solve leave the
        # realize units as essentially the only pool traffic, so a
        # kill at the first unit pickup lands on one of them
        reset_faults()
        install_fault_plan("worker.kill=kill@1")
        counters = get_tracer().counters
        before = counters.get("pool.worker_deaths", 0)
        nl_p, bounds_p, grid_p = _instance(7)
        rep_p = _partition(nl_p, bounds_p, grid_p, pool=2, realize_tiles=4)
        reset_faults()
        assert rep_p.feasible
        assert counters.get("pool.worker_deaths", 0) > before
        assert _state(nl_p, rep_p) == _state(nl_s, rep_s)

    def test_tile_units_partition_specs(self):
        nl, _bounds, grid = _instance(2)

        def dummy(widx):
            e = np.empty(0)
            z = np.empty(0, dtype=np.int64)
            r = np.empty((0, 4))
            return WindowSpec(
                widx=widx, cells=z, codes=z, xs=e, ys=e, sizes=e,
                half_w=e, half_h=e, region_idx=(0,),
                caps=np.array([1.0]), admits=np.ones((1, 1), dtype=bool),
                free_rects=(r,), spread_rects=(r,), trivial=True,
            )

        specs = [dummy(w) for w in range(0, grid.nx * grid.ny, 3)]
        units = tile_units(specs, grid, 2)
        assert 1 < len(units) <= 4
        flat = [s.widx for u in units for s in u]
        assert sorted(flat) == [s.widx for s in specs]
        # every window lands in exactly one unit
        assert len(set(flat)) == len(flat)


# ----------------------------------------------------------------------
# Bookshelf end-to-end through the CLI
# ----------------------------------------------------------------------
class TestBookshelfIdentity:
    @pytest.fixture(scope="class")
    def instance_dir(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("realize_cli"))
        assert main(["generate", "Dagmar", "--out", out, "--seed", "2"]) == 0
        return out

    def test_cli_pool_tiles_byte_identical(
        self, instance_dir, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_POOL_MIN_WORK", "0")
        outs = {}
        for tag, extra in {
            "serial": [],
            "pooled": ["--pool-workers", "2", "--realize-tiles", "4"],
        }.items():
            out = str(tmp_path / tag)
            code = main(
                ["place", "Dagmar", "--dir", instance_dir, "--out", out]
                + extra
            )
            assert code in (0, 1)
            nl, _ = load_instance(out, "Dagmar")
            outs[tag] = _positions(nl)
        assert outs["serial"] == outs["pooled"]


# ----------------------------------------------------------------------
# min-work short-circuit (small-batch pool regression)
# ----------------------------------------------------------------------
class TestSerialShortcircuit:
    def _tasks(self, n=4, seed=0):
        rng = np.random.default_rng(seed)
        tasks = []
        for _ in range(n):
            supplies = rng.uniform(0.5, 2.0, 5)
            caps = rng.uniform(1.0, 2.0, 3)
            caps *= 1.3 * supplies.sum() / caps.sum()
            costs = rng.uniform(0.0, 10.0, (5, 3))
            tasks.append((supplies, caps, costs))
        return tasks

    def test_small_batch_short_circuits(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_MIN_WORK", raising=False)
        counters = get_tracer().counters
        tasks = self._tasks()
        want = solve_transport_batch(tasks)
        before = counters.get("pool.serial_shortcircuits", 0)
        with WindowSolverPool(2) as pool, activated(pool):
            got = solve_transport_batch(tasks)
        assert counters.get("pool.serial_shortcircuits", 0) > before
        for (rg, sg), (rw, sw) in zip(got, want):
            assert sg == sw
            assert rg.flow.tobytes() == rw.flow.tobytes()

    def test_env_zero_forces_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_MIN_WORK", "0")
        counters = get_tracer().counters
        tasks = self._tasks(seed=1)
        before = counters.get("pool.tasks", 0)
        with WindowSolverPool(2) as pool, activated(pool):
            solve_transport_batch(tasks)
        assert counters.get("pool.tasks", 0) >= before + len(tasks)

    def test_trivial_realize_batch_stays_serial(self, monkeypatch):
        """All-trivial windows carry zero LP work: dispatching them
        through the pool is pure overhead, so at the default threshold
        they stay in-process even with an active pool."""
        monkeypatch.delenv("REPRO_POOL_MIN_WORK", raising=False)
        counters = get_tracer().counters
        before = counters.get("realize.pool_dispatched", 0)
        nl, bounds, grid = _instance(9)
        rep = _partition(nl, bounds, grid, pool=2, realize_tiles=4)
        assert rep.feasible
        assert counters.get("realize.pool_dispatched", 0) == before
