"""Bookshelf loader robustness on malformed inputs."""

import os

import pytest

from repro.bookshelf import load_instance, save_instance
from repro.geometry import Rect
from repro.netlist import Netlist, Pin


def _write(path, name, ext, content):
    with open(os.path.join(path, f"{name}.{ext}"), "w") as f:
        f.write(content)


class TestLoaderErrors:
    def test_missing_die_line(self, tmp_path):
        d = str(tmp_path)
        _write(d, "bad", "scl", "Blockage 0 0 1 1\n")
        _write(d, "bad", "nodes", "NumNodes : 0\n")
        _write(d, "bad", "nets", "NumNets : 0\n")
        _write(d, "bad", "pl", "")
        with pytest.raises(ValueError, match="no Die line"):
            load_instance(d, "bad")

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_instance(str(tmp_path), "ghost")

    def test_cell_without_position_defaults_to_center(self, tmp_path):
        d = str(tmp_path)
        _write(d, "c", "scl", "Die 0 0 10 10 RowHeight 1 SiteWidth 0.5\n")
        _write(d, "c", "nodes", "NumNodes : 1\ncellA 1 1\n")
        _write(d, "c", "nets", "NumNets : 0\n")
        _write(d, "c", "pl", "")  # no placement line for cellA
        nl, _ = load_instance(d, "c")
        assert (nl.x[0], nl.y[0]) == (5, 5)

    def test_empty_mb_lines_skipped(self, tmp_path):
        d = str(tmp_path)
        nl = Netlist(Rect(0, 0, 10, 10), name="m")
        nl.add_cell("a", 1, 1, x=5, y=5)
        nl.finalize()
        from repro.movebounds import MoveBoundSet

        mbs = MoveBoundSet(nl.die)
        mbs.add_rects("b1", [Rect(0, 0, 4, 4)])
        save_instance(d, nl, mbs)
        with open(os.path.join(d, "m.mb"), "a") as f:
            f.write("\nshort line\n")  # malformed extras
        _nl, bounds = load_instance(d, "m")
        assert bounds.names() == ["b1"]

    def test_net_weight_default(self, tmp_path):
        d = str(tmp_path)
        _write(d, "w", "scl", "Die 0 0 10 10 RowHeight 1 SiteWidth 0.5\n")
        _write(d, "w", "nodes", "NumNodes : 2\na 1 1\nb 1 1\n")
        _write(
            d, "w", "nets",
            "NumNets : 1\nNetDegree : 2 n1\n  a : 0 0\n  b : 0 0\n",
        )
        _write(d, "w", "pl", "a 1 1\nb 9 9\n")
        nl, _ = load_instance(d, "w")
        assert nl.nets[0].weight == 1.0
        assert nl.hpwl() == pytest.approx(16.0)
