"""Tests for FBP realization (paper §IV.B)."""

import numpy as np
import pytest

from repro.fbp import build_fbp_model, realize_flow
from repro.fbp.model import ExternalArc
from repro.fbp.realization import (
    cancel_external_cycles,
    topological_arc_order,
)
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import (
    DEFAULT_BOUND,
    MoveBoundSet,
    decompose_regions,
)
from repro.netlist import Netlist
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


def _arc(aid, bound, src, dst, direction="E"):
    return ExternalArc(aid, bound, src, dst, direction)


class TestCycleCancellation:
    def test_two_cycle_cancelled(self):
        flows = [(_arc(0, "m", 1, 2), 5.0), (_arc(1, "m", 2, 1, "W"), 3.0)]
        out = cancel_external_cycles(flows)
        total = {(a.src_window, a.dst_window): f for a, f in out}
        assert total == {(1, 2): 2.0}

    def test_three_cycle_cancelled(self):
        flows = [
            (_arc(0, "m", 1, 2), 4.0),
            (_arc(1, "m", 2, 3), 4.0),
            (_arc(2, "m", 3, 1), 2.0),
            (_arc(3, "m", 3, 4), 1.0),
        ]
        out = cancel_external_cycles(flows)
        arcs = {(a.src_window, a.dst_window): f for a, f in out}
        assert (3, 1) not in arcs
        assert arcs[(1, 2)] == pytest.approx(2.0)
        assert arcs[(3, 4)] == pytest.approx(1.0)

    def test_different_bounds_independent(self):
        flows = [(_arc(0, "a", 1, 2), 5.0), (_arc(1, "b", 2, 1, "W"), 3.0)]
        out = cancel_external_cycles(flows)
        assert len(out) == 2  # no cancellation across movebounds

    def test_acyclic_untouched(self):
        flows = [(_arc(0, "m", 1, 2), 5.0), (_arc(1, "m", 2, 3), 3.0)]
        out = cancel_external_cycles(flows)
        assert {f for _a, f in out} == {5.0, 3.0}


class TestTopologicalOrder:
    def test_chain_ordered(self):
        flows = [
            (_arc(0, "m", 2, 3), 1.0),
            (_arc(1, "m", 1, 2), 1.0),
        ]
        ordered = topological_arc_order(flows)
        assert [a.src_window for a, _f in ordered] == [1, 2]

    def test_cycle_raises(self):
        flows = [(_arc(0, "m", 1, 2), 1.0), (_arc(1, "m", 2, 1, "W"), 1.0)]
        with pytest.raises(RuntimeError):
            topological_arc_order(flows)

    def test_bounds_grouped(self):
        flows = [
            (_arc(0, "b", 1, 2), 1.0),
            (_arc(1, "a", 2, 3), 1.0),
        ]
        ordered = topological_arc_order(flows)
        assert len(ordered) == 2


def _realize(num_cells=120, seed=0, density=0.85, bounds=None, nx=4):
    mbs = bounds or MoveBoundSet(DIE)
    names = mbs.names()

    def mb_of(i):
        return names[i % len(names)] if names and i < num_cells // 3 else None

    nl = build_random_netlist(num_cells, 80, seed, DIE,
                              movebound_of=mb_of if names else None)
    dec = decompose_regions(DIE, mbs, nl.blockages)
    grid = Grid(DIE, nx, nx)
    grid.build_regions(dec)
    model = build_fbp_model(nl, mbs, grid, density_target=density)
    result = model.solve("ssp")
    assert result.feasible
    out = realize_flow(model, result, run_local_qp=False)
    return nl, mbs, grid, model, result, out


class TestRealization:
    def test_all_cells_assigned(self):
        nl, _mbs, _grid, _model, _res, out = _realize()
        movable = {c.index for c in nl.cells if not c.fixed}
        assert set(out.assignment) == movable

    def test_window_condition_one_holds(self):
        """After realization every window satisfies condition (1):
        per-window load fits admissible capacity, up to rounding."""
        nl, mbs, grid, model, _res, out = _realize(seed=1)
        load = {}
        for cell, (widx, ridx) in out.assignment.items():
            key = (widx, ridx)
            load[key] = load.get(key, 0.0) + nl.cells[cell].size
        max_cell = max(c.size for c in nl.cells)
        for key, used in load.items():
            cap = model.region_capacity.get(key, 0.0)
            assert used <= cap * 1.1 + max_cell + 1e-6

    def test_assignment_respects_movebounds(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(50, 50, 100, 100)])
        nl, mbs, grid, model, _res, out = _realize(seed=2, bounds=mbs)
        for cell, (widx, ridx) in out.assignment.items():
            bound = nl.cells[cell].movebound or DEFAULT_BOUND
            wr = next(
                wr for wr in grid.windows[widx].regions
                if wr.region.index == ridx
            )
            assert wr.admits(bound)

    def test_positions_inside_assigned_region(self):
        nl, _mbs, grid, _model, _res, out = _realize(seed=3)
        for cell, (widx, ridx) in out.assignment.items():
            wr = next(
                wr for wr in grid.windows[widx].regions
                if wr.region.index == ridx
            )
            x, y = nl.x[cell], nl.y[cell]
            assert wr.area.contains_point(x, y) or wr.free_area.contains_point(x, y)

    def test_no_movebound_violations_after_realization(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(60, 60, 100, 100)])
        nl, mbs, _g, _m, _r, _out = _realize(seed=4, bounds=mbs)
        assert mbs.violations(nl) == []

    def test_rounding_error_bounded(self):
        nl, _mbs, _grid, _model, _res, out = _realize(seed=5)
        max_cell = max(c.size for c in nl.cells)
        if out.arcs_realized:
            assert out.rounding_error <= out.arcs_realized * max_cell

    def test_local_qp_runs(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(60, 60, 100, 100)])
        names = ["m"]
        nl = build_random_netlist(
            100, 70, 6, DIE, movebound_of=lambda i: "m" if i < 30 else None
        )
        dec = decompose_regions(DIE, mbs, nl.blockages)
        grid = Grid(DIE, 4, 4)
        grid.build_regions(dec)
        model = build_fbp_model(nl, mbs, grid, density_target=0.85)
        result = model.solve("ssp")
        out = realize_flow(model, result, run_local_qp=True)
        if out.arcs_realized:
            assert out.local_qp_calls > 0

    def test_deterministic(self):
        a = _realize(seed=7)
        b = _realize(seed=7)
        assert a[5].assignment == b[5].assignment
        assert np.array_equal(a[0].x, b[0].x)
