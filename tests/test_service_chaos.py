"""Chaos tests of the placement service (slow lane).

The contract under test: with faults injected anywhere — child
attempts SIGKILLed or stalled, result files corrupted, the daemon
itself SIGKILLed mid-run — every accepted job still completes after
restart with a placement bit-identical to an uninterrupted run, and
overload surfaces as a structured refusal, never a crash or a lost
job.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.bookshelf import save_instance
from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist, Pin
from repro.resilience import PipelineStageError
from repro.service import JobSpec, ServiceClient
from repro.service.worker import read_result, run_job_to_file

pytestmark = pytest.mark.slow

DIE = Rect(0, 0, 100, 100)
_SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def _write_instance(path, name, cells, seed):
    rng = np.random.default_rng(seed)
    nl = Netlist(DIE, name=name)
    for i in range(cells):
        nl.add_cell(f"c{i}", 2.0, 1.0)
    for i in range(0, cells - 2, 2):
        nl.add_net(f"n{i}", [Pin(i), Pin(i + 1), Pin((i + 7) % cells)])
    nl.finalize()
    nl.x[:] = rng.uniform(5, 95, nl.num_cells)
    nl.y[:] = rng.uniform(5, 95, nl.num_cells)
    os.makedirs(str(path), exist_ok=True)
    save_instance(str(path), nl, MoveBoundSet(DIE))
    return name


def _start_daemon(state_dir, *flags, fault_plan=None):
    sock = os.path.join(str(state_dir), "svc.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    else:
        env.pop("REPRO_FAULT_PLAN", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir), "--socket", sock, *flags],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    assert "listening" in line, f"daemon failed to start: {line!r}"
    return proc, ServiceClient(sock, timeout=30.0)


def _stop(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def _reference_sha(tmp_path, inst_dir, name):
    """The uninterrupted-run answer, computed without any daemon."""
    ref_dir = str(tmp_path / f"ref_{name}")
    spec = JobSpec(kind="place", instance=name, dir=str(inst_dir))
    run_job_to_file(spec, ref_dir, allow_faults=False)
    payload, error = read_result(ref_dir)
    assert error is None, error
    return payload["pl_sha256"]


class TestDaemonKillRecovery:
    def test_sigkill_mid_jobs_then_bit_identical_results(self, tmp_path):
        """Three concurrent place jobs; the daemon is SIGKILLed while
        they run; a restarted daemon on the same state dir finishes
        every accepted job with the bit-identical placement."""
        instances = {}
        for i in range(3):
            name = f"chaos{i}"
            inst = tmp_path / f"inst{i}"
            _write_instance(inst, name, cells=40 + 10 * i, seed=i)
            instances[name] = inst
        want = {
            name: _reference_sha(tmp_path, inst, name)
            for name, inst in instances.items()
        }

        state = tmp_path / "state"
        proc, client = _start_daemon(state, "--max-running", "3")
        try:
            jids = {
                name: client.submit(
                    JobSpec(kind="place", instance=name, dir=str(inst))
                )
                for name, inst in instances.items()
            }
            # let work actually start before pulling the plug
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                states = [client.status(j)["state"] for j in jids.values()]
                if "running" in states:
                    break
                time.sleep(0.05)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()

            proc, client = _start_daemon(state, "--max-running", "3")
            for name, jid in jids.items():
                job = client.wait_for(jid, timeout=180)
                assert job["state"] == "done", (name, job)
                assert job["result"]["pl_sha256"] == want[name], name
        finally:
            _stop(proc)

    def test_double_kill_and_restart_still_completes(self, tmp_path):
        """Two successive daemon SIGKILLs on the same state dir: the
        job still lands, still bit-identical."""
        name = _write_instance(tmp_path / "inst", "twice", 50, seed=9)
        want = _reference_sha(tmp_path, tmp_path / "inst", "twice")
        state = tmp_path / "state"

        proc, client = _start_daemon(state)
        try:
            jid = client.submit(
                JobSpec(kind="place", instance=name,
                        dir=str(tmp_path / "inst"))
            )
            for _ in range(2):
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    try:
                        if client.status(jid)["state"] in (
                            "running", "done",
                        ):
                            break
                    except PipelineStageError:
                        pass
                    time.sleep(0.05)
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait()
                proc, client = _start_daemon(state)
            job = client.wait_for(jid, timeout=180)
            assert job["state"] == "done"
            assert job["result"]["pl_sha256"] == want
        finally:
            _stop(proc)


class TestChildFaults:
    def test_child_kill_crash_loop_degrades_to_fallback(self, tmp_path):
        """Every child attempt dies at pickup (fork inheritance arms
        the plan in each child); after max_attempts the in-daemon
        fallback — which bypasses fault sites by design — completes
        the job with the bit-identical placement."""
        name = _write_instance(tmp_path / "inst", "killed", 40, seed=3)
        want = _reference_sha(tmp_path, tmp_path / "inst", "killed")
        state = tmp_path / "state"
        proc, client = _start_daemon(
            state,
            "--max-attempts", "2",
            "--backoff-base", "0.05",
            fault_plan="svc.child.kill=kill",
        )
        try:
            jid = client.submit(
                JobSpec(kind="place", instance=name,
                        dir=str(tmp_path / "inst"))
            )
            job = client.wait_for(jid, timeout=180)
            assert job["state"] == "done"
            assert job["attempts"] >= 2
            assert job["result"]["pl_sha256"] == want
            stats = client.stats()["counters"]
            assert stats.get("svc.child_crashes", 0) >= 2
            assert stats.get("svc.fallbacks", 0) >= 1
        finally:
            _stop(proc)

    def test_child_stall_reaped_by_deadline(self, tmp_path):
        """A wedged child is killed at the per-attempt deadline and the
        job is retried; the terminal fallback still lands it."""
        name = _write_instance(tmp_path / "inst", "stalled", 40, seed=4)
        want = _reference_sha(tmp_path, tmp_path / "inst", "stalled")
        state = tmp_path / "state"
        proc, client = _start_daemon(
            state,
            "--job-timeout", "1.5",
            "--max-attempts", "2",
            "--backoff-base", "0.05",
            fault_plan="svc.child.stall=stall:60",
        )
        try:
            jid = client.submit(
                JobSpec(kind="place", instance=name,
                        dir=str(tmp_path / "inst"))
            )
            job = client.wait_for(jid, timeout=180)
            assert job["state"] == "done"
            assert job["result"]["pl_sha256"] == want
            stats = client.stats()["counters"]
            assert stats.get("svc.job_timeouts", 0) >= 1
        finally:
            _stop(proc)

    def test_corrupted_result_detected_and_retried(self, tmp_path):
        """The first attempt's result file is bit-flipped after
        checksumming; the daemon must reject it (checksum mismatch)
        and re-run instead of reporting garbage."""
        name = _write_instance(tmp_path / "inst", "corrupt", 40, seed=5)
        want = _reference_sha(tmp_path, tmp_path / "inst", "corrupt")
        state = tmp_path / "state"
        proc, client = _start_daemon(
            state,
            "--max-attempts", "2",
            "--backoff-base", "0.05",
            fault_plan="svc.result.corrupt=corrupt",
        )
        try:
            jid = client.submit(
                JobSpec(kind="place", instance=name,
                        dir=str(tmp_path / "inst"))
            )
            job = client.wait_for(jid, timeout=180)
            assert job["state"] == "done"
            assert job["result"]["pl_sha256"] == want
            # at least one attempt's commit failed verification
            assert job["attempts"] >= 2
        finally:
            _stop(proc)
