"""Tests for the wirelength models (HPWL / RMST / RSMT estimate)."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.metrics.wirelength import (
    net_hpwl,
    net_rmst,
    net_rsmt_estimate,
    wirelength_report,
)
from repro.netlist import Netlist, Pin

DIE = Rect(0, 0, 100, 100)


def _net_at(points, weight=1.0):
    nl = Netlist(DIE)
    pins = []
    for x, y in points:
        pins.append(Pin.terminal(x, y))
    nl.finalize()
    net = nl.add_net("n", pins, weight)
    return nl, net


class TestPerNet:
    def test_two_pin_all_equal(self):
        nl, net = _net_at([(0, 0), (3, 4)])
        assert net_hpwl(nl, net) == 7
        assert net_rmst(nl, net) == 7
        assert net_rsmt_estimate(nl, net) == 7

    def test_three_pin_rsmt_is_hpwl(self):
        nl, net = _net_at([(0, 0), (10, 0), (5, 5)])
        assert net_rsmt_estimate(nl, net) == net_hpwl(nl, net) == 15

    def test_three_pin_rmst_exceeds_hpwl(self):
        nl, net = _net_at([(0, 0), (10, 0), (5, 5)])
        assert net_rmst(nl, net) >= net_hpwl(nl, net)

    def test_rmst_chain(self):
        nl, net = _net_at([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert net_rmst(nl, net) == 3

    def test_four_pin_star(self):
        # pins at the corners of a square: RMST = 3 sides = 30
        nl, net = _net_at([(0, 0), (10, 0), (0, 10), (10, 10)])
        assert net_rmst(nl, net) == pytest.approx(30)
        assert net_rsmt_estimate(nl, net) == pytest.approx(0.887 * 30)

    def test_degenerate(self):
        nl, net = _net_at([(5, 5)])
        assert net_hpwl(nl, net) == 0
        assert net_rmst(nl, net) == 0


class TestInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_hpwl_lower_bounds_rmst(self, seed):
        rng = np.random.default_rng(seed)
        pts = [(float(x), float(y)) for x, y in rng.uniform(0, 50, (7, 2))]
        nl, net = _net_at(pts)
        assert net_rmst(nl, net) >= net_hpwl(nl, net) - 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_estimate_between_hpwl_and_rmst(self, seed):
        rng = np.random.default_rng(seed)
        pts = [(float(x), float(y)) for x, y in rng.uniform(0, 50, (8, 2))]
        nl, net = _net_at(pts)
        est = net_rsmt_estimate(nl, net)
        assert est <= net_rmst(nl, net) + 1e-9


class TestReport:
    def test_totals_and_ratio(self):
        nl = Netlist(DIE)
        nl.add_cell("a", 1, 1, x=10, y=10)
        nl.add_cell("b", 1, 1, x=20, y=10)
        nl.finalize()
        nl.add_net("n1", [Pin(0), Pin(1)], weight=2.0)
        report = wirelength_report(nl)
        assert report.hpwl == pytest.approx(20)
        assert report.rsmt_estimate == pytest.approx(20)
        assert report.rsmt_over_hpwl == pytest.approx(1.0)

    def test_ratio_grows_with_high_degree(self):
        rng = np.random.default_rng(0)
        nl = Netlist(DIE)
        for i in range(30):
            nl.add_cell(f"c{i}", 1, 1,
                        x=float(rng.uniform(0, 99)),
                        y=float(rng.uniform(0, 99)))
        nl.finalize()
        nl.add_net("big", [Pin(i) for i in range(12)])
        report = wirelength_report(nl)
        assert report.rsmt_over_hpwl > 1.0
