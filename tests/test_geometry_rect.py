"""Unit and property tests for Rect."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Rect
from repro.geometry.rect import bounding_box, total_area


def coords():
    return st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    )


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords()), draw(coords())))
    y1, y2 = sorted((draw(coords()), draw(coords())))
    return Rect(x1, y1, x2, y2)


class TestConstruction:
    def test_valid(self):
        r = Rect(0, 1, 2, 3)
        assert (r.width, r.height, r.area) == (2, 2, 4)

    def test_malformed_x(self):
        with pytest.raises(ValueError):
            Rect(2, 0, 1, 5)

    def test_malformed_y(self):
        with pytest.raises(ValueError):
            Rect(0, 5, 1, 4)

    def test_degenerate_allowed(self):
        assert Rect(1, 1, 1, 5).is_empty
        assert Rect(1, 1, 5, 1).area == 0

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == (2, 1)


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(0, 0)
        assert r.contains_point(2, 2)
        assert not r.contains_point(2.001, 1)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 11, 9))

    def test_overlap_vs_touch(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 0, 4, 2)  # shares an edge
        assert a.touches(b)
        assert not a.overlaps(b)
        c = Rect(1.5, 0, 3, 2)
        assert a.overlaps(c)

    def test_intersection_none_on_touch(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1)) is None

    def test_intersection_area(self):
        assert Rect(0, 0, 4, 4).intersection_area(Rect(2, 2, 6, 6)) == 4
        assert Rect(0, 0, 1, 1).intersection_area(Rect(5, 5, 6, 6)) == 0


class TestOperations:
    def test_subtract_interior(self):
        outer = Rect(0, 0, 10, 10)
        pieces = list(outer.subtract(Rect(4, 4, 6, 6)))
        assert len(pieces) == 4
        assert sum(p.area for p in pieces) == pytest.approx(96)

    def test_subtract_disjoint(self):
        r = Rect(0, 0, 1, 1)
        assert list(r.subtract(Rect(5, 5, 6, 6))) == [r]

    def test_subtract_full_cover(self):
        assert list(Rect(1, 1, 2, 2).subtract(Rect(0, 0, 3, 3))) == []

    def test_bbox_union(self):
        assert Rect(0, 0, 1, 1).bbox_union(Rect(5, 5, 6, 6)) == Rect(0, 0, 6, 6)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)

    def test_inflated(self):
        assert Rect(1, 1, 3, 3).inflated(1) == Rect(0, 0, 4, 4)

    def test_clamp_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.clamp_point(5, -3) == (2, 0)
        assert r.clamp_point(1, 1) == (1, 1)

    def test_distance_to_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.distance_to_point(1, 1) == 0
        assert r.distance_to_point(4, 3) == 3  # L1: 2 + 1


class TestHelpers:
    def test_bounding_box(self):
        assert bounding_box([Rect(0, 0, 1, 1), Rect(3, -1, 4, 5)]) == Rect(
            0, -1, 4, 5
        )

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_total_area_counts_overlap_twice(self):
        assert total_area([Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)]) == 8


class TestProperties:
    @given(rects(), rects())
    def test_intersection_area_symmetric(self, a, b):
        assert a.intersection_area(b) == pytest.approx(
            b.intersection_area(a)
        )

    @given(rects(), rects())
    def test_subtract_area_conservation(self, a, b):
        pieces = list(a.subtract(b))
        assert sum(p.area for p in pieces) == pytest.approx(
            a.area - a.intersection_area(b), abs=1e-6
        )

    @given(rects(), rects())
    def test_subtract_pieces_disjoint_from_b(self, a, b):
        for p in a.subtract(b):
            assert p.intersection_area(b) == pytest.approx(0, abs=1e-9)

    @given(rects(), rects())
    def test_bbox_union_contains_both(self, a, b):
        u = a.bbox_union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), coords(), coords())
    def test_clamp_point_inside(self, r, x, y):
        px, py = r.clamp_point(x, y)
        assert r.contains_point(px, py)
