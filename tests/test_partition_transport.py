"""Tests for the §III partitioning primitive (partition_cells)."""

import numpy as np
import pytest

from repro.geometry import Rect, RectSet
from repro.netlist import Netlist
from repro.partitioning import TransportTargets, partition_cells

DIE = Rect(0, 0, 100, 100)


def _netlist(cells):
    """cells: list of (x, y, width, movebound)"""
    nl = Netlist(DIE)
    for i, (x, y, w, mb) in enumerate(cells):
        nl.add_cell(f"c{i}", w, 1.0, x=x, y=y, movebound=mb)
    nl.finalize()
    return nl


def _targets(entries):
    """entries: list of (key, capacity, rect, admitted_bounds or None=all)"""
    keys, caps, areas, admits = [], [], [], []
    for key, cap, rect, allowed in entries:
        keys.append(key)
        caps.append(cap)
        areas.append(RectSet([rect]))
        if allowed is None:
            admits.append(lambda b: True)
        else:
            admits.append(lambda b, allowed=frozenset(allowed): b in allowed)
    return TransportTargets(keys, np.array(caps, dtype=float), areas, admits)


class TestBasics:
    def test_nearest_assignment(self):
        nl = _netlist([(10, 10, 1, None), (90, 90, 1, None)])
        targets = _targets([
            ("left", 5.0, Rect(0, 0, 20, 20), None),
            ("right", 5.0, Rect(80, 80, 100, 100), None),
        ])
        out = partition_cells(nl, [0, 1], targets)
        assert out.feasible
        assert out.assignment == {0: "left", 1: "right"}
        assert out.cost == pytest.approx(0.0)

    def test_capacity_forces_split(self):
        nl = _netlist([(10, 10, 2, None), (11, 11, 2, None)])
        targets = _targets([
            ("near", 2.0, Rect(0, 0, 20, 20), None),
            ("far", 10.0, Rect(80, 80, 100, 100), None),
        ])
        out = partition_cells(nl, [0, 1], targets)
        assert out.feasible
        values = sorted(out.assignment.values())
        assert values == ["far", "near"]

    def test_movebound_admissibility(self):
        nl = _netlist([(50, 50, 1, "m")])
        targets = _targets([
            ("forbidden", 10.0, Rect(40, 40, 60, 60), ["other"]),
            ("allowed", 10.0, Rect(0, 0, 10, 10), ["m"]),
        ])
        out = partition_cells(nl, [0], targets)
        assert out.assignment[0] == "allowed"

    def test_empty_cells(self):
        nl = _netlist([])
        targets = _targets([("t", 1.0, Rect(0, 0, 1, 1), None)])
        out = partition_cells(nl, [], targets)
        assert out.feasible and out.assignment == {}

    def test_infeasible_relaxes(self):
        nl = _netlist([(10, 10, 5, None)])
        targets = _targets([("tiny", 1.0, Rect(0, 0, 20, 20), None)])
        out = partition_cells(nl, [0], targets)
        assert out.feasible and out.relaxed

    def test_infeasible_without_relaxation(self):
        nl = _netlist([(10, 10, 5, None)])
        targets = _targets([("tiny", 1.0, Rect(0, 0, 20, 20), None)])
        out = partition_cells(nl, [0], targets, relax_on_failure=False)
        assert not out.feasible

    def test_mixed_bounds_share_target(self):
        nl = _netlist([(10, 10, 1, "a"), (12, 12, 1, "b"), (14, 14, 1, None)])
        targets = _targets([
            ("shared", 10.0, Rect(0, 0, 20, 20), None),
        ])
        out = partition_cells(nl, [0, 1, 2], targets)
        assert set(out.assignment.values()) == {"shared"}


class TestOverflowRepair:
    def test_rounded_overflow_repaired(self):
        """Rounding may overfill a target; repair moves a whole cell to
        an admissible target with slack."""
        rng = np.random.default_rng(0)
        cells = [
            (float(rng.uniform(0, 20)), float(rng.uniform(0, 20)),
             float(rng.choice([1.0, 1.5, 2.0])), None)
            for _ in range(30)
        ]
        nl = _netlist(cells)
        total = sum(c[2] for c in cells)
        targets = _targets([
            ("a", total * 0.5, Rect(0, 0, 20, 20), None),
            ("b", total * 0.6, Rect(30, 0, 50, 20), None),
        ])
        out = partition_cells(nl, list(range(30)), targets)
        assert out.feasible
        load = {"a": 0.0, "b": 0.0}
        for cell, key in out.assignment.items():
            load[key] += nl.cells[cell].size
        assert load["a"] <= total * 0.5 + 1e-6
        assert load["b"] <= total * 0.6 + 1e-6

    def test_cascade_repair(self):
        """Direct repair impossible: target full of movebound cells;
        cascade must move a default cell out first."""
        cells = (
            [(10, 10, 2.0, "m"), (10, 12, 2.0, "m"), (11, 11, 1.0, "m")]
            + [(10, 11, 2.0, None), (12, 10, 2.0, None)]
        )
        nl = _netlist(cells)
        targets = _targets([
            ("mb1", 4.0, Rect(0, 0, 20, 20), ["m", "__default__"]),
            ("mb2", 3.0, Rect(20, 0, 40, 20), ["m", "__default__"]),
            ("rest", 50.0, Rect(60, 0, 100, 40), ["__default__"]),
        ])
        out = partition_cells(nl, list(range(5)), targets)
        assert out.feasible
        load = {}
        for cell, key in out.assignment.items():
            load[key] = load.get(key, 0.0) + nl.cells[cell].size
        assert load.get("mb1", 0.0) <= 4.0 + 1e-6
        assert load.get("mb2", 0.0) <= 3.0 + 1e-6
