"""Supervised window-solver pool: determinism and fault recovery.

The pool's contract is that *nothing about parallel execution is
observable in the output*: any pool size, any crash/stall/requeue
history, and the plain serial path produce bit-identical flows — the
supervisor merges results by task index and every solve is a pure
function of its arrays.
"""

import numpy as np
import pytest

from repro.flows import (
    RELAX_CHAIN_PARTITION,
    RELAX_CHAIN_WINDOW,
    solve_transportation_with_relaxation,
)
from repro.movebounds import MoveBoundSet
from repro.obs import get_tracer
from repro.place import BonnPlaceFBP
from repro.resilience import install_fault_plan, reset_faults
from repro.runstate import (
    WindowSolverPool,
    activated,
    get_active_pool,
    solve_transport_batch,
)
from repro.workloads import NetlistSpec, generate_netlist


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


def _tasks(num_tasks=8, seed=0):
    """Feasible transportation tasks of varying shapes."""
    rng = np.random.default_rng(seed)
    tasks = []
    for _ in range(num_tasks):
        n = int(rng.integers(2, 12))
        m = int(rng.integers(2, 6))
        supplies = rng.uniform(0.5, 3.0, n)
        caps = rng.uniform(0.5, 2.0, m)
        caps *= 1.2 * supplies.sum() / caps.sum()  # headroom: feasible
        costs = rng.uniform(0.0, 10.0, (n, m))
        tasks.append((supplies, caps, costs))
    return tasks


def _serial(tasks, chain=RELAX_CHAIN_WINDOW):
    return [
        solve_transportation_with_relaxation(s, c, k, chain=chain)
        for s, c, k in tasks
    ]


def _assert_identical(got, want):
    assert len(got) == len(want)
    for (res_g, stage_g), (res_w, stage_w) in zip(got, want):
        assert stage_g == stage_w
        assert res_g.feasible == res_w.feasible
        # bit-for-bit, not approx: parallelism must be unobservable
        assert res_g.flow.tobytes() == res_w.flow.tobytes()
        assert res_g.cost == res_w.cost


class TestPoolDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pool_matches_serial_bit_for_bit(self, workers):
        tasks = _tasks(10, seed=workers)
        want = _serial(tasks)
        with WindowSolverPool(workers) as pool:
            got = pool.solve_batch(tasks)
        _assert_identical(got, want)

    def test_partition_chain_matches_serial(self):
        tasks = _tasks(6, seed=7)
        want = _serial(tasks, chain=RELAX_CHAIN_PARTITION)
        with WindowSolverPool(2) as pool:
            got = pool.solve_batch(tasks, chain=RELAX_CHAIN_PARTITION)
        _assert_identical(got, want)

    def test_empty_batch(self):
        with WindowSolverPool(2) as pool:
            assert pool.solve_batch([]) == []

    def test_repeated_batches_reuse_workers(self):
        tasks = _tasks(4, seed=3)
        want = _serial(tasks)
        with WindowSolverPool(2) as pool:
            for _ in range(3):
                _assert_identical(pool.solve_batch(tasks), want)

    def test_closed_pool_rejects_work(self):
        pool = WindowSolverPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.solve_batch(_tasks(2))


class TestActivePoolRouting:
    def test_solve_transport_batch_serial_without_pool(self):
        assert get_active_pool() is None
        tasks = _tasks(3, seed=1)
        _assert_identical(solve_transport_batch(tasks), _serial(tasks))

    def test_solve_transport_batch_routes_through_active_pool(self):
        tasks = _tasks(5, seed=2)
        want = _serial(tasks)
        with WindowSolverPool(2) as pool, activated(pool):
            assert get_active_pool() is pool
            _assert_identical(solve_transport_batch(tasks), want)
        assert get_active_pool() is None


class TestPoolSupervision:
    def _counters(self):
        return get_tracer().counters

    def test_killed_worker_is_replaced_and_task_requeued(self):
        tasks = _tasks(6, seed=4)
        want = _serial(tasks)
        # the first task pickup hard-exits its worker (SIGKILL
        # semantics); fork inheritance arms the plan inside workers
        install_fault_plan("worker.kill=kill@1")
        before = dict(self._counters())
        with WindowSolverPool(2) as pool:
            got = pool.solve_batch(tasks)
        _assert_identical(got, want)
        after = self._counters()
        assert after.get("pool.worker_deaths", 0) > before.get(
            "pool.worker_deaths", 0
        )
        assert after.get("pool.requeues", 0) > before.get(
            "pool.requeues", 0
        )

    def test_stalled_worker_is_killed_and_task_requeued(self):
        tasks = _tasks(5, seed=5)
        want = _serial(tasks)
        # first pickup wedges for 60s; a 0.5s deadline reaps it
        install_fault_plan("worker.stall=stall:60@1")
        before = dict(self._counters())
        with WindowSolverPool(2, task_timeout=0.5) as pool:
            got = pool.solve_batch(tasks)
        _assert_identical(got, want)
        after = self._counters()
        assert after.get("pool.worker_stalls", 0) > before.get(
            "pool.worker_stalls", 0
        )

    def test_repeated_crashes_fall_back_to_serial_in_process(self):
        tasks = _tasks(4, seed=6)
        want = _serial(tasks)
        # every pickup dies: every task exhausts max_failures and is
        # solved serially by the supervisor — slow, never wrong
        install_fault_plan("worker.kill=kill")
        before = dict(self._counters())
        with WindowSolverPool(2, max_failures=2) as pool:
            got = pool.solve_batch(tasks)
        _assert_identical(got, want)
        after = self._counters()
        assert after.get("pool.serial_fallbacks", 0) >= before.get(
            "pool.serial_fallbacks", 0
        ) + len(tasks)

    def test_respawn_backoff_paces_crash_loop(self):
        tasks = _tasks(3, seed=8)
        want = _serial(tasks)
        # every pickup dies → every death must arm the exponential
        # respawn backoff; output is still bit-identical (the serial
        # fallback solves the same pure function)
        install_fault_plan("worker.kill=kill")
        before = dict(self._counters())
        with WindowSolverPool(
            2,
            max_failures=2,
            respawn_backoff_base=0.05,
            respawn_backoff_cap=0.2,
        ) as pool:
            got = pool.solve_batch(tasks)
            assert pool._loss_streak > 0
        _assert_identical(got, want)
        after = self._counters()
        assert after.get("pool.respawn_backoff", 0) > before.get(
            "pool.respawn_backoff", 0
        )

    def test_backoff_resets_after_healthy_unit(self):
        tasks = _tasks(4, seed=10)
        want = _serial(tasks)
        # a crash-loop batch arms the backoff; a healthy batch must
        # disarm it (every completed unit clears the loss streak)
        install_fault_plan("worker.kill=kill")
        with WindowSolverPool(
            2, max_failures=2, respawn_backoff_cap=0.2
        ) as pool:
            _assert_identical(pool.solve_batch(tasks), want)
            assert pool._loss_streak > 0
            reset_faults()
            _assert_identical(pool.solve_batch(tasks), want)
            assert pool._loss_streak == 0


class TestEndToEndPlacement:
    def _place(self, workers, seed=9):
        spec = NetlistSpec("pooltest", 200, utilization=0.5, num_pads=8)
        nl, _logical = generate_netlist(spec, seed=seed)
        placer = BonnPlaceFBP()
        placer.options.pool_workers = workers
        placer.options.legalize = False
        placer.place(nl, MoveBoundSet(nl.die))
        return nl.x.tobytes(), nl.y.tobytes()

    def test_pooled_placement_bit_identical_to_serial(self):
        serial = self._place(0)
        pooled = self._place(4)
        assert pooled == serial

    @pytest.mark.slow
    def test_pooled_placement_identical_under_worker_kill(self):
        serial = self._place(0)
        reset_faults()
        install_fault_plan("worker.kill=kill@2")
        pooled = self._place(2)
        assert pooled == serial
