"""Tests for the FBP MinCostFlow model (paper §IV.A, Theorem 3)."""

import numpy as np
import pytest

from repro.fbp import build_fbp_model
from repro.fbp.model import fixed_cell_usage
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import DEFAULT_BOUND, MoveBoundSet, decompose_regions
from repro.netlist import Netlist
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


def _setup(num_cells=80, seed=0, bounds=None, nx=4, ny=4):
    mbs = bounds or MoveBoundSet(DIE)
    mb_names = mbs.names()

    def mb_of(i):
        if mb_names and i < num_cells // 3:
            return mb_names[i % len(mb_names)]
        return None

    nl = build_random_netlist(num_cells, 60, seed, DIE,
                              movebound_of=mb_of if mb_names else None)
    dec = decompose_regions(DIE, mbs, nl.blockages)
    grid = Grid(DIE, nx, ny)
    grid.build_regions(dec)
    return nl, mbs, grid


class TestStructure:
    def test_supply_equals_cell_area(self):
        nl, mbs, grid = _setup()
        model = build_fbp_model(nl, mbs, grid)
        assert model.problem.total_supply() == pytest.approx(
            nl.movable_area()
        )

    def test_demand_covers_supply_when_feasible(self):
        nl, mbs, grid = _setup()
        model = build_fbp_model(nl, mbs, grid, density_target=0.9)
        assert model.problem.total_demand() >= model.problem.total_supply()

    def test_stats_consistent(self):
        nl, mbs, grid = _setup()
        model = build_fbp_model(nl, mbs, grid)
        s = model.stats
        assert s.num_nodes == len(model.problem.nodes)
        assert s.num_arcs == len(model.problem.arcs)
        assert s.num_windows == 16

    def test_size_linear_in_windows(self):
        """|V| and |E| grow linearly with |W| + |R| — the paper's
        headline size claim (Table I)."""
        sizes = []
        for n in (2, 4, 8):
            nl, mbs, grid = _setup(nx=n, ny=n)
            model = build_fbp_model(nl, mbs, grid)
            sizes.append((len(grid), model.stats.num_nodes,
                          model.stats.num_arcs))
        # nodes/(windows+regions) stays bounded as the grid refines
        ratios_v = [v / (w + w) for (w, v, _e) in sizes]
        ratios_e = [e / (w + w) for (w, _v, e) in sizes]
        assert max(ratios_v) <= 6
        assert max(ratios_e) <= 12
        assert max(ratios_e) / min(ratios_e) < 2.5

    def test_ev_ratio_in_paper_range(self):
        nl, mbs, grid = _setup(nx=8, ny=8)
        model = build_fbp_model(nl, mbs, grid)
        # Table I reports |E|/|V| between ~3.9 and 5.5
        assert 2.0 <= model.stats.arc_node_ratio <= 7.0

    def test_external_arcs_paired(self):
        nl, mbs, grid = _setup()
        model = build_fbp_model(nl, mbs, grid)
        seen = {}
        for arc in model.external_arcs:
            key = (arc.bound, arc.src_window, arc.dst_window)
            rev = (arc.bound, arc.dst_window, arc.src_window)
            seen[key] = seen.get(key, 0) + 1
            assert seen[key] == 1  # no duplicate arcs
        for (b, u, v) in list(seen):
            assert (b, v, u) in seen  # both directions exist

    def test_bounding_box_pruning(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 25, 25)])  # one grid window
        nl = Netlist(DIE)
        # movebound cells near their area, default cells everywhere
        for i in range(10):
            nl.add_cell(f"m{i}", 1, 1, x=10, y=10, movebound="m")
        for i in range(10):
            nl.add_cell(f"d{i}", 1, 1, x=80, y=80)
        nl.finalize()
        dec = decompose_regions(DIE, mbs)
        grid = Grid(DIE, 4, 4)
        grid.build_regions(dec)
        model = build_fbp_model(nl, mbs, grid)
        # no transit nodes for "m" outside its bbox windows
        m_transits = [
            n for n in model.problem.nodes
            if isinstance(n, tuple) and n[0] == "t" and n[1] == "m"
        ]
        assert len(m_transits) == 0  # single window: no internal arcs


class TestTheorem3:
    def test_feasible_instance(self):
        nl, mbs, grid = _setup()
        model = build_fbp_model(nl, mbs, grid, density_target=0.9)
        assert model.solve("ssp").feasible

    def test_infeasible_instance(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 5, 5)])  # capacity 25

        nl = Netlist(DIE)
        for i in range(60):
            nl.add_cell(f"c{i}", 2, 1, x=50, y=50, movebound="m")
        nl.finalize()
        dec = decompose_regions(DIE, mbs)
        grid = Grid(DIE, 4, 4)
        grid.build_regions(dec)
        model = build_fbp_model(nl, mbs, grid)
        assert not model.solve("ssp").feasible

    def test_matches_theorem2(self):
        """Theorem 3 agrees with the clustered Theorem-2 check."""
        from repro.feasibility import check_feasibility

        for seed in range(5):
            rng = np.random.default_rng(seed)
            mbs = MoveBoundSet(DIE)
            side = float(rng.integers(8, 30))
            mbs.add_rects("m", [Rect(0, 0, side, side)])
            nl = Netlist(DIE)
            n_mb = int(rng.integers(10, 200))
            for i in range(n_mb):
                nl.add_cell(f"c{i}", 2, 1, x=50, y=50, movebound="m")
            nl.finalize()
            dec = decompose_regions(DIE, mbs)
            grid = Grid(DIE, 4, 4)
            grid.build_regions(dec)
            model = build_fbp_model(nl, mbs, grid, density_target=0.95)
            thm3 = model.solve("ssp").feasible
            thm2 = check_feasibility(nl, mbs, dec, 0.95).feasible
            assert thm3 == thm2


class TestFlowReadback:
    def test_prescribed_content_conserves_area(self):
        nl, mbs, grid = _setup(seed=3)
        model = build_fbp_model(nl, mbs, grid, density_target=0.9)
        result = model.solve("ssp")
        content = model.prescribed_content(result)
        assert sum(content.values()) == pytest.approx(nl.movable_area())

    def test_prescribed_content_fits_capacity(self):
        nl, mbs, grid = _setup(seed=4)
        model = build_fbp_model(nl, mbs, grid, density_target=0.9)
        result = model.solve("ssp")
        for (bound, widx), area in model.prescribed_content(result).items():
            if area <= 1e-9:
                continue
            cap = sum(
                model.region_capacity.get((widx, wr.region.index), 0.0)
                for wr in grid.windows[widx].regions
                if wr.admits(bound)
            )
            assert area <= cap + 1e-6

    def test_region_inflow_within_capacity(self):
        nl, mbs, grid = _setup(seed=5)
        model = build_fbp_model(nl, mbs, grid, density_target=0.9)
        result = model.solve("ssp")
        for key, inflow in model.region_inflow(result).items():
            assert inflow <= model.region_capacity[key] + 1e-6


class TestFixedCellUsage:
    def test_macro_consumes_capacity(self):
        nl = Netlist(DIE)
        nl.add_cell("macro", 20, 20, x=12.5, y=12.5, fixed=True)
        nl.finalize()
        grid = Grid(DIE, 4, 4)
        dec = decompose_regions(DIE, MoveBoundSet(DIE))
        grid.build_regions(dec)
        usage = fixed_cell_usage(nl, grid)
        assert sum(usage.values()) == pytest.approx(400)
        # the macro spans window (0,0) entirely? 20x20 at (2.5..22.5)
        w00 = grid.window(0, 0)
        assert usage[(w00.index, 0)] > 0
