"""Golden tests for the solver stat hooks.

Exact node/arc counts on small fixed instances (they are structural,
hence fully deterministic), nonzero effort counts (pivots /
augmenting paths) per backend, and the counter side-channel on the
default tracer.
"""

import numpy as np
import pytest

from repro.fbp import build_fbp_model
from repro.flows import Dinic, MinCostFlowProblem, solve_transportation
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.netlist import Netlist
from repro.obs import Tracer, set_tracer

DIE = Rect(0, 0, 100, 100)


@pytest.fixture
def tracer():
    """Fresh default tracer per test so counter deltas are exact."""
    t = Tracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


def small_mcf():
    p = MinCostFlowProblem()
    p.add_node("s", 5.0)
    p.add_node("a")
    p.add_node("b")
    p.add_node("t", -10.0)
    p.add_arc("s", "a", 1.0, capacity=3.0)
    p.add_arc("s", "b", 3.0)
    p.add_arc("a", "t", 0.0)
    p.add_arc("b", "t", 0.0)
    return p


class TestMinCostFlowStats:
    def test_ssp_counts(self, tracer):
        result = small_mcf().solve("ssp")
        s = result.stats
        assert s.method == "ssp"
        assert s.nodes == 4
        assert s.arcs == 4
        # two shortest-path augmentations: 3 units via a, 2 via b
        assert s.augmenting_paths == 2
        assert s.pivots == 0
        assert s.objective == pytest.approx(9.0)
        assert s.routed == pytest.approx(5.0)

    def test_ns_counts(self, tracer):
        result = small_mcf().solve("ns")
        s = result.stats
        assert s.method == "ns"
        assert s.nodes == 4
        assert s.arcs == 4
        assert s.pivots > 0
        assert s.objective == pytest.approx(9.0)

    def test_lp_counts(self, tracer):
        result = small_mcf().solve("lp")
        s = result.stats
        assert s.method == "lp"
        assert s.nodes == 4
        assert s.arcs == 4
        assert s.pivots >= 0  # HiGHS may presolve the LP away
        assert s.objective == pytest.approx(9.0)

    def test_counters_emitted(self, tracer):
        small_mcf().solve("ssp")
        assert tracer.counter("mcf.solves") == 1
        assert tracer.counter("mcf.solves.ssp") == 1
        assert tracer.counter("mcf.nodes") == 4
        assert tracer.counter("mcf.arcs") == 4
        assert tracer.counter("mcf.augmenting_paths") == 2

    def test_infeasible_counter(self, tracer):
        p = MinCostFlowProblem()
        p.add_node("s", 5.0)
        p.add_node("t", -1.0)  # demand < supply: infeasible
        p.add_arc("s", "t", 1.0)
        result = p.solve("ssp")
        assert not result.feasible
        assert tracer.counter("mcf.infeasible") == 1

    def test_stats_to_dict_round_trip(self, tracer):
        s = small_mcf().solve("ssp").stats
        d = s.to_dict()
        assert d["method"] == "ssp"
        assert d["nodes"] == 4 and d["arcs"] == 4
        assert d["augmenting_paths"] == 2


class TestMaxFlowStats:
    def test_dinic_counts(self, tracer):
        d = Dinic()
        d.add_edge("s", "a", 2.0)
        d.add_edge("s", "b", 2.0)
        d.add_edge("a", "t", 1.0)
        d.add_edge("b", "t", 3.0)
        value = d.max_flow("s", "t")
        s = d.stats
        assert value == pytest.approx(3.0)
        assert s.value == pytest.approx(3.0)
        assert s.nodes == 4
        assert s.arcs == 4
        assert s.bfs_phases >= 1
        assert s.augmenting_paths >= 2  # two disjoint paths carry flow
        assert tracer.counter("maxflow.solves") == 1
        assert tracer.counter("maxflow.augmenting_paths") == s.augmenting_paths


class TestTransportStats:
    def test_lp_counts(self, tracer):
        supplies = np.array([2.0, 3.0])
        capacities = np.array([4.0, 4.0, 1.0])
        costs = np.array([[1.0, 2.0, 3.0], [2.0, 1.0, np.inf]])
        result = solve_transportation(supplies, capacities, costs, "lp")
        assert result.feasible
        s = result.stats
        assert s.method == "lp"
        assert s.nodes == 5  # 2 sources + 3 sinks
        assert s.arcs == 5  # finite-cost pairs only
        assert tracer.counter("transport.solves") == 1
        assert tracer.counter("transport.solves.lp") == 1
        assert tracer.counter("transport.nodes") == 5
        assert tracer.counter("transport.arcs") == 5

    def test_mcf_backend_augmentations(self, tracer):
        supplies = np.array([2.0, 3.0])
        capacities = np.array([4.0, 4.0])
        costs = np.array([[1.0, 2.0], [2.0, 1.0]])
        result = solve_transportation(supplies, capacities, costs, "mcf")
        assert result.feasible
        assert result.stats.method == "mcf"
        assert result.stats.augmenting_paths > 0


class TestFBPInstanceGolden:
    """One fixed 6-cell / 2x2-grid FBP instance with hand-checkable
    structure; the model size is exact, solver effort is nonzero."""

    def _model(self):
        bounds = MoveBoundSet(DIE)
        bounds.add_rects("left", [Rect(0, 0, 50, 100)])
        nl = Netlist(DIE, row_height=1.0, site_width=0.5, name="golden")
        nl.add_cell("m0", 2.0, 1.0, x=10.0, y=10.0, movebound="left")
        nl.add_cell("m1", 2.0, 1.0, x=30.0, y=80.0, movebound="left")
        for i in range(4):
            nl.add_cell(
                f"f{i}", 2.0, 1.0, x=60.0 + 5 * i, y=40.0 + 10 * i
            )
        nl.finalize()
        dec = decompose_regions(DIE, bounds, nl.blockages)
        grid = Grid(DIE, 2, 2)
        grid.build_regions(dec)
        return build_fbp_model(nl, bounds, grid)

    def test_model_size_exact(self, tracer):
        model = self._model()
        assert model.stats.num_windows == 4
        assert model.stats.num_nodes == 18
        assert model.stats.num_arcs == 38
        assert model.stats.num_external_arcs == 10

    def test_solve_stats_match_model(self, tracer):
        model = self._model()
        result = model.solve("ssp")
        assert result.feasible
        s = result.stats
        assert s.nodes == model.stats.num_nodes == 18
        assert s.arcs == model.stats.num_arcs == 38
        assert s.augmenting_paths == 4  # one per supply group routed
        assert np.isfinite(s.objective)

    def test_ns_backend_pivots_nonzero(self, tracer):
        result = self._model().solve("ns")
        assert result.feasible
        assert result.stats.pivots > 0
        assert tracer.counter("mcf.pivots") == result.stats.pivots

    def test_backends_agree_on_objective(self, tracer):
        costs = [self._model().solve(m).cost for m in ("ssp", "ns", "lp")]
        assert costs[0] == pytest.approx(costs[1], rel=1e-6)
        assert costs[0] == pytest.approx(costs[2], rel=1e-6)
