"""Unit and property tests for RectSet (disjoint normal form)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, RectSet


def grid_rects():
    """Rectangles on a small integer grid (stable exact arithmetic)."""
    c = st.integers(min_value=0, max_value=12)

    @st.composite
    def one(draw):
        x1 = draw(c)
        x2 = draw(c.filter(lambda v: v != x1))
        y1 = draw(c)
        y2 = draw(c.filter(lambda v: v != y1))
        return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))

    return one()


class TestNormalForm:
    def test_disjoint_after_construction(self):
        rs = RectSet([Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)])
        for i, a in enumerate(rs.rects):
            for b in rs.rects[i + 1 :]:
                assert not a.overlaps(b)

    def test_union_area(self):
        rs = RectSet([Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)])
        assert rs.area == pytest.approx(28)  # 16 + 16 - 4

    def test_merge_abutting(self):
        rs = RectSet([Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)])
        assert len(rs) == 1
        assert rs.rects[0] == Rect(0, 0, 2, 1)

    def test_empty(self):
        rs = RectSet()
        assert rs.is_empty and rs.area == 0 and len(rs) == 0

    def test_degenerate_dropped(self):
        assert RectSet([Rect(1, 1, 1, 5)]).is_empty


class TestQueries:
    def test_contains_point(self):
        rs = RectSet([Rect(0, 0, 2, 2), Rect(5, 5, 7, 7)])
        assert rs.contains_point(1, 1)
        assert rs.contains_point(6, 6)
        assert not rs.contains_point(3, 3)

    def test_contains_rect_straddling_members(self):
        # an L-shape contains a rect spanning both arms
        rs = RectSet([Rect(0, 0, 2, 6), Rect(2, 0, 6, 2)])
        assert rs.contains_rect(Rect(0, 0, 5, 2))
        assert not rs.contains_rect(Rect(0, 0, 5, 3))

    def test_intersection_area(self):
        rs = RectSet([Rect(0, 0, 4, 4)])
        assert rs.intersection_area(Rect(2, 2, 6, 6)) == 4


class TestBoolean:
    def test_subtract(self):
        rs = RectSet([Rect(0, 0, 4, 4)]).subtract(RectSet([Rect(1, 1, 3, 3)]))
        assert rs.area == pytest.approx(12)
        assert not rs.contains_point(2, 2)

    def test_intersect(self):
        a = RectSet([Rect(0, 0, 4, 4)])
        b = RectSet([Rect(2, 2, 6, 6)])
        inter = a.intersect(b)
        assert inter.area == pytest.approx(4)

    def test_union_then_subtract_roundtrip(self):
        a = RectSet([Rect(0, 0, 4, 4)])
        b = RectSet([Rect(10, 10, 12, 12)])
        assert a.union(b).subtract(b) == a

    def test_set_equality_by_pointset(self):
        a = RectSet([Rect(0, 0, 2, 1), Rect(0, 1, 2, 2)])
        b = RectSet([Rect(0, 0, 1, 2), Rect(1, 0, 2, 2)])
        assert a == b


class TestGeometryHelpers:
    def test_centroid_single(self):
        assert RectSet([Rect(0, 0, 2, 2)]).centroid() == (1, 1)

    def test_centroid_weighted(self):
        rs = RectSet([Rect(0, 0, 2, 2), Rect(10, 0, 14, 2)])  # areas 4, 8
        cx, cy = rs.centroid()
        assert cx == pytest.approx((4 * 1 + 8 * 12) / 12)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            RectSet().centroid()

    def test_clamp_point_chooses_closest(self):
        rs = RectSet([Rect(0, 0, 1, 1), Rect(10, 10, 11, 11)])
        assert rs.clamp_point(2, 2) == (1, 1)
        assert rs.clamp_point(9, 9) == (10, 10)

    def test_distance_to_point_zero_inside(self):
        rs = RectSet([Rect(0, 0, 4, 4)])
        assert rs.distance_to_point(2, 2) == 0


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(grid_rects(), min_size=1, max_size=6))
    def test_members_pairwise_disjoint(self, rect_list):
        rs = RectSet(rect_list)
        for i, a in enumerate(rs.rects):
            for b in rs.rects[i + 1 :]:
                assert a.intersection_area(b) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(grid_rects(), min_size=1, max_size=6))
    def test_area_bounds(self, rect_list):
        rs = RectSet(rect_list)
        assert rs.area <= sum(r.area for r in rect_list) + 1e-9
        assert rs.area >= max(r.area for r in rect_list) - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.lists(grid_rects(), min_size=1, max_size=4),
           st.lists(grid_rects(), min_size=1, max_size=4))
    def test_inclusion_exclusion(self, la, lb):
        a, b = RectSet(la), RectSet(lb)
        union = a.union(b)
        inter = a.intersect(b)
        assert union.area == pytest.approx(
            a.area + b.area - inter.area, abs=1e-6
        )

    @settings(max_examples=60, deadline=None)
    @given(st.lists(grid_rects(), min_size=1, max_size=4),
           st.lists(grid_rects(), min_size=1, max_size=4))
    def test_subtract_disjoint_from_subtrahend(self, la, lb):
        a, b = RectSet(la), RectSet(lb)
        diff = a.subtract(b)
        assert diff.intersect(b).area == pytest.approx(0, abs=1e-9)
        assert diff.area == pytest.approx(a.area - a.intersect(b).area,
                                          abs=1e-6)
