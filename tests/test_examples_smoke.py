"""Smoke tests: every example module imports and exposes main().

Full example runs take minutes; CI smoke-checks the contract (import
cleanly, have a main) and runs the two fastest ones end to end.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples"
)

ALL_EXAMPLES = sorted(
    f[:-3] for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)

FAST_EXAMPLES = ["figure1_regions", "figure2_3_flow_graph"]


def _load(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_set_present(self):
        assert "quickstart" in ALL_EXAMPLES
        assert len(ALL_EXAMPLES) >= 10

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = _load(name)
        assert callable(getattr(module, "main", None))

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_examples_run(self, name, capsys):
        module = _load(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 100
