"""Tests for row segment construction."""

import pytest

from repro.geometry import Rect
from repro.legalize import build_segments
from repro.legalize.rows import (
    max_std_cell_width,
    total_segment_capacity,
    usable_row_capacity,
)
from repro.netlist import Netlist

DIE = Rect(0, 0, 20, 10)


def _netlist():
    return Netlist(DIE, row_height=1.0, site_width=0.5)


class TestSegments:
    def test_full_die(self):
        nl = _netlist()
        segs = build_segments(nl)
        assert len(segs) == 10  # one per row
        assert total_segment_capacity(segs) == pytest.approx(200)

    def test_rows_aligned_to_grid(self):
        nl = _netlist()
        for s in build_segments(nl, [Rect(0, 2.3, 20, 7.8)]):
            k = (s.y_lo - DIE.y_lo) / nl.row_height
            assert k == int(k)
            # only fully contained rows
            assert s.y_lo >= 2.3 and s.y_lo + 1.0 <= 7.8

    def test_blockage_splits_rows(self):
        nl = _netlist()
        nl.add_blockage(Rect(8, 0, 12, 10))
        segs = build_segments(nl)
        assert len(segs) == 20  # each row split in two
        assert total_segment_capacity(segs) == pytest.approx(160)

    def test_fixed_cells_are_obstacles(self):
        nl = _netlist()
        nl.add_cell("macro", 4, 10, x=10, y=5, fixed=True)
        nl.finalize()
        segs = build_segments(nl)
        assert total_segment_capacity(segs) == pytest.approx(160)

    def test_min_width_filter(self):
        nl = _netlist()
        nl.add_blockage(Rect(0.6, 0, 20, 10))  # leaves 0.6-wide strips
        segs = build_segments(nl, min_width=1.0)
        assert segs == []

    def test_site_snapping(self):
        nl = _netlist()
        segs = build_segments(nl, [Rect(0.3, 0, 19.6, 10)])
        for s in segs:
            assert ((s.x_lo - DIE.x_lo) / 0.5) % 1 == pytest.approx(0)
            assert ((s.x_hi - DIE.x_lo) / 0.5) % 1 == pytest.approx(0)

    def test_segment_properties(self):
        nl = _netlist()
        seg = build_segments(nl)[0]
        assert seg.y_center == pytest.approx(seg.y_lo + 0.5)
        assert seg.rect().area == pytest.approx(seg.width)


class TestCapacityModel:
    def test_max_std_cell_width(self):
        nl = _netlist()
        nl.add_cell("a", 3, 1)
        nl.add_cell("b", 1, 1)
        nl.add_cell("macro", 8, 4)  # taller than a row: excluded
        nl.finalize()
        assert max_std_cell_width(nl) == 3

    def test_usable_discounts_per_segment(self):
        nl = _netlist()
        segs = build_segments(nl)  # 10 segments, 20 wide each
        usable = usable_row_capacity(segs, w_max=3.0)
        assert usable == pytest.approx(10 * (20 - 1.5))

    def test_slivers_contribute_nothing(self):
        nl = _netlist()
        nl.add_blockage(Rect(1.0, 0, 20, 10))
        segs = build_segments(nl)  # 1-wide slivers
        assert usable_row_capacity(segs, w_max=3.0) == 0.0
