"""Tests for the recursive partitioner and repartitioning (reflow)."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.partitioning import recursive_partition, repartition_pass
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


def _instance(seed=0, with_bound=True, num_cells=120):
    mbs = MoveBoundSet(DIE)
    if with_bound:
        mbs.add_rects("m", [Rect(60, 60, 100, 100)])

    def mb_of(i):
        return "m" if with_bound and i < num_cells // 4 else None

    nl = build_random_netlist(num_cells, 90, seed, DIE, movebound_of=mb_of)
    dec = decompose_regions(DIE, mbs, nl.blockages)
    return nl, mbs, dec


class TestRecursive:
    def test_runs_to_target_level(self):
        nl, mbs, dec = _instance()
        report = recursive_partition(nl, mbs, dec, max_level=3,
                                     density_target=0.9)
        assert report.levels == 3
        assert report.windows_processed > 0

    def test_movebounds_respected(self):
        nl, mbs, dec = _instance(seed=1)
        recursive_partition(nl, mbs, dec, max_level=3, density_target=0.9)
        assert mbs.violations(nl) == []

    def test_window_capacity_respected(self):
        nl, mbs, dec = _instance(seed=2)
        report = recursive_partition(nl, mbs, dec, max_level=3,
                                     density_target=0.9)
        grid = Grid(DIE, 8, 8)
        max_cell = max(c.size for c in nl.cells)
        loads = {}
        for cell, (ix, iy) in report.final_assignment.items():
            loads[(ix, iy)] = loads.get((ix, iy), 0.0) + nl.cells[cell].size
        for (ix, iy), load in loads.items():
            window = grid.window(ix, iy)
            assert load <= window.rect.area * 0.9 * 1.15 + max_cell

    def test_local_failure_mode_exists(self):
        """The recursive scheme's documented drawback: with a tight
        movebound it needs relaxations (or fails locally) where FBP's
        global flow would not."""
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 18, 18)])

        def mb_of(i):
            return "m" if i < 70 else None

        nl = build_random_netlist(160, 90, 3, DIE, movebound_of=mb_of)
        # bias movebound cells away from their area: local decisions
        # at level 1 strand area in the wrong quadrant
        for c in nl.cells:
            if c.movebound == "m":
                nl.x[c.index] = 80.0
                nl.y[c.index] = 80.0
        dec = decompose_regions(DIE, mbs, nl.blockages)
        report = recursive_partition(nl, mbs, dec, max_level=3,
                                     density_target=0.95)
        # not asserting failure (the relaxation machinery may cope) —
        # but the accounting must be present and consistent
        assert report.local_infeasibilities >= 0
        assert report.relaxations >= 0


class TestRepartition:
    def test_never_degrades_hpwl(self):
        nl, mbs, dec = _instance(seed=4)
        recursive_partition(nl, mbs, dec, max_level=2, density_target=0.9)
        grid = Grid(DIE, 4, 4)
        grid.build_regions(dec)
        before = nl.hpwl()
        report = repartition_pass(nl, mbs, grid, density_target=0.9)
        assert report.hpwl_after <= before + 1e-6
        assert report.hpwl_after == pytest.approx(nl.hpwl())

    def test_keeps_movebounds(self):
        nl, mbs, dec = _instance(seed=5)
        recursive_partition(nl, mbs, dec, max_level=2, density_target=0.9)
        grid = Grid(DIE, 4, 4)
        grid.build_regions(dec)
        repartition_pass(nl, mbs, grid, density_target=0.9)
        assert mbs.violations(nl) == []

    def test_block_accounting(self):
        nl, mbs, dec = _instance(seed=6)
        grid = Grid(DIE, 4, 4)
        grid.build_regions(dec)
        report = repartition_pass(nl, mbs, grid, density_target=0.9)
        assert report.blocks_processed >= report.blocks_improved
