"""Sharded FBP solve: identity, contract, and determinism properties.

The contract under test (see ``repro/fbp/sharding.py``):

* zero-cut regime — when no flow crosses tile cuts (and no external
  arcs carry flow at all), sharded and monolithic passes produce
  byte-identical placements;
* bounded degradation — when cuts carry flow, the sharded placement
  stays feasible and its HPWL stays within a small factor of the
  monolithic placement, with the cut flow reported;
* pool independence — sharded runs are bit-identical across pool
  sizes (serial, 1 and 4 workers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fbp.model import build_fbp_model
from repro.fbp.partitioner import fbp_partition
from repro.fbp.sharding import solve_sharded, tile_of_windows
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.obs.invariants import check_region_capacity
from repro.runstate import WindowSolverPool, activated
from repro.workloads.generator import NetlistSpec, generate_netlist


def _instance(seed: int, num_cells: int = 1500, squeeze: float = 0.0):
    """A generator instance; ``squeeze`` > 0 compresses all cells into
    the left fraction of the die to force cross-tile flow."""
    spec = NetlistSpec(
        f"shard{seed}", num_cells=num_cells, utilization=0.55
    )
    nl, _ = generate_netlist(spec, seed=seed)
    if squeeze > 0.0:
        nl.x[:] = nl.die.x_lo + (nl.x - nl.die.x_lo) * squeeze
    bounds = MoveBoundSet(nl.die)
    grid = Grid(nl.die, 8, 8)
    grid.build_regions(decompose_regions(nl.die, bounds, nl.blockages))
    return nl, bounds, grid


def _partition(nl, bounds, grid, shard_tiles=None, pool=0):
    if pool:
        with WindowSolverPool(pool) as p, activated(p):
            return fbp_partition(
                nl, bounds, grid, density_target=0.9,
                run_local_qp=False, shard_tiles=shard_tiles,
            )
    return fbp_partition(
        nl, bounds, grid, density_target=0.9,
        run_local_qp=False, shard_tiles=shard_tiles,
    )


# ----------------------------------------------------------------------
# zero-cut identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 3, 11, 42])
def test_zero_cut_regime_is_byte_identical(seed):
    """Well-spread instances route every cell group inside its own
    window; sharded and monolithic passes must then agree bit for bit.
    """
    nl_m, bounds, grid = _instance(seed)
    rep_m = _partition(nl_m, bounds, grid)
    nl_s, bounds_s, grid_s = _instance(seed)
    rep_s = _partition(nl_s, bounds_s, grid_s, shard_tiles=4)

    assert rep_m.feasible and rep_s.feasible
    s = rep_s.shard
    assert s is not None and s.fallback is None
    assert s.cut_arcs > 0  # the tiling actually severed arcs
    assert s.cut_flow_area == 0.0
    assert s.nonlocal_flow_area == 0.0
    assert np.array_equal(nl_m.x, nl_s.x)
    assert np.array_equal(nl_m.y, nl_s.y)
    # the optimal costs agree when no flow leaves any window
    assert rep_s.flow_cost == pytest.approx(rep_m.flow_cost, rel=1e-9)


def test_sharded_runs_are_pool_invariant():
    """Serial, pool-1 and pool-4 sharded runs are byte-identical, on
    an instance that exercises the reconciliation path."""
    baseline = None
    for pool in (0, 1, 4):
        nl, bounds, grid = _instance(7, squeeze=0.15)
        rep = _partition(nl, bounds, grid, shard_tiles=4, pool=pool)
        assert rep.feasible
        assert rep.shard.reconciled
        state = (nl.x.tobytes(), nl.y.tobytes(), rep.shard.cut_flow_area)
        if baseline is None:
            baseline = state
        else:
            assert state == baseline


# ----------------------------------------------------------------------
# bounded degradation when cuts carry flow
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [5, 7, 19])
def test_cut_flow_reported_and_hpwl_bounded(seed):
    nl_m, bounds, grid = _instance(seed, squeeze=0.15)
    rep_m = _partition(nl_m, bounds, grid)
    nl_s, bounds_s, grid_s = _instance(seed, squeeze=0.15)
    rep_s = _partition(nl_s, bounds_s, grid_s, shard_tiles=4)

    assert rep_m.feasible and rep_s.feasible
    s = rep_s.shard
    assert s.fallback is None
    assert s.reconciled and s.reconcile_transfers > 0
    assert s.cut_flow_area > 0.0
    # the approximation is gated, not silent: HPWL within 1.5x of the
    # monolithic pass (empirically it is within a few percent)
    assert nl_s.hpwl() <= 1.5 * nl_m.hpwl()


def test_sharded_flow_respects_region_capacities():
    """The synthetic FlowResult satisfies condition (1): inflow per
    (window, region) stays within capacity (the fbp.region_capacity
    invariant), tile by tile."""
    nl, bounds, grid = _instance(3)
    model = build_fbp_model(nl, bounds, grid, 0.9)
    result, report = solve_sharded(model, 4)
    assert result.feasible and report.fallback is None
    check_region_capacity(model, result)  # raises on violation
    # conservation: everything the tiles routed reaches some region
    inflow = sum(model.region_inflow(result).values())
    supply = sum(model.group_supply.values())
    assert inflow == pytest.approx(supply, rel=1e-6)


# ----------------------------------------------------------------------
# plumbing and edge cases
# ----------------------------------------------------------------------
def test_single_tile_request_falls_back_to_monolithic():
    nl, bounds, grid = _instance(0)
    model = build_fbp_model(nl, bounds, grid, 0.9)
    result, report = solve_sharded(model, 1)
    assert report.fallback == "single tile"
    assert result.feasible


def test_tile_mapping_is_a_partition():
    nl, bounds, grid = _instance(0)
    wtile = tile_of_windows(grid, 4, 4)
    assert len(wtile) == len(grid.windows)
    assert set(wtile.tolist()) == set(range(16))
    # tiles are contiguous rectangles: every window's neighbors in the
    # same tile row/col share the tile
    for w in grid.windows:
        assert wtile[w.index] == (w.iy * 4 // 8) * 4 + (w.ix * 4 // 8)


def test_movebound_instance_places_with_sharding():
    from repro.place.bonnplace import BonnPlaceFBP, BonnPlaceOptions
    from repro.workloads import movebound_instance

    inst = movebound_instance("Rabe", seed=1)
    placer = BonnPlaceFBP(BonnPlaceOptions(shard_tiles=2, detailed_passes=0))
    placer.place(inst.netlist, inst.bounds)
    shards = [r.shard for r in placer.level_reports if r.shard is not None]
    assert shards, "sharded path never ran"
    assert all(s.fallback is None for s in shards)


def test_shard_report_travels_through_fbp_report():
    nl, bounds, grid = _instance(0)
    rep = _partition(nl, bounds, grid, shard_tiles=4)
    assert rep.shard is not None
    assert rep.shard.num_tiles == 16
    rep_mono = _partition(nl, bounds, grid)
    assert rep_mono.shard is None


# ----------------------------------------------------------------------
# scale smoke (slow lane)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_million_cell_generation_and_sharded_level():
    """1M-cell generation plus one sharded FBP pass at a 32x32 grid —
    the single-level smoke behind the scale sweep benchmark."""
    spec = NetlistSpec("meg", num_cells=1_000_000, utilization=0.5)
    nl, _ = generate_netlist(spec, seed=0)
    assert nl.num_cells >= 1_000_000
    assert nl.num_nets > 1_000_000
    bounds = MoveBoundSet(nl.die)
    grid = Grid(nl.die, 32, 32)
    grid.build_regions(decompose_regions(nl.die, bounds, nl.blockages))
    rep = fbp_partition(
        nl, bounds, grid, density_target=0.9,
        run_local_qp=False, shard_tiles=8,
    )
    assert rep.feasible
    assert rep.shard is not None and rep.shard.fallback is None
    assert rep.realization is not None
