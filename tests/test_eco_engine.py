"""Transactional ECO engine: validation, commit, replay, rollback,
verification, and graceful degradation (fast lane).

The crash/SIGKILL half of the contract lives in the slow-lane
``tests/test_eco_chaos.py``; here every fault is raised in-process.
"""

import copy
import json
import os

import numpy as np
import pytest

from repro.eco import (
    DeltaJournal,
    EcoEngine,
    EcoOptions,
    MoveboundDelta,
    PlacementDelta,
    placement_sha,
)
from repro.movebounds import MoveBoundSet
from repro.obs import get_tracer
from repro.place import BonnPlaceFBP
from repro.resilience import PipelineStageError, ReproError
from repro.resilience.errors import DeltaValidationError, EXIT_INFEASIBLE
from repro.resilience.faultinject import install_fault_plan, reset_faults
from repro.workloads import NetlistSpec, generate_netlist


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


@pytest.fixture(scope="module")
def placed_base():
    """One placed 150-cell instance, shared read-only; tests deepcopy."""
    spec = NetlistSpec("ecot", 150, utilization=0.5, num_pads=12)
    nl, _logical = generate_netlist(spec, seed=7)
    bounds = MoveBoundSet(nl.die)
    BonnPlaceFBP().place(nl, bounds)
    return nl, bounds


@pytest.fixture
def placed(placed_base):
    nl, bounds = placed_base
    return copy.deepcopy(nl), copy.deepcopy(bounds)


def _movable(nl, k):
    return [c.name for c in nl.cells if not c.fixed][:k]


def _good_delta(nl, k=8, name="eco_mb"):
    """A generous movebound (30% of the die) absorbing k cells."""
    die = nl.die
    w, h = die.x_hi - die.x_lo, die.y_hi - die.y_lo
    rect = (die.x_lo, die.y_lo, die.x_lo + 0.55 * w, die.y_lo + 0.55 * h)
    return PlacementDelta(
        movebounds=[MoveboundDelta(name, [rect], cells=_movable(nl, k))]
    )


def _state_fingerprint(nl, bounds):
    return (
        placement_sha(nl),
        tuple(c.movebound for c in nl.cells),
        tuple(n.weight for n in nl.nets),
        tuple(sorted(b.name for b in bounds)),
    )


# ----------------------------------------------------------------------
# validation refusals (nothing may mutate)
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize(
        "delta_dict",
        [
            # unknown cell
            {"movebounds": [{"name": "m", "rects": [[1, 1, 20, 20]],
                             "cells": ["nosuch"]}]},
            # empty rect list
            {"movebounds": [{"name": "m", "rects": [], "cells": []}]},
            # rect outside the die
            {"movebounds": [{"name": "m", "rects": [[-5, 0, 10, 10]]}]},
            # non-positive extent
            {"movebounds": [{"name": "m", "rects": [[10, 10, 10, 20]]}]},
            # reserved/empty name
            {"movebounds": [{"name": "", "rects": [[1, 1, 20, 20]]}]},
            # duplicate definition inside one delta
            {"movebounds": [
                {"name": "m", "rects": [[1, 1, 10, 10]]},
                {"name": "m", "rects": [[12, 12, 20, 20]]},
            ]},
            # assignment to a bound that does not exist
            {"assign": {"c0": "nope"}},
            # unknown net
            {"net_weights": {"nosuchnet": 2.0}},
            # non-positive net weight
            {"net_weights": {"n0": 0.0}},
            # absurd density
            {"density_target": 7.5},
        ],
    )
    def test_refusals_leave_instance_untouched(self, placed, delta_dict):
        nl, bounds = placed
        before = _state_fingerprint(nl, bounds)
        engine = EcoEngine(nl, bounds)
        with pytest.raises(DeltaValidationError) as ei:
            engine.apply(delta_dict)
        assert ei.value.exit_code == EXIT_INFEASIBLE
        assert _state_fingerprint(nl, engine.bounds) == before

    def test_cell_reassigned_twice_refused(self, placed):
        nl, bounds = placed
        victim = _movable(nl, 1)[0]
        delta = {
            "movebounds": [
                {"name": "a", "rects": [[1, 1, 10, 10]], "cells": [victim]},
                {"name": "b", "rects": [[12, 12, 20, 20]],
                 "cells": [victim]},
            ]
        }
        with pytest.raises(DeltaValidationError, match="twice"):
            EcoEngine(nl, bounds).apply(delta)

    def test_existing_bound_name_refused(self, placed):
        nl, bounds = placed
        first = _good_delta(nl, 4, name="dup")
        engine = EcoEngine(nl, bounds)
        engine.apply(first)
        with pytest.raises(DeltaValidationError, match="already exists"):
            engine.apply(_good_delta(nl, 2, name="dup"))

    def test_infeasible_delta_carries_witness_and_rolls_back(self, placed):
        nl, bounds = placed
        die = nl.die
        tiny = (die.x_lo, die.y_lo, die.x_lo + 2.0, die.y_lo + 1.0)
        delta = PlacementDelta(
            movebounds=[
                MoveboundDelta("tiny", [tiny], cells=_movable(nl, 30))
            ]
        )
        engine = EcoEngine(nl, bounds)
        before = _state_fingerprint(nl, bounds)
        with pytest.raises(DeltaValidationError) as ei:
            engine.apply(delta)
        assert ei.value.witness and "tiny" in ei.value.witness
        assert ei.value.deficit > 0
        assert "delta=" in ei.value.diagnosis()
        assert _state_fingerprint(nl, engine.bounds) == before


# ----------------------------------------------------------------------
# commit / no-op / replay / recover
# ----------------------------------------------------------------------
class TestCommit:
    def test_noop_is_byte_identical_and_committed(self, placed, tmp_path):
        nl, bounds = placed
        engine = EcoEngine(nl, bounds, run_dir=str(tmp_path))
        base = placement_sha(nl)
        res = engine.apply([])
        assert res.mode == "noop"
        assert res.base_sha == base and res.post_sha == base
        entries = DeltaJournal(str(tmp_path)).entries()
        assert [e.mode for e in entries] == ["noop"]

    def test_eco_commit_honors_movebound_and_journals(self, placed, tmp_path):
        nl, bounds = placed
        engine = EcoEngine(nl, bounds, run_dir=str(tmp_path))
        delta = _good_delta(nl)
        res = engine.apply(delta)
        assert res.mode == "eco"
        assert res.post_sha == placement_sha(nl)
        assert res.frontier_windows > 0
        assert "eco_mb" in engine.bounds
        area = engine.bounds.get("eco_mb").area
        for name in _movable(nl, 8):
            i = nl.cell_index(name)
            assert nl.cells[i].movebound == "eco_mb"
            assert area.contains_point(float(nl.x[i]), float(nl.y[i]))
        (entry,) = DeltaJournal(str(tmp_path)).entries()
        assert entry.delta_digest == delta.digest()
        assert entry.base_sha == res.base_sha
        assert entry.post_sha == res.post_sha

    def test_replay_is_bit_identical_without_resolving(self, placed, tmp_path):
        nl, bounds = placed
        pristine = copy.deepcopy(nl), copy.deepcopy(bounds)
        delta = _good_delta(nl)
        first = EcoEngine(nl, bounds, run_dir=str(tmp_path)).apply(delta)

        nl2, bounds2 = pristine
        before = get_tracer().counters.get("place.incremental_refines", 0)
        res = EcoEngine(nl2, bounds2, run_dir=str(tmp_path)).apply(delta)
        assert res.mode == "replayed"
        assert res.post_sha == first.post_sha
        assert placement_sha(nl2) == first.post_sha
        # replay restores the snapshot; it must not re-solve
        assert get_tracer().counters.get(
            "place.incremental_refines", 0
        ) == before
        assert np.array_equal(nl2.x, nl.x) and np.array_equal(nl2.y, nl.y)

    def test_recover_restores_structure_and_positions(self, placed, tmp_path):
        nl, bounds = placed
        pristine = copy.deepcopy(nl), copy.deepcopy(bounds)
        engine = EcoEngine(nl, bounds, run_dir=str(tmp_path))
        engine.apply(_good_delta(nl))
        engine.apply({"net_weights": {nl.nets[0].name: 3.0}})

        nl2, bounds2 = pristine
        engine2 = EcoEngine(nl2, bounds2, run_dir=str(tmp_path))
        entry = engine2.recover()
        assert entry is not None and entry.seq == 2
        assert np.array_equal(nl2.x, nl.x) and np.array_equal(nl2.y, nl.y)
        assert "eco_mb" in engine2.bounds
        assert nl2.nets[0].weight == 3.0
        assert placement_sha(nl2) == entry.post_sha

    def test_corrupt_commit_quarantined_recovery_predelta(
        self, placed, tmp_path
    ):
        nl, bounds = placed
        pristine = copy.deepcopy(nl), copy.deepcopy(bounds)
        base = placement_sha(nl)
        install_fault_plan("eco.commit=corrupt")
        EcoEngine(nl, bounds, run_dir=str(tmp_path)).apply(_good_delta(nl))
        reset_faults()

        nl2, bounds2 = pristine
        engine2 = EcoEngine(nl2, bounds2, run_dir=str(tmp_path))
        assert engine2.recover() is None
        assert placement_sha(nl2) == base
        qdir = os.path.join(str(tmp_path), "eco", "quarantine")
        assert os.path.isdir(qdir) and os.listdir(qdir)

    def test_dirty_seq_slot_never_reused(self, placed, tmp_path):
        nl, bounds = placed
        journal = DeltaJournal(str(tmp_path))
        # a torn commit: snapshot written, entry missing
        with open(os.path.join(journal.dir, "txn_000001.ckpt"), "wb") as f:
            f.write(b"torn")
        assert journal.next_seq() == 2
        res = EcoEngine(nl, bounds, run_dir=str(tmp_path)).apply([])
        assert res.txn_seq == 2


# ----------------------------------------------------------------------
# verification + graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_injected_solver_fault_degrades_to_full_solve(
        self, placed, tmp_path
    ):
        nl, bounds = placed
        install_fault_plan("eco.apply=stage")
        before = get_tracer().counters.get("eco.fallbacks", 0)
        engine = EcoEngine(nl, bounds, run_dir=str(tmp_path))
        res = engine.apply(_good_delta(nl))
        assert res.mode == "fallback"
        assert "PipelineStageError" in res.fallback_reason
        assert get_tracer().counters.get("eco.fallbacks", 0) == before + 1
        assert res.placement is not None and res.placement.legality.is_legal
        (entry,) = DeltaJournal(str(tmp_path)).entries()
        assert entry.mode == "fallback"

    def test_budget_exhaustion_degrades(self, placed):
        nl, bounds = placed
        install_fault_plan("eco.apply=budget")
        res = EcoEngine(nl, bounds).apply(_good_delta(nl))
        assert res.mode == "fallback"
        assert "SolverBudgetExceeded" in res.fallback_reason

    def test_hpwl_drift_gate_triggers_fallback(self, placed):
        nl, bounds = placed
        engine = EcoEngine(
            nl, bounds, options=EcoOptions(max_hpwl_drift=1e-6)
        )
        res = engine.apply(_good_delta(nl))
        assert res.mode == "fallback"
        assert "drift" in res.fallback_reason

    def test_no_fallback_rolls_back_and_raises(self, placed):
        nl, bounds = placed
        before = _state_fingerprint(nl, bounds)
        install_fault_plan("eco.apply=stage")
        engine = EcoEngine(
            nl, bounds, options=EcoOptions(allow_fallback=False)
        )
        with pytest.raises(PipelineStageError, match="fallback"):
            engine.apply(_good_delta(nl))
        assert _state_fingerprint(nl, engine.bounds) == before

    def test_fault_inside_rollback_still_restores(self, placed):
        nl, bounds = placed
        before = _state_fingerprint(nl, bounds)
        install_fault_plan("eco.apply=stage;eco.rollback=stage")
        engine = EcoEngine(
            nl, bounds, options=EcoOptions(allow_fallback=False)
        )
        with pytest.raises(ReproError):
            engine.apply(_good_delta(nl))
        assert _state_fingerprint(nl, engine.bounds) == before
        assert get_tracer().counters.get("eco.rollback_faults", 0) >= 1

    def test_net_reweight_invalidates_all_warm_slots(self, placed):
        nl, bounds = placed
        placer = BonnPlaceFBP()
        placer._reflow_slots = {
            ("qp", 8, 8, 0, 0): object(),
            (8, 8, 2, 2): object(),
        }
        engine = EcoEngine(nl, bounds, placer=placer)
        res = engine.apply({"net_weights": {nl.nets[0].name: 2.5}})
        assert res.slots_dropped == 2
        assert nl.nets[0].weight == 2.5

    def test_validate_site_faults_abort_before_mutation(self, placed):
        nl, bounds = placed
        before = _state_fingerprint(nl, bounds)
        install_fault_plan("eco.validate=infeasible")
        engine = EcoEngine(nl, bounds)
        with pytest.raises(ReproError):
            engine.apply(_good_delta(nl))
        assert _state_fingerprint(nl, engine.bounds) == before


# ----------------------------------------------------------------------
# delta model
# ----------------------------------------------------------------------
class TestDeltaModel:
    def test_digest_canonical_and_json_stable(self):
        d1 = PlacementDelta(net_weights={"a": 1.0, "b": 2.0})
        d2 = PlacementDelta.from_dict(
            json.loads(json.dumps(d1.to_dict()))
        )
        assert d1.digest() == d2.digest()

    def test_bare_list_is_movebound_patch(self):
        patch = [{"name": "m", "rects": [[1, 1, 5, 5]], "cells": ["c0"]}]
        delta = PlacementDelta.from_dict(patch)
        assert delta.movebounds[0].name == "m"
        assert delta.movebounds[0].cells == ["c0"]
        assert not delta.is_noop
        assert PlacementDelta.from_dict([]).is_noop

    def test_rejects_scalar_delta(self):
        with pytest.raises(DeltaValidationError):
            PlacementDelta.from_dict("nope")
