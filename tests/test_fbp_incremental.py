"""The 'any given placement' guarantee (§IV intro and Theorem 3).

Recursive partitioning cannot handle incremental placements without a
from-scratch restart; FBP guarantees a feasible partitioning for ANY
initial placement of a feasible instance.  These tests feed FBP
adversarial starting placements.
"""

import numpy as np
import pytest

from repro.fbp import fbp_partition
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.netlist import Netlist, Pin

DIE = Rect(0, 0, 80, 80)


def _instance(seed=0, num_cells=200, bound_rect=None):
    rng = np.random.default_rng(seed)
    nl = Netlist(DIE, row_height=1.0, site_width=0.5)
    bounds = MoveBoundSet(DIE)
    if bound_rect is not None:
        bounds.add_rects("m", [bound_rect])
    for i in range(num_cells):
        mb = "m" if bound_rect is not None and i < num_cells // 4 else None
        nl.add_cell(f"c{i}", 2.0, 1.0, movebound=mb)
    nl.finalize()
    for j in range(num_cells // 2):
        a, b = rng.choice(num_cells, 2, replace=False)
        nl.add_net(f"n{j}", [Pin(int(a)), Pin(int(b))])
    return nl, bounds


def _grid(nl, bounds, n=4):
    dec = decompose_regions(DIE, bounds, nl.blockages)
    grid = Grid(DIE, n, n)
    grid.build_regions(dec)
    return grid


ADVERSARIAL_STARTS = {
    "all_in_one_corner": lambda nl, rng: (
        np.full(nl.num_cells, 2.0),
        np.full(nl.num_cells, 2.0),
    ),
    "single_point": lambda nl, rng: (
        np.full(nl.num_cells, 40.0),
        np.full(nl.num_cells, 40.0),
    ),
    "one_row_line": lambda nl, rng: (
        np.linspace(1, 79, nl.num_cells),
        np.full(nl.num_cells, 0.5),
    ),
    "random_uniform": lambda nl, rng: (
        rng.uniform(1, 79, nl.num_cells),
        rng.uniform(1, 79, nl.num_cells),
    ),
    "wrong_corner_for_bound": None,  # handled specially below
}


class TestAnyPlacement:
    @pytest.mark.parametrize(
        "start", [k for k, v in ADVERSARIAL_STARTS.items() if v]
    )
    def test_feasible_from_adversarial_start(self, start):
        nl, bounds = _instance(seed=1)
        rng = np.random.default_rng(0)
        xs, ys = ADVERSARIAL_STARTS[start](nl, rng)
        nl.set_positions(xs, ys)
        grid = _grid(nl, bounds)
        report = fbp_partition(
            nl, bounds, grid, density_target=0.9, run_local_qp=False
        )
        assert report.feasible
        real = report.realization
        max_cell = max(c.size for c in nl.cells)
        assert real.max_overflow <= max_cell + 1e-6

    def test_movebound_cells_far_from_bound(self):
        """All bound cells start diagonally opposite their area; the
        flow routes them home through multiple windows."""
        nl, bounds = _instance(seed=2, bound_rect=Rect(0, 0, 25, 25))
        for c in nl.cells:
            if c.movebound == "m":
                nl.x[c.index], nl.y[c.index] = 78.0, 78.0
            else:
                nl.x[c.index], nl.y[c.index] = 40.0, 40.0
        grid = _grid(nl, bounds)
        report = fbp_partition(
            nl, bounds, grid, density_target=0.9, run_local_qp=False
        )
        assert report.feasible
        assert bounds.violations(nl) == []
        # bound cells really crossed the chip
        for c in nl.cells:
            if c.movebound == "m":
                assert nl.x[c.index] <= 25 and nl.y[c.index] <= 25

    def test_repeated_incremental_runs_converge(self):
        """Running fbp_partition repeatedly from its own output keeps
        the placement feasible and stops moving much."""
        nl, bounds = _instance(seed=3, bound_rect=Rect(50, 50, 78, 78))
        grid = _grid(nl, bounds)
        moved = []
        for _ in range(3):
            before = nl.snapshot()
            report = fbp_partition(
                nl, bounds, grid, density_target=0.9, run_local_qp=False
            )
            assert report.feasible
            moved.append(
                float(
                    np.abs(nl.x - before.x).sum()
                    + np.abs(nl.y - before.y).sum()
                )
            )
        assert moved[-1] <= moved[0] + 1e-6

    def test_positions_outside_die_tolerated(self):
        """Even coordinates outside the die (bad incremental input) are
        absorbed: window assignment clamps, flow fixes the rest."""
        nl, bounds = _instance(seed=4)
        nl.x[:50] = -30.0
        nl.y[:50] = 200.0
        grid = _grid(nl, bounds)
        report = fbp_partition(
            nl, bounds, grid, density_target=0.9, run_local_qp=False
        )
        assert report.feasible
        assert not nl.check_in_die()
