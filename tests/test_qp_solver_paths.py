"""Tests for the QP solver backends (direct vs CG path)."""

import numpy as np
import pytest

import repro.qp.solver as solver_mod
from repro.geometry import Rect
from repro.netlist import Netlist, Pin
from repro.qp import QPOptions, solve_qp
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


def _netlist(seed=0):
    nl = build_random_netlist(80, 60, seed, DIE)
    nl.add_net("anchor1", [Pin(0), Pin.terminal(0, 0)])
    nl.add_net("anchor2", [Pin(1), Pin.terminal(100, 100)])
    return nl


class TestBackends:
    def test_cg_matches_direct(self, monkeypatch):
        nl = _netlist()
        snap = nl.snapshot()
        x_direct, y_direct = solve_qp(nl, apply=False)
        nl.restore(snap)
        monkeypatch.setattr(solver_mod, "DIRECT_SOLVE_LIMIT", 1)
        x_cg, y_cg = solve_qp(
            nl, QPOptions(cg_tol=1e-10, cg_maxiter=5000), apply=False
        )
        movable = [c.index for c in nl.cells if not c.fixed]
        assert np.allclose(x_direct[movable], x_cg[movable], atol=1e-3)
        assert np.allclose(y_direct[movable], y_cg[movable], atol=1e-3)

    def test_cg_warm_start_converges(self, monkeypatch):
        monkeypatch.setattr(solver_mod, "DIRECT_SOLVE_LIMIT", 1)
        nl = _netlist(seed=1)
        solve_qp(nl, QPOptions(cg_tol=1e-8))
        first = nl.x.copy()
        # solving again from the solution should be a fixed point
        solve_qp(nl, QPOptions(cg_tol=1e-8))
        movable = [c.index for c in nl.cells if not c.fixed]
        assert np.allclose(first[movable], nl.x[movable], atol=1e-2)

    def test_empty_system(self):
        nl = Netlist(DIE)
        nl.add_cell("f", 1, 1, fixed=True)
        nl.finalize()
        x, y = solve_qp(nl)  # zero unknowns: no crash
        assert len(x) == 1

    def test_solution_energy_not_worse_than_start(self):
        """The QP optimum has lower quadratic energy than the start."""
        from repro.qp.models import build_axis_system

        nl = _netlist(seed=2)
        system = build_axis_system(nl, 0)
        movable = np.nonzero(~nl.fixed_mask)[0]
        x0 = np.zeros(system.matrix.shape[0])
        x0[: system.num_cell_unknowns] = nl.x[movable]
        energy_start = system.energy(x0)
        solve_qp(nl)
        x1 = np.zeros(system.matrix.shape[0])
        x1[: system.num_cell_unknowns] = nl.x[movable]
        # clamping can nudge cells, so allow a tiny tolerance
        assert system.energy(x1) <= energy_start + 1e-6
