"""ECO transaction chaos (slow lane): SIGKILL and corruption at every
commit-point boundary.

The contract under test: the delta journal's commit point is one
atomic checksummed write, so a process killed at *any* instrumented
instant — before validation, mid-solve, between the journal's snapshot
and entry writes, at the commit itself, or mid-rollback — leaves a
state from which a plain re-run produces a placement byte-identical
(``cmp``-level, on the Bookshelf ``.pl``) to an uninterrupted run.
Corrupted journal entries are quarantined and re-solved, never
trusted; a re-run after a *successful* commit replays the journal
instead of re-solving.
"""

import filecmp
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.bookshelf import save_instance
from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist, Pin
from repro.resilience import ServiceOverloadError
from repro.service import JobSpec, ServiceClient
from repro.service.worker import read_result, run_job_to_file

pytestmark = pytest.mark.slow

DIE = Rect(0, 0, 100, 100)
_SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def _env(fault_plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    else:
        env.pop("REPRO_FAULT_PLAN", None)
    return env


def _cli(args, fault_plan=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(fault_plan),
        capture_output=True,
        text=True,
        timeout=300,
    )


def _write_instance(path, name, cells=40, seed=0):
    rng = np.random.default_rng(seed)
    nl = Netlist(DIE, name=name)
    for i in range(cells):
        nl.add_cell(f"c{i}", 2.0, 1.0)
    for i in range(0, cells - 2, 2):
        nl.add_net(f"n{i}", [Pin(i), Pin(i + 1), Pin((i + 7) % cells)])
    nl.finalize()
    nl.x[:] = rng.uniform(5, 95, nl.num_cells)
    nl.y[:] = rng.uniform(5, 95, nl.num_cells)
    os.makedirs(str(path), exist_ok=True)
    save_instance(str(path), nl, MoveBoundSet(DIE))
    return name


_PATCH = [
    {
        "name": "eco_a",
        "rects": [[5.0, 5.0, 60.0, 60.0]],
        "cells": [f"c{i}" for i in range(6)],
    }
]


def _setup(tmp_path, seed=0):
    inst = tmp_path / "inst"
    name = _write_instance(inst, "chaos", seed=seed)
    delta = tmp_path / "delta.json"
    delta.write_text(json.dumps(_PATCH))

    ref_out = tmp_path / "ref_out"
    ref = _cli(
        ["replace", name, "--dir", str(inst), "--out", str(ref_out),
         "--run-dir", str(tmp_path / "ref_run"),
         "--delta-file", str(delta)]
    )
    assert ref.returncode == 0, ref.stdout + ref.stderr
    return inst, name, delta, ref_out / f"{name}.pl"


def _replace_args(inst, name, delta, out, run_dir):
    return [
        "replace", name, "--dir", str(inst), "--out", str(out),
        "--run-dir", str(run_dir), "--delta-file", str(delta),
    ]


class TestKillAtEveryBoundary:
    @pytest.mark.parametrize(
        "site",
        ["eco.validate", "eco.apply", "eco.commit", "eco.commit.entry"],
    )
    def test_kill_then_plain_rerun_bit_identical(self, tmp_path, site):
        inst, name, delta, ref_pl = _setup(tmp_path)
        out, run = tmp_path / "out", tmp_path / "run"
        args = _replace_args(inst, name, delta, out, run)

        killed = _cli(args, fault_plan=f"{site}=kill")
        assert killed.returncode == 1  # os._exit(1): SIGKILL semantics
        # no torn journal entry: either nothing committed, or (never
        # for these pre-commit-point sites) a fully verified one
        eco_dir = run / "eco"
        if eco_dir.exists():
            assert not list(eco_dir.glob("*.json")), site

        rerun = _cli(args)
        assert rerun.returncode == 0, rerun.stdout + rerun.stderr
        assert filecmp.cmp(
            str(out / f"{name}.pl"), str(ref_pl), shallow=False
        ), f"placement diverged after kill at {site}"

    def test_kill_mid_rollback_then_rerun_bit_identical(self, tmp_path):
        """A solver fault forces rollback (fallback disabled) and the
        process dies *inside* the rollback: the journal is untouched by
        construction, so recovery is the pre-delta placement and a
        plain re-run matches the uninterrupted answer."""
        inst, name, delta, ref_pl = _setup(tmp_path)
        out, run = tmp_path / "out", tmp_path / "run"
        args = _replace_args(inst, name, delta, out, run) + [
            "--no-fallback"
        ]

        killed = _cli(
            args, fault_plan="eco.apply=stage;eco.rollback=kill"
        )
        assert killed.returncode == 1
        eco_dir = run / "eco"
        if eco_dir.exists():
            assert not list(eco_dir.glob("*.json"))

        rerun = _cli(_replace_args(inst, name, delta, out, run))
        assert rerun.returncode == 0, rerun.stdout + rerun.stderr
        assert filecmp.cmp(
            str(out / f"{name}.pl"), str(ref_pl), shallow=False
        )


class TestCorruptCommit:
    def test_corrupt_entry_quarantined_rerun_bit_identical(self, tmp_path):
        inst, name, delta, ref_pl = _setup(tmp_path)
        out, run = tmp_path / "out", tmp_path / "run"
        args = _replace_args(inst, name, delta, out, run)

        first = _cli(args, fault_plan="eco.commit=corrupt")
        assert first.returncode == 0, first.stdout + first.stderr
        assert filecmp.cmp(
            str(out / f"{name}.pl"), str(ref_pl), shallow=False
        )

        # the re-run must detect the mangled entry, quarantine it, and
        # re-solve to the same bytes — never trust a bad checksum
        rerun = _cli(args)
        assert rerun.returncode == 0, rerun.stdout + rerun.stderr
        assert "replayed" not in rerun.stdout
        qdir = run / "eco" / "quarantine"
        assert qdir.is_dir() and list(qdir.iterdir())
        assert filecmp.cmp(
            str(out / f"{name}.pl"), str(ref_pl), shallow=False
        )


class TestReplayAfterCommit:
    def test_rerun_after_success_replays_without_resolving(self, tmp_path):
        inst, name, delta, ref_pl = _setup(tmp_path)
        out, run = tmp_path / "out", tmp_path / "run"
        args = _replace_args(inst, name, delta, out, run)

        assert _cli(args).returncode == 0
        rerun = _cli(args)
        assert rerun.returncode == 0
        assert "eco replayed" in rerun.stdout, rerun.stdout
        assert len(list((run / "eco").glob("*.json"))) == 1
        assert filecmp.cmp(
            str(out / f"{name}.pl"), str(ref_pl), shallow=False
        )


class TestServiceReplaceChaos:
    def _start_daemon(self, state_dir, *flags, fault_plan=None):
        sock = os.path.join(str(state_dir), "svc.sock")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(state_dir), "--socket", sock, *flags],
            env=_env(fault_plan),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        line = proc.stdout.readline()
        assert "listening" in line, f"daemon failed to start: {line!r}"
        return proc, ServiceClient(sock, timeout=30.0)

    def _stop(self, proc):
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def test_daemon_sigkill_mid_replace_bit_identical(self, tmp_path):
        """A replace job routed through the ECO engine survives a
        daemon SIGKILL: the restarted daemon re-runs or replays the
        delta transaction to the bit-identical placement."""
        inst = tmp_path / "inst"
        name = _write_instance(inst, "svceco", seed=11)
        spec = JobSpec(
            kind="replace", instance=name, dir=str(inst),
            movebound_patch=_PATCH,
        )
        ref_dir = str(tmp_path / "ref_job")
        run_job_to_file(spec, ref_dir, allow_faults=False)
        payload, error = read_result(ref_dir)
        assert error is None, error
        assert payload["eco"]["mode"] in ("eco", "fallback")
        want = payload["pl_sha256"]

        state = tmp_path / "state"
        proc, client = self._start_daemon(state)
        try:
            jid = client.submit(spec)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.status(jid)["state"] in ("running", "done"):
                    break
                time.sleep(0.05)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()

            proc, client = self._start_daemon(state)
            job = client.wait_for(jid, timeout=180)
            assert job["state"] == "done", job
            assert job["result"]["pl_sha256"] == want
        finally:
            self._stop(proc)

    def test_tenant_quota_survives_daemon_sigkill(self, tmp_path):
        """The quota meter is durable: burning a tenant's quota, then
        SIGKILLing and restarting the daemon, must NOT refill it — the
        next submit is refused.  Without the ledger the restarted
        daemon would happily admit the job."""
        inst = tmp_path / "inst"
        name = _write_instance(inst, "quotaeco", seed=5)
        spec = JobSpec(kind="place", instance=name, dir=str(inst))

        state = tmp_path / "state"
        proc, client = self._start_daemon(
            state, "--tenant-quota", "0.05"
        )
        try:
            jid = client.submit(spec)
            job = client.wait_for(jid, timeout=180)
            assert job["state"] == "done", job

            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
            proc, client = self._start_daemon(
                state, "--tenant-quota", "0.05"
            )
            with pytest.raises(ServiceOverloadError, match="quota"):
                client.submit(spec)
        finally:
            self._stop(proc)
