"""Tests for Dinic max-flow."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flows import Dinic, max_flow_value


class TestBasics:
    def test_single_edge(self):
        d = Dinic()
        d.add_edge("s", "t", 3.5)
        assert d.max_flow("s", "t") == pytest.approx(3.5)

    def test_series_bottleneck(self):
        d = Dinic()
        d.add_edge("s", "a", 5)
        d.add_edge("a", "t", 2)
        assert d.max_flow("s", "t") == pytest.approx(2)

    def test_parallel_paths(self):
        d = Dinic()
        d.add_edge("s", "a", 3)
        d.add_edge("s", "b", 2)
        d.add_edge("a", "t", 2)
        d.add_edge("b", "t", 3)
        d.add_edge("a", "b", 5)
        assert d.max_flow("s", "t") == pytest.approx(5)

    def test_disconnected(self):
        d = Dinic()
        d.add_edge("s", "a", 3)
        d.add_edge("b", "t", 3)
        assert d.max_flow("s", "t") == 0

    def test_negative_capacity_rejected(self):
        d = Dinic()
        with pytest.raises(ValueError):
            d.add_edge("s", "t", -1)

    def test_flow_readback(self):
        d = Dinic()
        e1 = d.add_edge("s", "a", 4)
        e2 = d.add_edge("a", "t", 3)
        d.max_flow("s", "t")
        assert d.flow_on(e1) == pytest.approx(3)
        assert d.flow_on(e2) == pytest.approx(3)

    def test_min_cut_side(self):
        d = Dinic()
        d.add_edge("s", "a", 10)
        d.add_edge("a", "t", 1)  # bottleneck: cut between a and t
        d.max_flow("s", "t")
        reachable = set(d.min_cut_reachable("s"))
        assert reachable == {"s", "a"}

    def test_wrapper(self):
        assert max_flow_value(
            {("s", "a"): 2, ("a", "t"): 5}, "s", "t"
        ) == pytest.approx(2)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        G = nx.DiGraph()
        d = Dinic()
        G.add_nodes_from(range(n))
        for _ in range(22):
            u, v = rng.integers(0, n, 2)
            if u == v:
                continue
            cap = float(rng.integers(1, 10))
            d.add_edge(int(u), int(v), cap)
            if G.has_edge(int(u), int(v)):
                G[int(u)][int(v)]["capacity"] += cap
            else:
                G.add_edge(int(u), int(v), capacity=cap)
        ours = d.max_flow(0, n - 1)
        theirs = nx.maximum_flow_value(G, 0, n - 1)
        assert ours == pytest.approx(theirs)

    def test_float_capacities(self):
        d = Dinic()
        d.add_edge("s", "a", 0.3)
        d.add_edge("s", "b", 0.7)
        d.add_edge("a", "t", 1.0)
        d.add_edge("b", "t", 0.25)
        assert d.max_flow("s", "t") == pytest.approx(0.55)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5),
                  st.floats(0.1, 10)),
        min_size=1,
        max_size=15,
    )
)
def test_property_flow_bounded_by_cuts(edges):
    d = Dinic()
    out_of_source = 0.0
    into_sink = 0.0
    for u, v, cap in edges:
        if u == v:
            continue
        d.add_edge(u, v, cap)
        if u == 0:
            out_of_source += cap
        if v == 5:
            into_sink += cap
    value = d.max_flow(0, 5)
    assert value <= out_of_source + 1e-9
    assert value <= into_sink + 1e-9
    assert value >= 0
