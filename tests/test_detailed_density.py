"""Tests for density-aware detailed placement."""

import numpy as np
import pytest

from repro.legalize import check_legality, legalize_with_movebounds
from repro.legalize.detailed import detailed_place
from repro.metrics import DensityMap
from repro.metrics.density import default_bin_count
from repro.workloads import NetlistSpec, generate_netlist


def _legal_instance(seed=0, num_cells=250, utilization=0.4):
    spec = NetlistSpec("dd", num_cells, utilization=utilization,
                       num_pads=8)
    nl, _ = generate_netlist(spec, seed=seed)
    legalize_with_movebounds(nl)
    return nl


class TestDensityAware:
    def test_density_cap_respected(self):
        nl = _legal_instance(seed=1)
        target = 0.55
        detailed_place(nl, passes=2, density_target=target)
        nb = default_bin_count(nl)
        dmap = DensityMap(nl, nb, nb)
        util = dmap.utilization()
        # bins the refinement touched must stay at/below target plus
        # what was already there; global overflow stays moderate
        assert dmap.overflow_ratio(target) < 0.25
        assert check_legality(nl).is_legal

    def test_lower_overflow_than_unconstrained(self):
        nl1 = _legal_instance(seed=2)
        nl2 = _legal_instance(seed=2)
        target = 0.5
        detailed_place(nl1, passes=2)  # density-blind
        detailed_place(nl2, passes=2, density_target=target)
        nb = default_bin_count(nl1)
        blind = DensityMap(nl1, nb, nb).total_overflow(target)
        aware = DensityMap(nl2, nb, nb).total_overflow(target)
        assert aware <= blind + 1e-6

    def test_still_improves_hpwl(self):
        nl = _legal_instance(seed=3)
        report = detailed_place(nl, passes=2, density_target=0.7)
        assert report.hpwl_after <= report.hpwl_before

    def test_none_target_unrestricted(self):
        nl1 = _legal_instance(seed=4)
        nl2 = _legal_instance(seed=4)
        r1 = detailed_place(nl1, passes=1, density_target=None)
        r2 = detailed_place(nl2, passes=1)
        assert r1.hpwl_after == pytest.approx(r2.hpwl_after)
