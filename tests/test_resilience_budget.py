"""Solver budgets (iteration + wall-time), the ResilientSolver
fallback chain, and the terminal transportation heuristic backend."""

import pytest

from repro.flows.mincostflow import MinCostFlowProblem
from repro.resilience import (
    DEFAULT_CHAIN,
    BudgetClock,
    ResilientSolver,
    SolverBudget,
    SolverBudgetExceeded,
    UNLIMITED,
    budget_from_env,
    get_default_budget,
    reset_faults,
    set_default_budget,
)


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    yield
    reset_faults()
    set_default_budget(None)


def _problem(n=4):
    """n sources, n sinks, L1 costs — needs n augmentations with ssp."""
    p = MinCostFlowProblem()
    for i in range(n):
        p.add_node(("s", i), 1.0)
    for j in range(n):
        p.add_node(("t", j), -1.0)
    for i in range(n):
        for j in range(n):
            p.add_arc(("s", i), ("t", j), float(abs(i - j)))
    return p


class TestBudgetClock:
    def test_iter_budget_allows_up_to_limit(self):
        clock = SolverBudget(max_iters=5).clock("x")
        for _ in range(5):
            clock.tick()
        with pytest.raises(SolverBudgetExceeded) as ei:
            clock.tick()
        assert ei.value.iterations == 6
        assert ei.value.solver == "x"
        assert ei.value.exit_code == 3

    def test_unlimited_never_raises(self):
        clock = UNLIMITED.clock()
        clock.tick(100000)
        clock.check_time()

    def test_time_budget(self):
        clock = SolverBudget(max_seconds=0.0).clock("slow")
        with pytest.raises(SolverBudgetExceeded, match="wall-time"):
            clock.check_time()

    def test_env_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SOLVER_ITERS", "7")
        monkeypatch.setenv("REPRO_SOLVER_TIMEOUT", "2.5")
        b = budget_from_env()
        assert b.max_iters == 7 and b.max_seconds == 2.5
        set_default_budget(None)  # re-read env
        assert get_default_budget() == b

    def test_set_default_budget(self):
        b = SolverBudget(max_iters=3)
        set_default_budget(b)
        assert get_default_budget() is b


class TestSolverBudgets:
    def test_ssp_iteration_budget(self):
        p = _problem(4)
        with pytest.raises(SolverBudgetExceeded) as ei:
            p.solve("ssp", budget=SolverBudget(max_iters=1))
        assert "iteration budget" in str(ei.value)

    def test_ns_iteration_budget(self):
        p = _problem(6)
        with pytest.raises(SolverBudgetExceeded):
            p.solve("ns", budget=SolverBudget(max_iters=1))

    def test_ssp_time_budget(self):
        p = _problem(4)
        with pytest.raises(SolverBudgetExceeded, match="wall-time"):
            p.solve("ssp", budget=SolverBudget(max_seconds=0.0))

    def test_generous_budget_is_harmless(self):
        p = _problem(4)
        res = p.solve("ssp", budget=SolverBudget(max_iters=10000))
        assert res.feasible
        ref = _problem(4).solve("ssp")
        assert res.cost == pytest.approx(ref.cost)


class TestHeuristicBackend:
    def test_feasible_flow(self):
        p = _problem(4)
        res = p.solve("heur")
        assert res.feasible
        # cost is accounted but not optimized
        opt = _problem(4).solve("ssp").cost
        assert res.cost >= opt - 1e-9

    def test_flow_readback(self):
        p = MinCostFlowProblem()
        p.add_node("a", 2.0)
        p.add_node("b", -2.0)
        aid = p.add_arc("a", "b", 1.5)
        res = p.solve("heur")
        assert res.feasible
        assert res.flow_on(aid) == pytest.approx(2.0)
        assert res.cost == pytest.approx(3.0)

    def test_infeasible_detected(self):
        p = MinCostFlowProblem()
        p.add_node("a", 2.0)
        p.add_node("b", -1.0)
        p.add_node("c", -1.0)
        p.add_arc("a", "b", 1.0)  # c unreachable
        res = p.solve("heur")
        assert not res.feasible


class TestResilientSolver:
    def test_falls_back_to_heur_when_budgeted(self):
        p = _problem(4)
        solver = ResilientSolver(
            chain=("ns", "ssp", "heur"), budget=SolverBudget(max_iters=1)
        )
        res = solver.solve(p)
        assert res.feasible
        methods = [(a.method, a.ok) for a in res.attempts]
        assert methods == [("ns", False), ("ssp", False), ("heur", True)]
        assert all(
            a.error_type == "SolverBudgetExceeded"
            for a in res.attempts
            if not a.ok
        )

    def test_no_fallback_on_success(self):
        p = _problem(4)
        solver = ResilientSolver(chain=("ssp", "heur"))
        res = solver.solve(p)
        assert [a.method for a in res.attempts] == ["ssp"]
        assert res.attempts[0].ok

    def test_all_backends_fail_reraises_with_history(self):
        p = _problem(4)
        solver = ResilientSolver(
            chain=("ns", "ssp"), budget=SolverBudget(max_iters=0)
        )
        with pytest.raises(SolverBudgetExceeded) as ei:
            solver.solve(p)
        attempts = ei.value.context["attempts"]
        assert [a["method"] for a in attempts] == ["ns", "ssp"]
        assert ei.value.context["chain"] == ["ns", "ssp"]

    def test_for_method_chains(self):
        assert ResilientSolver.for_method("auto").chain is None
        assert ResilientSolver.for_method("ns").chain == ("ns", "heur")
        assert ResilientSolver.for_method("lp").chain == ("lp", "ssp", "heur")
        assert ResilientSolver.for_method("heur").chain == ("heur",)
        assert DEFAULT_CHAIN == ("ns", "ssp", "heur")

    def test_default_budget_applies(self):
        set_default_budget(SolverBudget(max_iters=1))
        p = _problem(4)
        # no explicit budget: chain exhausts ns+ssp, heur rescues
        res = ResilientSolver(chain=("ns", "ssp", "heur")).solve(p)
        assert res.feasible
        assert len(res.attempts) == 3


class TestBudgetClockType:
    def test_clock_factory(self):
        b = SolverBudget(max_iters=2)
        clock = b.clock("ns")
        assert isinstance(clock, BudgetClock)
        assert clock.budget is b
