"""Tests for hierarchy flattening to movebounds."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.hier import Module, flatten_to_movebounds
from repro.netlist import Netlist
from repro.place import BonnPlaceFBP
from repro.workloads import NetlistSpec, generate_netlist


def _design(num_cells=240, seed=0):
    spec = NetlistSpec("hier", num_cells, utilization=0.45, num_pads=8)
    nl, _ = generate_netlist(spec, seed=seed)
    # hierarchy: soc -> {cpu -> {core0, core1}, dsp, tiny}
    core0 = Module("core0", cells=list(range(0, 60)))
    core1 = Module("core1", cells=list(range(60, 120)))
    cpu = Module("cpu", children=[core0, core1])
    dsp = Module("dsp", cells=list(range(120, 200)))
    tiny = Module("tiny", cells=list(range(200, 202)))
    soc = Module("soc", children=[cpu, dsp, tiny])
    return nl, soc


class TestModuleTree:
    def test_all_cells(self):
        _nl, soc = _design()
        assert len(soc.all_cells()) == 202

    def test_depth(self):
        _nl, soc = _design()
        assert soc.depth() == 2

    def test_cut_at_depth1(self):
        _nl, soc = _design()
        names = {m.name for m in soc.modules_at_depth(1)}
        assert names == {"cpu", "dsp", "tiny"}

    def test_cut_at_depth2_keeps_shallow_leaves(self):
        _nl, soc = _design()
        names = {m.name for m in soc.modules_at_depth(2)}
        assert names == {"core0", "core1", "dsp", "tiny"}

    def test_duplicate_child_rejected(self):
        m = Module("m")
        m.add_child(Module("a"))
        with pytest.raises(ValueError):
            m.add_child(Module("a"))


class TestFlatten:
    def test_depth1_bounds(self):
        nl, soc = _design()
        result = flatten_to_movebounds(nl, soc, depth=1)
        assert set(result.bounds.names()) == {"cpu", "dsp"}
        assert result.skipped == ["tiny"]
        # cpu bound covers both cores' cells
        assert len(result.members["cpu"]) == 120

    def test_depth2_bounds(self):
        nl, soc = _design(seed=1)
        result = flatten_to_movebounds(nl, soc, depth=2)
        assert set(result.bounds.names()) == {"core0", "core1", "dsp"}

    def test_cells_marked(self):
        nl, soc = _design(seed=2)
        flatten_to_movebounds(nl, soc, depth=1)
        assert nl.cells[0].movebound == "cpu"
        assert nl.cells[150].movebound == "dsp"
        assert nl.cells[201].movebound is None  # tiny skipped
        assert nl.cells[230].movebound is None  # not in hierarchy

    def test_bounds_disjoint_and_sized(self):
        nl, soc = _design(seed=3)
        result = flatten_to_movebounds(nl, soc, depth=1, fill=0.6)
        areas = {n: result.bounds.get(n).area for n in ("cpu", "dsp")}
        assert areas["cpu"].intersect(areas["dsp"]).is_empty
        for name in ("cpu", "dsp"):
            demand = sum(nl.cells[i].size for i in result.members[name])
            assert areas[name].area >= demand / 0.7

    def test_row_aligned(self):
        nl, soc = _design(seed=4)
        result = flatten_to_movebounds(nl, soc, depth=1)
        for name in result.bounds.names():
            for r in result.bounds.get(name).area:
                assert ((r.y_lo - nl.die.y_lo) / nl.row_height) % 1 == 0
                assert ((r.y_hi - nl.die.y_lo) / nl.row_height) % 1 == 0

    def test_infeasible_fill_raises(self):
        nl, soc = _design(seed=5)
        with pytest.raises(ValueError):
            flatten_to_movebounds(nl, soc, depth=1, fill=1e-4)

    def test_bad_fill_rejected(self):
        nl, soc = _design()
        with pytest.raises(ValueError):
            flatten_to_movebounds(nl, soc, fill=0.0)

    def test_end_to_end_placement(self):
        nl, soc = _design(seed=6)
        result = flatten_to_movebounds(nl, soc, depth=1)
        res = BonnPlaceFBP().place(nl, result.bounds)
        assert res.legality.is_legal
        # every cpu cell inside the cpu bound
        cpu_area = result.bounds.get("cpu").area
        for i in result.members["cpu"]:
            assert cpu_area.contains_rect(nl.cell_rect(i))
