"""Tests for the ASCII renderers and the command-line interface."""

import pytest

from repro.bookshelf import load_instance
from repro.cli import main
from repro.fbp import build_fbp_model
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.viz import render_flow_graph, render_placement, render_regions
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


class TestViz:
    def test_render_regions(self, figure1_bounds):
        dec = decompose_regions(DIE, figure1_bounds)
        out = render_regions(dec, width=40, height=16)
        assert "region covered by" in out
        assert "." in out  # default region present
        # three lettered regions: N, M, M+L
        legend_lines = [l for l in out.splitlines() if "= region" in l]
        assert len(legend_lines) == 3

    def test_render_placement(self):
        nl = build_random_netlist(60, 10, seed=0)
        out = render_placement(nl, width=40, height=16)
        assert len(out.splitlines()) == 16
        assert any(ch != " " for ch in out)

    def test_render_placement_with_bounds(self, figure1_bounds):
        nl = build_random_netlist(60, 10, seed=0)
        out = render_placement(nl, figure1_bounds, width=40, height=16)
        assert "N" in out or "M" in out or "L" in out

    def test_render_flow_graph(self):
        nl = build_random_netlist(80, 40, seed=0)
        mbs = MoveBoundSet(DIE)
        grid = Grid(DIE, 4, 4)
        grid.build_regions(decompose_regions(DIE, mbs))
        model = build_fbp_model(nl, mbs, grid)
        result = model.solve("ssp")
        out = render_flow_graph(model, result)
        assert "|V|=" in out and "|E|=" in out
        assert "external arcs" in out


class TestCLI:
    def test_generate_check_place_score(self, tmp_path):
        out = str(tmp_path)
        assert main(["generate", "Rabe", "--movebounds", "--out", out,
                     "--suite", "movebound"]) == 0
        assert main(["check", "Rabe", "--dir", out]) == 0
        assert main(["place", "Rabe", "--dir", out, "--placer", "fbp"]) == 0
        assert main(["score", "Rabe", "--dir", out]) == 0

    def test_generate_table2(self, tmp_path):
        out = str(tmp_path)
        assert main(["generate", "Dagmar", "--out", out]) == 0
        nl, mbs = load_instance(out, "Dagmar")
        assert nl.num_cells > 100 and len(mbs) == 0

    def test_generate_ispd(self, tmp_path):
        out = str(tmp_path)
        assert main(["generate", "nb2", "--out", out, "--suite", "ispd"]) == 0

    def test_unknown_instance(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "NoSuchChip", "--out", str(tmp_path)])

    def test_unknown_placer_choice(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["place", "Rabe", "--placer", "magic"])
