"""The array-kernel bit-identity contract (PR 5).

Property-style sweeps over seeded random transportation / min-cost
flow instances: the ``array`` and ``object`` kernels must agree
*exactly* (same flow bits, same cost bits, same pivot counts) and the
independent solver families (ssp / ns) must agree within scale-
relative tolerance.  Plus the backend registry surface and the
NSBasis warm-start round trip through :class:`ArraySimplex`.
"""

import numpy as np
import pytest

from repro.flows import (
    MinCostFlowProblem,
    get_flow_backend,
    set_flow_backend,
    solve_transportation,
    solve_transportation_with_relaxation,
)
from repro.flows.kernel import FLOW_BACKENDS, default_flow_backend
from repro.flows.networksimplex import solve_network_simplex_arrays
from repro.flows.warmstart import WarmStartSlot


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    set_flow_backend(None)


def random_ns_instance(rng):
    """A random (possibly capacitated, possibly sparse) transportation
    network in the array form of solve_network_simplex_arrays."""
    n_s = int(rng.integers(2, 9))
    n_t = int(rng.integers(2, 7))
    sup = rng.uniform(1, 20, n_s)
    cap = rng.uniform(1, 20, n_t)
    # mostly feasible, occasionally tight/infeasible
    cap *= (sup.sum() * rng.uniform(0.8, 1.6)) / cap.sum()
    supply = np.concatenate([sup, -cap])
    tails, heads, costs, caps = [], [], [], []
    for i in range(n_s):
        for j in range(n_t):
            if rng.random() < 0.8:
                tails.append(i)
                heads.append(n_s + j)
                costs.append(float(rng.uniform(0, 50)))
                caps.append(
                    float("inf")
                    if rng.random() < 0.6
                    else float(rng.uniform(2, 30))
                )
    return (
        supply,
        np.array(tails, dtype=np.int64),
        np.array(heads, dtype=np.int64),
        np.array(costs),
        np.array(caps),
    )


def random_mcf(rng):
    """A random supply/demand MinCostFlowProblem."""
    problem = MinCostFlowProblem()
    n_s = int(rng.integers(2, 6))
    n_t = int(rng.integers(2, 6))
    sup = rng.uniform(1, 10, n_s)
    dem = rng.uniform(1, 10, n_t)
    dem *= (sup.sum() * rng.uniform(1.0, 1.5)) / dem.sum()
    for i in range(n_s):
        problem.add_node(("s", i), float(sup[i]))
    for j in range(n_t):
        problem.add_node(("t", j), -float(dem[j]))
    for i in range(n_s):
        for j in range(n_t):
            if rng.random() < 0.8:
                problem.add_arc(
                    ("s", i),
                    ("t", j),
                    float(rng.uniform(0, 20)),
                    float("inf")
                    if rng.random() < 0.5
                    else float(rng.uniform(1, 15)),
                )
    return problem


def random_transport(rng):
    n = int(rng.integers(3, 12))
    k = int(rng.integers(2, 5))
    supplies = rng.uniform(0.5, 5.0, n)
    capacities = rng.uniform(1.0, 8.0, k)
    capacities *= (supplies.sum() * rng.uniform(0.9, 1.5)) / capacities.sum()
    costs = rng.uniform(0.0, 30.0, (n, k))
    # forbidden (movebound-inadmissible) pairs, but keep a finite arc
    # per source so most stages stay feasible
    forbid = rng.random((n, k)) < 0.2
    forbid[np.arange(n), rng.integers(0, k, n)] = False
    costs[forbid] = np.inf
    return supplies, capacities, costs


class TestBackendRegistry:
    def test_default_is_array(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLOW_BACKEND", raising=False)
        assert default_flow_backend() == "array"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_BACKEND", "object")
        set_flow_backend(None)
        assert get_flow_backend() == "object"

    def test_set_and_reset(self):
        set_flow_backend("object")
        assert get_flow_backend() == "object"
        set_flow_backend("array")
        assert get_flow_backend() == "array"
        set_flow_backend(None)
        assert get_flow_backend() in FLOW_BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown flow backend"):
            set_flow_backend("vectorized")


class TestNetworkSimplexIdentity:
    """array vs object on the shared NS entry point: exact equality."""

    @pytest.mark.parametrize("seed", range(25))
    def test_bit_identity(self, seed):
        rng = np.random.default_rng(1000 + seed)
        supply, tails, heads, costs, caps = random_ns_instance(rng)
        fa, ca, xa, pa = solve_network_simplex_arrays(
            supply, tails, heads, costs, caps, backend="array"
        )
        fo, co, xo, po = solve_network_simplex_arrays(
            supply, tails, heads, costs, caps, backend="object"
        )
        assert fa == fo
        if fa:
            assert np.array_equal(xa, xo)  # same flow bits
            assert ca == co  # same cost bits
            assert pa == po  # same pivot sequence length

    def test_warm_basis_round_trip(self):
        """An ArraySimplex basis warm-starts both kernels, and both
        report the same warm result as a cold solve."""
        rng = np.random.default_rng(7)
        supply, tails, heads, costs, caps = random_ns_instance(rng)
        cold = {}
        warm = {}
        for bk in FLOW_BACKENDS:
            slot = WarmStartSlot()
            cold[bk] = solve_network_simplex_arrays(
                supply, tails, heads, costs, caps,
                warm_slot=slot, backend=bk,
            )
            assert slot.basis is not None
            # same topology, mildly relaxed capacities -> warm re-solve
            warm[bk] = solve_network_simplex_arrays(
                supply, tails, heads, costs,
                np.where(np.isfinite(caps), caps * 1.1, caps),
                warm_slot=slot, backend=bk,
            )
        for a, b in zip(cold["array"], cold["object"]):
            assert np.array_equal(a, b)
        for a, b in zip(warm["array"], warm["object"]):
            assert np.array_equal(a, b)

    def test_cross_kernel_basis_exchange(self):
        """A basis exported by one kernel warm-starts the other: the
        NSBasis representation is kernel-neutral."""
        rng = np.random.default_rng(11)
        supply, tails, heads, costs, caps = random_ns_instance(rng)
        results = {}
        for first, second in (("array", "object"), ("object", "array")):
            slot = WarmStartSlot()
            solve_network_simplex_arrays(
                supply, tails, heads, costs, caps,
                warm_slot=slot, backend=first,
            )
            results[second] = solve_network_simplex_arrays(
                supply, tails, heads, costs, caps,
                warm_slot=slot, backend=second,
            )
        for a, b in zip(results["array"], results["object"]):
            assert np.array_equal(a, b)


class TestSSPIdentity:
    """array vs object SSP backend: exact equality."""

    @pytest.mark.parametrize("seed", range(10))
    def test_bit_identity(self, seed):
        rng = np.random.default_rng(2000 + seed)
        problem = random_mcf(rng)
        set_flow_backend("array")
        ra = problem.solve(method="ssp")
        set_flow_backend("object")
        ro = problem.solve(method="ssp")
        assert ra.feasible == ro.feasible
        assert np.array_equal(ra.flows, ro.flows)
        assert ra.cost == ro.cost
        assert ra.stats.augmenting_paths == ro.stats.augmenting_paths


class TestSolverFamilyAgreement:
    """ssp and ns agree within tolerance on both kernels (the ~50
    instance cross-solver sweep of the kernel contract)."""

    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("backend", FLOW_BACKENDS)
    def test_ssp_ns_cost_agreement(self, seed, backend):
        rng = np.random.default_rng(3000 + seed)
        problem = random_mcf(rng)
        set_flow_backend(backend)
        r_ssp = problem.solve(method="ssp")
        r_ns = problem.solve(method="ns")
        assert r_ssp.feasible == r_ns.feasible
        if r_ssp.feasible:
            scale = max(abs(r_ssp.cost), 1.0)
            assert abs(r_ssp.cost - r_ns.cost) <= 1e-6 * scale


class TestTransportationPlacementIdentity:
    """The partitioning-facing entry points return identical flows —
    and therefore identical placements — on both kernels."""

    @pytest.mark.parametrize("seed", range(10))
    def test_solve_transportation_identical(self, seed):
        rng = np.random.default_rng(4000 + seed)
        supplies, capacities, costs = random_transport(rng)
        set_flow_backend("array")
        ra = solve_transportation(supplies, capacities, costs, method="ns")
        set_flow_backend("object")
        ro = solve_transportation(supplies, capacities, costs, method="ns")
        assert ra.feasible == ro.feasible
        assert np.array_equal(ra.flow, ro.flow)
        assert ra.cost == ro.cost

    @pytest.mark.parametrize("seed", range(6))
    def test_relaxation_chain_identical(self, seed):
        rng = np.random.default_rng(5000 + seed)
        supplies, capacities, costs = random_transport(rng)
        capacities = capacities * 0.9  # push some seeds into relaxation
        set_flow_backend("array")
        ra, sa = solve_transportation_with_relaxation(
            supplies, capacities, costs, method="ns"
        )
        set_flow_backend("object")
        ro, so = solve_transportation_with_relaxation(
            supplies, capacities, costs, method="ns"
        )
        assert sa == so
        assert ra.feasible == ro.feasible
        assert np.array_equal(ra.flow, ro.flow)


class TestVerifyMode:
    def test_shadow_solve_passes(self, monkeypatch):
        """REPRO_VERIFY_KERNEL=1 re-solves on the other kernel and
        raises on divergence; a healthy kernel pair must sail through."""
        monkeypatch.setenv("REPRO_VERIFY_KERNEL", "1")
        rng = np.random.default_rng(99)
        supply, tails, heads, costs, caps = random_ns_instance(rng)
        feasible, cost, flows, pivots = solve_network_simplex_arrays(
            supply, tails, heads, costs, caps, backend="array"
        )
        assert pivots > 0
        problem = random_mcf(rng)
        result = problem.solve(method="ssp")
        assert result.feasible in (True, False)
