"""Tests for the Hanan grid (Lemma 1 substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.geometry.hanan import (
    hanan_cells,
    hanan_coordinates,
    hanan_decomposition,
)

FRAME = Rect(0, 0, 10, 10)


def test_coordinates_include_frame():
    xs, ys = hanan_coordinates([], FRAME)
    assert xs == [0, 10] and ys == [0, 10]


def test_coordinates_from_rect_edges():
    xs, ys = hanan_coordinates([Rect(2, 3, 5, 7)], FRAME)
    assert xs == [0, 2, 5, 10]
    assert ys == [0, 3, 7, 10]


def test_coordinates_outside_frame_clipped():
    xs, _ys = hanan_coordinates([Rect(-5, 0, 15, 10)], FRAME)
    assert xs == [0, 10]


def test_cells_tile_frame():
    rects = [Rect(2, 2, 4, 4), Rect(3, 3, 8, 9)]
    cells = hanan_decomposition(rects, FRAME)
    assert sum(c.area for c in cells) == pytest.approx(FRAME.area)
    for i, a in enumerate(cells):
        for b in cells[i + 1 :]:
            assert not a.overlaps(b)


def test_cell_count_quadratic_bound():
    """Lemma 1: O(l^2) cells for l rectangles."""
    rects = [Rect(i, i, i + 1, i + 1) for i in range(1, 5)]
    cells = hanan_decomposition(rects, FRAME)
    l = 2 * len(rects) + 2  # distinct coords per axis at most
    assert len(cells) <= l * l


def test_no_rect_edge_crosses_cell_interior():
    rects = [Rect(2, 2, 6, 6), Rect(4, 1, 9, 5)]
    cells = hanan_decomposition(rects, FRAME)
    for cell in cells:
        for r in rects:
            # each cell is fully inside or fully outside each rect
            inter = cell.intersection_area(r)
            assert inter == pytest.approx(0) or inter == pytest.approx(
                cell.area
            )


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 8), st.integers(0, 8),
            st.integers(1, 4), st.integers(1, 4),
        ),
        min_size=0,
        max_size=5,
    )
)
def test_property_tiling_and_purity(quads):
    rects = [
        Rect(x, y, min(x + w, 10), min(y + h, 10)) for x, y, w, h in quads
    ]
    rects = [r for r in rects if not r.is_empty]
    cells = hanan_decomposition(rects, FRAME)
    assert sum(c.area for c in cells) == pytest.approx(FRAME.area)
    for cell in cells:
        for r in rects:
            inter = cell.intersection_area(r)
            assert inter == pytest.approx(0, abs=1e-9) or inter == pytest.approx(cell.area, abs=1e-9)
