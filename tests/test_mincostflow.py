"""Tests for the min-cost flow solvers (SSP and HiGHS LP backends)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flows import Arc, MinCostFlowProblem, solve_min_cost_flow


def _simple_problem():
    p = MinCostFlowProblem()
    p.add_node("s1", 4.0)
    p.add_node("s2", 2.0)
    p.add_node("d1", -3.0)
    p.add_node("d2", -5.0)
    p.add_arc("s1", "d1", 1.0)
    p.add_arc("s1", "d2", 3.0)
    p.add_arc("s2", "d1", 2.0)
    p.add_arc("s2", "d2", 1.0)
    return p


class TestBasics:
    @pytest.mark.parametrize("method", ["ssp", "lp"])
    def test_optimal_cost(self, method):
        res = _simple_problem().solve(method)
        assert res.feasible
        # s1 -> d1 (3 @1), s1 -> d2 (1 @3), s2 -> d2 (2 @1) = 8
        assert res.cost == pytest.approx(8.0)

    @pytest.mark.parametrize("method", ["ssp", "lp"])
    def test_flow_conservation(self, method):
        p = _simple_problem()
        res = p.solve(method)
        outflow = {"s1": 0.0, "s2": 0.0}
        for _aid, arc, f in res.nonzero_arcs():
            outflow[arc.tail] += f
        assert outflow["s1"] == pytest.approx(4.0)
        assert outflow["s2"] == pytest.approx(2.0)

    @pytest.mark.parametrize("method", ["ssp", "lp"])
    def test_demand_as_capacity(self, method):
        """Total demand exceeds supply: the slack stays unused."""
        p = MinCostFlowProblem()
        p.add_node("s", 1.0)
        p.add_node("d", -10.0)
        p.add_arc("s", "d", 1.0)
        res = p.solve(method)
        assert res.feasible
        assert res.routed == pytest.approx(1.0)

    @pytest.mark.parametrize("method", ["ssp", "lp"])
    def test_infeasible_detected(self, method):
        p = MinCostFlowProblem()
        p.add_node("s", 5.0)
        p.add_node("d", -1.0)  # too little demand
        p.add_arc("s", "d", 1.0)
        res = p.solve(method)
        assert not res.feasible

    @pytest.mark.parametrize("method", ["ssp", "lp"])
    def test_capacity_respected(self, method):
        p = MinCostFlowProblem()
        p.add_node("s", 4.0)
        p.add_node("d", -4.0)
        cheap = p.add_arc("s", "d", 1.0, capacity=1.0)
        dear = p.add_arc("s", "d", 5.0)
        res = p.solve(method)
        assert res.feasible
        assert res.flow_on(cheap) == pytest.approx(1.0)
        assert res.flow_on(dear) == pytest.approx(3.0)

    def test_negative_cost_rejected(self):
        p = MinCostFlowProblem()
        with pytest.raises(ValueError):
            p.add_arc("a", "b", -1.0)

    def test_transit_nodes(self):
        p = MinCostFlowProblem()
        p.add_node("s", 2.0)
        p.add_node("m")  # transit
        p.add_node("d", -2.0)
        p.add_arc("s", "m", 1.0)
        p.add_arc("m", "d", 1.0)
        res = p.solve("ssp")
        assert res.feasible and res.cost == pytest.approx(4.0)

    def test_convenience_wrapper(self):
        res = solve_min_cost_flow(
            {"a": 1.0, "b": -1.0}, [Arc("a", "b", 2.0)], "ssp"
        )
        assert res.feasible and res.cost == pytest.approx(2.0)

    def test_auto_picks_method(self):
        res = _simple_problem().solve("auto")
        assert res.feasible

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            _simple_problem().solve("quantum")


def _random_instance(seed, n=8, arcs=24):
    """Connected random instance with integral data."""
    rng = np.random.default_rng(seed)
    b = rng.integers(-6, 7, n)
    b[-1] -= b.sum()
    p = MinCostFlowProblem()
    G = nx.DiGraph()
    for i, bi in enumerate(b):
        p.add_node(i, float(bi))
        G.add_node(i, demand=int(-bi))
    edges = set()
    for i in range(n):  # ring for connectivity
        edges.add((i, (i + 1) % n))
        edges.add(((i + 1) % n, i))
    for _ in range(arcs):
        u, v = rng.integers(0, n, 2)
        if u != v:
            edges.add((int(u), int(v)))
    for (u, v) in edges:
        c = int(rng.integers(0, 9))
        cap = int(rng.integers(4, 18))
        p.add_arc(u, v, float(c), float(cap))
        G.add_edge(u, v, weight=c, capacity=cap)
    return p, G


class TestAgainstNetworkSimplex:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_balanced(self, seed):
        p, G = _random_instance(seed)
        try:
            cost_nx, _ = nx.network_simplex(G)
            feasible_nx = True
        except nx.NetworkXUnfeasible:
            feasible_nx = False
        for method in ("ssp", "lp"):
            res = p.solve(method)
            assert res.feasible == feasible_nx
            if feasible_nx:
                assert res.cost == pytest.approx(cost_nx, abs=1e-6)

    def test_ssp_equals_lp_on_unbalanced(self):
        rng = np.random.default_rng(42)
        for _ in range(6):
            p = MinCostFlowProblem()
            n_s, n_d = 4, 3
            for i in range(n_s):
                p.add_node(("s", i), float(rng.integers(1, 6)))
            for j in range(n_d):
                p.add_node(("d", j), -float(rng.integers(4, 12)))
            for i in range(n_s):
                for j in range(n_d):
                    p.add_arc(("s", i), ("d", j), float(rng.integers(0, 8)))
            r1, r2 = p.solve("ssp"), p.solve("lp")
            assert r1.feasible and r2.feasible
            assert r1.cost == pytest.approx(r2.cost, abs=1e-6)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_property_cost_nonnegative_and_conserving(seed):
    p, _G = _random_instance(seed, n=6, arcs=14)
    res = p.solve("ssp")
    if not res.feasible:
        return
    assert res.cost >= -1e-9
    # conservation at transit nodes
    balance = {}
    for _aid, arc, f in res.nonzero_arcs(tol=0.0):
        balance[arc.tail] = balance.get(arc.tail, 0.0) + f
        balance[arc.head] = balance.get(arc.head, 0.0) - f
    for node in p.nodes:
        b = p.supply_of(node)
        net = balance.get(node, 0.0)
        if b > 0:
            assert net == pytest.approx(b, abs=1e-6)
        elif b < 0:
            assert -net <= -b + 1e-6  # demand is an upper bound
        else:
            assert net == pytest.approx(0.0, abs=1e-6)
