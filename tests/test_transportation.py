"""Tests for the transportation solver and almost-integral rounding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flows import (
    round_almost_integral,
    solve_transportation,
)

INF = np.inf


class TestBasics:
    def test_simple_optimal(self):
        res = solve_transportation(
            np.array([2.0, 3.0]),
            np.array([3.0, 4.0]),
            np.array([[1.0, 2.0], [5.0, 1.0]]),
        )
        assert res.feasible
        assert res.cost == pytest.approx(2 * 1 + 3 * 1)

    def test_forbidden_arcs_unused(self):
        res = solve_transportation(
            np.array([2.0, 1.0]),
            np.array([3.0, 3.0]),
            np.array([[INF, 2.0], [1.0, INF]]),
        )
        assert res.feasible
        assert res.flow[0, 0] == 0 and res.flow[1, 1] == 0
        assert res.cost == pytest.approx(2 * 2 + 1 * 1)

    def test_infeasible_capacity(self):
        res = solve_transportation(
            np.array([10.0]), np.array([3.0]), np.array([[1.0]])
        )
        assert not res.feasible

    def test_infeasible_isolated_source(self):
        res = solve_transportation(
            np.array([1.0]), np.array([5.0]), np.array([[INF]])
        )
        assert not res.feasible

    def test_empty_sources(self):
        res = solve_transportation(
            np.zeros(0), np.array([3.0]), np.zeros((0, 1))
        )
        assert res.feasible and res.cost == 0

    def test_unbalanced_slack(self):
        res = solve_transportation(
            np.array([1.0]), np.array([100.0, 100.0]),
            np.array([[1.0, 2.0]]),
        )
        assert res.feasible
        assert res.flow.sum() == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_transportation(
                np.array([1.0]), np.array([1.0]), np.zeros((2, 2))
            )

    def test_negative_supply_rejected(self):
        with pytest.raises(ValueError):
            solve_transportation(
                np.array([-1.0]), np.array([1.0]), np.zeros((1, 1))
            )

    def test_mcf_backend_matches_lp(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            n, k = 6, 3
            sup = rng.uniform(0.5, 3.0, n)
            cap = rng.uniform(2.0, 6.0, k)
            while cap.sum() < sup.sum():
                cap *= 1.3
            costs = rng.uniform(0.0, 9.0, (n, k))
            a = solve_transportation(sup, cap, costs, method="lp")
            b = solve_transportation(sup, cap, costs, method="mcf")
            assert a.feasible and b.feasible
            assert a.cost == pytest.approx(b.cost, abs=1e-6)


class TestAlmostIntegral:
    def test_split_source_bound(self):
        """A basic optimum has at most k-1 split sources ([4])."""
        rng = np.random.default_rng(0)
        for trial in range(10):
            n, k = 30, 4
            sup = rng.uniform(0.5, 2.0, n)
            cap = np.full(k, sup.sum() / k * 1.15)
            costs = rng.uniform(0, 10, (n, k))
            res = solve_transportation(sup, cap, costs)
            assert res.feasible
            assert len(res.split_sources()) <= k - 1

    def test_rounding_respects_supply(self):
        sup = np.array([2.0, 3.0, 1.0])
        cap = np.array([3.5, 3.5])
        costs = np.array([[1.0, 2.0], [2.0, 1.0], [1.0, 1.0]])
        res = solve_transportation(sup, cap, costs)
        assignment, overflow = round_almost_integral(res, sup, cap, costs)
        assert set(assignment) <= {0, 1}
        loads = np.zeros(2)
        for i, j in enumerate(assignment):
            loads[j] += sup[i]
        assert loads.sum() == pytest.approx(sup.sum())

    def test_rounding_overflow_bounded_by_max_cell(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n, k = 25, 3
            sup = rng.uniform(0.5, 2.0, n)
            cap = np.full(k, sup.sum() / k * 1.02)
            costs = rng.uniform(0, 5, (n, k))
            res = solve_transportation(sup, cap, costs)
            if not res.feasible:
                continue
            _a, overflow = round_almost_integral(res, sup, cap, costs)
            assert overflow <= sup.max() + 1e-9

    def test_rounding_never_uses_forbidden(self):
        sup = np.array([1.0, 1.0])
        cap = np.array([2.0, 2.0])
        costs = np.array([[INF, 1.0], [1.0, INF]])
        res = solve_transportation(sup, cap, costs)
        assignment, _ = round_almost_integral(res, sup, cap, costs)
        assert assignment[0] == 1 and assignment[1] == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_property_optimality_vs_greedy(seed):
    """The LP optimum is never worse than a greedy assignment."""
    rng = np.random.default_rng(seed)
    n, k = 8, 3
    sup = rng.uniform(0.2, 1.5, n)
    cap = np.full(k, sup.sum())  # plenty of room
    costs = rng.uniform(0, 10, (n, k))
    res = solve_transportation(sup, cap, costs)
    assert res.feasible
    greedy = float(np.dot(sup, costs.min(axis=1)))
    assert res.cost <= greedy + 1e-6
    # with ample capacity, the optimum IS the row-minimum assignment
    assert res.cost == pytest.approx(greedy, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_property_capacities_respected(seed):
    rng = np.random.default_rng(seed)
    n, k = 10, 4
    sup = rng.uniform(0.2, 1.5, n)
    cap = rng.uniform(0.5, 2.0, k)
    while cap.sum() < sup.sum() * 1.05:
        cap *= 1.25
    costs = rng.uniform(0, 10, (n, k))
    res = solve_transportation(sup, cap, costs)
    assert res.feasible
    loads = res.flow.sum(axis=0)
    assert np.all(loads <= cap + 1e-6)
    assert res.flow.sum(axis=1) == pytest.approx(sup, abs=1e-6)
