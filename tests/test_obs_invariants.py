"""Tests for the opt-in invariant registry: each check catches its
corruption, and everything is a no-op while the gate is off."""

import numpy as np
import pytest

from repro.fbp import build_fbp_model
from repro.flows import MinCostFlowProblem
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.netlist import Netlist
from repro.obs import (
    ENV_VAR,
    InvariantViolation,
    checking,
    invariants_enabled,
    maybe_check,
    registered_checks,
    run_check,
    set_invariants_enabled,
)

DIE = Rect(0, 0, 100, 100)


def _small_flow():
    """s supplies 5 units; two routes of cost 1 and 3 into a sink."""
    p = MinCostFlowProblem()
    p.add_node("s", 5.0)
    p.add_node("a")
    p.add_node("b")
    p.add_node("t", -10.0)
    p.add_arc("s", "a", 1.0, capacity=3.0)
    p.add_arc("s", "b", 3.0)
    p.add_arc("a", "t", 0.0)
    p.add_arc("b", "t", 0.0)
    return p


def _movebound_instance():
    """Four cells, one confined to the left half of the die."""
    bounds = MoveBoundSet(DIE)
    bounds.add_rects("left", [Rect(0, 0, 50, 100)])
    nl = Netlist(DIE, row_height=1.0, site_width=0.5, name="inv")
    nl.add_cell("m0", 2.0, 1.0, x=10.0, y=10.0, movebound="left")
    for i in range(3):
        nl.add_cell(f"f{i}", 2.0, 1.0, x=70.0 + i, y=70.0)
    nl.finalize()
    return nl, bounds


class TestGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        set_invariants_enabled(None)
        assert not invariants_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", "On"])
    def test_env_var_enables(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        set_invariants_enabled(None)
        try:
            assert invariants_enabled()
        finally:
            set_invariants_enabled(None)

    def test_env_var_falsey(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")
        set_invariants_enabled(None)
        assert not invariants_enabled()

    def test_checking_scopes_and_restores(self):
        set_invariants_enabled(None)
        with checking(True):
            assert invariants_enabled()
            with checking(False):
                assert not invariants_enabled()
            assert invariants_enabled()

    def test_maybe_check_noop_when_disabled(self):
        """With the gate off, even garbage arguments never run."""
        with checking(False):
            maybe_check("flow.conservation", None, None)
            maybe_check("fbp.region_capacity", None, None)
            maybe_check("movebound.containment", None, None)

    def test_all_three_checks_registered(self):
        names = registered_checks()
        assert "flow.conservation" in names
        assert "fbp.region_capacity" in names
        assert "movebound.containment" in names

    def test_unknown_check_raises(self):
        with pytest.raises(KeyError):
            run_check("no.such.check")


class TestFlowConservation:
    def test_honest_solve_passes(self):
        p = _small_flow()
        with checking(True):
            result = p.solve("ssp")  # solve() runs maybe_check itself
        assert result.feasible

    def test_corrupted_flow_caught(self):
        p = _small_flow()
        result = p.solve("ssp")
        result.flows[0] += 1.0  # supply node now over-ships
        with pytest.raises(InvariantViolation) as exc:
            run_check("flow.conservation", p, result)
        assert exc.value.check == "flow.conservation"

    def test_capacity_overflow_caught(self):
        p = _small_flow()
        result = p.solve("ssp")
        # push everything down the cap-3 arc: violates its capacity
        result.flows[:] = [5.0, 0.0, 5.0, 0.0]
        with pytest.raises(InvariantViolation):
            run_check("flow.conservation", p, result)

    def test_negative_flow_caught(self):
        p = _small_flow()
        result = p.solve("ssp")
        result.flows[1] = -2.0
        with pytest.raises(InvariantViolation):
            run_check("flow.conservation", p, result)

    def test_all_backends_pass_under_gate(self):
        for method in ("ssp", "ns", "lp"):
            with checking(True):
                result = _small_flow().solve(method)
            assert result.feasible


class TestRegionCapacity:
    def _solved_model(self):
        nl, bounds = _movebound_instance()
        dec = decompose_regions(DIE, bounds, nl.blockages)
        grid = Grid(DIE, 2, 2)
        grid.build_regions(dec)
        model = build_fbp_model(nl, bounds, grid)
        result = model.solve("ssp")
        assert result.feasible
        return model, result

    def test_honest_solve_passes(self):
        model, result = self._solved_model()
        run_check("fbp.region_capacity", model, result)

    def test_overfilled_region_caught(self):
        model, result = self._solved_model()
        # shrink the advertised capacity of a region that absorbed flow
        inflow = model.region_inflow(result)
        key = max(inflow, key=inflow.get)
        assert inflow[key] > 0
        model.region_capacity[key] = inflow[key] / 2
        with pytest.raises(InvariantViolation) as exc:
            run_check("fbp.region_capacity", model, result)
        assert exc.value.check == "fbp.region_capacity"


class TestMoveboundContainment:
    def test_contained_cell_passes(self):
        nl, bounds = _movebound_instance()
        run_check("movebound.containment", nl, bounds)

    def test_cell_outside_movebound_caught(self):
        nl, bounds = _movebound_instance()
        nl.x[0] = 80.0  # left-bound cell teleported to the right half
        with pytest.raises(InvariantViolation) as exc:
            run_check("movebound.containment", nl, bounds)
        assert exc.value.check == "movebound.containment"

    def test_explicit_cell_subset(self):
        nl, bounds = _movebound_instance()
        nl.x[0] = 80.0
        # auditing only unconstrained cells ignores the violation
        run_check("movebound.containment", nl, bounds, cells=[1, 2, 3])

    def test_boundary_tolerance(self):
        nl, bounds = _movebound_instance()
        nl.x[0] = 50.0 + 1e-12  # a hair outside; within tolerance
        run_check("movebound.containment", nl, bounds)

    def test_violation_is_assertion_error(self):
        nl, bounds = _movebound_instance()
        nl.x[0] = 80.0
        with pytest.raises(AssertionError):
            run_check("movebound.containment", nl, bounds)


class TestPipelineUnderGate:
    def test_full_fbp_pass_with_invariants_on(self):
        """End to end: a real partitioning pass keeps all invariants."""
        from repro.fbp import fbp_partition
        from tests.conftest import build_random_netlist

        bounds = MoveBoundSet(DIE)
        bounds.add_rects("left", [Rect(0, 0, 50, 100)])

        def mb_of(i):
            return "left" if i < 10 else None

        nl = build_random_netlist(40, 30, seed=3, die=DIE,
                                  movebound_of=mb_of)
        dec = decompose_regions(DIE, bounds, nl.blockages)
        grid = Grid(DIE, 2, 2)
        grid.build_regions(dec)
        with checking(True):
            report = fbp_partition(nl, bounds, grid, density_target=0.9)
        assert report.feasible
