"""Min-cut witness exactness against the brute-force condition-(1)
oracle, infeasibility diagnosis, and graceful degradation via capacity
relaxation."""

import pytest

from repro.feasibility import check_feasibility, condition_one_all_subsets
from repro.geometry import Rect, RectSet
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist
from repro.place import (
    BonnPlaceFBP,
    BonnPlaceOptions,
    InfeasiblePlacementError,
)
from repro.resilience import (
    InfeasibleInputError,
    diagnose_infeasibility,
    relax_to_feasible,
    reset_faults,
    set_default_budget,
)

DIE = Rect(0, 0, 100, 100)


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    yield
    reset_faults()
    set_default_budget(None)


def _netlist_with(counts):
    """counts: {movebound_name_or_None: (num_cells, size)}"""
    nl = Netlist(DIE)
    i = 0
    for mb, (num, size) in counts.items():
        for _ in range(num):
            nl.add_cell(f"c{i}", size, 1.0, movebound=mb)
            i += 1
    nl.finalize()
    return nl


def _witness_demand_capacity(nl, mbs, witness, density=1.0):
    """Recompute both sides of condition (1) for a subset, from scratch."""
    sizes = {}
    for c in nl.cells:
        if c.fixed or c.movebound is None:
            continue
        sizes[c.movebound] = sizes.get(c.movebound, 0.0) + c.size
    union = RectSet()
    for b in mbs.all_bounds():
        if b.name in witness:
            union = union.union(b.area)
    demand = sum(sizes.get(name, 0.0) for name in witness)
    capacity = union.subtract(nl.blockages).area * density
    return demand, capacity


class TestWitnessExactness:
    def test_single_violator(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("a", [Rect(0, 0, 10, 10)])
        nl = _netlist_with({"a": (80, 2.0)})  # 160 into 100
        report = check_feasibility(nl, mbs)
        assert not report.feasible
        assert report.witness == frozenset({"a"})
        # the witness really violates condition (1)
        demand, capacity = _witness_demand_capacity(nl, mbs, report.witness)
        assert demand > capacity

    def test_joint_violation_needs_both(self):
        """Each bound fits alone (80 into 100) but jointly they violate
        (160 into the same 100) — the witness must be exactly {a, b}."""
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("a", [Rect(0, 0, 10, 10)])
        mbs.add_rects("b", [Rect(0, 0, 10, 10)])
        nl = _netlist_with({"a": (40, 2.0), "b": (40, 2.0)})
        report = check_feasibility(nl, mbs)
        assert not report.feasible
        assert report.witness == frozenset({"a", "b"})
        # neither singleton violates — only the pair does
        for single in ({"a"}, {"b"}):
            d, c = _witness_demand_capacity(nl, mbs, single)
            assert d <= c
        d, c = _witness_demand_capacity(nl, mbs, report.witness)
        assert d > c

    def test_witness_matches_oracle(self):
        """The min-cut witness must itself be a violating subset the
        exponential oracle would accept."""
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("a", [Rect(0, 0, 10, 10)])
        mbs.add_rects("b", [Rect(5, 5, 15, 15)])
        mbs.add_rects("ok", [Rect(50, 50, 90, 90)])
        nl = _netlist_with(
            {"a": (50, 2.0), "b": (50, 2.0), "ok": (10, 2.0)}
        )
        report = check_feasibility(nl, mbs)
        assert not report.feasible
        oracle = condition_one_all_subsets(nl, mbs)
        assert oracle is not None
        # the uninvolved bound stays out of the witness
        assert "ok" not in report.witness
        d, c = _witness_demand_capacity(nl, mbs, report.witness)
        assert d > c

    def test_feasible_has_no_witness(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("a", [Rect(0, 0, 30, 30)])
        nl = _netlist_with({"a": (40, 2.0)})
        report = check_feasibility(nl, mbs)
        assert report.feasible and report.witness is None
        assert condition_one_all_subsets(nl, mbs) is None


class TestDiagnosis:
    def test_summary_names_both_sides(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 10, 10)])
        nl = _netlist_with({"m": (80, 2.0)})
        diagnosis = diagnose_infeasibility(nl, mbs)
        assert diagnosis is not None
        assert diagnosis.witness == frozenset({"m"})
        assert diagnosis.demand == pytest.approx(160.0)
        assert diagnosis.capacity == pytest.approx(100.0)
        assert diagnosis.deficit == pytest.approx(60.0)
        assert diagnosis.relaxation_needed == pytest.approx(1.6)
        s = diagnosis.summary()
        assert "['m']" in s and "condition (1)" in s
        assert "160.0" in s and "100.0" in s

    def test_feasible_returns_none(self):
        nl = _netlist_with({None: (10, 2.0)})
        assert diagnose_infeasibility(nl, MoveBoundSet(DIE)) is None

    def test_reuses_caller_report(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 10, 10)])
        nl = _netlist_with({"m": (80, 2.0)})
        report = check_feasibility(nl, mbs)
        diagnosis = diagnose_infeasibility(nl, mbs, report=report)
        assert diagnosis.witness == report.witness


class TestRelaxation:
    def test_finds_minimal_factor(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 10, 10)])
        nl = _netlist_with({"m": (80, 2.0)})  # needs exactly 1.6x
        factor, report = relax_to_feasible(nl, mbs)
        assert report.feasible
        assert 1.6 <= factor <= 1.7  # minimal up to bisection tolerance

    def test_already_feasible_returns_one(self):
        nl = _netlist_with({None: (10, 2.0)})
        factor, report = relax_to_feasible(nl, MoveBoundSet(DIE))
        assert factor == 1.0 and report.feasible

    def test_hopeless_instance_raises(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 2, 5)])  # capacity 10
        nl = _netlist_with({"m": (500, 2.0)})  # needs 100x > max_relax
        with pytest.raises(InfeasibleInputError, match="stays infeasible"):
            relax_to_feasible(nl, mbs)


class TestPlacerIntegration:
    def _infeasible_instance(self):
        from repro.workloads import NetlistSpec, generate_netlist

        spec = NetlistSpec("witness", 120, utilization=0.4, num_pads=8)
        nl, _logical = generate_netlist(spec, seed=0)
        bounds = MoveBoundSet(nl.die)
        # sized so the deficit is real but within the 8x relaxation cap
        side = nl.die.width * 0.35
        bounds.add_rects("tiny", [Rect(0, 0, side, side)])
        for c in nl.cells[:100]:
            c.movebound = "tiny"
        return nl, bounds

    def test_error_carries_witness(self):
        nl, bounds = self._infeasible_instance()
        with pytest.raises(InfeasiblePlacementError) as ei:
            BonnPlaceFBP().place(nl, bounds)
        exc = ei.value
        assert exc.exit_code == 2
        assert exc.witness is not None and "tiny" in exc.witness
        assert exc.deficit > 0
        d, c = _witness_demand_capacity(
            nl, bounds, exc.witness, density=0.97
        )
        assert d > c

    def test_relax_infeasible_places_anyway(self):
        nl, bounds = self._infeasible_instance()
        placer = BonnPlaceFBP(
            BonnPlaceOptions(
                relax_infeasible=True, legalize=False, max_levels=2
            )
        )
        result = placer.place(nl, bounds)
        assert placer.relax_factor > 1.0
        assert result.hpwl > 0
