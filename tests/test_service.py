"""Placement service: protocol, admission control, job store, and a
fast daemon smoke lane.

Chaos testing (SIGKILL anywhere, crash loops, corrupted results) lives
in ``test_service_chaos.py`` behind the ``slow`` marker; this module
must stay quick enough for the default test lane.
"""

import json
import os
import signal
import subprocess
import sys
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.bookshelf import save_instance
from repro.cli import main
from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist, Pin
from repro.resilience import (
    EXIT_SERVICE,
    JobCancelledError,
    PipelineStageError,
    ReproError,
    ServiceOverloadError,
)
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    JobSpec,
    ServiceClient,
)
from repro.service.jobs import JobRecord, JobStore
from repro.service.protocol import (
    decode_line,
    encode_message,
    error_from_payload,
    error_payload,
)
from repro.service.worker import (
    read_result,
    run_job_to_file,
    write_result,
)

DIE = Rect(0, 0, 100, 100)


def _write_instance(path, name="svc", cells=40, seed=0):
    rng = np.random.default_rng(seed)
    nl = Netlist(DIE, name=name)
    for i in range(cells):
        nl.add_cell(f"c{i}", 2.0, 1.0)
    for i in range(0, cells - 2, 2):
        nl.add_net(f"n{i}", [Pin(i), Pin(i + 1), Pin((i + 7) % cells)])
    nl.finalize()
    nl.x[:] = rng.uniform(5, 95, nl.num_cells)
    nl.y[:] = rng.uniform(5, 95, nl.num_cells)
    os.makedirs(str(path), exist_ok=True)
    save_instance(str(path), nl, MoveBoundSet(DIE))
    return name


def _spec(inst_dir, name="svc", kind="check", **kw):
    return JobSpec(kind=kind, instance=name, dir=str(inst_dir), **kw)


def _record(job_id, seq, tenant="default", priority=0, state="queued"):
    return JobRecord(
        job_id=job_id,
        spec=JobSpec(kind="check", instance="x", dir="/x",
                     tenant=tenant, priority=priority),
        state=state,
        seq=seq,
    )


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_spec_roundtrip(self):
        spec = JobSpec(
            kind="replace", instance="ibm01", dir="/data", tenant="t1",
            priority=3, options={"density": 0.9},
            movebound_patch=[{"name": "m", "rects": [[0, 0, 1, 1]]}],
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_validate_rejects_bad_kind(self):
        with pytest.raises(PipelineStageError, match="kind"):
            JobSpec(kind="explode", instance="x", dir="/x").validate()

    def test_validate_rejects_unknown_option(self):
        spec = JobSpec(kind="place", instance="x", dir="/x",
                       options={"warp_speed": True})
        with pytest.raises(PipelineStageError, match="warp_speed"):
            spec.validate()

    def test_message_roundtrip(self):
        msg = {"op": "submit", "spec": {"kind": "check"}}
        assert decode_line(encode_message(msg)) == msg

    def test_oversized_line_rejected(self):
        with pytest.raises(PipelineStageError, match="line"):
            decode_line(b"x" * (2 << 20))

    def test_error_payload_roundtrip(self):
        exc = ServiceOverloadError("full", tenant="t9", stage="svc.accept")
        back = error_from_payload(error_payload(exc))
        assert isinstance(back, ServiceOverloadError)
        assert back.exit_code == EXIT_SERVICE
        assert "full" in str(back)

    def test_unknown_error_type_degrades_with_exit_code(self):
        back = error_from_payload(
            {"type": "FutureError", "exit_code": 7, "message": "?"}
        )
        assert isinstance(back, ReproError)
        assert back.exit_code == 7


# ----------------------------------------------------------------------
# admission control (pure decisions, no daemon)
# ----------------------------------------------------------------------
class TestAdmission:
    def _ctl(self, **kw):
        return AdmissionController(AdmissionPolicy(**kw))

    def test_admits_with_capacity(self):
        ctl = self._ctl(max_queue=4)
        assert ctl.admit(_record("j1", 0), [], []) is None

    def test_refuses_full_queue_of_equal_priority(self):
        ctl = self._ctl(max_queue=2)
        queued = [_record("j1", 0), _record("j2", 1)]
        with pytest.raises(ServiceOverloadError, match="queue full"):
            ctl.admit(_record("j3", 2), queued, [])

    def test_sheds_oldest_lowest_priority_for_higher(self):
        ctl = self._ctl(max_queue=2)
        queued = [
            _record("j1", 0, priority=1),
            _record("j2", 1, priority=0),
            ]
        victim = ctl.admit(_record("j3", 2, priority=5), queued, [])
        assert victim is not None and victim.job_id == "j2"

    def test_shed_choice_is_deterministic(self):
        # lowest priority first, then oldest admission seq
        queued = [
            _record("a", 3, priority=0),
            _record("b", 1, priority=0),
            _record("c", 0, priority=2),
        ]
        victim = AdmissionController.shed_victim(queued)
        assert victim.job_id == "b"

    def test_tenant_queue_cap(self):
        ctl = self._ctl(tenant_max_queued=1, max_queue=10)
        queued = [_record("j1", 0, tenant="acme")]
        with pytest.raises(ServiceOverloadError, match="acme"):
            ctl.admit(_record("j2", 1, tenant="acme"), queued, [])
        # other tenants are unaffected
        assert ctl.admit(_record("j3", 2, tenant="zen"), queued, []) is None

    def test_quota_refusal_and_budget_derivation(self):
        ctl = self._ctl(tenant_quota_seconds=10.0, job_timeout=300.0)
        assert ctl.job_budget_seconds("t") == 10.0
        ctl.charge("t", 9.0)
        assert ctl.job_budget_seconds("t") == 1.0
        ctl.charge("t", 2.0)
        with pytest.raises(ServiceOverloadError, match="quota"):
            ctl.admit(_record("j1", 0, tenant="t"), [], [])

    def test_backoff_doubles_and_caps(self):
        ctl = self._ctl(backoff_base=0.25, backoff_cap=1.0)
        assert ctl.backoff_delay(1) == 0.25
        assert ctl.backoff_delay(2) == 0.5
        assert ctl.backoff_delay(3) == 1.0
        assert ctl.backoff_delay(9) == 1.0

    def test_respawn_rate_cap(self):
        ctl = self._ctl(respawn_cap=2, respawn_window=100.0)
        assert ctl.may_spawn(now=0.0)
        ctl.note_spawn(now=0.0)
        ctl.note_spawn(now=1.0)
        assert not ctl.may_spawn(now=2.0)
        # tokens free up once spawns age out of the window
        assert ctl.may_spawn(now=200.0)


# ----------------------------------------------------------------------
# durable job store
# ----------------------------------------------------------------------
class TestJobStore:
    def test_roundtrip_and_ordering(self, tmp_path):
        store = JobStore(str(tmp_path))
        for seq in range(3):
            rec = _record(store.next_job_id(), seq)
            store.save(rec)
        loaded = store.load_all()
        assert [r.job_id for r in loaded] == ["j000001", "j000002", "j000003"]
        assert all(r.state == "queued" for r in loaded)

    def test_corrupt_record_quarantined_not_fatal(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.save(_record(store.next_job_id(), 0))
        bad = store.record_path("j000002")
        with open(bad, "w") as f:
            f.write('{"job": {"half a reco')
        loaded = store.load_all()
        assert [r.job_id for r in loaded] == ["j000001"]
        qdir = os.path.join(str(tmp_path), "quarantine")
        assert os.listdir(qdir)

    def test_tampered_record_rejected(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.save(_record(store.next_job_id(), 0))
        path = store.record_path("j000001")
        outer = json.load(open(path))
        outer["job"]["state"] = "done"  # body no longer matches digest
        json.dump(outer, open(path, "w"))
        with pytest.raises(PipelineStageError, match="checksum"):
            store.load("j000001")


# ----------------------------------------------------------------------
# worker result commit point
# ----------------------------------------------------------------------
class TestWorkerResults:
    def test_check_job_to_result_file(self, tmp_path):
        inst = tmp_path / "inst"
        _write_instance(inst)
        job_dir = str(tmp_path / "job")
        run_job_to_file(_spec(inst), job_dir, allow_faults=False)
        payload, error = read_result(job_dir)
        assert error is None
        assert payload["feasible"] is True

    def test_error_outcome_is_committed_not_raised(self, tmp_path):
        job_dir = str(tmp_path / "job")
        spec = JobSpec(kind="check", instance="ghost",
                       dir=str(tmp_path / "nowhere"))
        run_job_to_file(spec, job_dir, allow_faults=False)
        payload, error = read_result(job_dir)
        assert payload is None
        assert error["exit_code"] >= 2

    def test_flipped_result_byte_detected(self, tmp_path):
        job_dir = str(tmp_path / "job")
        os.makedirs(job_dir)
        write_result(job_dir, payload={"ok": 1}, allow_faults=False)
        path = os.path.join(job_dir, "result.json")
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0x01
        open(path, "wb").write(bytes(raw))
        assert read_result(job_dir) is None

    def test_missing_result_is_none(self, tmp_path):
        assert read_result(str(tmp_path)) is None


# ----------------------------------------------------------------------
# daemon smoke (real daemon subprocess, tiny jobs)
# ----------------------------------------------------------------------
@contextmanager
def _daemon(state_dir, *flags):
    """A live ``repro serve`` subprocess on a Unix socket."""
    sock = os.path.join(str(state_dir), "svc.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir), "--socket", sock, *flags],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    assert "listening" in line, f"daemon failed to start: {line!r}"
    client = ServiceClient(sock, timeout=30.0)
    try:
        yield client, proc
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


@pytest.fixture
def inst_dir(tmp_path):
    path = tmp_path / "inst"
    _write_instance(path)
    return path


class TestDaemonSmoke:
    def test_ping_submit_result_lifecycle(self, tmp_path, inst_dir):
        state = tmp_path / "state"
        with _daemon(state) as (client, _proc):
            assert client.ping()["protocol"] == 1
            jid = client.submit(_spec(inst_dir))
            job = client.wait_for(jid, timeout=60)
            assert job["state"] == "done"
            assert job["result"]["feasible"] is True
            # the result op agrees with the status view
            assert client.result(jid)["result"]["feasible"] is True

    def test_place_job_produces_durable_placement(self, tmp_path, inst_dir):
        state = tmp_path / "state"
        with _daemon(state) as (client, _proc):
            jid = client.submit(_spec(inst_dir, kind="place"))
            job = client.wait_for(jid, timeout=120)
            assert job["state"] == "done"
            out = job["result"]
            assert out["legal"] is True
            assert os.path.exists(out["pl_file"])
            import hashlib

            got = hashlib.sha256(
                open(out["pl_file"], "rb").read()
            ).hexdigest()
            assert got == out["pl_sha256"]

    def test_cancel_job(self, tmp_path, inst_dir):
        state = tmp_path / "state"
        # single slot + a queued second job: cancel hits either a
        # queued or a running job, both must land in "cancelled"
        with _daemon(state, "--max-running", "1") as (client, _proc):
            client.submit(_spec(inst_dir, kind="place"))
            jid2 = client.submit(_spec(inst_dir, kind="place"))
            client.cancel(jid2)
            job = client.wait_for(jid2, timeout=30)
            assert job["state"] == "cancelled"
            with pytest.raises(JobCancelledError):
                client.result(jid2)

    def test_overload_is_structured_exit_5(self, tmp_path, inst_dir,
                                           capsys):
        state = tmp_path / "state"
        # a zero-length tenant queue refuses every submit immediately:
        # deterministic overload without timing games
        with _daemon(state, "--tenant-max-queued", "0") as (client, _proc):
            with pytest.raises(ServiceOverloadError):
                client.submit(_spec(inst_dir))
            rc = main([
                "submit", "svc", "--dir", str(inst_dir),
                "--socket", client.socket_path,
            ])
            assert rc == EXIT_SERVICE == 5
            assert "error:" in capsys.readouterr().err

    def test_unknown_op_is_structured_error(self, tmp_path):
        state = tmp_path / "state"
        with _daemon(state) as (client, _proc):
            with pytest.raises(ReproError):
                client.request({"op": "frobnicate"})
            # daemon survives the bad request
            assert client.ping()["ok"]

    def test_status_of_unknown_job_errors(self, tmp_path):
        state = tmp_path / "state"
        with _daemon(state) as (client, _proc):
            with pytest.raises(ReproError, match="j999999"):
                client.status("j999999")
