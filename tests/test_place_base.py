"""Tests for PlacerResult bookkeeping and the RQL/Kraftwerk internals."""

import numpy as np
import pytest

from repro.legalize import LegalityReport
from repro.place.base import PlacementError, PlacerResult
from repro.place.rql import _shift_axis


class TestPlacerResult:
    def _result(self, **kw):
        defaults = dict(
            placer="p", instance="i", hpwl=10.0,
            global_seconds=3.0, legal_seconds=1.0,
        )
        defaults.update(kw)
        return PlacerResult(**defaults)

    def test_total_seconds(self):
        assert self._result().total_seconds == 4.0

    def test_global_fraction(self):
        assert self._result().global_fraction == pytest.approx(0.75)

    def test_global_fraction_zero_total(self):
        r = self._result(global_seconds=0.0, legal_seconds=0.0)
        assert r.global_fraction == 0.0

    def test_violations_without_report(self):
        assert self._result().violations == 0

    def test_violations_with_report(self):
        rep = LegalityReport(movebound_violations=7)
        assert self._result(legality=rep).violations == 7

    def test_placement_error_is_runtime_error(self):
        assert issubclass(PlacementError, RuntimeError)


class TestCellShifting:
    def test_balanced_bins_no_move(self):
        coords = np.array([1.0, 3.0, 5.0, 7.0, 9.0])
        usage = np.array([1.0, 1.0, 1.0, 1.0, 1.0])
        out = _shift_axis(coords, usage, 0.0, 10.0, damping=0.8)
        assert np.allclose(out, coords)

    def test_overfull_bin_pushes_outward(self):
        # all mass in the middle bin: its boundaries move apart
        coords = np.array([4.2, 5.0, 5.8])
        usage = np.array([0.0, 0.0, 6.0, 0.0, 0.0])
        out = _shift_axis(coords, usage, 0.0, 10.0, damping=0.8)
        # left cell moves left, right cell moves right
        assert out[0] < coords[0]
        assert out[2] > coords[2]

    def test_monotone_mapping(self):
        rng = np.random.default_rng(0)
        coords = np.sort(rng.uniform(0, 10, 50))
        usage = rng.uniform(0, 5, 8)
        out = _shift_axis(coords, usage, 0.0, 10.0, damping=0.7)
        assert np.all(np.diff(out) >= -1e-9)  # order preserved

    def test_stays_in_range(self):
        rng = np.random.default_rng(1)
        coords = rng.uniform(0, 10, 80)
        usage = rng.uniform(0, 9, 6)
        out = _shift_axis(coords, usage, 0.0, 10.0, damping=0.9)
        assert np.all(out >= -1e-9) and np.all(out <= 10 + 1e-9)

    def test_zero_usage_identity(self):
        coords = np.array([2.0, 8.0])
        usage = np.zeros(4)
        out = _shift_axis(coords, usage, 0.0, 10.0, damping=0.5)
        assert np.allclose(out, coords)
