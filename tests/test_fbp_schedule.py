"""Tests for the deterministic parallel realization schedule."""

import pytest

from repro.fbp import build_fbp_model, compute_schedule
from repro.fbp.schedule import ParallelSchedule
from repro.fbp.model import ExternalArc
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


def _schedule(seed=0, nx=6, num_cells=200, clustered=True):
    nl = build_random_netlist(num_cells, 120, seed, DIE)
    if clustered:
        # pile the cells into one corner so flow must cross windows
        import numpy as np

        rng = np.random.default_rng(seed)
        movable = [c.index for c in nl.cells if not c.fixed]
        # overload a single window column so flow must spill outward
        nl.x[movable] = rng.uniform(2, 14, len(movable))
        nl.y[movable] = rng.uniform(2, 14, len(movable))
    mbs = MoveBoundSet(DIE)
    dec = decompose_regions(DIE, mbs)
    grid = Grid(DIE, nx, nx)
    grid.build_regions(dec)
    model = build_fbp_model(nl, mbs, grid, density_target=0.8)
    result = model.solve("ssp")
    assert result.feasible
    flows = model.external_flows(result)
    return model, flows, compute_schedule(model, flows), grid


class TestSchedule:
    def test_covers_all_arcs(self):
        from repro.fbp.realization import cancel_external_cycles

        model, flows, schedule, _grid = _schedule()
        expected = len(cancel_external_cycles(flows))
        assert schedule.num_arcs == expected

    def test_rounds_are_independent(self):
        """Within a round, coarse blocks must be pairwise disjoint —
        the paper's condition for parallel realization."""
        model, _flows, schedule, grid = _schedule(seed=1)
        for round_arcs in schedule.rounds:
            used = set()
            for arc in round_arcs:
                block = {
                    w.index
                    for w in grid.coarse_block(
                        grid.windows[arc.src_window],
                        grid.windows[arc.dst_window],
                    )
                }
                assert not (block & used)
                used |= block

    def test_respects_dependencies(self):
        """A same-bound arc into this arc's source window must never be
        scheduled in a later round."""
        found_arcs = False
        for seed in range(6):
            model, _flows, schedule, _grid = _schedule(seed=seed)
            round_of = {}
            for rnd, round_arcs in enumerate(schedule.rounds):
                for arc in round_arcs:
                    round_of[arc.arc_id] = (rnd, arc)
            if round_of:
                found_arcs = True
            for aid, (rnd, arc) in round_of.items():
                for oid, (ornd, other) in round_of.items():
                    if (
                        other.bound == arc.bound
                        and other.dst_window == arc.src_window
                    ):
                        assert ornd <= rnd
        assert found_arcs, "no test instance produced external flow"

    def test_speedup_bounds(self):
        _m, _f, schedule, _g = _schedule(seed=3)
        if schedule.num_arcs == 0:
            return
        s1 = schedule.speedup(1)
        s8 = schedule.speedup(8)
        assert s1 <= 1.0 + 1e-9
        assert 1.0 <= s8 <= 8.0 + 1e-9

    def test_deterministic(self):
        a = _schedule(seed=4)[2]
        b = _schedule(seed=4)[2]
        assert [
            [arc.arc_id for arc in r] for r in a.rounds
        ] == [[arc.arc_id for arc in r] for r in b.rounds]

    def test_empty_schedule(self):
        schedule = ParallelSchedule()
        assert schedule.speedup(8) == 1.0
        assert schedule.num_arcs == 0
        assert schedule.max_parallelism == 0
