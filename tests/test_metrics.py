"""Tests for density maps, ISPD2006 scoring and tables."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.metrics import (
    DensityMap,
    Table,
    cpu_factor,
    density_penalty,
    format_hms,
    ispd2006_score,
)
from repro.metrics.tables import format_ratio
from repro.netlist import Netlist

DIE = Rect(0, 0, 10, 10)


def _netlist(cells):
    nl = Netlist(DIE)
    for i, (x, y, w, h) in enumerate(cells):
        nl.add_cell(f"c{i}", w, h, x=x, y=y)
    nl.finalize()
    return nl


class TestDensityMap:
    def test_usage_equals_cell_area(self):
        nl = _netlist([(5, 5, 2, 2), (2, 2, 1, 1)])
        dmap = DensityMap(nl, 5, 5)
        assert dmap.usage.sum() == pytest.approx(5.0)

    def test_exact_splatting_across_bins(self):
        nl = _netlist([(2, 2, 4, 4)])  # spans bins [0,2)x[0,2) evenly
        dmap = DensityMap(nl, 5, 5)  # bins 2x2
        assert dmap.usage[0, 0] == pytest.approx(4.0)
        assert dmap.usage[1, 1] == pytest.approx(4.0)
        assert dmap.usage[0, 1] == pytest.approx(4.0)

    def test_capacity_excludes_blockage(self):
        nl = _netlist([(5, 5, 1, 1)])
        nl.blockages = nl.blockages.union(
            type(nl.blockages)([Rect(0, 0, 2, 2)])
        )
        dmap = DensityMap(nl, 5, 5)
        assert dmap.capacity[0, 0] == pytest.approx(0.0)
        assert dmap.capacity.sum() == pytest.approx(96.0)

    def test_fixed_cell_excluded_from_usage(self):
        nl = Netlist(DIE)
        nl.add_cell("f", 2, 2, x=5, y=5, fixed=True)
        nl.finalize()
        dmap = DensityMap(nl, 5, 5)
        assert dmap.usage.sum() == pytest.approx(0.0)
        assert dmap.capacity.sum() == pytest.approx(96.0)

    def test_overflow(self):
        nl = _netlist([(1, 1, 2, 2)])  # 4 area in a 4-area bin
        dmap = DensityMap(nl, 5, 5)
        assert dmap.total_overflow(1.0) == pytest.approx(0.0)
        assert dmap.total_overflow(0.5) == pytest.approx(2.0)
        assert dmap.overflow_ratio(0.5) == pytest.approx(0.5)

    def test_utilization_and_max(self):
        nl = _netlist([(1, 1, 2, 2)])
        dmap = DensityMap(nl, 5, 5)
        assert dmap.max_utilization() == pytest.approx(1.0)

    def test_update_tracks_movement(self):
        nl = _netlist([(1, 1, 2, 2)])
        dmap = DensityMap(nl, 5, 5)
        nl.x[0], nl.y[0] = 9, 9
        dmap.update()
        assert dmap.usage[4, 4] == pytest.approx(4.0)
        assert dmap.usage[0, 0] == pytest.approx(0.0)

    def test_bin_lookup(self):
        nl = _netlist([(5, 5, 1, 1)])
        dmap = DensityMap(nl, 5, 5)
        assert dmap.bin_of(0.1, 9.9) == (0, 4)
        cx, cy = dmap.bin_center(0, 0)
        assert (cx, cy) == (1.0, 1.0)


class TestISPD2006:
    def test_density_penalty_zero_when_spread(self):
        cells = [(x + 0.5, y + 0.5, 0.5, 0.5)
                 for x in range(10) for y in range(10)]
        nl = _netlist(cells)
        assert density_penalty(nl, 0.5, bins=5) == pytest.approx(0.0)

    def test_density_penalty_positive_when_clumped(self):
        cells = [(1 + 0.2 * i, 1, 1, 1) for i in range(20)]
        nl = _netlist(cells)
        assert density_penalty(nl, 0.5, bins=5) > 0

    def test_cpu_factor_bonus(self):
        assert cpu_factor(1.0, 4.0) == pytest.approx(-0.08)

    def test_cpu_factor_truncated(self):
        # paper: bonus truncated at -10%
        assert cpu_factor(1.0, 100.0) == pytest.approx(-0.10)

    def test_cpu_factor_penalty_untruncated(self):
        assert cpu_factor(8.0, 1.0) == pytest.approx(0.12)

    def test_cpu_factor_degenerate(self):
        assert cpu_factor(0.0, 1.0) == 0.0

    def test_score_composition(self):
        nl = _netlist([(2, 2, 1, 1), (8, 8, 1, 1)])
        from repro.netlist import Pin

        nl.add_net("n", [Pin(0), Pin(1)])
        score = ispd2006_score(nl, 0.9, runtime=2.0, reference_runtime=2.0)
        assert score.hpwl == pytest.approx(12.0)
        assert score.cpu == pytest.approx(0.0)
        assert score.scaled_hd == pytest.approx(12.0 * (1 + score.dens))
        assert score.scaled_hdc == pytest.approx(score.scaled_hd)


class TestTables:
    def test_format_hms(self):
        assert format_hms(0) == "0:00:00"
        assert format_hms(3725) == "1:02:05"
        assert format_hms(59.6) == "0:01:00"

    def test_format_ratio(self):
        assert format_ratio(83.2, 100.0) == "83.2%"
        assert format_ratio(1, 0) == "n/a"

    def test_table_render(self):
        t = Table(["Chip", "HPWL"], title="Demo")
        t.add_row("Dagmar", "0.95")
        out = t.render()
        assert "Demo" in out and "Dagmar" in out
        lines = out.splitlines()
        assert len(lines) == 4  # title, header, rule, row

    def test_table_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")
