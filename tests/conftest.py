"""Shared fixtures: small deterministic netlists and movebound sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Rect
from repro.movebounds import EXCLUSIVE, MoveBoundSet
from repro.netlist import Netlist, Pin


@pytest.fixture
def die100() -> Rect:
    return Rect(0, 0, 100, 100)


@pytest.fixture
def small_netlist(die100) -> Netlist:
    """Ten 2x1 cells, chain-connected, pads in opposite corners."""
    nl = Netlist(die100, row_height=1.0, site_width=0.5, name="small")
    for i in range(10):
        nl.add_cell(f"c{i}", 2.0, 1.0, x=50.0, y=50.0)
    nl.finalize()
    nl.add_net("in", [Pin.terminal(0, 0), Pin(0)])
    for i in range(9):
        nl.add_net(f"n{i}", [Pin(i), Pin(i + 1)])
    nl.add_net("out", [Pin(9), Pin.terminal(100, 100)])
    return nl


def build_random_netlist(
    num_cells: int = 120,
    num_nets: int = 90,
    seed: int = 0,
    die: Rect = Rect(0, 0, 100, 100),
    movebound_of=None,
) -> Netlist:
    """Random netlist helper used by many test modules."""
    rng = np.random.default_rng(seed)
    nl = Netlist(die, row_height=1.0, site_width=0.5, name=f"rand{seed}")
    for i in range(num_cells):
        mb = movebound_of(i) if movebound_of else None
        nl.add_cell(
            f"c{i}",
            float(rng.choice([1.0, 1.5, 2.0])),
            1.0,
            x=float(rng.uniform(die.x_lo + 2, die.x_hi - 2)),
            y=float(rng.uniform(die.y_lo + 2, die.y_hi - 2)),
            movebound=mb,
        )
    nl.finalize()
    for j in range(num_nets):
        k = int(rng.integers(2, 5))
        members = rng.choice(num_cells, size=k, replace=False)
        nl.add_net(f"n{j}", [Pin(int(c)) for c in members])
    nl.add_net(
        "pad", [Pin.terminal(die.x_lo, die.y_lo), Pin(0), Pin(1)]
    )
    return nl


@pytest.fixture
def figure1_bounds(die100) -> MoveBoundSet:
    """The movebound arrangement of the paper's Figure 1: exclusive N,
    inclusive M with L nested inside."""
    mbs = MoveBoundSet(die100)
    mbs.add_rects("N", [Rect(0, 60, 30, 100)], EXCLUSIVE)
    mbs.add_rects("M", [Rect(40, 20, 90, 80)])
    mbs.add_rects("L", [Rect(50, 30, 70, 60)])
    mbs.normalize()
    return mbs
