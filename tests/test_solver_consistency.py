"""Cross-backend consistency on real FBP instances.

The three MCF backends (ssp / ns / lp) must agree on feasibility and
optimal cost for the actual model the placer builds — not just on
random graphs.
"""

import numpy as np
import pytest

from repro.fbp import build_fbp_model
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.workloads import (
    MoveBoundSpec,
    NetlistSpec,
    attach_movebounds,
    generate_netlist,
)


def _model(seed=0, num_cells=180, with_bounds=True, n=4):
    spec = NetlistSpec("cons", num_cells, utilization=0.55, num_pads=8)
    nl, logical = generate_netlist(spec, seed=seed)
    if with_bounds:
        bounds = attach_movebounds(
            nl, logical,
            [MoveBoundSpec("a", 0.15, density=0.7),
             MoveBoundSpec("b", 0.10, density=0.7)],
            seed=seed,
        )
    else:
        bounds = MoveBoundSet(nl.die)
    dec = decompose_regions(nl.die, bounds, nl.blockages)
    grid = Grid(nl.die, n, n)
    grid.build_regions(dec)
    return build_fbp_model(nl, bounds, grid, density_target=0.9)


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_cost_agreement_with_bounds(self, seed):
        model = _model(seed=seed)
        results = {m: model.solve(m) for m in ("ssp", "ns", "lp")}
        feas = {m: r.feasible for m, r in results.items()}
        assert len(set(feas.values())) == 1
        if results["ssp"].feasible:
            costs = [r.cost for r in results.values()]
            assert max(costs) - min(costs) <= 1e-5 * max(costs[0], 1.0)

    def test_cost_agreement_unconstrained(self):
        model = _model(seed=7, with_bounds=False, n=6)
        r1, r2 = model.solve("ns"), model.solve("lp")
        assert r1.feasible and r2.feasible
        assert r1.cost == pytest.approx(r2.cost, rel=1e-6, abs=1e-5)

    def test_external_flow_totals_agree(self):
        """Different optima may route differently, but per-movebound
        *net* exchange between window pairs... may differ; what must
        agree is the prescribed (bound, window) content totals when
        the optimum is unique enough — here we check the invariant
        that holds for ANY optimum: total prescribed content equals
        supply for each bound."""
        model = _model(seed=3)
        for method in ("ssp", "ns"):
            result = model.solve(method)
            content = model.prescribed_content(result)
            per_bound = {}
            for (bound, _w), area in content.items():
                per_bound[bound] = per_bound.get(bound, 0.0) + area
            supply_per_bound = {}
            for (bound, _w), s in model.group_supply.items():
                supply_per_bound[bound] = (
                    supply_per_bound.get(bound, 0.0) + s
                )
            for bound, total in supply_per_bound.items():
                assert per_bound[bound] == pytest.approx(total, abs=1e-6)

    def test_auto_backend_valid(self):
        model = _model(seed=5)
        auto = model.solve("auto")
        ssp = model.solve("ssp")
        assert auto.feasible == ssp.feasible
        if ssp.feasible:
            assert auto.cost == pytest.approx(ssp.cost, rel=1e-6, abs=1e-5)
