"""Tests for Theorems 1 and 2: feasibility with movebounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.feasibility import (
    check_feasibility,
    check_feasibility_cell_level,
    condition_one_all_subsets,
)
from repro.geometry import Rect
from repro.movebounds import EXCLUSIVE, MoveBoundSet
from repro.netlist import Netlist

DIE = Rect(0, 0, 100, 100)


def _netlist_with(counts):
    """counts: {movebound_name_or_None: (num_cells, size)}"""
    nl = Netlist(DIE)
    i = 0
    for mb, (num, size) in counts.items():
        for _ in range(num):
            nl.add_cell(f"c{i}", size, 1.0, movebound=mb)
            i += 1
    nl.finalize()
    return nl


class TestFeasible:
    def test_unconstrained_fits(self):
        nl = _netlist_with({None: (50, 2.0)})
        report = check_feasibility(nl, MoveBoundSet(DIE))
        assert report.feasible
        assert report.total_cell_area == pytest.approx(100.0)

    def test_single_bound_fits(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 20, 20)])
        nl = _netlist_with({"m": (50, 2.0)})  # 100 into 400
        assert check_feasibility(nl, mbs).feasible

    def test_single_bound_overflows(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 10, 10)])
        nl = _netlist_with({"m": (80, 2.0)})  # 160 into 100
        report = check_feasibility(nl, mbs)
        assert not report.feasible
        assert report.witness == frozenset({"m"})
        assert report.deficit == pytest.approx(60.0)

    def test_union_overflow_witness(self):
        """Each bound fits alone, but their union does not — the
        subset condition (1) catches it."""
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("a", [Rect(0, 0, 10, 10)])
        mbs.add_rects("b", [Rect(0, 0, 10, 10)])  # same area
        nl = _netlist_with({"a": (30, 2.0), "b": (30, 2.0)})  # 120 > 100
        report = check_feasibility(nl, mbs)
        assert not report.feasible
        assert report.witness == frozenset({"a", "b"})

    def test_exclusive_squeezes_default(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("x", [Rect(0, 0, 99, 99)], EXCLUSIVE)
        nl = _netlist_with({"x": (1, 1.0), None: (300, 2.0)})
        report = check_feasibility(nl, mbs)
        assert not report.feasible  # default cells have ~199 units left

    def test_density_target_scales(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 10, 10)])
        nl = _netlist_with({"m": (45, 2.0)})  # 90 into 100
        assert check_feasibility(nl, mbs, density_target=1.0).feasible
        assert not check_feasibility(nl, mbs, density_target=0.8).feasible

    def test_fixed_cells_ignored(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 10, 10)])
        nl = Netlist(DIE)
        for i in range(200):
            nl.add_cell(f"f{i}", 2, 1, fixed=True, movebound="m")
        nl.finalize()
        assert check_feasibility(nl, mbs).feasible


class TestTheoremEquivalence:
    def _random_instance(self, seed):
        rng = np.random.default_rng(seed)
        mbs = MoveBoundSet(DIE)
        num_bounds = int(rng.integers(1, 4))
        for i in range(num_bounds):
            x, y = rng.integers(0, 60, 2)
            w, h = rng.integers(10, 40, 2)
            mbs.add_rects(
                f"m{i}", [Rect(x, y, min(x + w, 100), min(y + h, 100))]
            )
        counts = {}
        for i in range(num_bounds):
            counts[f"m{i}"] = (int(rng.integers(1, 120)), 2.0)
        counts[None] = (int(rng.integers(0, 100)), 2.0)
        return _netlist_with(counts), mbs

    @pytest.mark.parametrize("seed", range(15))
    def test_thm1_equals_thm2(self, seed):
        nl, mbs = self._random_instance(seed)
        clustered = check_feasibility(nl, mbs)
        cell_level = check_feasibility_cell_level(nl, mbs)
        assert clustered.feasible == cell_level.feasible
        assert clustered.routed_area == pytest.approx(
            cell_level.routed_area, rel=1e-6
        )

    @pytest.mark.parametrize("seed", range(15))
    def test_thm2_equals_subset_enumeration(self, seed):
        nl, mbs = self._random_instance(seed)
        report = check_feasibility(nl, mbs)
        violating = condition_one_all_subsets(nl, mbs)
        assert report.feasible == (violating is None)

    def test_witness_is_actually_violating(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("a", [Rect(0, 0, 10, 10)])
        mbs.add_rects("b", [Rect(5, 5, 15, 15)])
        nl = _netlist_with({"a": (40, 2.0), "b": (40, 2.0)})
        report = check_feasibility(nl, mbs)
        if not report.feasible:
            # verify the witness against brute force
            violating = condition_one_all_subsets(nl, mbs)
            assert violating is not None

    def test_subset_enumeration_guard(self):
        mbs = MoveBoundSet(DIE)
        for i in range(15):
            mbs.add_rects(f"m{i}", [Rect(i, i, i + 1, i + 1)])
        nl = _netlist_with({None: (1, 1.0)})
        with pytest.raises(ValueError):
            condition_one_all_subsets(nl, mbs, max_bounds=10)
