"""The deterministic fault-injection harness: plan parsing, firing
semantics, every fallback edge of the solver chain, checkpoint/resume
of the multilevel schedule, and the CLI contract under injected faults
(mapped exit code + one-line diagnosis, never a traceback or a hang)."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.bookshelf import save_instance
from repro.flows.mincostflow import MinCostFlowProblem
from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist
from repro.place import BonnPlaceFBP, BonnPlaceOptions
from repro.resilience import (
    FaultPlan,
    InfeasibleInputError,
    PipelineStageError,
    ResilientSolver,
    ScheduleCheckpointer,
    SolverBudgetExceeded,
    SolverNumericsError,
    inject,
    install_fault_plan,
    perturbation,
    reset_faults,
    set_default_budget,
)

DIE = Rect(0, 0, 100, 100)
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    reset_faults()
    yield
    reset_faults()
    set_default_budget(None)


def _problem(n=4):
    p = MinCostFlowProblem()
    for i in range(n):
        p.add_node(("s", i), 1.0)
    for j in range(n):
        p.add_node(("t", j), -1.0)
    for i in range(n):
        for j in range(n):
            p.add_arc(("s", i), ("t", j), float(abs(i - j)))
    return p


class TestPlanParsing:
    def test_basic(self):
        plan = FaultPlan.parse("solver.ns=budget")
        rule = plan.rules["solver.ns"]
        assert rule.kind == "budget"
        assert rule.only_hit is None and rule.max_fires is None

    def test_multiple_entries_and_separators(self):
        plan = FaultPlan.parse("a=budget; b=numerics , c=stage")
        assert set(plan.rules) == {"a", "b", "c"}

    def test_only_hit(self):
        plan = FaultPlan.parse("site=stage@3")
        assert plan.rules["site"].only_hit == 3

    def test_max_fires(self):
        plan = FaultPlan.parse("site=numerics#2")
        assert plan.rules["site"].max_fires == 2

    def test_perturb_arg(self):
        plan = FaultPlan.parse("solver.costs=perturb:0.25")
        rule = plan.rules["solver.costs"]
        assert rule.kind == "perturb" and rule.arg == 0.25

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("x=explode")

    def test_bad_entry_rejected(self):
        with pytest.raises(ValueError, match="site=kind"):
            FaultPlan.parse("nonsense")


class TestFiring:
    def test_inject_raises_mapped_exception(self):
        install_fault_plan("x=stage")
        with pytest.raises(PipelineStageError) as ei:
            inject("x")
        assert ei.value.context.get("injected") is True
        inject("other-site")  # no rule -> no-op

    def test_kind_mapping(self):
        for kind, exc_type in (
            ("budget", SolverBudgetExceeded),
            ("numerics", SolverNumericsError),
            ("infeasible", InfeasibleInputError),
            ("stage", PipelineStageError),
        ):
            install_fault_plan(f"x={kind}")
            with pytest.raises(exc_type):
                inject("x")

    def test_solver_name_derived_from_site(self):
        install_fault_plan("solver.ns=budget")
        with pytest.raises(SolverBudgetExceeded) as ei:
            inject("solver.ns")
        assert ei.value.solver == "ns"

    def test_only_nth_hit_fires(self):
        install_fault_plan("x=stage@2")
        inject("x")  # hit 1: silent
        with pytest.raises(PipelineStageError):
            inject("x")  # hit 2: fires
        inject("x")  # hit 3: silent again

    def test_first_k_hits_fire(self):
        install_fault_plan("x=stage#2")
        for _ in range(2):
            with pytest.raises(PipelineStageError):
                inject("x")
        inject("x")  # disarmed

    def test_perturbation_returns_eps(self):
        install_fault_plan("solver.costs=perturb:0.125")
        inject("solver.costs")  # perturb rules never raise via inject
        assert perturbation("solver.costs") == 0.125
        assert perturbation("unplanned") == 0.0

    def test_no_plan_is_noop(self):
        inject("anything")
        assert perturbation("anything") == 0.0

    def test_deterministic_across_reinstall(self):
        for _ in range(2):
            install_fault_plan("x=stage@2")
            inject("x")
            with pytest.raises(PipelineStageError):
                inject("x")


class TestFallbackEdges:
    """Every edge of the ns -> ssp -> heur chain, driven by faults."""

    def test_ns_fails_ssp_recovers(self):
        install_fault_plan("solver.ns=budget")
        res = ResilientSolver(chain=("ns", "ssp", "heur")).solve(_problem())
        assert res.feasible
        assert [(a.method, a.ok) for a in res.attempts] == [
            ("ns", False),
            ("ssp", True),
        ]

    def test_ns_and_ssp_fail_heur_recovers(self):
        install_fault_plan("solver.ns=numerics;solver.ssp=budget")
        res = ResilientSolver(chain=("ns", "ssp", "heur")).solve(_problem())
        assert res.feasible
        assert [(a.method, a.ok) for a in res.attempts] == [
            ("ns", False),
            ("ssp", False),
            ("heur", True),
        ]
        assert res.attempts[0].error_type == "SolverNumericsError"
        assert res.attempts[1].error_type == "SolverBudgetExceeded"

    def test_whole_chain_fails(self):
        install_fault_plan(
            "solver.ns=budget;solver.ssp=budget;solver.heur=budget"
        )
        with pytest.raises(SolverBudgetExceeded) as ei:
            ResilientSolver(chain=("ns", "ssp", "heur")).solve(_problem())
        assert [a["method"] for a in ei.value.context["attempts"]] == [
            "ns",
            "ssp",
            "heur",
        ]

    def test_transient_fault_single_method(self):
        # @1: only the first solve of ns fails; a retry chain recovers
        install_fault_plan("solver.ns=numerics@1")
        with pytest.raises(SolverNumericsError):
            _problem().solve("ns")
        res = _problem().solve("ns")
        assert res.feasible

    def test_cost_perturbation_keeps_solve_feasible(self):
        install_fault_plan("solver.costs=perturb:0.001")
        res = _problem().solve("ssp")
        assert res.feasible
        ref = _problem().solve("ssp")
        assert res.cost == pytest.approx(ref.cost, abs=0.1)


class TestCheckpointer:
    def test_save_restore_roundtrip(self):
        nl = Netlist(DIE)
        for i in range(4):
            nl.add_cell(f"c{i}", 1.0, 1.0)
        nl.finalize()
        ckpt = ScheduleCheckpointer(nl)
        nl.x[:] = 1.0
        ckpt.save(1)
        nl.x[:] = 9.0
        assert ckpt.restore_latest() == 1
        assert np.all(nl.x == 1.0)
        assert ckpt.restores == 1

    def test_empty_restore_raises(self):
        nl = Netlist(DIE)
        nl.finalize()
        with pytest.raises(PipelineStageError, match="no checkpoint"):
            ScheduleCheckpointer(nl).restore_latest()

    def test_memory_bounded_to_latest_level(self):
        # Saving L levels must keep one snapshot, not L (the retry
        # protocol only ever restores the most recent level).
        nl = Netlist(DIE)
        for i in range(4):
            nl.add_cell(f"c{i}", 1.0, 1.0)
        nl.finalize()
        ckpt = ScheduleCheckpointer(nl)
        for level in range(1, 8):
            nl.x[:] = float(level)
            ckpt.save(level)
        assert ckpt.saves == 7
        assert ckpt.last_level == 7
        assert not hasattr(ckpt, "checkpoints")  # no growing stack
        nl.x[:] = -1.0
        assert ckpt.restore_latest() == 7
        assert np.all(nl.x == 7.0)


def _small_instance(num_cells=120, seed=0):
    from repro.workloads import NetlistSpec, generate_netlist

    spec = NetlistSpec("fitest", num_cells, utilization=0.5, num_pads=8)
    nl, _logical = generate_netlist(spec, seed=seed)
    return nl, MoveBoundSet(nl.die)


class TestPlacerRecovery:
    def test_transient_level_fault_recovers_via_checkpoint(self):
        nl, bounds = _small_instance()
        install_fault_plan("stage.place.level=stage@2")
        placer = BonnPlaceFBP(
            BonnPlaceOptions(max_levels=2, legalize=False)
        )
        result = placer.place(nl, bounds)  # level 2 fails once, retried
        assert result.hpwl > 0
        assert len(placer.level_reports) == 2

    def test_persistent_level_fault_names_level(self):
        nl, bounds = _small_instance(seed=1)
        install_fault_plan("stage.place.level=stage")
        placer = BonnPlaceFBP(
            BonnPlaceOptions(max_levels=2, legalize=False)
        )
        with pytest.raises(PipelineStageError) as ei:
            placer.place(nl, bounds)
        assert ei.value.level == 1
        assert ei.value.context.get("failed_after_retry") is True

    def test_solver_fault_recovers_without_checkpoint(self):
        # ns dies on every call; the in-chain ssp fallback absorbs it
        # before the checkpointer ever sees a failure
        nl, bounds = _small_instance(seed=2)
        install_fault_plan("solver.ns=budget")
        placer = BonnPlaceFBP(
            BonnPlaceOptions(max_levels=2, legalize=False)
        )
        result = placer.place(nl, bounds)
        assert result.hpwl > 0

    def test_deterministic_under_faults(self):
        results = []
        for _ in range(2):
            nl, bounds = _small_instance(seed=3)
            install_fault_plan("stage.place.level=stage@2")
            placer = BonnPlaceFBP(
                BonnPlaceOptions(max_levels=2, legalize=False)
            )
            results.append(placer.place(nl, bounds).hpwl)
            reset_faults()
        assert results[0] == pytest.approx(results[1])


def _run_cli(tmp_path, argv, fault_plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(tmp_path),
        timeout=300,
    )


def _write_instances(tmp_path):
    rng = np.random.default_rng(0)
    nl = Netlist(DIE, name="feas")
    for i in range(60):
        nl.add_cell(f"c{i}", 2.0, 1.0)
    nl.finalize()
    nl.x[:] = rng.uniform(5, 95, nl.num_cells)
    nl.y[:] = rng.uniform(5, 95, nl.num_cells)
    save_instance(str(tmp_path), nl, MoveBoundSet(DIE))

    bad = Netlist(DIE, name="infeas")
    for i in range(80):
        bad.add_cell(f"c{i}", 2.0, 1.0, movebound="tiny")
    bad.finalize()
    bad.x[:] = np.linspace(1, 99, bad.num_cells)
    bad.y[:] = 50.0
    mbs = MoveBoundSet(DIE)
    mbs.add_rects("tiny", [Rect(0, 0, 10, 10)])
    save_instance(str(tmp_path), bad, mbs)


class TestCLIUnderFaults:
    """The hard CI contract: an injected fault either recovers or exits
    with its mapped code and a one-line diagnosis — never a traceback."""

    def test_infeasible_exits_2_with_witness(self, tmp_path):
        _write_instances(tmp_path)
        proc = _run_cli(tmp_path, ["place", "infeas", "--dir", "."])
        assert proc.returncode == 2
        assert "error:" in proc.stderr
        assert "tiny" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_solver_faults_recover_to_success(self, tmp_path):
        _write_instances(tmp_path)
        proc = _run_cli(
            tmp_path,
            ["place", "feas", "--dir", "."],
            fault_plan="solver.ns=budget",
        )
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr

    def test_chain_exhaustion_exits_3(self, tmp_path):
        _write_instances(tmp_path)
        proc = _run_cli(
            tmp_path,
            ["place", "feas", "--dir", "."],
            fault_plan="solver.ns=budget;solver.ssp=budget;"
            "solver.lp=budget;solver.heur=budget",
        )
        assert proc.returncode == 3
        assert proc.stderr.startswith("error:")
        assert len(proc.stderr.strip().splitlines()) == 1
        assert "Traceback" not in proc.stderr

    def test_persistent_stage_fault_exits_4(self, tmp_path):
        _write_instances(tmp_path)
        proc = _run_cli(
            tmp_path,
            ["place", "feas", "--dir", "."],
            fault_plan="stage.place.level=stage",
        )
        assert proc.returncode == 4
        assert proc.stderr.startswith("error:")
        assert "Traceback" not in proc.stderr

    def test_transient_stage_fault_recovers(self, tmp_path):
        _write_instances(tmp_path)
        proc = _run_cli(
            tmp_path,
            ["place", "feas", "--dir", "."],
            fault_plan="stage.place.level=stage@2",
        )
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr

    def test_budget_flags_accepted(self, tmp_path):
        _write_instances(tmp_path)
        proc = _run_cli(
            tmp_path,
            [
                "--max-solver-iters",
                "100000",
                "--solver-timeout",
                "120",
                "place",
                "feas",
                "--dir",
                ".",
            ],
        )
        assert proc.returncode == 0, proc.stderr
