"""Service robustness satellites: durable quota metering, client
connect retry, deterministic shed tie-breaks, and no-op replace
byte-identity (fast lane)."""

import hashlib
import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.bookshelf import save_instance
from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist, Pin
from repro.resilience import PipelineStageError
from repro.service import JobSpec, ServiceClient
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.jobs import JobRecord
from repro.service.quota import QuotaLedger
from repro.service.worker import read_result, run_job_to_file

DIE = Rect(0, 0, 100, 100)


# ----------------------------------------------------------------------
# satellite: durable per-tenant quota metering
# ----------------------------------------------------------------------
class TestQuotaLedger:
    def test_round_trip(self, tmp_path):
        ledger = QuotaLedger(str(tmp_path))
        ledger.save({"acme": 12.5, "bravo": 0.25})
        assert QuotaLedger(str(tmp_path)).load() == {
            "acme": 12.5,
            "bravo": 0.25,
        }

    def test_absent_is_empty(self, tmp_path):
        assert QuotaLedger(str(tmp_path)).load() == {}

    def test_corrupt_ledger_quarantined_not_trusted(self, tmp_path):
        ledger = QuotaLedger(str(tmp_path))
        ledger.save({"acme": 99.0})
        with open(ledger.path, "r+b") as f:
            data = bytearray(f.read())
            data[len(data) // 2] ^= 0xFF
            f.seek(0)
            f.write(data)
        assert QuotaLedger(str(tmp_path)).load() == {}
        assert os.path.exists(ledger.path + ".corrupt")

    def test_controller_meter_survives_reconstruction(self, tmp_path):
        """The in-memory daemon-restart story: a fresh controller on
        the same state dir starts from the persisted meter."""
        policy = AdmissionPolicy(tenant_quota_seconds=10.0)
        first = AdmissionController(
            policy, ledger=QuotaLedger(str(tmp_path))
        )
        first.charge("acme", 9.5)
        assert first.quota_remaining("acme") == pytest.approx(0.5)

        reborn = AdmissionController(
            policy, ledger=QuotaLedger(str(tmp_path))
        )
        assert reborn.quota_remaining("acme") == pytest.approx(0.5)
        reborn.charge("acme", 1.0)
        third = AdmissionController(
            policy, ledger=QuotaLedger(str(tmp_path))
        )
        assert third.quota_remaining("acme") < 0.0

    def test_no_ledger_keeps_old_behavior(self):
        ctl = AdmissionController(
            AdmissionPolicy(tenant_quota_seconds=10.0)
        )
        ctl.charge("acme", 5.0)
        assert ctl.quota_remaining("acme") == pytest.approx(5.0)


# ----------------------------------------------------------------------
# satellite: deterministic shed tie-break
# ----------------------------------------------------------------------
def _record(job_id, priority=0, seq=0, tenant="t"):
    return JobRecord(
        job_id=job_id,
        spec=JobSpec(
            kind="check", instance="x", dir=".", tenant=tenant,
            priority=priority,
        ),
        seq=seq,
    )


class TestShedOrdering:
    def test_lowest_priority_then_oldest(self):
        jobs = [
            _record("j3", priority=1, seq=1),
            _record("j1", priority=0, seq=5),
            _record("j2", priority=0, seq=2),
        ]
        assert AdmissionController.shed_victim(jobs).job_id == "j2"

    def test_equal_priority_and_seq_breaks_on_job_id(self):
        """Recovered queues can carry equal (priority, seq); the
        victim must not depend on input order."""
        a = _record("job-a", priority=0, seq=3)
        b = _record("job-b", priority=0, seq=3)
        assert AdmissionController.shed_victim([a, b]).job_id == "job-a"
        assert AdmissionController.shed_victim([b, a]).job_id == "job-a"

    def test_admit_sheds_deterministically_under_full_tie(self):
        policy = AdmissionPolicy(max_queue=2, tenant_max_queued=32)
        ctl = AdmissionController(policy)
        queued = [
            _record("job-b", priority=0, seq=7),
            _record("job-a", priority=0, seq=7),
        ]
        incoming = _record("job-hi", priority=5, seq=8)
        victim = ctl.admit(incoming, queued, running=[])
        assert victim.job_id == "job-a"


# ----------------------------------------------------------------------
# satellite: client connect retry with backoff
# ----------------------------------------------------------------------
class TestClientConnectRetry:
    def test_exhaustion_is_classified_not_oserror(self, tmp_path):
        client = ServiceClient(
            str(tmp_path / "never.sock"),
            connect_retries=2,
            connect_backoff=0.01,
        )
        with pytest.raises(PipelineStageError, match="3 attempts"):
            client.ping()

    def test_connects_once_daemon_binds_late(self, tmp_path):
        """The daemon-still-starting race: the socket file appears a
        beat after the client's first attempt."""
        path = str(tmp_path / "late.sock")

        def bind_late():
            time.sleep(0.15)
            srv = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            srv.bind(path)
            srv.listen(1)
            conn, _ = srv.accept()
            conn.close()
            srv.close()

        t = threading.Thread(target=bind_late, daemon=True)
        t.start()
        client = ServiceClient(
            path, connect_retries=8, connect_backoff=0.05
        )
        sock = client._connect_with_retry(timeout=2.0)
        sock.close()
        t.join(timeout=5)

    def test_zero_retries_single_attempt(self, tmp_path):
        client = ServiceClient(
            str(tmp_path / "never.sock"),
            connect_retries=0,
            connect_backoff=0.01,
        )
        with pytest.raises(PipelineStageError, match="1 attempts"):
            client.ping()


# ----------------------------------------------------------------------
# satellite: no-op replace returns the prior placement byte-identically
# ----------------------------------------------------------------------
def _write_instance(path, name, cells=30, seed=0):
    rng = np.random.default_rng(seed)
    nl = Netlist(DIE, name=name)
    for i in range(cells):
        nl.add_cell(f"c{i}", 2.0, 1.0)
    for i in range(0, cells - 2, 2):
        nl.add_net(f"n{i}", [Pin(i), Pin(i + 1), Pin((i + 7) % cells)])
    nl.finalize()
    nl.x[:] = rng.uniform(5, 95, nl.num_cells)
    nl.y[:] = rng.uniform(5, 95, nl.num_cells)
    os.makedirs(str(path), exist_ok=True)
    save_instance(str(path), nl, MoveBoundSet(DIE))


def _sha(path):
    with open(path, "rb") as f:
        return hashlib.sha256(f.read()).hexdigest()


class TestNoopReplace:
    def test_empty_patch_byte_identical(self, tmp_path):
        inst = tmp_path / "inst"
        _write_instance(inst, "noop1")
        in_sha = _sha(str(inst / "noop1.pl"))

        job_dir = str(tmp_path / "job")
        spec = JobSpec(
            kind="replace", instance="noop1", dir=str(inst),
            movebound_patch=[],
        )
        run_job_to_file(spec, job_dir, allow_faults=False)
        payload, error = read_result(job_dir)
        assert error is None, error
        assert payload["eco"]["mode"] == "noop"
        assert payload["pl_sha256"] == in_sha
        assert _sha(payload["pl_file"]) == in_sha

    def test_missing_patch_field_byte_identical(self, tmp_path):
        inst = tmp_path / "inst2"
        _write_instance(inst, "noop2", seed=3)
        in_sha = _sha(str(inst / "noop2.pl"))

        job_dir = str(tmp_path / "job2")
        spec = JobSpec(kind="replace", instance="noop2", dir=str(inst))
        run_job_to_file(spec, job_dir, allow_faults=False)
        payload, error = read_result(job_dir)
        assert error is None, error
        assert payload["pl_sha256"] == in_sha
