"""Durable run-state store: codec, manifest, corruption, atomicity.

The codec contract is *bit-identity*: ``encode → decode → restore``
must reproduce every placement exactly, including degenerate netlists
(0 cells, fixed-only, overlapping movebounds) and adversarial float
values (-0.0, subnormals, huge magnitudes).
"""

import glob
import hashlib
import json
import os

import numpy as np
import pytest

from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist, PlacementSnapshot
from repro.resilience.errors import PipelineStageError
from repro.runstate import (
    CorruptRunStateError,
    RunStateStore,
    config_hash,
    decode_snapshot,
    encode_snapshot,
)

DIE = Rect(0, 0, 100, 100)


def _netlist(num_cells, *, fixed=False, movebound=None, name="rt"):
    nl = Netlist(DIE, name=name)
    for i in range(num_cells):
        nl.add_cell(
            f"c{i}", 1.0, 1.0, fixed=fixed, movebound=movebound,
            x=float(i), y=float(2 * i),
        )
    nl.finalize()
    return nl


# ----------------------------------------------------------------------
# codec round-trip (property-style: many placements, exact equality)
# ----------------------------------------------------------------------
class TestSnapshotCodec:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_roundtrip_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        snap = PlacementSnapshot(
            rng.uniform(-1e9, 1e9, n), rng.uniform(-1e9, 1e9, n)
        )
        out, level = decode_snapshot(encode_snapshot(snap, seed))
        assert level == seed
        # tobytes equality == bit-for-bit, stricter than allclose
        assert out.x.tobytes() == snap.x.tobytes()
        assert out.y.tobytes() == snap.y.tobytes()

    def test_adversarial_floats_roundtrip(self):
        x = np.array([0.0, -0.0, 5e-324, -5e-324, 1e308, -1e308,
                      np.pi, 1 / 3])
        snap = PlacementSnapshot(x, x[::-1].copy())
        out, _ = decode_snapshot(encode_snapshot(snap, 0))
        assert out.x.tobytes() == snap.x.tobytes()
        assert out.y.tobytes() == snap.y.tobytes()

    def test_zero_cells_roundtrip(self):
        snap = PlacementSnapshot(np.zeros(0), np.zeros(0))
        out, level = decode_snapshot(encode_snapshot(snap, 3))
        assert level == 3 and len(out.x) == 0 and len(out.y) == 0

    def test_bad_magic_rejected(self):
        data = encode_snapshot(PlacementSnapshot(np.ones(2), np.ones(2)), 0)
        head, payload = data.split(b"\n", 1)
        header = json.loads(head)
        header["magic"] = "not-a-snapshot"
        bad = json.dumps(header).encode() + b"\n" + payload
        with pytest.raises(CorruptRunStateError, match="magic"):
            decode_snapshot(bad)

    def test_flipped_payload_byte_rejected(self):
        data = bytearray(
            encode_snapshot(PlacementSnapshot(np.ones(4), np.ones(4)), 0)
        )
        data[-5] ^= 0x01
        with pytest.raises(CorruptRunStateError, match="checksum"):
            decode_snapshot(bytes(data))

    def test_truncated_payload_rejected(self):
        data = encode_snapshot(PlacementSnapshot(np.ones(4), np.ones(4)), 0)
        with pytest.raises(CorruptRunStateError, match="payload"):
            decode_snapshot(data[:-8])

    def test_garbage_rejected(self):
        with pytest.raises(CorruptRunStateError):
            decode_snapshot(b"\x00\x01\x02 definitely not a snapshot")


# ----------------------------------------------------------------------
# degenerate netlists through the full store
# ----------------------------------------------------------------------
class TestDegenerateNetlists:
    def _roundtrip(self, nl, tmp_path):
        store = RunStateStore(str(tmp_path))
        store.begin_run(nl.name, "cfg", levels=1)
        before_x, before_y = nl.x.tobytes(), nl.y.tobytes()
        record = store.save_level(0, nl)
        nl.x[:] = -123.0  # clobber, then restore from disk
        snap = store.load_level(record)
        assert snap is not None
        nl.restore(snap)
        assert nl.x.tobytes() == before_x
        assert nl.y.tobytes() == before_y

    def test_empty_netlist(self, tmp_path):
        self._roundtrip(_netlist(0, name="empty"), tmp_path)

    def test_fixed_only_netlist(self, tmp_path):
        self._roundtrip(_netlist(5, fixed=True, name="allfixed"), tmp_path)

    def test_overlapping_movebounds_netlist(self, tmp_path):
        nl = Netlist(DIE, name="overlap")
        for i in range(6):
            nl.add_cell(f"a{i}", 1.0, 1.0, movebound="mbA",
                        x=10.0 + i, y=10.0)
        for i in range(6):
            nl.add_cell(f"b{i}", 1.0, 1.0, movebound="mbB",
                        x=30.0 + i, y=30.0)
        nl.finalize()
        mbs = MoveBoundSet(DIE)
        # inclusive bounds are allowed to overlap (paper §II)
        mbs.add_rects("mbA", [Rect(0, 0, 60, 60)])
        mbs.add_rects("mbB", [Rect(20, 20, 80, 80)])
        mbs.normalize()
        self._roundtrip(nl, tmp_path)


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_roundtrip(self, tmp_path):
        nl = _netlist(7)
        store = RunStateStore(str(tmp_path))
        store.begin_run("rt", "cafe0123", levels=4, seed=11)
        store.save_level(0, nl)
        store.save_level(1, nl)

        fresh = RunStateStore(str(tmp_path))
        m = fresh.load_manifest()
        assert m.instance == "rt"
        assert m.config_hash == "cafe0123"
        assert m.levels == 4 and m.seed == 11
        assert [r.level for r in m.completed] == [0, 1]
        assert m.last_level == 1
        for r in m.completed:
            assert r.num_cells == 7
            assert r.hpwl == nl.hpwl()

    def test_rerun_of_level_is_idempotent(self, tmp_path):
        nl = _netlist(3)
        store = RunStateStore(str(tmp_path))
        store.begin_run("rt", "cfg", levels=3)
        for level in (0, 1, 2):
            store.save_level(level, nl)
        # resume semantics: re-running level 1 drops levels >= 1
        nl.x[:] = 42.0
        store.save_level(1, nl)
        m = RunStateStore(str(tmp_path)).load_manifest()
        assert [r.level for r in m.completed] == [0, 1]

    def test_tampered_manifest_rejected(self, tmp_path):
        store = RunStateStore(str(tmp_path))
        store.begin_run("rt", "cfg", levels=2)
        path = os.path.join(str(tmp_path), "manifest.json")
        outer = json.load(open(path))
        outer["manifest"]["levels"] = 99  # body no longer matches digest
        json.dump(outer, open(path, "w"))
        with pytest.raises(PipelineStageError, match="checksum"):
            RunStateStore(str(tmp_path)).load_manifest()

    def test_tampered_manifest_is_quarantined(self, tmp_path):
        store = RunStateStore(str(tmp_path))
        store.begin_run("rt", "cfg", levels=2)
        path = os.path.join(str(tmp_path), "manifest.json")
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        with pytest.raises(PipelineStageError):
            RunStateStore(str(tmp_path)).load_manifest()
        # refused AND pulled aside: the next run in this directory
        # starts fresh instead of hitting the same bad bytes forever
        assert not os.path.exists(path)
        qfile = os.path.join(str(tmp_path), "quarantine", "manifest.json")
        assert os.path.exists(qfile)
        assert os.path.exists(qfile + ".reason")

    def test_missing_manifest_is_error(self, tmp_path):
        with pytest.raises(PipelineStageError, match="unreadable"):
            RunStateStore(str(tmp_path)).load_manifest()

    def test_config_hash_stable_and_sensitive(self):
        a = {"density": 0.97, "levels": 4}
        assert config_hash(a) == config_hash(dict(reversed(list(a.items()))))
        assert config_hash(a) != config_hash({**a, "levels": 5})


# ----------------------------------------------------------------------
# corruption -> quarantine -> fallback
# ----------------------------------------------------------------------
class TestCorruptionQuarantine:
    def _store_with_levels(self, tmp_path, levels=3):
        nl = _netlist(10)
        store = RunStateStore(str(tmp_path))
        store.begin_run(nl.name, "cfg", levels=levels)
        for level in range(levels):
            nl.x[:] = float(level)
            store.save_level(level, nl)
        return store, nl

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        store, _nl = self._store_with_levels(tmp_path)
        newest = store._snapshot_path(2)
        raw = bytearray(open(newest, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(newest, "wb").write(bytes(raw))

        fresh = RunStateStore(str(tmp_path))
        found = fresh.latest_valid_level()
        assert found is not None
        record, snap = found
        assert record.level == 1
        assert np.all(snap.x == 1.0)
        # the corrupt file is quarantined with a reason sidecar
        qfile = os.path.join(str(tmp_path), "quarantine", "level_0002.ckpt")
        assert os.path.exists(qfile)
        assert os.path.exists(qfile + ".reason")
        assert not os.path.exists(newest)

    def test_deleted_snapshot_falls_back(self, tmp_path):
        store, _nl = self._store_with_levels(tmp_path)
        os.unlink(store._snapshot_path(2))
        found = RunStateStore(str(tmp_path)).latest_valid_level()
        assert found is not None and found[0].level == 1

    def test_all_corrupt_returns_none(self, tmp_path):
        store, _nl = self._store_with_levels(tmp_path, levels=2)
        for level in (0, 1):
            path = store._snapshot_path(level)
            open(path, "wb").write(b"garbage")
        assert RunStateStore(str(tmp_path)).latest_valid_level() is None


# ----------------------------------------------------------------------
# atomicity hygiene
# ----------------------------------------------------------------------
class TestAtomicity:
    def test_no_tmp_files_left_behind(self, tmp_path):
        store, _nl = TestCorruptionQuarantine()._store_with_levels(tmp_path)
        strays = glob.glob(os.path.join(str(tmp_path), "**", "*.tmp.*"),
                           recursive=True)
        assert strays == []

    def test_rewrite_replaces_content_atomically(self, tmp_path):
        nl = _netlist(4)
        store = RunStateStore(str(tmp_path))
        store.begin_run(nl.name, "cfg", levels=1)
        nl.x[:] = 1.0
        store.save_level(0, nl)
        first = open(store._snapshot_path(0), "rb").read()
        nl.x[:] = 2.0
        record = store.save_level(0, nl)
        second = open(store._snapshot_path(0), "rb").read()
        assert first != second
        assert hashlib.sha256(second).hexdigest() == record.sha256


# ----------------------------------------------------------------------
# torn writes (property: every truncation, every byte flip)
# ----------------------------------------------------------------------
class TestTornManifest:
    """A torn or bit-flipped manifest must *never* yield a wrong
    resume.  For every mutation, loading either raises the structured
    refusal (and quarantines the bad file) or — when the mutation
    lands in JSON formatting the canonical re-encoding ignores —
    decodes to exactly the original manifest.  There is no third
    outcome."""

    def _manifest_bytes(self, tmp_path):
        nl = _netlist(5)
        store = RunStateStore(str(tmp_path))
        store.begin_run("rt", "cfg", levels=3, seed=7)
        store.save_level(0, nl)
        store.save_level(1, nl)
        path = os.path.join(str(tmp_path), "manifest.json")
        return path, open(path, "rb").read()

    def _check_mutation(self, tmp_path, path, mutated, want_dict):
        open(path, "wb").write(mutated)
        store = RunStateStore(str(tmp_path))
        try:
            got = store.load_manifest()
        except PipelineStageError:
            # refusal must come with quarantine (file pulled aside)
            # unless the loader never got past reading it
            assert not os.path.exists(path) or mutated == b""
            return
        assert got.to_dict() == want_dict

    def test_truncation_at_every_offset(self, tmp_path):
        path, raw = self._manifest_bytes(tmp_path)
        want = RunStateStore(str(tmp_path)).load_manifest().to_dict()
        qdir = os.path.join(str(tmp_path), "quarantine")
        for cut in range(len(raw)):
            self._check_mutation(tmp_path, path, raw[:cut], want)
            # reset for the next mutation
            if os.path.isdir(qdir):
                for f in os.listdir(qdir):
                    os.unlink(os.path.join(qdir, f))
            open(path, "wb").write(raw)

    def test_flip_every_byte(self, tmp_path):
        path, raw = self._manifest_bytes(tmp_path)
        want = RunStateStore(str(tmp_path)).load_manifest().to_dict()
        qdir = os.path.join(str(tmp_path), "quarantine")
        for i in range(len(raw)):
            mutated = bytearray(raw)
            mutated[i] ^= 0xFF
            self._check_mutation(tmp_path, path, bytes(mutated), want)
            if os.path.isdir(qdir):
                for f in os.listdir(qdir):
                    os.unlink(os.path.join(qdir, f))
            open(path, "wb").write(raw)

    def test_resume_never_uses_torn_manifest(self, tmp_path):
        """End to end through DurableRunState: a torn manifest refuses
        resume (structured error), and the retry after quarantine
        starts fresh — it never continues from wrong state."""
        from repro.runstate import DurableRunState

        nl = _netlist(6)
        state = DurableRunState(str(tmp_path))
        state.begin(nl, "cfg", levels=2)
        nl.x[:] = 1.0
        state.save_level(0, nl)

        path = os.path.join(str(tmp_path), "manifest.json")
        raw = bytearray(open(path, "rb").read())
        raw = raw[: len(raw) // 2]  # torn mid-write
        open(path, "wb").write(bytes(raw))

        resumer = DurableRunState(str(tmp_path), resume=True)
        with pytest.raises(PipelineStageError):
            resumer.begin(nl, "cfg", levels=2)
        # the bad manifest is quarantined: the retry starts fresh
        level = DurableRunState(str(tmp_path), resume=True).begin(
            nl, "cfg", levels=2
        )
        assert level is None
