"""Tests for Tetris, the region-aware legalizer and legality checks."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.legalize import (
    build_segments,
    check_legality,
    legalize_with_movebounds,
    tetris_legalize,
)
from repro.movebounds import EXCLUSIVE, MoveBoundSet, decompose_regions
from repro.netlist import Netlist
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


class TestTetris:
    def test_legalizes_random(self):
        nl = build_random_netlist(150, 0, seed=0)
        segs = build_segments(nl)
        moved = tetris_legalize(nl, [c.index for c in nl.cells], segs)
        rep = check_legality(nl)
        assert rep.overlaps == 0 and rep.off_row == 0
        assert moved > 0

    def test_no_room_raises(self):
        nl = Netlist(Rect(0, 0, 4, 1), row_height=1.0, site_width=0.5)
        for i in range(4):
            nl.add_cell(f"c{i}", 2, 1, x=2, y=0.5)
        nl.finalize()
        segs = build_segments(nl)
        with pytest.raises(ValueError):
            tetris_legalize(nl, [0, 1, 2, 3], segs)


class TestRegionLegalizer:
    def test_no_bounds(self):
        nl = build_random_netlist(120, 0, seed=1)
        report = legalize_with_movebounds(nl)
        assert check_legality(nl).is_legal
        assert report.region_runs >= 1

    def test_inclusive_bound_respected(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(50, 50, 100, 100)])

        def mb_of(i):
            return "m" if i < 40 else None

        nl = build_random_netlist(160, 0, seed=2, movebound_of=mb_of)
        # push bound cells inside their area first (global placement
        # would have done this)
        for c in nl.cells:
            if c.movebound == "m":
                nl.x[c.index] = np.clip(nl.x[c.index], 52, 98)
                nl.y[c.index] = np.clip(nl.y[c.index], 52, 98)
        dec = decompose_regions(DIE, mbs, nl.blockages)
        legalize_with_movebounds(nl, mbs, dec)
        rep = check_legality(nl, mbs)
        assert rep.is_legal

    def test_exclusive_bound_keeps_others_out(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("x", [Rect(0, 0, 30, 30)], EXCLUSIVE)

        def mb_of(i):
            return "x" if i < 20 else None

        nl = build_random_netlist(140, 0, seed=3, movebound_of=mb_of)
        for c in nl.cells:
            if c.movebound == "x":
                nl.x[c.index] = np.clip(nl.x[c.index], 2, 28)
                nl.y[c.index] = np.clip(nl.y[c.index], 2, 28)
        mbs.normalize()
        dec = decompose_regions(DIE, mbs, nl.blockages)
        legalize_with_movebounds(nl, mbs, dec)
        rep = check_legality(nl, mbs)
        assert rep.movebound_violations == 0
        assert rep.overlaps == 0

    def test_shared_region_simultaneous(self):
        """Cells of two overlapping inclusive bounds end up legalized
        together in the shared region — the §III point."""
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("a", [Rect(0, 0, 40, 40)])
        mbs.add_rects("b", [Rect(20, 20, 60, 60)])

        def mb_of(i):
            if i < 15:
                return "a"
            if i < 30:
                return "b"
            return None

        nl = build_random_netlist(120, 0, seed=4, movebound_of=mb_of)
        for c in nl.cells:
            if c.movebound == "a":
                nl.x[c.index] = np.clip(nl.x[c.index], 2, 38)
                nl.y[c.index] = np.clip(nl.y[c.index], 2, 38)
            elif c.movebound == "b":
                nl.x[c.index] = np.clip(nl.x[c.index], 22, 58)
                nl.y[c.index] = np.clip(nl.y[c.index], 22, 58)
        dec = decompose_regions(DIE, mbs, nl.blockages)
        legalize_with_movebounds(nl, mbs, dec)
        assert check_legality(nl, mbs).is_legal

    def test_macros_legalized_first(self):
        nl = build_random_netlist(80, 0, seed=5)
        nl.add_cell("macro1", 8, 6, x=50, y=50)
        nl.add_cell("macro2", 8, 6, x=52, y=52)  # overlapping macros
        report = legalize_with_movebounds(nl)
        assert report.macro_count == 2
        rep = check_legality(nl)
        assert rep.overlaps == 0
        # macros restored to movable
        assert not nl.cells[-1].fixed and not nl.cells[-2].fixed


class TestLegalityChecks:
    def test_clean_placement_legal(self):
        nl = Netlist(DIE, row_height=1.0, site_width=0.5)
        nl.add_cell("a", 2, 1, x=1, y=0.5)
        nl.add_cell("b", 2, 1, x=3.5, y=0.5)
        nl.finalize()
        assert check_legality(nl).is_legal

    def test_overlap_detected(self):
        nl = Netlist(DIE, row_height=1.0)
        nl.add_cell("a", 2, 1, x=1, y=0.5)
        nl.add_cell("b", 2, 1, x=2, y=0.5)
        nl.finalize()
        rep = check_legality(nl)
        assert rep.overlaps == 1
        assert rep.overlap_pairs == [(0, 1)]

    def test_abutting_not_overlap(self):
        nl = Netlist(DIE, row_height=1.0)
        nl.add_cell("a", 2, 1, x=1, y=0.5)
        nl.add_cell("b", 2, 1, x=3, y=0.5)
        nl.finalize()
        assert check_legality(nl).overlaps == 0

    def test_off_row_detected(self):
        nl = Netlist(DIE, row_height=1.0)
        nl.add_cell("a", 2, 1, x=1, y=0.7)
        nl.finalize()
        assert check_legality(nl).off_row == 1

    def test_out_of_die_detected(self):
        nl = Netlist(DIE, row_height=1.0)
        nl.add_cell("a", 2, 1, x=0.5, y=0.5)  # pokes left
        nl.finalize()
        assert check_legality(nl).out_of_die == 1

    def test_on_blockage_detected(self):
        nl = Netlist(DIE, row_height=1.0)
        nl.add_blockage(Rect(0, 0, 10, 10))
        nl.add_cell("a", 2, 1, x=5, y=5.5)
        nl.finalize()
        assert check_legality(nl).on_blockage == 1

    def test_fixed_pair_ignored(self):
        nl = Netlist(DIE, row_height=1.0)
        nl.add_cell("a", 2, 1, x=1, y=0.5, fixed=True)
        nl.add_cell("b", 2, 1, x=1.5, y=0.5, fixed=True)
        nl.finalize()
        assert check_legality(nl).overlaps == 0

    def test_summary_strings(self):
        nl = Netlist(DIE, row_height=1.0)
        nl.add_cell("a", 2, 1, x=1, y=0.5)
        nl.finalize()
        assert check_legality(nl).summary() == "legal"
        nl.y[0] = 0.7
        assert "off_row=1" in check_legality(nl).summary()
