"""Tests for BestChoice clustering."""

import numpy as np
import pytest

from repro.cluster import bestchoice_cluster
from repro.geometry import Rect
from repro.netlist import Netlist, Pin
from repro.place import BonnPlaceFBP, BonnPlaceOptions
from repro.workloads import NetlistSpec, generate_netlist
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


def _netlist(seed=0, num_cells=200):
    spec = NetlistSpec("cl", num_cells, utilization=0.5, num_pads=8)
    nl, _ = generate_netlist(spec, seed=seed)
    return nl


class TestClustering:
    def test_reaches_ratio(self):
        nl = _netlist()
        clustering = bestchoice_cluster(nl, cluster_ratio=4.0)
        assert clustering.ratio == pytest.approx(4.0, rel=0.3)

    def test_area_preserved(self):
        nl = _netlist(seed=1)
        clustering = bestchoice_cluster(nl, cluster_ratio=5.0)
        assert clustering.clustered.total_cell_area() == pytest.approx(
            nl.total_cell_area(), rel=1e-6
        )

    def test_members_partition_cells(self):
        nl = _netlist(seed=2)
        clustering = bestchoice_cluster(nl, cluster_ratio=3.0)
        flat = sorted(i for group in clustering.members for i in group)
        assert flat == list(range(nl.num_cells))
        for i in range(nl.num_cells):
            k = clustering.cluster_of[i]
            assert i in clustering.members[k]

    def test_fixed_cells_stay_singleton(self):
        nl = Netlist(DIE)
        nl.add_cell("f", 2, 2, fixed=True)
        for i in range(8):
            nl.add_cell(f"c{i}", 1, 1, x=10 + i, y=10)
        nl.finalize()
        for i in range(8):
            nl.add_net(f"n{i}", [Pin(0), Pin(1 + i)])
        clustering = bestchoice_cluster(nl, cluster_ratio=4.0)
        k_fixed = clustering.cluster_of[0]
        assert clustering.members[k_fixed] == [0]
        assert clustering.clustered.cells[k_fixed].fixed

    def test_movebounds_never_mix(self):
        nl = Netlist(DIE)
        for i in range(6):
            mb = "a" if i < 3 else "b"
            nl.add_cell(f"c{i}", 1, 1, x=10 + i, y=10, movebound=mb)
        nl.finalize()
        # heavy connectivity across the movebound boundary
        for i in range(3):
            nl.add_net(f"x{i}", [Pin(i), Pin(i + 3)])
        clustering = bestchoice_cluster(nl, cluster_ratio=3.0)
        for group in clustering.members:
            bounds = {nl.cells[i].movebound for i in group}
            assert len(bounds) == 1

    def test_connected_cells_cluster_first(self):
        """A tightly connected pair clusters before unrelated cells."""
        nl = Netlist(DIE)
        for i in range(4):
            nl.add_cell(f"c{i}", 1, 1, x=10 + i, y=10)
        nl.finalize()
        for _ in range(5):  # strong 0-1 connection
            nl.add_net(f"s{_}", [Pin(0), Pin(1)])
        nl.add_net("w", [Pin(2), Pin(3)])
        clustering = bestchoice_cluster(nl, cluster_ratio=4 / 3)
        assert clustering.cluster_of[0] == clustering.cluster_of[1]

    def test_induced_nets_collapse(self):
        nl = Netlist(DIE)
        for i in range(4):
            nl.add_cell(f"c{i}", 1, 1, x=10 + i, y=10)
        nl.finalize()
        nl.add_net("ab", [Pin(0), Pin(1)])
        nl.add_net("ab2", [Pin(0), Pin(1)])
        nl.add_net("abc", [Pin(0), Pin(1), Pin(2)])
        # cap cluster size so only the {0, 1} pair can merge
        clustering = bestchoice_cluster(
            nl, cluster_ratio=4 / 3, max_cluster_size=2.0
        )
        assert clustering.cluster_of[0] == clustering.cluster_of[1]
        assert clustering.cluster_of[2] != clustering.cluster_of[0]
        names = [n.name for n in clustering.clustered.nets]
        # fully internal nets disappear; abc keeps 2 pins
        assert "ab" not in names and "ab2" not in names
        abc = next(
            n for n in clustering.clustered.nets if n.name == "abc"
        )
        assert abc.degree == 2

    def test_uncluster_positions(self):
        nl = _netlist(seed=3)
        cx, cy = nl.die.center
        clustering = bestchoice_cluster(nl, cluster_ratio=4.0)
        clustering.clustered.x[:] = cx
        clustering.clustered.y[:] = cy
        clustering.uncluster()
        movable = [c.index for c in nl.cells if not c.fixed]
        assert np.allclose(nl.x[movable], cx, atol=2.0)
        assert np.allclose(nl.y[movable], cy, atol=2.0)

    def test_placer_integration(self):
        nl = _netlist(seed=4, num_cells=300)
        from repro.movebounds import MoveBoundSet

        res = BonnPlaceFBP(
            BonnPlaceOptions(cluster_ratio=4.0)
        ).place(nl, MoveBoundSet(nl.die))
        assert res.legality.is_legal
