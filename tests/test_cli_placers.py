"""CLI coverage: every placer choice end-to-end over Bookshelf files."""

import pytest

from repro.bookshelf import load_instance
from repro.cli import main


@pytest.fixture(scope="module")
def instance_dir(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("cli"))
    assert main(["generate", "Dagmar", "--out", out, "--seed", "2"]) == 0
    return out


class TestPlacerChoices:
    @pytest.mark.parametrize(
        "placer", ["fbp", "rql", "kraftwerk", "recursive"]
    )
    def test_place_each(self, instance_dir, placer, tmp_path):
        out = str(tmp_path)
        code = main([
            "place", "Dagmar", "--dir", instance_dir,
            "--out", out, "--placer", placer,
        ])
        assert code == 0
        nl, _ = load_instance(out, "Dagmar")
        assert nl.hpwl() > 0

    def test_score_after_place(self, instance_dir, tmp_path):
        out = str(tmp_path)
        main(["place", "Dagmar", "--dir", instance_dir, "--out", out])
        assert main(["score", "Dagmar", "--dir", out]) == 0

    def test_check_reports_feasible(self, instance_dir):
        assert main(["check", "Dagmar", "--dir", instance_dir]) == 0

    def test_exclusive_generate(self, tmp_path):
        out = str(tmp_path)
        code = main([
            "generate", "Rabe", "--movebounds", "--exclusive",
            "--suite", "movebound", "--out", out,
        ])
        assert code == 0
        _nl, bounds = load_instance(out, "Rabe")
        assert all(b.is_exclusive for b in bounds)
