"""BatchedArraySimplex bit-identity: the PR 6 differential suite.

Built on the :mod:`tests.difftest` harness: seeded random window
transportation instances across the shape space (degenerate 1xk / nx1,
rectangular, capacity-tight, infeasible-then-relaxed, warm-started),
checked batched-vs-array-vs-object at every level — relaxation stages,
canonical flows, cost bits, pivot counts, per-pivot entering-arc
traces under ``REPRO_VERIFY_KERNEL=1`` — plus the shape-bucketing edge
cases (empty input, singleton buckets on the plain array path, the
padding zero-touch invariant), the NSBasis warm-start exchange in and
out of the batched kernel, the supervised pool running whole buckets,
and the final ``.pl`` byte comparison through the CLI.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.flows import set_flow_backend
from repro.flows.batch import (
    BatchedArraySimplex,
    bucket_task_indices,
    solve_transportation_batched,
)
from repro.flows.networksimplex import _LOWER
from repro.flows.transportation import (
    RELAX_CHAIN_PARTITION,
    RELAX_CHAIN_WINDOW,
    solve_transportation,
)
from repro.flows.warmstart import WarmStartSlot
from repro.obs import get_tracer
from repro.obs.invariants import (
    InvariantViolation,
    checking,
    run_check,
)
from repro.resilience import install_fault_plan, reset_faults
from repro.runstate import WindowSolverPool

from tests.difftest import (
    BUCKETS,
    assert_results_identical,
    assert_three_way_identity,
    make_batch,
    make_instance,
    make_mixed_convergence_batch,
    make_mixed_feasibility_batch,
    solve_batched,
    solve_serial,
)


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    set_flow_backend(None)
    reset_faults()


def _counters():
    return get_tracer().counters


# ----------------------------------------------------------------------
# satellite 1: the per-bucket identity sweep (~100 instances/bucket)
# ----------------------------------------------------------------------
class TestShapeBucketSweep:
    """Batched == array == object (stages, flows, costs, pivots) over
    ~100 seeded instances of every shape bucket, solved in batches."""

    @pytest.mark.parametrize("bucket", BUCKETS)
    def test_hundred_instance_sweep(self, bucket):
        for seed in range(10):
            assert_three_way_identity(make_batch(bucket, seed, 10))

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("bucket", BUCKETS)
    def test_small_batch_identity(self, bucket, seed):
        assert_three_way_identity(make_batch(bucket, 1000 + seed, 4))

    @pytest.mark.parametrize("bucket", BUCKETS)
    def test_partition_chain_identity(self, bucket):
        assert_three_way_identity(
            make_batch(bucket, 77, 5), chain=RELAX_CHAIN_PARTITION
        )


class TestMixedBuckets:
    """Buckets whose rows converge at different pivots or stages."""

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_convergence(self, seed):
        # easy rows go inert early; hard rows keep pivoting — the
        # convergence-masking case
        assert_three_way_identity(make_mixed_convergence_batch(seed))

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_feasibility_stages(self, seed):
        # only some rows survive stage 0: later stages see a shrunken
        # (possibly singleton) bucket
        assert_three_way_identity(make_mixed_feasibility_batch(seed))

    def test_multi_shape_task_list(self):
        # one call mixing several shapes: each shape forms its own
        # bucket, results stay index-aligned with the input order
        tasks = (
            make_batch("square", 5, 3)
            + make_batch("rect_tall", 5, 2)
            + make_batch("square", 6, 2)
            + make_batch("degenerate_1xk", 5, 3)
        )
        assert_three_way_identity(tasks)


# ----------------------------------------------------------------------
# tentpole: per-pivot trace identity under REPRO_VERIFY_KERNEL=1
# ----------------------------------------------------------------------
class TestVerifyKernelTraces:
    """With REPRO_VERIFY_KERNEL=1 every batched row is shadow-solved
    on the object kernel and the per-pivot entering-arc traces are
    compared; any divergence raises.  A healthy kernel must sail
    through on every shape bucket."""

    @pytest.fixture(autouse=True)
    def _verify_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_KERNEL", "1")

    @pytest.mark.parametrize("bucket", BUCKETS)
    def test_bucket_under_shadow_verify(self, bucket):
        tasks = make_batch(bucket, 31, 5)
        got = solve_batched(tasks)
        assert len(got) == len(tasks)
        want = solve_serial(tasks, "object")
        assert_results_identical(got, want)
        assert _counters().get("kernel.verified", 0) > 0

    def test_mixed_convergence_under_shadow_verify(self, monkeypatch):
        assert_three_way_identity(make_mixed_convergence_batch(3))

    def test_warm_rows_under_shadow_verify(self):
        tasks = make_batch("square", 41, 4)
        slots = [WarmStartSlot() for _ in tasks]
        solve_batched(tasks, warm_slots=slots)
        # second solve warm-starts from the stored bases; the shadow
        # compare relaxes to flows-only for warm rows (pivot counts
        # legitimately differ from a cold object solve)
        relaxed = [
            (s * 1.0, c * 1.05, k) for s, c, k in tasks
        ]
        got = solve_batched(relaxed, warm_slots=slots)
        want = solve_serial(relaxed, "object")
        assert_results_identical(got, want, pivots=False)


# ----------------------------------------------------------------------
# warm starts: the NSBasis exchange into and out of the batched kernel
# ----------------------------------------------------------------------
class TestWarmStartExchange:
    @pytest.mark.parametrize("seed", range(5))
    def test_warm_slots_match_serial_warm_slots(self, seed):
        """Caller-owned slots, two rounds: the batched warm protocol
        (store, fingerprint match, ambiguous-redo) must replay the
        serial array and object paths bit for bit."""
        tasks = make_batch("capacity_tight", 200 + seed, 4)
        relaxed = [(s, c * 1.08, k) for s, c, k in tasks]
        results = {}
        for backend in ("batched", "array", "object"):
            slots = [WarmStartSlot() for _ in tasks]
            if backend == "batched":
                cold = solve_batched(tasks, warm_slots=slots)
                warm = solve_batched(relaxed, warm_slots=slots)
            else:
                cold = solve_serial(tasks, backend, warm_slots=slots)
                warm = solve_serial(relaxed, backend, warm_slots=slots)
            results[backend] = (cold, warm)
        for backend in ("array", "object"):
            assert_results_identical(
                results["batched"][0], results[backend][0]
            )
            assert_results_identical(
                results["batched"][1],
                results[backend][1],
                pivots=False,
            )

    @pytest.mark.parametrize("first", ["array", "object"])
    def test_basis_exchange_into_batched(self, first):
        """A slot warmed by a serial kernel warm-starts the batched
        rows: the NSBasis representation is kernel-neutral."""
        tasks = make_batch("square", 300, 4)
        slots = [WarmStartSlot() for _ in tasks]
        solve_serial(tasks, first, warm_slots=slots)
        cold_pivots = [s.cold_pivots for s in slots]
        before = _counters().get("warmstart.hits", 0)
        got = solve_batched(tasks, warm_slots=slots)
        # re-solving the identical instances hits the exact-instance
        # memo OR the warm basis; either way: identical results
        assert (
            _counters().get("warmstart.hits", 0)
            + _counters().get("warmstart.instance_hits", 0)
            > before
        )
        want = solve_serial(tasks, "object")
        assert_results_identical(got, want, pivots=False)
        assert cold_pivots == [s.cold_pivots for s in slots]

    @pytest.mark.parametrize("second", ["array", "object"])
    def test_basis_exchange_out_of_batched(self, second):
        """A slot warmed by the batched kernel warm-starts the serial
        kernels — and their warm results match a plain cold solve."""
        tasks = make_batch("rect_tall", 310, 4)
        slots = [WarmStartSlot() for _ in tasks]
        solve_batched(tasks, warm_slots=slots)
        assert all(s.basis is not None for s in slots)
        relaxed = [(s, c * 1.07, k) for s, c, k in tasks]
        got = solve_serial(relaxed, second, warm_slots=slots)
        want = solve_serial(relaxed, "object")
        assert_results_identical(got, want, pivots=False)

    def test_instance_memo_round_trip(self):
        """Re-solving the exact same instances through caller-owned
        slots hits the instance memo, like the serial path does."""
        tasks = make_batch("square", 320, 4)
        slots = [WarmStartSlot() for _ in tasks]
        first = solve_batched(tasks, warm_slots=slots)
        before = _counters().get("warmstart.instance_hits", 0)
        second = solve_batched(tasks, warm_slots=slots)
        assert (
            _counters().get("warmstart.instance_hits", 0)
            >= before + len(tasks)
        )
        assert_results_identical(first, second)


# ----------------------------------------------------------------------
# satellite 4: shape-bucketing edge cases
# ----------------------------------------------------------------------
class TestBucketingEdgeCases:
    def test_bucket_task_indices_empty(self):
        assert bucket_task_indices([]) == []

    def test_bucket_task_indices_grouping(self):
        tasks = (
            make_batch("square", 1, 2)
            + make_batch("rect_wide", 1, 1)
            + make_batch("square", 2, 1)
        )
        buckets = bucket_task_indices(tasks)
        assert buckets == [[0, 1, 3], [2]]

    def test_empty_task_list(self):
        assert solve_transportation_batched([]) == []

    def test_singleton_bucket_routes_through_array_kernel(self):
        """A one-instance bucket must take the plain serial array
        path — counted as a singleton, never as a batch — and match
        the direct serial solve byte for byte."""
        task = make_instance("square", 999)
        before = dict(_counters())
        set_flow_backend("array")
        got = solve_transportation_batched([task])
        after = _counters()
        assert (
            after.get("kernel.batch.singletons", 0)
            == before.get("kernel.batch.singletons", 0) + 1
        )
        assert after.get("kernel.batch.buckets", 0) == before.get(
            "kernel.batch.buckets", 0
        )
        want = solve_serial([task], "array")
        assert_results_identical(got, want)

    def test_zero_supply_instance(self):
        tasks = [
            (
                np.zeros(0),
                np.array([2.0, 3.0]),
                np.zeros((0, 2)),
            )
        ] * 2
        got = solve_batched(tasks)
        for result, stage in got:
            assert result.feasible
            assert stage == 0
            assert result.flow.shape == (0, 2)
            assert result.cost == 0.0

    def test_quick_infeasible_every_stage(self):
        """A source with only inf-cost arcs is infeasible at every
        relaxation stage; the batched path must report the last stage
        with an infeasible result, exactly like the serial chain."""
        s, c, costs = make_instance("square", 50)
        costs = costs.copy()
        costs[2, :] = np.inf
        tasks = [(s, c, costs)] * 3
        got = solve_batched(tasks)
        want = solve_serial(tasks, "array")
        for (rg, sg), (rw, sw) in zip(got, want):
            assert not rg.feasible and not rw.feasible
            assert sg == sw == len(RELAX_CHAIN_WINDOW) - 1

    def test_counters_track_batches(self):
        before = dict(_counters())
        tasks = make_batch("rect_wide", 60, 5)
        solve_batched(tasks)
        after = _counters()
        assert (
            after.get("kernel.batch.buckets", 0)
            == before.get("kernel.batch.buckets", 0) + 1
        )
        assert (
            after.get("kernel.batch.instances", 0)
            == before.get("kernel.batch.instances", 0) + 5
        )
        assert after.get("kernel.batch.rounds", 0) > before.get(
            "kernel.batch.rounds", 0
        )


class TestPaddingInvariant:
    """Padding arcs must provably never carry flow or state."""

    def test_mixed_m_bucket_passes_check(self):
        """Same (n, k) but different forbidden-arc masks => different
        per-row arc counts => real padding columns; the registered
        kernel.batch.padding check must hold with invariants forced
        on."""
        tasks = make_batch("square", 70, 6)  # random forbid masks
        with checking(True):
            got = solve_batched(tasks)
        want = solve_serial(tasks, "object")
        assert_results_identical(got, want)
        runs = _counters().get("invariants.kernel.batch.padding.runs", 0)
        assert runs > 0

    def test_check_rejects_padding_flow_length(self):
        state2d = np.full((1, 8), _LOWER, dtype=np.int8)
        with pytest.raises(InvariantViolation, match="flow vector"):
            run_check(
                "kernel.batch.padding", state2d, [[0.0] * 8], [6]
            )

    def test_check_rejects_mutated_padding_state(self):
        state2d = np.full((2, 8), _LOWER, dtype=np.int8)
        state2d[1, 7] = 1  # a pivot "touched" a padding column
        with pytest.raises(InvariantViolation, match="padding arc"):
            run_check(
                "kernel.batch.padding",
                state2d,
                [[0.0] * 8, [0.0] * 6],
                [8, 6],
            )

    def test_check_accepts_pristine_padding(self):
        state2d = np.full((2, 8), _LOWER, dtype=np.int8)
        run_check(
            "kernel.batch.padding",
            state2d,
            [[0.0] * 8, [0.0] * 6],
            [8, 6],
        )


# ----------------------------------------------------------------------
# satellite 2: the supervised pool over whole buckets
# ----------------------------------------------------------------------
class TestPoolBatched:
    def _tasks(self):
        # several shapes, several instances per shape: real buckets
        return (
            make_batch("square", 80, 4)
            + make_batch("rect_tall", 80, 3)
            + make_batch("degenerate_1xk", 80, 3)
            + make_batch("capacity_tight", 80, 2)
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pool_batched_matches_serial_object(self, workers):
        """--pool-workers N x --flow-backend=batched == serial object:
        the full determinism matrix collapses to one reference."""
        tasks = self._tasks()
        want = solve_serial(tasks, "object")
        set_flow_backend("batched")
        with WindowSolverPool(workers) as pool:
            got = pool.solve_batch(tasks, method="ns")
        assert_results_identical(got, want)

    def test_pool_dispatches_bucket_units(self):
        tasks = self._tasks()
        before = dict(_counters())
        set_flow_backend("batched")
        with WindowSolverPool(2) as pool:
            pool.solve_batch(tasks, method="ns")
        after = _counters()
        # 4 shapes -> 4 bucket units (vs 12 single-task units)
        assert (
            after.get("pool.bucket_units", 0)
            == before.get("pool.bucket_units", 0) + 4
        )

    def test_worker_kill_requeues_whole_bucket(self):
        """A worker killed mid-bucket loses the *entire* bucket; the
        replacement re-solves it from scratch and the merged results
        stay bit-identical to the serial object reference."""
        tasks = self._tasks()
        want = solve_serial(tasks, "object")
        set_flow_backend("batched")
        install_fault_plan("worker.kill=kill@1")
        before = dict(_counters())
        with WindowSolverPool(2) as pool:
            got = pool.solve_batch(tasks, method="ns")
        assert_results_identical(got, want)
        after = _counters()
        assert after.get("pool.worker_deaths", 0) > before.get(
            "pool.worker_deaths", 0
        )
        assert after.get("pool.requeues", 0) > before.get(
            "pool.requeues", 0
        )

    def test_every_worker_crash_falls_back_serially(self):
        """Permanent crashes: every bucket exhausts max_failures and
        is solved serially in the supervisor — identical bits."""
        tasks = make_batch("square", 90, 3) + make_batch(
            "rect_wide", 90, 2
        )
        want = solve_serial(tasks, "object")
        set_flow_backend("batched")
        install_fault_plan("worker.kill=kill")
        before = dict(_counters())
        with WindowSolverPool(2, max_failures=2) as pool:
            got = pool.solve_batch(tasks, method="ns")
        assert_results_identical(got, want)
        after = _counters()
        assert (
            after.get("pool.serial_fallbacks", 0)
            >= before.get("pool.serial_fallbacks", 0) + 2
        )


# ----------------------------------------------------------------------
# the CLI-level .pl byte comparison
# ----------------------------------------------------------------------
class TestCLIPlacementBytes:
    @pytest.mark.slow
    def test_batched_placement_bytes_match_object(self, tmp_path):
        """End to end through the CLI: --flow-backend batched and
        --flow-backend object write byte-identical .pl files."""
        work = str(tmp_path)
        assert (
            cli_main(
                ["generate", "Dagmar", "--out", work, "--seed", "2"]
            )
            == 0
        )
        outs = {}
        for backend in ("batched", "object"):
            out = f"{work}/{backend}"
            code = cli_main(
                [
                    "--flow-backend",
                    backend,
                    "place",
                    "Dagmar",
                    "--dir",
                    work,
                    "--out",
                    out,
                    "--transport-method",
                    "ns",
                ]
            )
            assert code == 0
            with open(f"{out}/Dagmar.pl", "rb") as fh:
                outs[backend] = fh.read()
        assert outs["batched"] == outs["object"]


# ----------------------------------------------------------------------
# direct BatchedArraySimplex surface
# ----------------------------------------------------------------------
class TestBatchedSimplexDirect:
    def test_rows_expose_per_row_pivot_stats(self):
        tasks = make_batch("square", 400, 4)
        got = solve_batched(tasks)
        want = solve_serial(tasks, "array")
        for (rg, _), (rw, _) in zip(got, want):
            assert rg.stats.method == "ns"
            assert rg.stats.pivots == rw.stats.pivots
            assert rg.stats.nodes == rw.stats.nodes
            assert rg.stats.arcs == rw.stats.arcs

    def test_non_ns_method_falls_back_serial(self):
        from repro.flows.transportation import (
            solve_transportation_with_relaxation,
        )

        tasks = make_batch("square", 410, 3)
        got = solve_transportation_batched(tasks, method="lp")
        # non-ns methods must take the plain serial path verbatim
        set_flow_backend("array")
        want = [
            solve_transportation_with_relaxation(s, c, k, method="lp")
            for s, c, k in tasks
        ]
        assert_results_identical(got, want, pivots=False)
