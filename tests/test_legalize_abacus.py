"""Tests for Abacus row legalization."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.legalize import abacus_legalize, build_segments, check_legality
from repro.netlist import Netlist

DIE = Rect(0, 0, 40, 10)


def _netlist(positions, widths=None):
    nl = Netlist(DIE, row_height=1.0, site_width=0.5)
    widths = widths or [2.0] * len(positions)
    for i, ((x, y), w) in enumerate(zip(positions, widths)):
        nl.add_cell(f"c{i}", w, 1.0, x=x, y=y)
    nl.finalize()
    return nl


class TestPlaceRow:
    def test_non_overlapping_stay_put(self):
        nl = _netlist([(5, 3.5), (15, 3.5)])
        segs = build_segments(nl)
        move = abacus_legalize(nl, [0, 1], segs)
        assert move < 1.0  # only row snapping
        assert check_legality(nl).is_legal

    def test_overlapping_separated(self):
        nl = _netlist([(10, 3.5), (10.5, 3.5), (11, 3.5)])
        segs = build_segments(nl)
        abacus_legalize(nl, [0, 1, 2], segs)
        rep = check_legality(nl)
        assert rep.overlaps == 0
        # x order preserved
        assert nl.x[0] < nl.x[1] < nl.x[2]

    def test_cluster_centering(self):
        """Two equal cells colliding should split symmetrically."""
        nl = _netlist([(10, 0.5), (10, 0.5)])
        segs = [s for s in build_segments(nl) if s.y_lo == 0.0]
        abacus_legalize(nl, [0, 1], segs)
        assert nl.x[0] + nl.x[1] == pytest.approx(20, abs=0.6)
        assert abs(nl.x[1] - nl.x[0]) == pytest.approx(2.0)

    def test_segment_boundary_clamp(self):
        nl = _netlist([(0.2, 0.5)])  # wants to stick out left
        segs = build_segments(nl)
        abacus_legalize(nl, [0], segs)
        assert nl.cell_rect(0).x_lo >= 0

    def test_site_alignment(self):
        nl = _netlist([(10.13, 0.5), (20.77, 2.5)])
        segs = build_segments(nl)
        abacus_legalize(nl, [0, 1], segs)
        for i in (0, 1):
            left = nl.cell_rect(i).x_lo
            assert (left / 0.5) % 1 == pytest.approx(0, abs=1e-6)


class TestCapacityAndErrors:
    def test_over_capacity_raises(self):
        nl = _netlist([(5, 5)] * 30, widths=[20.0] * 30)
        segs = build_segments(nl)
        with pytest.raises(ValueError):
            abacus_legalize(nl, list(range(30)), segs)

    def test_macro_rejected(self):
        nl = Netlist(DIE, row_height=1.0)
        nl.add_cell("macro", 5, 3, x=10, y=5)
        nl.finalize()
        segs = build_segments(nl)
        with pytest.raises(ValueError):
            abacus_legalize(nl, [0], segs)

    def test_empty_cells_ok(self):
        nl = _netlist([(5, 5)])
        assert abacus_legalize(nl, [], build_segments(nl)) == 0.0


class TestDense:
    def test_dense_instance_legal(self):
        rng = np.random.default_rng(0)
        n = 120
        positions = [
            (float(rng.uniform(1, 39)), float(rng.uniform(0.5, 9.5)))
            for _ in range(n)
        ]
        widths = [float(rng.choice([1.0, 1.5, 2.0])) for _ in range(n)]
        nl = _netlist(positions, widths)
        segs = build_segments(nl)
        abacus_legalize(nl, list(range(n)), segs)
        rep = check_legality(nl)
        assert rep.overlaps == 0
        assert rep.out_of_die == 0
        assert rep.off_row == 0

    def test_movement_reasonable(self):
        """Legalizing an already near-legal placement moves little."""
        nl = _netlist([(2 + 3 * i, 2.5) for i in range(10)])
        segs = build_segments(nl)
        sq = abacus_legalize(nl, list(range(10)), segs)
        assert sq < 10.0
