"""Integration tests: all four placers end-to-end on small instances."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.place import (
    BonnPlaceFBP,
    BonnPlaceOptions,
    KraftwerkPlacer,
    KraftwerkOptions,
    PlacementError,
    RecursiveOptions,
    RecursivePlacer,
    RQLOptions,
    RQLPlacer,
)
from repro.workloads import (
    MoveBoundSpec,
    NetlistSpec,
    attach_movebounds,
    generate_netlist,
)

DIE = Rect(0, 0, 100, 100)


def _instance(num_cells=250, seed=0, with_bounds=False):
    spec = NetlistSpec("itest", num_cells, utilization=0.5, num_pads=12)
    nl, logical = generate_netlist(spec, seed=seed)
    if with_bounds:
        bounds = attach_movebounds(
            nl, logical,
            [MoveBoundSpec("m0", 0.12, density=0.7),
             MoveBoundSpec("m1", 0.10, density=0.7)],
            seed=seed,
        )
    else:
        bounds = MoveBoundSet(nl.die)
    return nl, bounds


class TestBonnPlaceFBP:
    def test_legal_without_bounds(self):
        nl, bounds = _instance()
        res = BonnPlaceFBP().place(nl, bounds)
        assert res.legality.is_legal
        assert res.hpwl > 0
        assert res.global_seconds > 0 and res.legal_seconds > 0

    def test_legal_with_bounds(self):
        nl, bounds = _instance(with_bounds=True, seed=1)
        res = BonnPlaceFBP().place(nl, bounds)
        assert res.legality.is_legal
        assert res.violations == 0

    def test_improves_over_scrambled(self):
        nl, bounds = _instance(seed=2)
        rng = np.random.default_rng(0)
        movable = [c.index for c in nl.cells if not c.fixed]
        nl.x[movable] = rng.uniform(1, 99, len(movable))
        nl.y[movable] = rng.uniform(1, 99, len(movable))
        scrambled_hpwl = nl.hpwl()
        res = BonnPlaceFBP().place(nl, bounds)
        assert res.hpwl < scrambled_hpwl

    def test_infeasible_raises_with_witness(self):
        nl, _ = _instance(seed=3)
        bounds = MoveBoundSet(nl.die)
        side = nl.die.width * 0.05
        bounds.add_rects("tiny", [Rect(0, 0, side, side)])
        for c in nl.cells[:200]:
            c.movebound = "tiny"
        with pytest.raises(PlacementError, match="tiny"):
            BonnPlaceFBP().place(nl, bounds)

    def test_level_reports_available(self):
        nl, bounds = _instance(seed=4)
        bp = BonnPlaceFBP()
        bp.place(nl, bounds)
        assert len(bp.level_reports) == bp.num_levels(nl)
        for rep in bp.level_reports:
            assert rep.feasible
            assert rep.stats.num_nodes > 0

    def test_deterministic(self):
        a_nl, a_b = _instance(seed=5)
        b_nl, b_b = _instance(seed=5)
        ra = BonnPlaceFBP().place(a_nl, a_b)
        rb = BonnPlaceFBP().place(b_nl, b_b)
        assert ra.hpwl == pytest.approx(rb.hpwl)
        assert np.array_equal(a_nl.x, b_nl.x)

    def test_max_levels_override(self):
        nl, bounds = _instance(seed=6)
        bp = BonnPlaceFBP(BonnPlaceOptions(max_levels=2))
        assert bp.num_levels(nl) == 2


class TestRQL:
    def test_legal_without_bounds(self):
        nl, bounds = _instance(seed=7)
        res = RQLPlacer().place(nl, bounds)
        assert not res.crashed
        assert res.legality.overlaps == 0
        assert res.legality.off_row == 0

    def test_violations_with_tight_bounds(self):
        nl, bounds = _instance(with_bounds=True, seed=8)
        res = RQLPlacer().place(nl, bounds)
        # the RQL-style baseline has no capacity-aware movebound
        # handling; it typically violates (paper Tables IV/V)
        assert not res.crashed
        assert res.legality.overlaps == 0

    def test_iteration_cap(self):
        nl, bounds = _instance(seed=9)
        placer = RQLPlacer(RQLOptions(max_iterations=2))
        placer.place(nl, bounds)
        assert placer.iterations_run <= 2


class TestKraftwerk:
    def test_legal_output(self):
        nl, bounds = _instance(seed=10)
        res = KraftwerkPlacer(KraftwerkOptions(max_iterations=8)).place(
            nl, bounds
        )
        assert res.legality.is_legal

    def test_spreads_density(self):
        from repro.metrics import DensityMap

        nl, bounds = _instance(seed=11)
        KraftwerkPlacer(KraftwerkOptions(max_iterations=10)).place(nl, bounds)
        dmap = DensityMap(nl, 8, 8)
        assert dmap.overflow_ratio(0.97) < 0.3


class TestRecursive:
    def test_legal_output(self):
        nl, bounds = _instance(seed=12)
        res = RecursivePlacer(RecursiveOptions(reflow_passes=0)).place(
            nl, bounds
        )
        assert res.legality.is_legal

    def test_respects_bounds_when_loose(self):
        nl, bounds = _instance(with_bounds=True, seed=13)
        res = RecursivePlacer().place(nl, bounds)
        assert res.violations == 0


class TestPoisson:
    def test_poisson_solver(self):
        from repro.place.kraftwerk import solve_poisson_neumann

        rng = np.random.default_rng(0)
        rhs = rng.normal(size=(16, 16))
        phi = solve_poisson_neumann(rhs)
        # verify -laplace(phi) ~ rhs - mean(rhs) in the interior
        lap = (
            -4 * phi[1:-1, 1:-1]
            + phi[2:, 1:-1]
            + phi[:-2, 1:-1]
            + phi[1:-1, 2:]
            + phi[1:-1, :-2]
        )
        target = rhs - rhs.mean()
        corr = np.corrcoef((-lap).ravel(), target[1:-1, 1:-1].ravel())[0, 1]
        assert corr > 0.95
