"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.fbp import build_fbp_model, fbp_partition, realize_flow
from repro.feasibility import check_feasibility
from repro.geometry import Rect, RectSet
from repro.grid import Grid
from repro.legalize import check_legality, legalize_with_movebounds
from repro.movebounds import (
    EXCLUSIVE,
    MoveBound,
    MoveBoundSet,
    decompose_regions,
)
from repro.netlist import Netlist, Pin
from repro.place import BonnPlaceFBP, PlacementError
from repro.qp import solve_qp

DIE = Rect(0, 0, 50, 50)


class TestDegenerateNetlists:
    def test_empty_netlist_places(self):
        nl = Netlist(DIE)
        nl.finalize()
        res = BonnPlaceFBP().place(nl, MoveBoundSet(DIE))
        assert res.hpwl == 0.0
        assert res.legality.is_legal

    def test_single_cell(self):
        nl = Netlist(DIE)
        nl.add_cell("only", 2, 1, x=25, y=25)
        nl.finalize()
        res = BonnPlaceFBP().place(nl, MoveBoundSet(DIE))
        assert res.legality.is_legal

    def test_all_fixed(self):
        nl = Netlist(DIE)
        for i in range(5):
            nl.add_cell(f"f{i}", 2, 1, x=5 + 4 * i, y=10.5, fixed=True)
        nl.finalize()
        nl.add_net("n", [Pin(0), Pin(4)])
        before = nl.hpwl()
        res = BonnPlaceFBP().place(nl, MoveBoundSet(DIE))
        assert res.hpwl == pytest.approx(before)

    def test_no_nets(self):
        nl = Netlist(DIE)
        for i in range(20):
            nl.add_cell(f"c{i}", 2, 1, x=25, y=25)
        nl.finalize()
        res = BonnPlaceFBP().place(nl, MoveBoundSet(DIE))
        assert res.legality.is_legal

    def test_isolated_cells_qp(self):
        """Cells with no nets must not blow up the QP (regularization
        keeps the system SPD)."""
        nl = Netlist(DIE)
        nl.add_cell("a", 1, 1, x=10, y=10)
        nl.add_cell("b", 1, 1, x=40, y=40)
        nl.finalize()
        x, y = solve_qp(nl)
        assert np.all(np.isfinite(x)) and np.all(np.isfinite(y))

    def test_self_loop_net(self):
        """A net whose pins all sit on one cell is harmless."""
        nl = Netlist(DIE)
        nl.add_cell("a", 1, 1, x=10, y=10)
        nl.finalize()
        nl.add_net("loop", [Pin(0, -0.2, 0), Pin(0, 0.2, 0)])
        solve_qp(nl)
        assert nl.hpwl() == pytest.approx(0.4)


class TestInfeasibilityInjection:
    def test_overfull_die(self):
        nl = Netlist(Rect(0, 0, 10, 10))
        for i in range(120):
            nl.add_cell(f"c{i}", 2, 1, x=5, y=5)
        nl.finalize()
        with pytest.raises(PlacementError):
            BonnPlaceFBP().place(nl, MoveBoundSet(nl.die))

    def test_movebound_overflow_witnessed(self):
        nl = Netlist(DIE)
        bounds = MoveBoundSet(DIE)
        bounds.add_rects("m", [Rect(0, 0, 4, 4)])
        for i in range(30):
            nl.add_cell(f"c{i}", 2, 1, x=25, y=25, movebound="m")
        nl.finalize()
        report = check_feasibility(nl, bounds)
        assert not report.feasible
        assert report.witness == frozenset({"m"})

    def test_blockage_eats_capacity(self):
        nl = Netlist(DIE)
        nl.add_blockage(Rect(0, 0, 50, 48))  # almost everything blocked
        for i in range(60):
            nl.add_cell(f"c{i}", 2, 1, x=25, y=49)
        nl.finalize()
        report = check_feasibility(nl, MoveBoundSet(DIE))
        assert not report.feasible

    def test_fbp_model_infeasibility_no_mutation(self):
        """fbp_partition on an infeasible instance reports infeasible
        and leaves positions untouched."""
        nl = Netlist(DIE)
        bounds = MoveBoundSet(DIE)
        bounds.add_rects("m", [Rect(0, 0, 4, 4)])
        for i in range(30):
            nl.add_cell(f"c{i}", 2, 1, x=25, y=25, movebound="m")
        nl.finalize()
        dec = decompose_regions(DIE, bounds)
        grid = Grid(DIE, 2, 2)
        grid.build_regions(dec)
        before = nl.snapshot()
        report = fbp_partition(nl, bounds, grid)
        assert not report.feasible
        assert np.array_equal(nl.x, before.x)


class TestBoundaryGeometry:
    def test_movebound_touching_die_edges(self):
        nl = Netlist(DIE, row_height=1.0, site_width=0.5)
        bounds = MoveBoundSet(DIE)
        bounds.add_rects("edge", [Rect(0, 0, 50, 5)])  # full south band
        for i in range(20):
            nl.add_cell(f"c{i}", 2, 1, x=25, y=25, movebound="edge")
        for i in range(30):
            nl.add_cell(f"d{i}", 2, 1, x=25, y=25)
        nl.finalize()
        for i in range(19):
            nl.add_net(f"n{i}", [Pin(i), Pin(i + 1)])
        res = BonnPlaceFBP().place(nl, bounds)
        assert res.legality.is_legal

    def test_cell_wider_than_movebound_infeasible_geometrically(self):
        """A cell that physically cannot fit inside its movebound: the
        area check may pass but legalization cannot succeed — the
        placer must fail loudly, not silently misplace."""
        nl = Netlist(DIE, row_height=1.0, site_width=0.5)
        bounds = MoveBoundSet(DIE)
        bounds.add_rects("tiny", [Rect(0, 0, 3, 10)])
        nl.add_cell("wide", 8, 1, x=25, y=25, movebound="tiny")
        nl.finalize()
        with pytest.raises(Exception):
            BonnPlaceFBP().place(nl, bounds)

    def test_exclusive_covering_whole_die_rejected(self):
        nl = Netlist(DIE)
        bounds = MoveBoundSet(DIE)
        bounds.add_rects("x", [DIE], EXCLUSIVE)
        nl.add_cell("c", 2, 1, x=25, y=25)  # default cell: nowhere to go
        nl.finalize()
        report = check_feasibility(nl, bounds)
        assert not report.feasible

    def test_multirect_disjoint_movebound(self):
        """Non-convex, disconnected movebound area: cells distribute
        over both pieces."""
        nl = Netlist(DIE, row_height=1.0, site_width=0.5)
        bounds = MoveBoundSet(DIE)
        bounds.add_rects(
            "split", [Rect(0, 0, 10, 10), Rect(40, 40, 50, 50)]
        )
        for i in range(60):
            nl.add_cell(f"c{i}", 2, 1, x=25, y=25, movebound="split")
        nl.finalize()
        res = BonnPlaceFBP().place(nl, bounds)
        assert res.legality.is_legal
        in_a = in_b = 0
        for c in nl.cells:
            if Rect(0, 0, 10, 10).contains_point(nl.x[c.index], nl.y[c.index]):
                in_a += 1
            else:
                in_b += 1
        assert in_a > 0 and in_b > 0  # both pieces used (one is too small)


class TestLegalizeEdgeCases:
    def test_single_row_die(self):
        nl = Netlist(Rect(0, 0, 40, 1), row_height=1.0, site_width=0.5)
        for i in range(10):
            nl.add_cell(f"c{i}", 2, 1, x=20, y=0.5)
        nl.finalize()
        legalize_with_movebounds(nl)
        assert check_legality(nl).is_legal

    def test_tight_fit(self):
        """95 % utilization still legalizes."""
        nl = Netlist(Rect(0, 0, 20, 10), row_height=1.0, site_width=0.5)
        rng = np.random.default_rng(0)
        total = 0.0
        i = 0
        while total < 0.93 * 200:
            w = float(rng.choice([1.0, 1.5, 2.0]))
            nl.add_cell(f"c{i}", w, 1,
                        x=float(rng.uniform(1, 19)),
                        y=float(rng.uniform(0.5, 9.5)))
            total += w
            i += 1
        nl.finalize()
        legalize_with_movebounds(nl)
        rep = check_legality(nl)
        assert rep.overlaps == 0 and rep.out_of_die == 0
