"""The resilience exception taxonomy: hierarchy, backward
compatibility with the builtin exceptions the pre-taxonomy code raised,
diagnosis lines, input validation, and the CLI exit-code contract."""

import numpy as np
import pytest

from repro.bookshelf import save_instance
from repro.cli import main
from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist
from repro.place import InfeasiblePlacementError, PlacementError
from repro.resilience import (
    EXIT_BUDGET,
    EXIT_INFEASIBLE,
    EXIT_INTERNAL,
    EXIT_SERVICE,
    InfeasibleInputError,
    JobCancelledError,
    PipelineStageError,
    ReproError,
    ServiceOverloadError,
    SolverBudgetExceeded,
    SolverNumericsError,
    instance_problems,
    reset_faults,
    set_default_budget,
    validate_instance,
)

DIE = Rect(0, 0, 100, 100)


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    yield
    reset_faults()
    set_default_budget(None)


def _netlist(cells=(("c0", 2.0, 1.0, None),)):
    nl = Netlist(DIE)
    for name, w, h, mb in cells:
        nl.add_cell(name, w, h, movebound=mb)
    nl.finalize()
    return nl


class TestHierarchy:
    def test_backward_compatible_bases(self):
        # the builtins the pre-taxonomy code raised must still catch
        assert issubclass(InfeasibleInputError, ValueError)
        assert issubclass(SolverBudgetExceeded, TimeoutError)
        assert issubclass(SolverNumericsError, ArithmeticError)
        assert issubclass(PipelineStageError, RuntimeError)
        for cls in (
            InfeasibleInputError,
            SolverBudgetExceeded,
            SolverNumericsError,
            PipelineStageError,
        ):
            assert issubclass(cls, ReproError)

    def test_exit_codes(self):
        assert InfeasibleInputError("x").exit_code == EXIT_INFEASIBLE == 2
        assert SolverBudgetExceeded("x").exit_code == EXIT_BUDGET == 3
        assert SolverNumericsError("x").exit_code == EXIT_INTERNAL == 4
        assert PipelineStageError("x").exit_code == EXIT_INTERNAL == 4
        assert ReproError("x").exit_code == EXIT_INTERNAL == 4
        assert ServiceOverloadError("x").exit_code == EXIT_SERVICE == 5
        assert JobCancelledError("x").exit_code == EXIT_SERVICE == 5

    def test_service_errors_in_taxonomy(self):
        assert issubclass(ServiceOverloadError, ReproError)
        assert issubclass(ServiceOverloadError, RuntimeError)
        assert issubclass(JobCancelledError, ReproError)
        exc = ServiceOverloadError(
            "queue full", tenant="acme", shed_job="j000009"
        )
        assert "tenant=acme" in exc.diagnosis()
        assert "shed_job=j000009" in exc.diagnosis()
        assert JobCancelledError("gone", job_id="j000001").job_id == "j000001"

    def test_placement_error_in_taxonomy(self):
        assert issubclass(PlacementError, PipelineStageError)
        assert issubclass(PlacementError, RuntimeError)
        assert issubclass(InfeasiblePlacementError, PlacementError)
        assert issubclass(InfeasiblePlacementError, InfeasibleInputError)
        # the infeasible variant wins the exit-code lookup
        assert InfeasiblePlacementError("x").exit_code == EXIT_INFEASIBLE

    def test_catchable_as_valueerror(self):
        with pytest.raises(ValueError):
            raise InfeasibleInputError("bad input")
        with pytest.raises(RuntimeError):
            raise PipelineStageError("stage died")


class TestDiagnosis:
    def test_stage_and_context(self):
        exc = PipelineStageError(
            "it broke", stage="fbp.realize", level=3, context={"k": "v"}
        )
        line = exc.diagnosis()
        assert line.startswith("[fbp.realize] it broke")
        assert "level=3" in line and "k=v" in line

    def test_witness_and_deficit(self):
        exc = InfeasibleInputError(
            "no placement",
            witness=frozenset({"b", "a"}),
            deficit=12.5,
            stage="place.feasibility",
        )
        line = exc.diagnosis()
        assert "violating movebound subset: ['a', 'b']" in line
        assert "deficit: 12.5 area units" in line

    def test_budget_extras(self):
        exc = SolverBudgetExceeded(
            "over budget", solver="ns", iterations=17, elapsed=1.25
        )
        line = exc.diagnosis()
        assert "solver=ns" in line
        assert "iterations=17" in line
        assert "elapsed=1.25s" in line

    def test_single_line(self):
        exc = InfeasibleInputError(
            "x", witness=frozenset({"m"}), deficit=1.0, stage="s"
        )
        assert "\n" not in exc.diagnosis()


class TestValidation:
    def test_clean_instance_passes(self):
        nl = _netlist()
        validate_instance(nl, MoveBoundSet(DIE), 0.9)
        assert instance_problems(nl, MoveBoundSet(DIE)) == []

    def test_zero_area_movebound_rejected_at_construction(self):
        # RectSet normalization drops zero-area rects, so a movebound
        # declared with only such rects is rejected immediately
        mbs = MoveBoundSet(DIE)
        with pytest.raises(InfeasibleInputError, match="empty area"):
            mbs.add_rects("m", [Rect(0, 0, 0, 10), Rect(5, 5, 5, 9)])

    def test_movebound_outside_die_rejected_at_construction(self):
        mbs = MoveBoundSet(DIE)
        with pytest.raises(InfeasibleInputError, match="leaves the die"):
            mbs.add_rects("m", [Rect(90, 90, 150, 150)])

    def test_undeclared_movebound(self):
        nl = _netlist((("c0", 2.0, 1.0, "ghost"),))
        with pytest.raises(InfeasibleInputError, match="ghost"):
            validate_instance(nl, MoveBoundSet(DIE))

    def test_negative_cell_dimensions(self):
        # add_cell rejects bad dims up front; corruption after
        # construction (or a hand-built netlist) is what validation
        # has to catch
        nl = _netlist()
        nl.cells[0].width = -1.0
        problems = instance_problems(nl)
        assert any("non-finite" in p or "negative" in p for p in problems)

    def test_nan_position(self):
        nl = _netlist()
        nl.x[0] = float("nan")
        problems = instance_problems(nl)
        assert any("NaN" in p for p in problems)

    def test_nonpositive_density(self):
        nl = _netlist()
        with pytest.raises(InfeasibleInputError, match="density"):
            validate_instance(nl, None, 0.0)

    def test_validation_error_is_infeasible_exit(self):
        nl = _netlist((("c0", 2.0, 1.0, "ghost"),))
        try:
            validate_instance(nl, MoveBoundSet(DIE))
        except ReproError as exc:
            assert exc.exit_code == EXIT_INFEASIBLE
            assert exc.stage == "validate"
        else:
            pytest.fail("expected InfeasibleInputError")


def _write_feasible_instance(tmp_path):
    """A small unconstrained instance the placer handles quickly."""
    rng = np.random.default_rng(0)
    nl = Netlist(DIE, name="feas")
    for i in range(60):
        nl.add_cell(f"c{i}", 2.0, 1.0)
    nl.finalize()
    nl.x[:] = rng.uniform(5, 95, nl.num_cells)
    nl.y[:] = rng.uniform(5, 95, nl.num_cells)
    save_instance(str(tmp_path), nl, MoveBoundSet(DIE))
    return "feas"


def _write_infeasible_instance(tmp_path):
    """160 units of cells bound into a 100-unit rectangle."""
    nl = Netlist(DIE, name="infeas")
    for i in range(80):
        nl.add_cell(f"c{i}", 2.0, 1.0, movebound="tiny")
    nl.finalize()
    nl.x[:] = np.linspace(1, 99, nl.num_cells)
    nl.y[:] = 50.0
    mbs = MoveBoundSet(DIE)
    mbs.add_rects("tiny", [Rect(0, 0, 10, 10)])
    save_instance(str(tmp_path), nl, mbs)
    return "infeas"


class TestCLIExitCodes:
    def test_place_infeasible_exits_2(self, tmp_path, capsys):
        name = _write_infeasible_instance(tmp_path)
        rc = main(["place", name, "--dir", str(tmp_path)])
        assert rc == EXIT_INFEASIBLE
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "tiny" in err
        assert "Traceback" not in err

    def test_place_relax_infeasible_succeeds(self, tmp_path, capsys):
        name = _write_infeasible_instance(tmp_path)
        rc = main(
            ["place", name, "--dir", str(tmp_path), "--relax-infeasible"]
        )
        captured = capsys.readouterr()
        assert "relaxed" in captured.err
        assert rc in (0, 1)  # placed; legality may be imperfect

    def test_check_reports_diagnosis(self, tmp_path, capsys):
        name = _write_infeasible_instance(tmp_path)
        rc = main(["check", name, "--dir", str(tmp_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "diagnosis:" in out
        assert "condition (1)" in out and "tiny" in out

    def test_check_relax_reports_factor(self, tmp_path, capsys):
        name = _write_infeasible_instance(tmp_path)
        main(["check", name, "--dir", str(tmp_path), "--relax-infeasible"])
        out = capsys.readouterr().out
        assert "relaxed" in out

    def test_budget_fault_maps_to_exit_3(self, tmp_path, capsys):
        # pin every MCF backend to an injected budget fault so the
        # fallback chain cannot save the first FBP solve
        name = _write_feasible_instance(tmp_path)
        rc = main(
            [
                "--fault-plan",
                "solver.ns=budget;solver.ssp=budget;"
                "solver.lp=budget;solver.heur=budget",
                "place",
                name,
                "--dir",
                str(tmp_path),
            ]
        )
        assert rc == EXIT_BUDGET
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_stage_fault_maps_to_exit_4(self, tmp_path, capsys):
        name = _write_feasible_instance(tmp_path)
        rc = main(
            [
                "--fault-plan",
                "stage.place.level=stage",
                "place",
                name,
                "--dir",
                str(tmp_path),
            ]
        )
        assert rc == EXIT_INTERNAL
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err
