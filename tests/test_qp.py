"""Tests for the quadratic placement engine."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.netlist import Netlist, Pin
from repro.qp import QPOptions, build_axis_system, solve_qp

DIE = Rect(0, 0, 10, 10)


def chain_netlist():
    nl = Netlist(DIE)
    a = nl.add_cell("a", 1, 1, x=5, y=5)
    b = nl.add_cell("b", 1, 1, x=5, y=5)
    nl.finalize()
    nl.add_net("n1", [Pin.terminal(0, 0), Pin(a.index)])
    nl.add_net("n2", [Pin(a.index), Pin(b.index)])
    nl.add_net("n3", [Pin(b.index), Pin.terminal(10, 10)])
    return nl


class TestChain:
    @pytest.mark.parametrize("model", ["clique", "star", "hybrid"])
    def test_equispaced_solution(self, model):
        nl = chain_netlist()
        x, y = solve_qp(nl, QPOptions(net_model=model))
        assert x[0] == pytest.approx(10 / 3, abs=1e-5)
        assert x[1] == pytest.approx(20 / 3, abs=1e-5)
        assert y[0] == pytest.approx(10 / 3, abs=1e-5)

    def test_weighted_net_pulls(self):
        nl = chain_netlist()
        nl.nets[0].weight = 10.0  # strong pull to (0, 0)
        x, _ = solve_qp(nl)
        assert x[0] < 10 / 3


class TestStarCliqueEquivalence:
    def test_high_degree_net(self):
        """Star with weight p*w/(p-1) is exactly the clique after
        eliminating the star node."""
        rng = np.random.default_rng(0)
        nl = Netlist(DIE)
        for i in range(6):
            nl.add_cell(f"c{i}", 1, 1,
                        x=float(rng.uniform(1, 9)), y=float(rng.uniform(1, 9)))
        nl.finalize()
        nl.add_net("big", [Pin(i) for i in range(6)])
        nl.add_net("anchor", [Pin(0), Pin.terminal(0, 0)])
        nl.add_net("anchor2", [Pin(5), Pin.terminal(10, 10)])
        snap = nl.snapshot()
        xc, yc = solve_qp(nl, QPOptions(net_model="clique"), apply=False)
        nl.restore(snap)
        xs, ys = solve_qp(nl, QPOptions(net_model="star"), apply=False)
        assert np.allclose(xc, xs, atol=1e-5)
        assert np.allclose(yc, ys, atol=1e-5)


class TestSystemAssembly:
    def test_spd(self):
        nl = chain_netlist()
        system = build_axis_system(nl, 0)
        a = system.matrix.toarray()
        assert np.allclose(a, a.T)
        eigenvalues = np.linalg.eigvalsh(a)
        assert eigenvalues.min() > 0

    def test_fixed_cells_enter_rhs(self):
        nl = chain_netlist()
        nl.cells[1].fixed = True
        nl.x[1] = 8.0
        system = build_axis_system(nl, 0)
        assert system.num_cell_unknowns == 1
        # a's optimum: midpoint of (0, 8) with equal weights
        x, _ = solve_qp(nl)
        assert x[0] == pytest.approx(4.0, abs=1e-5)

    def test_pin_offsets_affect_solution(self):
        nl = Netlist(DIE)
        a = nl.add_cell("a", 2, 1, x=5, y=5)
        nl.finalize()
        nl.add_net("n", [Pin(a.index, 1.0, 0.0), Pin.terminal(6, 5)])
        x, _ = solve_qp(nl)
        # pin at center+1 should land on 6 -> center at 5
        assert x[0] == pytest.approx(5.0, abs=1e-5)

    def test_nets_subset(self):
        nl = chain_netlist()
        system_all = build_axis_system(nl, 0)
        system_sub = build_axis_system(nl, 0, nets=[nl.nets[0]])
        assert system_sub.matrix.nnz < system_all.matrix.nnz

    def test_unknown_model_rejected(self):
        nl = chain_netlist()
        with pytest.raises(ValueError):
            build_axis_system(nl, 0, model="resistor")

    def test_bad_mask_shape(self):
        nl = chain_netlist()
        with pytest.raises(ValueError):
            build_axis_system(nl, 0, movable_mask=np.array([True]))


class TestLocalQP:
    def test_outside_cells_fixed(self):
        nl = chain_netlist()
        mask = np.array([True, False])
        x_before = nl.x[1]
        solve_qp(nl, movable_mask=mask)
        assert nl.x[1] == x_before  # b untouched
        # a sits at the weighted middle of (0,0) and b
        assert nl.x[0] == pytest.approx((0 + x_before) / 2, abs=1e-5)

    def test_apply_false_leaves_netlist(self):
        nl = chain_netlist()
        x0 = nl.x.copy()
        solve_qp(nl, apply=False)
        assert np.array_equal(nl.x, x0)


class TestAnchors:
    def test_anchor_pulls(self):
        nl = chain_netlist()
        solve_qp(nl)
        free = nl.x[0]
        nl.set_positions([5, 5], [5, 5])
        solve_qp(nl, anchors_x=[(0, 9.0, 10.0)])
        assert nl.x[0] > free

    def test_strong_anchor_dominates(self):
        nl = chain_netlist()
        solve_qp(nl, anchors_x=[(0, 9.0, 1e6)], anchors_y=[(0, 9.0, 1e6)])
        assert nl.x[0] == pytest.approx(9.0, abs=1e-3)


class TestB2B:
    def test_b2b_reduces_hpwl_vs_start(self):
        rng = np.random.default_rng(1)
        nl = Netlist(DIE)
        for i in range(30):
            nl.add_cell(f"c{i}", 0.5, 0.5,
                        x=float(rng.uniform(1, 9)), y=float(rng.uniform(1, 9)))
        nl.finalize()
        for j in range(25):
            members = rng.choice(30, size=3, replace=False)
            nl.add_net(f"n{j}", [Pin(int(c)) for c in members])
        nl.add_net("p1", [Pin(0), Pin.terminal(0, 0)])
        nl.add_net("p2", [Pin(1), Pin.terminal(10, 10)])
        before = nl.hpwl()
        solve_qp(nl, QPOptions(net_model="b2b"))
        assert nl.hpwl() < before

    def test_clamped_into_die(self):
        nl = chain_netlist()
        solve_qp(nl)
        assert not nl.check_in_die()
