"""Warm-start identity contract and geometry-cache invalidation.

The incremental-reuse layer promises *bit-identical* results: a
warm-started network-simplex solve, an exact-instance memo hit, and a
region-cache hit must all be observationally equivalent to the cold
path.  These tests exercise every reuse channel against its cold
oracle, including the ``REPRO_VERIFY_WARMSTART=1`` self-checking mode
CI runs.
"""

import numpy as np
import pytest

from repro.flows import (
    RELAX_CHAIN_WINDOW,
    solve_transportation,
    solve_transportation_with_relaxation,
)
from repro.flows.warmstart import WarmStartSlot, set_warm_start
from repro.geometry.cache import GeometryCache, activated_cache, active_cache
from repro.movebounds import MoveBoundSet
from repro.obs import get_tracer, reset_tracer
from repro.place import BonnPlaceFBP
from repro.workloads import NetlistSpec, generate_netlist


@pytest.fixture(autouse=True)
def _fresh_tracer():
    reset_tracer()
    yield
    reset_tracer()


def _instance(seed, n_src=12, n_snk=9, tight=1.3):
    """Random feasible transportation instance (ns-solvable sizes)."""
    rng = np.random.default_rng(seed)
    supplies = rng.uniform(1.0, 5.0, n_src)
    capacities = rng.uniform(1.0, 5.0, n_snk)
    capacities *= tight * supplies.sum() / capacities.sum()
    costs = rng.uniform(0.5, 20.0, (n_src, n_snk))
    # a few forbidden (movebound) arcs, but keep every row feasible
    costs[rng.random((n_src, n_snk)) < 0.15] = np.inf
    costs[:, 0] = rng.uniform(0.5, 20.0, n_src)
    return supplies, capacities, costs


class TestWarmColdIdentity:
    def test_warm_resolve_matches_cold(self):
        """Re-solving with scaled capacities from the previous basis
        must reproduce the cold solve of the scaled instance exactly."""
        for seed in range(8):
            supplies, capacities, costs = _instance(seed)
            slot = WarmStartSlot()
            first = solve_transportation(
                supplies, capacities, costs, method="ns", warm_slot=slot
            )
            assert first.feasible
            # same topology, new data -> the warm path
            warm = solve_transportation(
                supplies, capacities * 1.1, costs, method="ns",
                warm_slot=slot,
            )
            cold = solve_transportation(
                supplies, capacities * 1.1, costs, method="ns"
            )
            assert warm.feasible == cold.feasible
            assert warm.cost == cold.cost
            np.testing.assert_array_equal(warm.flow, cold.flow)

    def test_warm_path_actually_taken(self):
        supplies, capacities, costs = _instance(3)
        slot = WarmStartSlot()
        solve_transportation(
            supplies, capacities, costs, method="ns", warm_slot=slot
        )
        solve_transportation(
            supplies, capacities * 1.05, costs, method="ns", warm_slot=slot
        )
        counters = get_tracer().counters
        assert (
            counters.get("warmstart.hits", 0)
            + counters.get("warmstart.ambiguous", 0)
        ) > 0

    def test_relaxation_chain_identity(self):
        """An infeasible stage escalates through the chain; the slot is
        reused across stages and the result must equal the no-warm-start
        run bit for bit (the --relax-infeasible re-solve path)."""
        for seed in range(8):
            supplies, capacities, costs = _instance(seed, tight=0.8)
            slot = WarmStartSlot()
            warm, warm_stage = solve_transportation_with_relaxation(
                supplies, capacities, costs,
                chain=RELAX_CHAIN_WINDOW, method="ns", warm_slot=slot,
            )
            prev = set_warm_start(False)
            try:
                cold, cold_stage = solve_transportation_with_relaxation(
                    supplies, capacities, costs,
                    chain=RELAX_CHAIN_WINDOW, method="ns",
                )
            finally:
                set_warm_start(prev)
            assert warm_stage == cold_stage
            assert warm.cost == cold.cost
            np.testing.assert_array_equal(warm.flow, cold.flow)

    def test_verify_mode_accepts_warm_solves(self, monkeypatch):
        """REPRO_VERIFY_WARMSTART=1 re-solves cold after every accepted
        warm solve and raises on disagreement — so simply not raising
        here is the assertion."""
        monkeypatch.setenv("REPRO_VERIFY_WARMSTART", "1")
        for seed in range(6):
            supplies, capacities, costs = _instance(seed)
            slot = WarmStartSlot()
            solve_transportation(
                supplies, capacities, costs, method="ns", warm_slot=slot
            )
            for factor in (1.05, 1.2, 2.0):
                result = solve_transportation(
                    supplies, capacities * factor, costs, method="ns",
                    warm_slot=slot,
                )
                assert result.feasible


class TestExactInstanceMemo:
    def test_identical_resubmission_hits_memo(self):
        supplies, capacities, costs = _instance(5)
        slot = WarmStartSlot()
        first, stage1 = solve_transportation_with_relaxation(
            supplies, capacities, costs, method="ns", warm_slot=slot
        )
        second, stage2 = solve_transportation_with_relaxation(
            supplies, capacities, costs, method="ns", warm_slot=slot
        )
        assert get_tracer().counters.get("warmstart.instance_hits", 0) == 1
        assert stage1 == stage2
        assert first.cost == second.cost
        np.testing.assert_array_equal(first.flow, second.flow)

    def test_memo_returns_independent_flow_array(self):
        supplies, capacities, costs = _instance(5)
        slot = WarmStartSlot()
        first, _ = solve_transportation_with_relaxation(
            supplies, capacities, costs, method="ns", warm_slot=slot
        )
        second, _ = solve_transportation_with_relaxation(
            supplies, capacities, costs, method="ns", warm_slot=slot
        )
        second.flow[0, 0] += 1.0  # caller may mutate its result
        third, _ = solve_transportation_with_relaxation(
            supplies, capacities, costs, method="ns", warm_slot=slot
        )
        np.testing.assert_array_equal(first.flow, third.flow)

    def test_changed_input_misses_memo(self):
        supplies, capacities, costs = _instance(5)
        slot = WarmStartSlot()
        solve_transportation_with_relaxation(
            supplies, capacities, costs, method="ns", warm_slot=slot
        )
        bumped = costs.copy()
        bumped[0, 0] += 1e-9  # any bit-level change invalidates
        result, _ = solve_transportation_with_relaxation(
            supplies, capacities, bumped, method="ns", warm_slot=slot
        )
        assert get_tracer().counters.get("warmstart.instance_hits", 0) == 0
        cold = solve_transportation(supplies, capacities, bumped, method="ns")
        np.testing.assert_array_equal(result.flow, cold.flow)

    def test_memo_disabled_when_warm_start_off(self):
        supplies, capacities, costs = _instance(5)
        slot = WarmStartSlot()
        prev = set_warm_start(False)
        try:
            solve_transportation_with_relaxation(
                supplies, capacities, costs, method="ns", warm_slot=slot
            )
            solve_transportation_with_relaxation(
                supplies, capacities, costs, method="ns", warm_slot=slot
            )
        finally:
            set_warm_start(prev)
        assert get_tracer().counters.get("warmstart.instance_hits", 0) == 0


class TestGeometryCache:
    def test_same_scope_shares_entries(self):
        with activated_cache("scope-a") as cache:
            cache.put("k", ("payload",))
        with activated_cache("scope-a") as cache:
            assert cache.get("k") == ("payload",)
        counters = get_tracer().counters
        assert counters.get("cache.hit", 0) == 1

    def test_scope_change_invalidates(self):
        """A config-hash change means a different scope string, and a
        different scope must never see the old entries."""
        with activated_cache("scope-a") as cache:
            cache.put("k", ("stale",))
        with activated_cache("scope-b") as cache:
            assert cache.get("k") is None
        counters = get_tracer().counters
        assert counters.get("cache.miss", 0) == 1
        assert counters.get("cache.hit", 0) == 0

    def test_activation_is_lexical(self):
        assert active_cache() is None
        with activated_cache("outer") as outer:
            assert active_cache() is outer
            with activated_cache("inner") as inner:
                assert active_cache() is inner
            assert active_cache() is outer
        assert active_cache() is None

    def test_placer_scope_tracks_config_and_instance(self):
        spec = NetlistSpec("scopetest", 60, utilization=0.4, num_pads=4)
        nl, _ = generate_netlist(spec, seed=1)
        bounds = MoveBoundSet(nl.die)
        placer = BonnPlaceFBP()
        base = placer._geometry_scope(nl, bounds)
        # geometry-relevant option change -> new scope
        placer.options.density_target = 0.5
        assert placer._geometry_scope(nl, bounds) != base
        placer.options.density_target = 0.97
        assert placer._geometry_scope(nl, bounds) == base
        # reuse toggles are bit-identical by contract and must NOT
        # change the scope (a warm run may reuse a cold run's geometry)
        placer.options.warm_start = False
        placer.options.region_cache = False
        placer.options.pool_workers = 4
        assert placer._geometry_scope(nl, bounds) == base
        # instance geometry change -> new scope
        nl2, _ = generate_netlist(spec, seed=2)
        assert placer._geometry_scope(nl2, MoveBoundSet(nl2.die)) != base


class TestEndToEndIdentity:
    def _place(self, warm, verify=False, monkeypatch=None):
        spec = NetlistSpec("warmident", 260, utilization=0.5, num_pads=8)
        nl, _ = generate_netlist(spec, seed=11)
        placer = BonnPlaceFBP()
        placer.options.transport_method = "ns"
        placer.options.warm_start = warm
        placer.options.region_cache = warm
        placer.options.repartition_passes = 2
        placer.options.legalize = False
        result = placer.place(nl, MoveBoundSet(nl.die))
        return nl.x.copy(), nl.y.copy(), result.hpwl

    def test_full_placement_bit_identical(self):
        xw, yw, hw = self._place(True)
        counters = dict(get_tracer().counters)
        xc, yc, hc = self._place(False)
        np.testing.assert_array_equal(xw, xc)
        np.testing.assert_array_equal(yw, yc)
        assert hw == hc
        # the warm arm must have exercised the reuse channels
        assert counters.get("warmstart.hits", 0) > 0
        assert counters.get("cache.hit", 0) > 0

    def test_full_placement_under_verify_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_WARMSTART", "1")
        xw, yw, hw = self._place(True)
        monkeypatch.delenv("REPRO_VERIFY_WARMSTART")
        xc, yc, hc = self._place(False)
        np.testing.assert_array_equal(xw, xc)
        np.testing.assert_array_equal(yw, yc)
        assert hw == hc
