"""Tests for the zero-dependency tracer (spans, counters, export)."""

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA,
    Tracer,
    get_tracer,
    incr,
    reset_tracer,
    set_tracer,
    span,
)
from repro.obs.report import STATS_SCHEMA, stats_payload, write_stats_json


class TestSpans:
    def test_nesting_builds_tree(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner2"):
                pass
        by_path = t.spans_by_path()
        assert set(by_path) == {"outer", "outer/inner", "outer/inner2"}
        assert by_path["outer"].count == 1
        assert by_path["outer/inner"].parent is by_path["outer"]

    def test_same_path_aggregates(self):
        t = Tracer()
        for _ in range(5):
            with t.span("loop"):
                pass
        by_path = t.spans_by_path()
        assert set(by_path) == {"loop"}
        assert by_path["loop"].count == 5

    def test_timers_monotone_and_accumulating(self):
        t = Tracer()
        total = 0.0
        for _ in range(3):
            with t.span("work") as s:
                sum(range(20000))
            assert s.wall_s > 0.0
            assert s.cpu_s >= 0.0
            total += s.wall_s
        node = t.spans_by_path()["work"]
        assert node.wall_s == pytest.approx(total)
        assert node.cpu_s >= 0.0

    def test_active_span_exposes_times_after_exit(self):
        t = Tracer()
        with t.span("x") as s:
            pass
        assert s.wall_s >= 0.0
        # a second activation of the same path reports only its own time
        with t.span("x") as s2:
            pass
        assert s2.wall_s <= t.spans_by_path()["x"].wall_s

    def test_exception_propagates_and_span_closes(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        assert t.spans_by_path()["boom"].count == 1
        assert t.current_path == ""

    def test_stack_unwinds_past_leaked_spans(self):
        t = Tracer()
        outer = t.span("outer")
        outer.__enter__()
        inner = t.span("inner")
        inner.__enter__()
        # closing the outer span unwinds the leaked inner one too
        outer.__exit__(None, None, None)
        assert t.current_path == ""


class TestCounters:
    def test_incr_accumulates(self):
        t = Tracer()
        t.incr("a")
        t.incr("a", 2.5)
        assert t.counter("a") == pytest.approx(3.5)
        assert t.counter("missing") == 0.0

    def test_negative_increment_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.incr("a", -1)

    def test_reset_clears_everything(self):
        t = Tracer()
        with t.span("s"):
            t.incr("c")
        t.reset()
        assert t.spans_by_path() == {}
        assert t.counters == {}


class TestExport:
    def _populated(self):
        t = Tracer()
        with t.span("phase"):
            with t.span("step"):
                pass
        t.incr("widgets", 7)
        return t

    def test_json_round_trip(self):
        t = self._populated()
        data = json.loads(t.to_json())
        assert data == t.to_dict()
        assert data["schema"] == TRACE_SCHEMA
        assert data["counters"]["widgets"] == 7
        (phase,) = data["spans"]
        assert phase["name"] == "phase"
        assert phase["children"][0]["name"] == "step"

    def test_write_json(self, tmp_path):
        t = self._populated()
        path = tmp_path / "trace.json"
        t.write_json(str(path))
        assert json.loads(path.read_text()) == t.to_dict()

    def test_stats_payload_flattens_phases(self):
        t = self._populated()
        payload = stats_payload(tracer=t, extra={"note": "hi"})
        assert payload["schema"] == STATS_SCHEMA
        assert payload["note"] == "hi"
        assert set(payload["phases"]) == {"phase", "phase/step"}
        assert payload["phases"]["phase"]["count"] == 1
        assert payload["trace"] == t.to_dict()

    def test_write_stats_json_creates_dirs(self, tmp_path):
        t = self._populated()
        path = tmp_path / "deep" / "dir" / "stats.json"
        write_stats_json(str(path), tracer=t)
        data = json.loads(path.read_text())
        assert data["schema"] == STATS_SCHEMA

    def test_report_ascii_lists_spans_and_counters(self):
        t = self._populated()
        text = t.report_ascii()
        assert "phase" in text
        assert "  step" in text  # indented child
        assert "widgets" in text


class TestDefaultTracer:
    def test_module_helpers_hit_default(self):
        previous = set_tracer(Tracer())
        try:
            with span("top"):
                incr("n", 2)
            t = get_tracer()
            assert "top" in t.spans_by_path()
            assert t.counter("n") == 2
            reset_tracer()
            assert get_tracer().spans_by_path() == {}
        finally:
            set_tracer(previous)
