"""Differential-testing harness for the flow kernels (PR 6).

Seeded generators of random window-transportation instances across the
*shape space* the batched kernel must cover — degenerate single-row /
single-column problems, rectangular buckets, capacity-tight and
infeasible-then-relaxed chains, movebound-style forbidden-arc patterns
— plus reference-solve and bit-identity assertion helpers shared by
``test_batched_kernels.py``.

The contract under test is three-way: for every instance, the
``batched``, ``array`` and ``object`` paths must agree *exactly* —
same relaxation stage, same feasibility, same flow bytes, same cost
bits, same pivot count — and under ``REPRO_VERIFY_KERNEL=1`` the
batched rows additionally shadow-solve on the object kernel with the
full per-pivot entering-arc trace compared.

Every generator is a pure function of ``(bucket, seed)``: a failure
report of ``bucket=X seed=N`` reproduces from the command line.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flows import set_flow_backend
from repro.flows.batch import solve_transportation_batched
from repro.flows.transportation import (
    RELAX_CHAIN_WINDOW,
    solve_transportation_with_relaxation,
)

#: one window transportation instance, in task-tuple form
Task = Tuple[np.ndarray, np.ndarray, np.ndarray]

# ----------------------------------------------------------------------
# shape-space generators
# ----------------------------------------------------------------------
# Each bucket fixes the cost-matrix shape (n, k) so a batch of its
# instances actually stacks into one BatchedArraySimplex call; the
# *topology* still varies per instance (forbidden-arc masks, sign
# patterns), exercising the padded mixed-m case inside one bucket.
BUCKET_SHAPES: Dict[str, Tuple[int, int]] = {
    "degenerate_1xk": (1, 5),
    "degenerate_nx1": (6, 1),
    "square": (5, 5),
    "rect_wide": (3, 8),
    "rect_tall": (12, 3),
    "capacity_tight": (8, 4),
    "infeasible_then_relaxed": (7, 3),
}

#: bucket names in a stable order for parametrization
BUCKETS: Tuple[str, ...] = tuple(BUCKET_SHAPES)


def make_instance(bucket: str, seed: int) -> Task:
    """One seeded instance of the named shape bucket."""
    n, k = BUCKET_SHAPES[bucket]
    # zlib.crc32 (not hash()) keeps the stream stable across processes
    rng = np.random.default_rng(
        zlib.crc32(bucket.encode()) * 100003 + seed
    )
    supplies = rng.uniform(0.5, 5.0, n)
    capacities = rng.uniform(1.0, 8.0, k)
    costs = rng.uniform(0.0, 30.0, (n, k))
    if bucket == "capacity_tight":
        # total capacity within 0.1% of total supply: stage 0 feasible
        # but every sink near-saturated (degenerate pivots likely)
        capacities *= (supplies.sum() * 1.001) / capacities.sum()
    elif bucket == "infeasible_then_relaxed":
        # stage 0 (x1.0) short by ~6%, stage 1 (x1.1) feasible: the
        # whole bucket exercises the relaxation chain
        capacities *= (supplies.sum() * 0.94) / capacities.sum()
    else:
        capacities *= (
            supplies.sum() * rng.uniform(1.05, 1.6)
        ) / capacities.sum()
    if k > 1 and bucket != "infeasible_then_relaxed":
        # movebound-inadmissible pairs; keep one finite arc per source
        # so the instance stays solvable
        forbid = rng.random((n, k)) < 0.25
        forbid[np.arange(n), rng.integers(0, k, n)] = False
        costs = costs.copy()
        costs[forbid] = np.inf
    return supplies, capacities, costs


def make_batch(bucket: str, seed: int, size: int) -> List[Task]:
    """``size`` same-shaped instances (one shape bucket's batch)."""
    return [
        make_instance(bucket, seed * 1009 + j) for j in range(size)
    ]


def make_mixed_convergence_batch(seed: int, size: int = 6) -> List[Task]:
    """Same-shaped instances with wildly different pivot counts: even
    rows are near-trivial (uniform costs: optimal almost immediately),
    odd rows carry adversarial costs and tight caps.  In the lockstep
    loop the easy rows go inert while the hard rows keep pivoting —
    the mixed-convergence case the masking must get right."""
    rng = np.random.default_rng(0xC0FFEE + seed)
    n, k = 9, 4
    tasks: List[Task] = []
    for j in range(size):
        supplies = rng.uniform(0.5, 4.0, n)
        capacities = rng.uniform(1.0, 6.0, k)
        if j % 2 == 0:
            capacities *= (supplies.sum() * 1.5) / capacities.sum()
            costs = np.full((n, k), 1.0)
        else:
            capacities *= (supplies.sum() * 1.002) / capacities.sum()
            costs = rng.uniform(0.0, 100.0, (n, k))
        tasks.append((supplies, capacities, costs))
    return tasks


def make_mixed_feasibility_batch(seed: int, size: int = 6) -> List[Task]:
    """Same-shaped instances where only *some* rows are feasible at
    stage 0; the rest need the relaxation chain.  Later stages then
    see a shrunken bucket (possibly a singleton) of survivors."""
    rng = np.random.default_rng(0xFEA51B1E + seed)
    n, k = 7, 3
    tasks: List[Task] = []
    for j in range(size):
        supplies = rng.uniform(0.5, 4.0, n)
        capacities = rng.uniform(1.0, 6.0, k)
        scale = 1.3 if j % 3 else 0.93  # every third row under-capped
        capacities *= (supplies.sum() * scale) / capacities.sum()
        costs = rng.uniform(0.0, 25.0, (n, k))
        tasks.append((supplies, capacities, costs))
    return tasks


# ----------------------------------------------------------------------
# reference solves
# ----------------------------------------------------------------------
def solve_serial(
    tasks: Sequence[Task],
    backend: str,
    chain=RELAX_CHAIN_WINDOW,
    warm_slots: Optional[Sequence] = None,
):
    """Solve each task on the serial path of ``backend``."""
    set_flow_backend(backend)
    try:
        return [
            solve_transportation_with_relaxation(
                s,
                c,
                costs,
                chain=chain,
                method="ns",
                warm_slot=(
                    warm_slots[i] if warm_slots is not None else None
                ),
            )
            for i, (s, c, costs) in enumerate(tasks)
        ]
    finally:
        set_flow_backend(None)


def solve_batched(
    tasks: Sequence[Task],
    chain=RELAX_CHAIN_WINDOW,
    warm_slots: Optional[Sequence] = None,
):
    """Solve the whole task list through the batched entry point."""
    return solve_transportation_batched(
        tasks, chain=chain, method="ns", warm_slots=warm_slots
    )


# ----------------------------------------------------------------------
# identity assertions
# ----------------------------------------------------------------------
def assert_results_identical(got, want, pivots: bool = True) -> None:
    """Bit-for-bit equality of two ``(result, stage)`` lists: stage,
    feasibility, flow bytes, cost bits and (by default) pivot count."""
    assert len(got) == len(want)
    for i, ((rg, sg), (rw, sw)) in enumerate(zip(got, want)):
        assert sg == sw, f"task {i}: stage {sg} != {sw}"
        assert rg.feasible == rw.feasible, f"task {i}: feasibility"
        assert (
            rg.flow.tobytes() == rw.flow.tobytes()
        ), f"task {i}: flow bytes differ"
        assert rg.cost == rw.cost, f"task {i}: cost bits differ"
        if pivots:
            assert (
                rg.stats.pivots == rw.stats.pivots
            ), f"task {i}: pivots {rg.stats.pivots} != {rw.stats.pivots}"


def assert_three_way_identity(
    tasks: Sequence[Task], chain=RELAX_CHAIN_WINDOW
) -> None:
    """The core differential check: batched == array == object on the
    same task list, including stages and pivot counts."""
    got = solve_batched(tasks, chain=chain)
    array = solve_serial(tasks, "array", chain=chain)
    obj = solve_serial(tasks, "object", chain=chain)
    assert_results_identical(got, array)
    assert_results_identical(got, obj)
    assert_results_identical(array, obj)
