"""Tests for the fbp_partition wrapper (flags, reports, timing)."""

import numpy as np
import pytest

from repro.fbp import fbp_partition
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


def _setup(seed=0, num_cells=150):
    nl = build_random_netlist(num_cells, 100, seed, DIE)
    bounds = MoveBoundSet(DIE)
    dec = decompose_regions(DIE, bounds, nl.blockages)
    grid = Grid(DIE, 4, 4)
    grid.build_regions(dec)
    return nl, bounds, grid


class TestReport:
    def test_timings_populated(self):
        nl, bounds, grid = _setup()
        report = fbp_partition(nl, bounds, grid, density_target=0.9)
        assert report.feasible
        assert report.flow_seconds > 0
        assert report.realization_seconds > 0
        assert np.isfinite(report.flow_cost)

    def test_stats_populated(self):
        nl, bounds, grid = _setup(seed=1)
        report = fbp_partition(nl, bounds, grid, density_target=0.9)
        assert report.stats.num_windows == 16
        assert report.stats.num_nodes > 0

    def test_keep_model(self):
        nl, bounds, grid = _setup(seed=2)
        report = fbp_partition(
            nl, bounds, grid, density_target=0.9, keep_model=True
        )
        assert report.model is not None
        assert report.model.stats.num_nodes == report.stats.num_nodes

    def test_model_not_kept_by_default(self):
        nl, bounds, grid = _setup(seed=3)
        report = fbp_partition(nl, bounds, grid, density_target=0.9)
        assert report.model is None

    def test_schedule_flag(self):
        nl, bounds, grid = _setup(seed=4)
        report = fbp_partition(
            nl, bounds, grid, density_target=0.9,
            compute_parallel_schedule=True,
        )
        assert report.schedule is not None
        assert report.schedule.num_arcs >= 0

    def test_explicit_cell_windows(self):
        nl, bounds, grid = _setup(seed=5)
        # assign all cells to window 0 explicitly; a low density target
        # makes the single window overfull so flow must move area out
        cw = np.zeros(nl.num_cells, dtype=np.int64)
        report = fbp_partition(
            nl, bounds, grid, density_target=0.2, cell_windows=cw,
            run_local_qp=False,
        )
        assert report.feasible
        assert report.realization.arcs_realized > 0

    def test_mcf_method_choice(self):
        for method in ("ssp", "ns", "lp"):
            nl, bounds, grid = _setup(seed=6)
            report = fbp_partition(
                nl, bounds, grid, density_target=0.9,
                mcf_method=method, run_local_qp=False,
            )
            assert report.feasible
