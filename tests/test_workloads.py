"""Tests for the synthetic workload generators and suites."""

import numpy as np
import pytest

from repro.feasibility import check_feasibility
from repro.geometry import Rect
from repro.movebounds import EXCLUSIVE, decompose_regions
from repro.workloads import (
    ISPD_SUITE,
    MOVEBOUND_SUITE,
    MoveBoundSpec,
    NetlistSpec,
    TABLE2_SUITE,
    attach_movebounds,
    generate_netlist,
    ispd_like_instance,
    movebound_instance,
    table2_instance,
)


class TestGenerator:
    def test_deterministic(self):
        spec = NetlistSpec("t", 100)
        a, _ = generate_netlist(spec, seed=5)
        b, _ = generate_netlist(spec, seed=5)
        assert np.array_equal(a.x, b.x)
        assert [n.degree for n in a.nets] == [n.degree for n in b.nets]

    def test_seed_changes_instance(self):
        spec = NetlistSpec("t", 100)
        a, _ = generate_netlist(spec, seed=1)
        b, _ = generate_netlist(spec, seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_utilization_honored(self):
        spec = NetlistSpec("t", 200, utilization=0.5)
        nl, _ = generate_netlist(spec, seed=0)
        free = nl.die.area - nl.blockages.area
        assert nl.movable_area() / free == pytest.approx(0.5, rel=0.1)

    def test_net_degrees_in_range(self):
        spec = NetlistSpec("t", 150, avg_degree=3.5, max_degree=8)
        nl, _ = generate_netlist(spec, seed=0)
        degrees = [n.degree for n in nl.nets if not n.name.startswith(("pad", "mnet"))]
        assert min(degrees) >= 2
        assert max(degrees) <= 8
        assert 2.2 <= np.mean(degrees) <= 5.0

    def test_pads_on_boundary(self):
        spec = NetlistSpec("t", 50, num_pads=8)
        nl, _ = generate_netlist(spec, seed=0)
        pad_nets = [n for n in nl.nets if n.name.startswith("pad")]
        assert len(pad_nets) == 8
        for net in pad_nets:
            term = net.pins[0]
            assert term.is_fixed_terminal
            x, y = term.offset_x, term.offset_y
            on_edge = (
                x in (nl.die.x_lo, nl.die.x_hi)
                or y in (nl.die.y_lo, nl.die.y_hi)
            )
            assert on_edge

    def test_macros_and_blockages(self):
        spec = NetlistSpec(
            "t", 80, num_macros=3,
            blockage_fracs=((0.4, 0.4, 0.2, 0.2),),
        )
        nl, _ = generate_netlist(spec, seed=0)
        macros = [c for c in nl.cells if c.name.startswith("macro")]
        assert len(macros) == 3
        assert not nl.blockages.is_empty

    def test_nets_are_local(self):
        """Locality: average logical distance within nets much smaller
        than random pairs."""
        spec = NetlistSpec("t", 300, global_net_fraction=0.0)
        nl, logical = generate_netlist(spec, seed=0)
        dists = []
        for net in nl.nets[:200]:
            idx = [p.cell_index for p in net.pins if p.cell_index >= 0
                   and p.cell_index < 300]
            if len(idx) < 2:
                continue
            pts = logical[idx]
            dists.append(np.ptp(pts[:, 0]) + np.ptp(pts[:, 1]))
        assert np.mean(dists) < 0.4  # random pairs would average ~0.7+


class TestMoveboundGen:
    def test_basic_attach(self):
        spec = NetlistSpec("t", 200, utilization=0.5)
        nl, logical = generate_netlist(spec, seed=0)
        bounds = attach_movebounds(
            nl, logical,
            [MoveBoundSpec("a", 0.1), MoveBoundSpec("b", 0.1)],
            seed=0,
        )
        assert len(bounds) == 2
        assigned = [c for c in nl.cells if c.movebound]
        assert len(assigned) == pytest.approx(0.2 * 200, abs=6)
        assert check_feasibility(nl, bounds).feasible

    def test_density_respected(self):
        spec = NetlistSpec("t", 300, utilization=0.5)
        nl, logical = generate_netlist(spec, seed=1)
        bounds = attach_movebounds(
            nl, logical, [MoveBoundSpec("a", 0.15, density=0.6)], seed=1
        )
        area = bounds.get("a").area.area
        cells = sum(
            c.size for c in nl.cells if c.movebound == "a"
        )
        assert cells / area <= 0.65  # at most the requested density

    def test_exclusive_bounds_disjoint(self):
        spec = NetlistSpec("t", 300, utilization=0.45)
        nl, logical = generate_netlist(spec, seed=2)
        bounds = attach_movebounds(
            nl, logical,
            [
                MoveBoundSpec("a", 0.08, kind=EXCLUSIVE),
                MoveBoundSpec("b", 0.08, kind=EXCLUSIVE),
            ],
            seed=2,
        )
        inter = bounds.get("a").area.intersect(bounds.get("b").area)
        assert inter.is_empty

    def test_requested_overlap_exists(self):
        spec = NetlistSpec("t", 300, utilization=0.45)
        nl, logical = generate_netlist(spec, seed=3)
        bounds = attach_movebounds(
            nl, logical,
            [
                MoveBoundSpec("a", 0.10),
                MoveBoundSpec("b", 0.08, overlaps="a"),
            ],
            seed=3,
        )
        inter = bounds.get("a").area.intersect(bounds.get("b").area)
        assert not inter.is_empty

    def test_nested_inside_parent(self):
        spec = NetlistSpec("t", 300, utilization=0.45)
        nl, logical = generate_netlist(spec, seed=4)
        bounds = attach_movebounds(
            nl, logical,
            [
                MoveBoundSpec("p", 0.10),
                MoveBoundSpec("c", 0.05, nested_in="p"),
            ],
            seed=4,
        )
        child = bounds.get("c").area
        parent = bounds.get("p").area
        assert child.subtract(parent).area == pytest.approx(0, abs=1e-6)

    def test_cyclic_dependency_rejected(self):
        spec = NetlistSpec("t", 100)
        nl, logical = generate_netlist(spec, seed=5)
        with pytest.raises(ValueError):
            attach_movebounds(
                nl, logical,
                [
                    MoveBoundSpec("a", 0.05, nested_in="b"),
                    MoveBoundSpec("b", 0.05, nested_in="a"),
                ],
                seed=5,
            )


class TestSuites:
    def test_table2_names(self):
        assert len(TABLE2_SUITE) == 21  # the paper's Table II rows
        assert "Dagmar" in TABLE2_SUITE and "Erik" in TABLE2_SUITE

    def test_table2_instance(self):
        inst = table2_instance("Dagmar", seed=0)
        assert inst.netlist.num_cells > 100
        assert len(inst.bounds) == 0

    def test_table2_unknown(self):
        with pytest.raises(KeyError):
            table2_instance("Nonexistent")

    def test_table2_sizes_ordered(self):
        a = table2_instance("Dagmar").netlist.num_cells
        b = table2_instance("Erik").netlist.num_cells
        assert b > 3 * a

    def test_movebound_suite_traits(self):
        assert len(MOVEBOUND_SUITE) == 8  # Table III rows
        inst = movebound_instance("Rabe", seed=0)
        assert len(inst.bounds) == MOVEBOUND_SUITE["Rabe"].num_bounds
        assert check_feasibility(inst.netlist, inst.bounds).feasible

    def test_movebound_share_close_to_spec(self):
        inst = movebound_instance("Ashraf", seed=0)
        share = sum(
            1 for c in inst.netlist.cells if c.movebound
        ) / inst.netlist.num_cells
        assert share == pytest.approx(
            MOVEBOUND_SUITE["Ashraf"].cell_share, abs=0.05
        )

    def test_overlapping_trait_realized(self):
        inst = movebound_instance("Ludwig", seed=0)
        bounds = list(inst.bounds)
        overlapping = any(
            not a.area.intersect(b.area).is_empty
            for i, a in enumerate(bounds)
            for b in bounds[i + 1 :]
        )
        assert overlapping

    def test_exclusive_variant(self):
        inst = movebound_instance("Rabe", seed=0, exclusive=True)
        assert all(b.is_exclusive for b in inst.bounds)

    def test_exclusive_rejected_for_nested(self):
        with pytest.raises(ValueError):
            movebound_instance("Tomoku", seed=0, exclusive=True)

    def test_ispd_suite(self):
        assert len(ISPD_SUITE) == 8  # Table VII rows
        inst = ispd_like_instance("nb1", seed=0)
        macros = [
            c for c in inst.netlist.cells if c.name.startswith("macro")
        ]
        assert len(macros) == 10  # nb1 is the mixed-size instance
        assert inst.meta["target_density"] == 0.8
