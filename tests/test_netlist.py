"""Tests for the Netlist container, HPWL and placement state."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.netlist import Netlist, Pin


@pytest.fixture
def nl():
    n = Netlist(Rect(0, 0, 10, 10), row_height=1.0, site_width=0.5)
    n.add_cell("a", 2, 1, x=1, y=1)
    n.add_cell("b", 2, 1, x=9, y=9)
    n.add_cell("pad", 1, 1, x=0.5, y=0.5, fixed=True)
    n.finalize()
    return n


class TestConstruction:
    def test_duplicate_name_rejected(self, nl):
        with pytest.raises(ValueError):
            nl.add_cell("a", 1, 1)

    def test_nonpositive_dims_rejected(self, nl):
        with pytest.raises(ValueError):
            nl.add_cell("z", 0, 1)

    def test_net_bad_cell_index(self, nl):
        with pytest.raises(ValueError):
            nl.add_net("bad", [Pin(99)])

    def test_cell_index_lookup(self, nl):
        assert nl.cell_index("b") == 1

    def test_default_position_is_die_center(self):
        n = Netlist(Rect(0, 0, 10, 20))
        c = n.add_cell("c", 1, 1)
        assert (n.x[c.index], n.y[c.index]) == (5, 10)

    def test_movable_and_fixed(self, nl):
        assert list(nl.movable_indices) == [0, 1]
        assert nl.fixed_mask.tolist() == [False, False, True]
        assert nl.movable_area() == 4.0


class TestGeometry:
    def test_cell_rect_centered(self, nl):
        r = nl.cell_rect(0)
        assert (r.x_lo, r.y_lo, r.x_hi, r.y_hi) == (0, 0.5, 2, 1.5)

    def test_pin_position_on_cell(self, nl):
        nl.add_net("n", [Pin(0, 0.5, -0.25)])
        assert nl.pin_position(nl.nets[-1].pins[0]) == (1.5, 0.75)

    def test_pin_position_terminal(self, nl):
        pin = Pin.terminal(3, 4)
        assert nl.pin_position(pin) == (3, 4)


class TestHPWL:
    def test_two_pin(self, nl):
        nl.add_net("n", [Pin(0), Pin(1)])
        assert nl.hpwl() == pytest.approx(16.0)  # |9-1| + |9-1|

    def test_weighted(self, nl):
        nl.add_net("n", [Pin(0), Pin(1)], weight=2.5)
        assert nl.hpwl() == pytest.approx(40.0)

    def test_degree_one_ignored(self, nl):
        nl.add_net("n1", [Pin(0)])
        assert nl.hpwl() == 0.0

    def test_with_offsets_and_terminal(self, nl):
        nl.add_net(
            "n", [Pin(0, 1.0, 0.0), Pin.terminal(5, 1)]
        )  # pin at (2,1)
        assert nl.hpwl() == pytest.approx(3.0)

    def test_matches_bbox_loop(self, nl):
        rng = np.random.default_rng(0)
        for j in range(20):
            k = int(rng.integers(2, 4))
            nl.add_net(f"r{j}", [Pin(int(c)) for c in rng.integers(0, 3, k)])
        slow = 0.0
        for net in nl.nets:
            if net.degree < 2:
                continue
            box = nl.net_bbox(net)
            slow += net.weight * (box.width + box.height)
        assert nl.hpwl() == pytest.approx(slow)

    def test_cache_invalidated_on_add_net(self, nl):
        nl.add_net("n", [Pin(0), Pin(1)])
        first = nl.hpwl()
        nl.add_net("n2", [Pin(0), Pin.terminal(0, 9)])
        assert nl.hpwl() > first


class TestPlacementState:
    def test_snapshot_restore(self, nl):
        snap = nl.snapshot()
        nl.x[0] = 7.0
        nl.restore(snap)
        assert nl.x[0] == 1.0

    def test_restore_size_mismatch(self, nl):
        snap = nl.snapshot()
        nl.add_cell("extra", 1, 1)
        with pytest.raises(ValueError):
            nl.restore(snap)

    def test_set_positions(self, nl):
        nl.set_positions([1, 2, 3], [4, 5, 6])
        assert nl.y[2] == 6

    def test_set_positions_wrong_length(self, nl):
        with pytest.raises(ValueError):
            nl.set_positions([1], [2])

    def test_clamp_into_die(self, nl):
        nl.x[0] = -5.0
        nl.y[1] = 100.0
        nl.clamp_into_die()
        assert nl.x[0] == 1.0  # half width
        assert nl.y[1] == 9.5  # die top minus half height

    def test_clamp_leaves_fixed(self, nl):
        nl.x[2] = -5.0
        nl.clamp_into_die()
        assert nl.x[2] == -5.0

    def test_check_in_die(self, nl):
        nl.x[0] = 0.0  # rect pokes out left
        assert nl.check_in_die() == [0]
