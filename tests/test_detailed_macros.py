"""Regression: detailed placement must treat movable macros as
obstacles (mixed-size instances like ISPD nb1)."""

import pytest

from repro.legalize import check_legality, legalize_with_movebounds
from repro.legalize.detailed import detailed_place
from repro.place import BonnPlaceFBP
from repro.workloads import NetlistSpec, generate_netlist, ispd_like_instance


class TestMixedSize:
    def test_no_overlap_with_movable_macros(self):
        spec = NetlistSpec(
            "mix", 200, utilization=0.5, num_pads=8, num_macros=4
        )
        nl, _ = generate_netlist(spec, seed=0)
        legalize_with_movebounds(nl)
        assert check_legality(nl).overlaps == 0
        detailed_place(nl, passes=2)
        rep = check_legality(nl)
        assert rep.overlaps == 0
        assert rep.off_row == 0

    def test_macros_do_not_move(self):
        spec = NetlistSpec(
            "mix", 150, utilization=0.5, num_pads=8, num_macros=3
        )
        nl, _ = generate_netlist(spec, seed=1)
        legalize_with_movebounds(nl)
        macros = [
            c.index
            for c in nl.cells
            if not c.fixed and c.height > nl.row_height + 1e-9
        ]
        before = [(nl.x[i], nl.y[i]) for i in macros]
        detailed_place(nl)
        after = [(nl.x[i], nl.y[i]) for i in macros]
        assert before == after
        # and the macro flags are restored to movable
        assert all(not nl.cells[i].fixed for i in macros)

    def test_ispd_nb1_end_to_end(self):
        inst = ispd_like_instance("nb1", seed=1)
        res = BonnPlaceFBP().place(inst.netlist, inst.bounds)
        assert res.legality.is_legal
