"""Determinism (the paper: parallel FBP 'preserves deterministic
behavior').  Our realization is sequential, but the same property must
hold: identical inputs give bit-identical placements, independent of
Python's per-process hash randomization."""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.place import BonnPlaceFBP
from repro.workloads import movebound_instance

#: where the child process finds the package, regardless of how the
#: parent was launched (PYTHONPATH=src, pip -e, ...)
REPRO_PARENT = os.path.dirname(os.path.dirname(repro.__file__))

SCRIPT = """
from repro.workloads import movebound_instance
from repro.place import BonnPlaceFBP
inst = movebound_instance('Rabe', seed=1)
res = BonnPlaceFBP().place(inst.netlist, inst.bounds)
print(f'{res.hpwl:.9f}')
"""


class TestDeterminism:
    def test_same_process_repeatable(self):
        results = []
        for _ in range(2):
            inst = movebound_instance("Rabe", seed=1)
            res = BonnPlaceFBP().place(inst.netlist, inst.bounds)
            results.append(res.hpwl)
        assert results[0] == results[1]

    @pytest.mark.parametrize("hash_seeds", [("0", "1234")])
    def test_cross_process_hash_seed_independent(self, hash_seeds):
        outputs = []
        for seed in hash_seeds:
            proc = subprocess.run(
                [sys.executable, "-c", SCRIPT],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": seed,
                    "PATH": "/usr/bin:/bin",
                    "PYTHONPATH": REPRO_PARENT,
                },
                timeout=600,
            )
            assert proc.returncode == 0, proc.stderr[-500:]
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1]
