"""Additional viz coverage: flow graphs without results, empty inputs,
and geometry edge cases in the renderers."""

import pytest

from repro.fbp import build_fbp_model
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.netlist import Netlist
from repro.viz import render_flow_graph, render_placement, render_regions
from tests.conftest import build_random_netlist

DIE = Rect(0, 0, 100, 100)


class TestRenderers:
    def test_flow_graph_without_result(self):
        nl = build_random_netlist(40, 20, 0, DIE)
        mbs = MoveBoundSet(DIE)
        grid = Grid(DIE, 2, 2)
        grid.build_regions(decompose_regions(DIE, mbs))
        model = build_fbp_model(nl, mbs, grid)
        out = render_flow_graph(model)
        assert "|V|=" in out
        assert "flow-carrying" not in out

    def test_flow_graph_truncates_long_lists(self):
        import numpy as np

        nl = build_random_netlist(400, 100, 1, DIE)
        rng = np.random.default_rng(0)
        movable = [c.index for c in nl.cells if not c.fixed]
        nl.x[movable] = rng.uniform(1, 12, len(movable))
        nl.y[movable] = rng.uniform(1, 12, len(movable))
        mbs = MoveBoundSet(DIE)
        grid = Grid(DIE, 8, 8)
        grid.build_regions(decompose_regions(DIE, mbs))
        model = build_fbp_model(nl, mbs, grid, density_target=0.5)
        result = model.solve()
        out = render_flow_graph(model, result, max_arcs=3)
        if len(model.external_flows(result)) > 3:
            assert "more" in out

    def test_placement_empty_netlist(self):
        nl = Netlist(DIE)
        nl.finalize()
        out = render_placement(nl, width=20, height=8)
        assert len(out.splitlines()) == 8

    def test_regions_no_bounds(self):
        dec = decompose_regions(DIE, MoveBoundSet(DIE))
        out = render_regions(dec, width=20, height=8)
        assert "." in out
        assert "unconstrained" in out

    def test_placement_cell_on_die_edge(self):
        nl = Netlist(DIE)
        nl.add_cell("edge", 1, 1, x=100, y=100)  # exactly on the corner
        nl.finalize()
        out = render_placement(nl, width=10, height=10)
        assert any(ch not in " \n" for ch in out)
