"""Kill/resume contract of ``--run-dir`` / ``--resume``.

The acceptance criterion of the durable run state: a run killed at any
checkpoint boundary (injected ``kill`` fault or a real ``SIGKILL``) and
resumed with ``--resume`` finishes with exit code 0 and produces the
*bit-identical* placement (``.pl`` bytes and reported HPWL) of an
uninterrupted run.  A corrupted snapshot is quarantined and the level
re-run — never trusted, never fatal.

These tests drive the real CLI in subprocesses so process death and
exit codes are the genuine article.
"""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _run(args, cwd, check=True, **kw):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, env=_env(), capture_output=True, text=True,
        timeout=120, **kw,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"repro {' '.join(args)} -> {proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    return proc


def _hpwl(stdout):
    m = re.search(r"HPWL=([0-9.]+)", stdout)
    assert m, f"no HPWL in output: {stdout!r}"
    return m.group(1)


def _pl_bytes(directory):
    path = os.path.join(directory, "Dagmar.pl")
    with open(path, "rb") as f:
        return f.read()


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """A generated instance plus one uninterrupted reference run."""
    wd = str(tmp_path_factory.mktemp("resume"))
    _run(["generate", "Dagmar", "--out", ".", "--seed", "2"], cwd=wd)
    ref = _run(
        ["place", "Dagmar", "--dir", ".", "--out", "ref",
         "--run-dir", "run_ref"],
        cwd=wd,
    )
    return {"dir": wd, "hpwl": _hpwl(ref.stdout),
            "pl": _pl_bytes(os.path.join(wd, "ref"))}


class TestKillResume:
    def test_injected_kill_then_resume_is_bit_identical(self, workdir):
        wd = workdir["dir"]
        # the 3rd ckpt.write is the save after level 2: the process
        # dies with levels 0-1 durable, mid-run
        killed = _run(
            ["--fault-plan", "ckpt.write=kill@3",
             "place", "Dagmar", "--dir", ".", "--out", "outk",
             "--run-dir", "runk"],
            cwd=wd, check=False,
        )
        assert killed.returncode != 0
        snaps = sorted(os.listdir(os.path.join(wd, "runk", "snapshots")))
        assert snaps == ["level_0000.ckpt", "level_0001.ckpt"]

        resumed = _run(
            ["place", "Dagmar", "--dir", ".", "--out", "outk",
             "--run-dir", "runk", "--resume"],
            cwd=wd,
        )
        assert resumed.returncode == 0
        assert _hpwl(resumed.stdout) == workdir["hpwl"]
        assert _pl_bytes(os.path.join(wd, "outk")) == workdir["pl"]

    def test_real_sigkill_then_resume_is_bit_identical(self, workdir):
        wd = workdir["dir"]
        # wedge the process at the 4th checkpoint write (after level 3
        # completes), so SIGKILL provably lands mid-run with levels 0-2
        # durable
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro",
             "--fault-plan", "ckpt.write=stall:600@4",
             "place", "Dagmar", "--dir", ".", "--out", "outs",
             "--run-dir", "runs"],
            cwd=wd, env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        marker = os.path.join(wd, "runs", "snapshots", "level_0002.ckpt")
        deadline = time.monotonic() + 60
        while not os.path.exists(marker):
            assert proc.poll() is None, "placer exited before the stall"
            assert time.monotonic() < deadline, "level_0002 never appeared"
            time.sleep(0.05)
        os.kill(proc.pid, signal.SIGKILL)
        assert proc.wait(timeout=30) == -signal.SIGKILL

        resumed = _run(
            ["place", "Dagmar", "--dir", ".", "--out", "outs",
             "--run-dir", "runs", "--resume"],
            cwd=wd,
        )
        assert resumed.returncode == 0
        assert _hpwl(resumed.stdout) == workdir["hpwl"]
        assert _pl_bytes(os.path.join(wd, "outs")) == workdir["pl"]

    def test_resume_on_empty_run_dir_starts_fresh(self, workdir):
        wd = workdir["dir"]
        fresh = _run(
            ["place", "Dagmar", "--dir", ".", "--out", "outf",
             "--run-dir", "run_fresh", "--resume"],
            cwd=wd,
        )
        assert fresh.returncode == 0
        assert _pl_bytes(os.path.join(wd, "outf")) == workdir["pl"]

    def test_resume_without_run_dir_is_usage_error(self, workdir):
        proc = _run(
            ["place", "Dagmar", "--dir", ".", "--resume"],
            cwd=workdir["dir"], check=False,
        )
        assert proc.returncode != 0
        assert "--run-dir" in proc.stderr


class TestCorruptionResume:
    def test_corrupt_snapshot_quarantined_and_rerun(self, workdir):
        wd = workdir["dir"]
        _run(
            ["place", "Dagmar", "--dir", ".", "--out", "outc",
             "--run-dir", "runc"],
            cwd=wd,
        )
        newest = os.path.join(wd, "runc", "snapshots", "level_0003.ckpt")
        raw = bytearray(open(newest, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(newest, "wb").write(bytes(raw))

        resumed = _run(
            ["place", "Dagmar", "--dir", ".", "--out", "outc",
             "--run-dir", "runc", "--resume"],
            cwd=wd,
        )
        assert resumed.returncode == 0
        qdir = os.path.join(wd, "runc", "quarantine")
        assert os.path.exists(os.path.join(qdir, "level_0003.ckpt"))
        assert os.path.exists(
            os.path.join(qdir, "level_0003.ckpt.reason")
        )
        assert _hpwl(resumed.stdout) == workdir["hpwl"]
        assert _pl_bytes(os.path.join(wd, "outc")) == workdir["pl"]

    def test_injected_corruption_fault_detected_on_resume(self, workdir):
        wd = workdir["dir"]
        # the writer corrupts the 4th checkpoint *after* checksumming
        # (simulated media fault); the next resume must catch it
        _run(
            ["--fault-plan", "ckpt.corrupt=corrupt@4",
             "place", "Dagmar", "--dir", ".", "--out", "outi",
             "--run-dir", "runi"],
            cwd=wd,
        )
        resumed = _run(
            ["place", "Dagmar", "--dir", ".", "--out", "outi",
             "--run-dir", "runi", "--resume"],
            cwd=wd,
        )
        assert resumed.returncode == 0
        assert os.path.exists(
            os.path.join(wd, "runi", "quarantine", "level_0003.ckpt")
        )
        assert _hpwl(resumed.stdout) == workdir["hpwl"]
        assert _pl_bytes(os.path.join(wd, "outi")) == workdir["pl"]
