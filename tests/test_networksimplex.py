"""Tests for the network simplex backend (the paper's MCF solver)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flows import MinCostFlowProblem


def _random_instance(seed, n=8, extra_arcs=18):
    rng = np.random.default_rng(seed)
    b = rng.integers(-6, 7, n)
    b[-1] -= b.sum()
    p = MinCostFlowProblem()
    G = nx.DiGraph()
    for i, bi in enumerate(b):
        p.add_node(i, float(bi))
        G.add_node(i, demand=int(-bi))
    edges = set()
    for i in range(n):
        edges.add((i, (i + 1) % n))
        edges.add(((i + 1) % n, i))
    for _ in range(extra_arcs):
        u, v = rng.integers(0, n, 2)
        if u != v:
            edges.add((int(u), int(v)))
    for (u, v) in edges:
        c = int(rng.integers(0, 9))
        cap = int(rng.integers(4, 18))
        p.add_arc(u, v, float(c), float(cap))
        G.add_edge(u, v, weight=c, capacity=cap)
    return p, G


class TestBasics:
    def test_chain(self):
        p = MinCostFlowProblem()
        p.add_node(0, 2.0)
        p.add_node(1)
        p.add_node(2, -2.0)
        p.add_arc(0, 1, 1.0, 5.0)
        p.add_arc(1, 2, 1.0, 5.0)
        r = p.solve("ns")
        assert r.feasible and r.cost == pytest.approx(4.0)
        assert np.allclose(r.flows, [2.0, 2.0])

    def test_capacity_split(self):
        p = MinCostFlowProblem()
        p.add_node("s", 4.0)
        p.add_node("d", -4.0)
        cheap = p.add_arc("s", "d", 1.0, capacity=1.0)
        dear = p.add_arc("s", "d", 5.0)
        r = p.solve("ns")
        assert r.flow_on(cheap) == pytest.approx(1.0)
        assert r.flow_on(dear) == pytest.approx(3.0)

    def test_infeasible(self):
        p = MinCostFlowProblem()
        p.add_node("s", 5.0)
        p.add_node("d", -1.0)
        p.add_arc("s", "d", 1.0)
        assert not p.solve("ns").feasible

    def test_unbalanced_demand_capacity(self):
        p = MinCostFlowProblem()
        p.add_node("s", 1.0)
        p.add_node("d1", -10.0)
        p.add_node("d2", -10.0)
        p.add_arc("s", "d1", 3.0)
        p.add_arc("s", "d2", 1.0)
        r = p.solve("ns")
        assert r.feasible
        assert r.flows[1] == pytest.approx(1.0)
        assert r.flows[0] == pytest.approx(0.0)

    def test_zero_supply(self):
        p = MinCostFlowProblem()
        p.add_node("a")
        p.add_node("b")
        p.add_arc("a", "b", 1.0)
        r = p.solve("ns")
        assert r.feasible and r.cost == 0.0


class TestAgainstReferences:
    @pytest.mark.parametrize("seed", range(20))
    def test_vs_networkx(self, seed):
        p, G = _random_instance(seed)
        try:
            cost_nx, _ = nx.network_simplex(G)
            feasible_nx = True
        except nx.NetworkXUnfeasible:
            feasible_nx = False
        r = p.solve("ns")
        assert r.feasible == feasible_nx
        if feasible_nx:
            assert r.cost == pytest.approx(cost_nx, abs=1e-6)

    @pytest.mark.parametrize("seed", range(8))
    def test_vs_ssp_unbalanced(self, seed):
        rng = np.random.default_rng(seed)
        p = MinCostFlowProblem()
        for i in range(5):
            p.add_node(("s", i), float(rng.integers(1, 6)))
        for j in range(4):
            p.add_node(("d", j), -float(rng.integers(3, 10)))
        for i in range(5):
            for j in range(4):
                p.add_arc(("s", i), ("d", j), float(rng.integers(0, 8)))
        r1, r2 = p.solve("ssp"), p.solve("ns")
        assert r1.feasible == r2.feasible
        if r1.feasible:
            assert r2.cost == pytest.approx(r1.cost, abs=1e-6)

    def test_flows_conserve(self):
        p, _ = _random_instance(3)
        r = p.solve("ns")
        if not r.feasible:
            return
        balance = {}
        for _aid, arc, f in r.nonzero_arcs(tol=0.0):
            balance[arc.tail] = balance.get(arc.tail, 0.0) + f
            balance[arc.head] = balance.get(arc.head, 0.0) - f
        for node in p.nodes:
            b = p.supply_of(node)
            net = balance.get(node, 0.0)
            if b > 0:
                assert net == pytest.approx(b, abs=1e-6)
            elif b < 0:
                assert -net <= -b + 1e-6
            else:
                assert net == pytest.approx(0.0, abs=1e-6)

    def test_capacities_respected(self):
        p, _ = _random_instance(4)
        r = p.solve("ns")
        for flow, arc in zip(r.flows, p.arcs):
            assert -1e-9 <= flow <= arc.capacity + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_property_ns_equals_ssp(seed):
    p, _ = _random_instance(seed, n=6, extra_arcs=12)
    r1 = p.solve("ssp")
    r2 = p.solve("ns")
    assert r1.feasible == r2.feasible
    if r1.feasible:
        assert r2.cost == pytest.approx(r1.cost, abs=1e-6)
