"""Round-trip tests for the Bookshelf-style I/O."""

import numpy as np
import pytest

from repro.bookshelf import load_instance, save_instance
from repro.geometry import Rect
from repro.movebounds import EXCLUSIVE, MoveBoundSet
from repro.netlist import Netlist, Pin
from repro.workloads import movebound_instance


def _build():
    die = Rect(0, 0, 50, 40)
    nl = Netlist(die, row_height=2.0, site_width=0.5, name="demo")
    nl.add_blockage(Rect(10, 10, 20, 20))
    nl.add_cell("a", 2, 2, x=5, y=5, movebound="m")
    nl.add_cell("b", 3, 2, x=30, y=30)
    nl.add_cell("pad_cell", 1, 1, x=0.5, y=0.5, fixed=True)
    nl.finalize()
    nl.add_net("n1", [Pin(0, 0.5, 0.0), Pin(1)], weight=2.0)
    nl.add_net("n2", [Pin(1), Pin.terminal(50, 40)])
    mbs = MoveBoundSet(die)
    mbs.add_rects("m", [Rect(0, 0, 12, 12), Rect(12, 0, 24, 6)])
    mbs.add_rects("x", [Rect(30, 30, 45, 38)], EXCLUSIVE)
    return nl, mbs


class TestRoundTrip:
    def test_full_roundtrip(self, tmp_path):
        nl, mbs = _build()
        save_instance(str(tmp_path), nl, mbs)
        nl2, mbs2 = load_instance(str(tmp_path), "demo")

        assert nl2.num_cells == nl.num_cells
        assert nl2.num_nets == nl.num_nets
        assert nl2.die == nl.die
        assert nl2.row_height == nl.row_height
        assert nl2.site_width == nl.site_width
        assert np.allclose(nl2.x, nl.x)
        assert np.allclose(nl2.y, nl.y)
        assert nl2.blockages.area == pytest.approx(nl.blockages.area)

    def test_cell_attributes_roundtrip(self, tmp_path):
        nl, mbs = _build()
        save_instance(str(tmp_path), nl, mbs)
        nl2, _ = load_instance(str(tmp_path), "demo")
        assert nl2.cells[0].movebound == "m"
        assert nl2.cells[2].fixed
        assert nl2.cells[1].width == 3

    def test_net_attributes_roundtrip(self, tmp_path):
        nl, mbs = _build()
        save_instance(str(tmp_path), nl, mbs)
        nl2, _ = load_instance(str(tmp_path), "demo")
        n1 = nl2.nets[0]
        assert n1.weight == 2.0
        assert n1.pins[0].offset_x == 0.5
        n2 = nl2.nets[1]
        assert n2.pins[1].is_fixed_terminal
        assert (n2.pins[1].offset_x, n2.pins[1].offset_y) == (50, 40)

    def test_movebounds_roundtrip(self, tmp_path):
        nl, mbs = _build()
        save_instance(str(tmp_path), nl, mbs)
        _, mbs2 = load_instance(str(tmp_path), "demo")
        assert len(mbs2) == 2
        assert mbs2.get("m").area.area == pytest.approx(
            mbs.get("m").area.area
        )
        assert mbs2.get("x").is_exclusive

    def test_hpwl_preserved(self, tmp_path):
        nl, mbs = _build()
        hpwl = nl.hpwl()
        save_instance(str(tmp_path), nl, mbs)
        nl2, _ = load_instance(str(tmp_path), "demo")
        assert nl2.hpwl() == pytest.approx(hpwl)

    def test_no_movebounds_no_mb_file(self, tmp_path):
        nl, _ = _build()
        save_instance(str(tmp_path), nl, MoveBoundSet(nl.die))
        assert not (tmp_path / "demo.mb").exists()
        _, mbs2 = load_instance(str(tmp_path), "demo")
        assert len(mbs2) == 0

    def test_suite_instance_roundtrip(self, tmp_path):
        inst = movebound_instance("Rabe", seed=0)
        save_instance(str(tmp_path), inst.netlist, inst.bounds)
        nl2, mbs2 = load_instance(str(tmp_path), "Rabe")
        assert nl2.hpwl() == pytest.approx(inst.netlist.hpwl())
        assert len(mbs2) == len(inst.bounds)
