"""Tests for MoveBound / MoveBoundSet semantics (paper §II)."""

import pytest

from repro.geometry import Rect, RectSet
from repro.movebounds import (
    DEFAULT_BOUND,
    EXCLUSIVE,
    INCLUSIVE,
    MoveBound,
    MoveBoundSet,
)
from repro.netlist import Netlist

DIE = Rect(0, 0, 100, 100)


class TestMoveBound:
    def test_covers(self):
        m = MoveBound("m", RectSet([Rect(0, 0, 10, 10)]))
        assert m.covers(Rect(1, 1, 9, 9))
        assert not m.covers(Rect(5, 5, 15, 9))

    def test_covers_nonconvex(self):
        # L-shape covers a rect spanning both arms
        m = MoveBound(
            "m", RectSet([Rect(0, 0, 2, 10), Rect(2, 0, 10, 2)])
        )
        assert m.covers(Rect(0, 0, 8, 2))
        assert not m.covers(Rect(0, 0, 8, 3))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MoveBound("m", RectSet([Rect(0, 0, 1, 1)]), "weird")

    def test_empty_area_rejected(self):
        with pytest.raises(ValueError):
            MoveBound("m", RectSet())


class TestMoveBoundSet:
    def test_duplicate_name(self):
        s = MoveBoundSet(DIE)
        s.add_rects("m", [Rect(0, 0, 1, 1)])
        with pytest.raises(ValueError):
            s.add_rects("m", [Rect(2, 2, 3, 3)])

    def test_area_outside_die_rejected(self):
        s = MoveBoundSet(DIE)
        with pytest.raises(ValueError):
            s.add_rects("m", [Rect(90, 90, 110, 95)])

    def test_default_bound_is_die_minus_exclusive(self):
        s = MoveBoundSet(DIE)
        s.add_rects("x", [Rect(0, 0, 10, 10)], EXCLUSIVE)
        d = s.default_bound()
        assert d.name == DEFAULT_BOUND
        assert d.area.area == pytest.approx(DIE.area - 100)
        assert not d.area.contains_point(5, 5)

    def test_normalize_exclusive_exclusive_raises(self):
        s = MoveBoundSet(DIE)
        s.add_rects("a", [Rect(0, 0, 10, 10)], EXCLUSIVE)
        s.add_rects("b", [Rect(5, 5, 15, 15)], EXCLUSIVE)
        with pytest.raises(ValueError):
            s.normalize()

    def test_normalize_carves_inclusive(self):
        s = MoveBoundSet(DIE)
        s.add_rects("x", [Rect(0, 0, 10, 10)], EXCLUSIVE)
        s.add_rects("i", [Rect(5, 5, 20, 20)], INCLUSIVE)
        s.normalize()
        assert s.get("i").area.intersect(s.get("x").area).is_empty
        assert s.get("i").area.area == pytest.approx(15 * 15 - 5 * 5)

    def test_normalize_swallowed_inclusive_raises(self):
        s = MoveBoundSet(DIE)
        s.add_rects("x", [Rect(0, 0, 20, 20)], EXCLUSIVE)
        s.add_rects("i", [Rect(5, 5, 10, 10)], INCLUSIVE)
        with pytest.raises(ValueError):
            s.normalize()

    def test_inclusive_overlap_allowed(self):
        s = MoveBoundSet(DIE)
        s.add_rects("a", [Rect(0, 0, 10, 10)])
        s.add_rects("b", [Rect(5, 5, 15, 15)])
        s.normalize()  # no exception
        assert len(s) == 2

    def test_bound_of(self):
        s = MoveBoundSet(DIE)
        s.add_rects("m", [Rect(0, 0, 10, 10)])
        nl = Netlist(DIE)
        c1 = nl.add_cell("c1", 1, 1, movebound="m")
        c2 = nl.add_cell("c2", 1, 1)
        assert s.bound_of(nl, c1.index).name == "m"
        assert s.bound_of(nl, c2.index).name == DEFAULT_BOUND

    def test_bound_of_unknown_raises(self):
        s = MoveBoundSet(DIE)
        nl = Netlist(DIE)
        c = nl.add_cell("c", 1, 1, movebound="ghost")
        with pytest.raises(KeyError):
            s.bound_of(nl, c.index)

    def test_encoding_rects_counts(self):
        s = MoveBoundSet(DIE)
        s.add_rects("a", [Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)])
        s.add_rects("b", [Rect(5, 5, 6, 6)])
        assert len(s.encoding_rects()) == 3


class TestViolations:
    def _netlist(self):
        nl = Netlist(DIE)
        nl.add_cell("in", 2, 2, x=5, y=5, movebound="m")
        nl.add_cell("out", 2, 2, x=50, y=50, movebound="m")
        nl.add_cell("free", 2, 2, x=80, y=80)
        nl.finalize()
        return nl

    def test_containment_violation(self):
        s = MoveBoundSet(DIE)
        s.add_rects("m", [Rect(0, 0, 10, 10)])
        nl = self._netlist()
        assert s.violations(nl) == [1]

    def test_exclusion_violation(self):
        s = MoveBoundSet(DIE)
        s.add_rects("m", [Rect(0, 0, 60, 60)], EXCLUSIVE)
        nl = self._netlist()
        nl.x[2], nl.y[2] = 30, 30  # free cell inside exclusive area
        assert 2 in s.violations(nl)

    def test_boundary_touch_not_violation(self):
        s = MoveBoundSet(DIE)
        s.add_rects("m", [Rect(0, 0, 60, 60)], EXCLUSIVE)
        nl = self._netlist()
        nl.x[2], nl.y[2] = 61, 61  # abuts the area, no interior overlap
        assert 2 not in s.violations(nl)

    def test_fixed_cells_skipped(self):
        s = MoveBoundSet(DIE)
        s.add_rects("m", [Rect(0, 0, 10, 10)])
        nl = Netlist(DIE)
        nl.add_cell("f", 2, 2, x=50, y=50, fixed=True, movebound="m")
        nl.finalize()
        assert s.violations(nl) == []
