"""Tests for Grid/Window/WindowRegion and coarse blocks."""

import pytest

from repro.geometry import Rect, RectSet
from repro.grid import Grid
from repro.movebounds import (
    DEFAULT_BOUND,
    MoveBoundSet,
    decompose_regions,
)
from repro.netlist import Netlist

DIE = Rect(0, 0, 100, 100)


@pytest.fixture
def grid4():
    return Grid(DIE, 4, 4)


class TestIndexing:
    def test_window_count(self, grid4):
        assert len(grid4) == 16

    def test_window_rects_tile(self, grid4):
        assert sum(w.rect.area for w in grid4) == pytest.approx(DIE.area)

    def test_window_at(self, grid4):
        w = grid4.window_at(10, 10)
        assert (w.ix, w.iy) == (0, 0)
        w = grid4.window_at(99, 99)
        assert (w.ix, w.iy) == (3, 3)

    def test_window_at_clamps(self, grid4):
        assert grid4.window_at(-5, 200).index == grid4.window(0, 3).index

    def test_out_of_range(self, grid4):
        with pytest.raises(IndexError):
            grid4.window(4, 0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Grid(DIE, 0, 4)

    def test_neighbors_interior(self, grid4):
        w = grid4.window(1, 1)
        dirs = {d for d, _n in grid4.neighbors(w)}
        assert dirs == {"N", "E", "S", "W"}

    def test_neighbors_corner(self, grid4):
        w = grid4.window(0, 0)
        dirs = {d for d, _n in grid4.neighbors(w)}
        assert dirs == {"N", "E"}

    def test_boundary_center(self, grid4):
        w = grid4.window(0, 0)
        assert w.boundary_center("N") == (12.5, 25.0)
        assert w.boundary_center("E") == (25.0, 12.5)
        with pytest.raises(ValueError):
            w.boundary_center("Q")


class TestRegions:
    def test_build_regions_no_bounds(self, grid4):
        dec = decompose_regions(DIE, MoveBoundSet(DIE))
        grid4.build_regions(dec)
        for w in grid4:
            assert len(w.regions) == 1
            assert w.regions[0].area.area == pytest.approx(625)
            assert w.capacity(0.5) == pytest.approx(312.5)

    def test_build_regions_clips(self, grid4):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(10, 10, 40, 40)])  # spans 4 windows
        dec = decompose_regions(DIE, mbs)
        grid4.build_regions(dec)
        total_m = 0.0
        for w in grid4:
            for wr in w.regions:
                if wr.admits("m"):
                    total_m += wr.area.area
        assert total_m == pytest.approx(900)

    def test_region_free_area_respects_blockage(self, grid4):
        nl = Netlist(DIE)
        nl.add_blockage(Rect(0, 0, 10, 10))
        dec = decompose_regions(DIE, MoveBoundSet(DIE), nl.blockages)
        grid4.build_regions(dec)
        w00 = grid4.window(0, 0)
        assert w00.regions[0].free_area.area == pytest.approx(625 - 100)

    def test_window_region_centroid_inside_window(self, grid4):
        dec = decompose_regions(DIE, MoveBoundSet(DIE))
        grid4.build_regions(dec)
        for w in grid4:
            for wr in w.regions:
                cx, cy = wr.centroid()
                assert w.rect.contains_point(cx, cy)


class TestCells:
    def test_assign_cells(self, grid4):
        nl = Netlist(DIE)
        nl.add_cell("a", 1, 1, x=10, y=10)
        nl.add_cell("b", 1, 1, x=90, y=90)
        nl.finalize()
        assign = grid4.assign_cells(nl)
        assert assign[0] == grid4.window(0, 0).index
        assert assign[1] == grid4.window(3, 3).index


class TestCoarseBlocks:
    def test_horizontal_block_3x2(self, grid4):
        v, w = grid4.window(1, 1), grid4.window(2, 1)
        block = grid4.coarse_block(v, w)
        assert len(block) == 6
        ixs = {b.ix for b in block}
        iys = {b.iy for b in block}
        assert len(ixs) == 3 and len(iys) == 2
        assert {v.index, w.index} <= {b.index for b in block}

    def test_vertical_block_2x3(self, grid4):
        v, w = grid4.window(1, 1), grid4.window(1, 2)
        block = grid4.coarse_block(v, w)
        ixs = {b.ix for b in block}
        iys = {b.iy for b in block}
        assert len(ixs) == 2 and len(iys) == 3

    def test_clamped_at_border(self, grid4):
        v, w = grid4.window(0, 0), grid4.window(1, 0)
        block = grid4.coarse_block(v, w)
        assert all(0 <= b.ix < 4 and 0 <= b.iy < 4 for b in block)
        assert {v.index, w.index} <= {b.index for b in block}

    def test_non_adjacent_rejected(self, grid4):
        with pytest.raises(ValueError):
            grid4.coarse_block(grid4.window(0, 0), grid4.window(2, 0))

    def test_block_rect(self, grid4):
        v, w = grid4.window(0, 0), grid4.window(1, 0)
        block = grid4.coarse_block(v, w)
        rect = grid4.block_rect(block)
        assert rect.area == pytest.approx(len(block) * 625)

    def test_tiny_grid_block(self):
        g = Grid(DIE, 2, 1)
        block = g.coarse_block(g.window(0, 0), g.window(1, 0))
        assert len(block) == 2  # clamped to the whole grid
