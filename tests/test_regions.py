"""Tests for the region decomposition (Definition 2, Lemma 1, Fig. 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, RectSet
from repro.movebounds import (
    DEFAULT_BOUND,
    EXCLUSIVE,
    MoveBoundSet,
    decompose_regions,
)

DIE = Rect(0, 0, 100, 100)


class TestFigure1:
    """The paper's Figure 1 arrangement (via the shared fixture)."""

    def test_signatures(self, figure1_bounds):
        dec = decompose_regions(DIE, figure1_bounds)
        sigs = {r.signature for r in dec}
        assert frozenset({"N"}) in sigs  # exclusive: default NOT inside
        assert frozenset({"M", "L", DEFAULT_BOUND}) in sigs
        assert frozenset({"M", DEFAULT_BOUND}) in sigs
        assert frozenset({DEFAULT_BOUND}) in sigs
        assert len(sigs) == 4

    def test_partition_exact(self, figure1_bounds):
        dec = decompose_regions(DIE, figure1_bounds)
        dec.check_partition()

    def test_areas(self, figure1_bounds):
        dec = decompose_regions(DIE, figure1_bounds)
        by_sig = {r.signature: r for r in dec}
        assert by_sig[frozenset({"N"})].area.area == pytest.approx(1200)
        assert by_sig[
            frozenset({"M", "L", DEFAULT_BOUND})
        ].area.area == pytest.approx(600)
        assert by_sig[
            frozenset({"M", DEFAULT_BOUND})
        ].area.area == pytest.approx(3000 - 600)


class TestBasics:
    def test_no_bounds_single_region(self):
        dec = decompose_regions(DIE, MoveBoundSet(DIE))
        assert len(dec) == 1
        assert dec.regions[0].signature == frozenset({DEFAULT_BOUND})
        assert dec.regions[0].area.area == pytest.approx(DIE.area)

    def test_covering_query(self, figure1_bounds):
        dec = decompose_regions(DIE, figure1_bounds)
        m_regions = dec.covering("M")
        assert sum(r.area.area for r in m_regions) == pytest.approx(3000)
        # default cells may use everything except the exclusive region
        d_regions = dec.covering(DEFAULT_BOUND)
        assert sum(r.area.area for r in d_regions) == pytest.approx(
            DIE.area - 1200
        )

    def test_region_at(self, figure1_bounds):
        dec = decompose_regions(DIE, figure1_bounds)
        assert dec.region_at(15, 80).signature == frozenset({"N"})
        assert dec.region_at(60, 40).signature == frozenset(
            {"M", "L", DEFAULT_BOUND}
        )

    def test_blockages_reduce_free_area(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 20, 20)])
        dec = decompose_regions(
            DIE, mbs, blockages=RectSet([Rect(0, 0, 10, 10)])
        )
        m_region = dec.covering("m")[0]
        assert m_region.area.area == pytest.approx(400)
        assert m_region.free_area.area == pytest.approx(300)
        assert m_region.capacity(0.5) == pytest.approx(150)

    def test_unmerged_lemma1_mode(self, figure1_bounds):
        dec = decompose_regions(DIE, figure1_bounds, merge_maximal=False)
        merged = decompose_regions(DIE, figure1_bounds)
        assert len(dec) >= len(merged)
        total = sum(r.area.area for r in dec.regions)
        assert total == pytest.approx(DIE.area)

    def test_total_capacity(self, figure1_bounds):
        dec = decompose_regions(DIE, figure1_bounds)
        assert dec.total_capacity(1.0) == pytest.approx(DIE.area)

    def test_centroid_inside_area(self, figure1_bounds):
        dec = decompose_regions(DIE, figure1_bounds)
        for region in dec:
            cx, cy = region.centroid()
            # centroid of a (possibly disconnected) union may fall
            # outside, but here regions are connected rectilinear sets
            assert DIE.contains_point(cx, cy)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 80), st.integers(0, 80),
            st.integers(5, 20), st.integers(5, 20),
        ),
        min_size=1,
        max_size=4,
    )
)
def test_property_partition_and_purity(quads):
    mbs = MoveBoundSet(DIE)
    for i, (x, y, w, h) in enumerate(quads):
        mbs.add_rects(f"m{i}", [Rect(x, y, min(x + w, 100), min(y + h, 100))])
    dec = decompose_regions(DIE, mbs)
    dec.check_partition()
    # purity: every region is inside or outside each movebound area
    for region in dec:
        for bound in mbs:
            inter = region.area.intersect(bound.area).area
            assert inter == pytest.approx(0, abs=1e-6) or inter == pytest.approx(
                region.area.area, abs=1e-6
            )
            # signature is consistent with coverage
            assert (bound.name in region.signature) == (
                inter > region.area.area / 2
            )
