"""Boundary-exactness tests for grid/window/region clipping."""

import pytest

from repro.geometry import Rect, RectSet
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions

DIE = Rect(0, 0, 100, 100)


class TestClipping:
    def test_region_on_window_boundary(self):
        """A movebound ending exactly on a window boundary contributes
        to one side only — no double counting, no loss."""
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(0, 0, 25, 25)])  # window edge at 25
        grid = Grid(DIE, 4, 4)
        grid.build_regions(decompose_regions(DIE, mbs))
        total_m = sum(
            wr.area.area
            for w in grid
            for wr in w.regions
            if wr.admits("m")
        )
        assert total_m == pytest.approx(625)
        # only window (0, 0) carries it
        for w in grid:
            m_here = sum(
                wr.area.area for wr in w.regions if wr.admits("m")
            )
            if (w.ix, w.iy) == (0, 0):
                assert m_here == pytest.approx(625)
            else:
                assert m_here == 0

    def test_region_straddling_many_windows(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(10, 10, 90, 90)])
        grid = Grid(DIE, 4, 4)
        grid.build_regions(decompose_regions(DIE, mbs))
        total = sum(
            wr.area.area
            for w in grid
            for wr in w.regions
            if wr.admits("m")
        )
        assert total == pytest.approx(6400)

    def test_window_capacities_sum_to_die(self):
        grid = Grid(DIE, 7, 3)  # non-square, non-divisor grid
        grid.build_regions(decompose_regions(DIE, MoveBoundSet(DIE)))
        assert sum(w.capacity(1.0) for w in grid) == pytest.approx(
            DIE.area
        )

    def test_float_die_boundaries(self):
        die = Rect(0.0, 0.0, 99.7, 33.1)
        grid = Grid(die, 6, 5)
        assert grid.xs[-1] == die.x_hi
        assert grid.ys[-1] == die.y_hi
        assert grid.window_at(99.7, 33.1).index == grid.window(5, 4).index

    def test_rebuild_regions_idempotent(self):
        mbs = MoveBoundSet(DIE)
        mbs.add_rects("m", [Rect(5, 5, 60, 60)])
        dec = decompose_regions(DIE, mbs)
        grid = Grid(DIE, 4, 4)
        grid.build_regions(dec)
        first = [
            (w.index, len(w.regions), w.capacity(1.0)) for w in grid
        ]
        grid.build_regions(dec)
        second = [
            (w.index, len(w.regions), w.capacity(1.0)) for w in grid
        ]
        assert first == second
