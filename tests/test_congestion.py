"""Tests for congestion estimation and cell inflation."""

import numpy as np
import pytest

from repro.congestion import (
    congestion_map,
    deflate_cells,
    inflate_cells,
)
from repro.geometry import Rect
from repro.netlist import Netlist, Pin
from repro.workloads import NetlistSpec, generate_netlist

DIE = Rect(0, 0, 40, 40)


def _crowded_netlist():
    """Dense, heavily wired corner + sparse remainder."""
    nl = Netlist(DIE, row_height=1.0, site_width=0.5)
    rng = np.random.default_rng(0)
    for i in range(60):
        nl.add_cell(f"c{i}", 1.0, 1.0,
                    x=float(rng.uniform(1, 8)), y=float(rng.uniform(1, 8)))
    for i in range(20):
        nl.add_cell(f"s{i}", 1.0, 1.0,
                    x=float(rng.uniform(20, 39)),
                    y=float(rng.uniform(20, 39)))
    nl.finalize()
    for j in range(200):  # dense wiring in the corner
        a, b = rng.choice(60, 2, replace=False)
        nl.add_net(f"n{j}", [Pin(int(a)), Pin(int(b))])
    for j in range(10):
        a, b = rng.choice(20, 2, replace=False)
        nl.add_net(f"m{j}", [Pin(60 + int(a)), Pin(60 + int(b))])
    return nl


class TestCongestionMap:
    def test_normalized_average(self):
        nl = _crowded_netlist()
        cmap = congestion_map(nl, bins=8)
        positive = cmap[cmap > 0]
        assert positive.mean() == pytest.approx(1.0, rel=1e-6)

    def test_hotspot_detected(self):
        nl = _crowded_netlist()
        cmap = congestion_map(nl, bins=8)
        # the crowded corner bins are well above average
        assert cmap[0, 0] > 2.0
        assert cmap[0, 0] > cmap[5, 5]

    def test_no_nets_no_congestion(self):
        nl = Netlist(DIE)
        nl.add_cell("a", 1, 1, x=5, y=5)
        nl.finalize()
        cmap = congestion_map(nl, bins=4)
        assert np.all(cmap == 0)


class TestInflation:
    def test_inflates_hotspot_only(self):
        nl = _crowded_netlist()
        result = inflate_cells(nl, threshold=1.4, bins=8)
        assert result.inflated_cells > 0
        # sparse-region cells untouched
        for i in range(60, 80):
            assert i not in result.original_widths

    def test_area_accounting(self):
        nl = _crowded_netlist()
        before = nl.total_cell_area()
        result = inflate_cells(nl, bins=8)
        assert nl.total_cell_area() == pytest.approx(
            before + result.added_area
        )

    def test_factor_cap(self):
        nl = _crowded_netlist()
        result = inflate_cells(nl, max_factor=1.25, bins=8)
        assert result.max_factor <= 1.25 + 1e-9
        for index, w0 in result.original_widths.items():
            assert nl.cells[index].width <= w0 * 1.25 + 1e-9

    def test_deflate_roundtrip(self):
        nl = _crowded_netlist()
        before = [c.width for c in nl.cells]
        result = inflate_cells(nl, bins=8)
        deflate_cells(nl, result)
        assert [c.width for c in nl.cells] == before

    def test_threshold_disables(self):
        nl = _crowded_netlist()
        result = inflate_cells(nl, threshold=1e9, bins=8)
        assert result.inflated_cells == 0


class TestInflationVsPlacers:
    def test_fbp_feasible_after_inflation(self):
        """The §IV claim: FBP re-establishes feasibility for any given
        placement, including after congestion inflation."""
        from repro.fbp import fbp_partition
        from repro.grid import Grid
        from repro.movebounds import MoveBoundSet, decompose_regions

        spec = NetlistSpec("infl", 200, utilization=0.5, num_pads=8)
        nl, _ = generate_netlist(spec, seed=3)
        inflate_cells(nl, threshold=1.0, strength=0.4, bins=6)
        bounds = MoveBoundSet(nl.die)
        dec = decompose_regions(nl.die, bounds, nl.blockages)
        grid = Grid(nl.die, 4, 4)
        grid.build_regions(dec)
        report = fbp_partition(nl, bounds, grid, density_target=0.95)
        assert report.feasible
