"""Tests for the STA and timing-driven placement loop."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.netlist import Netlist, Pin
from repro.timing import analyze_timing, reweight_nets, timing_driven_place
from repro.workloads import NetlistSpec, generate_netlist

DIE = Rect(0, 0, 60, 60)


def _chain_netlist():
    """PI -> a -> b -> PO with known geometry."""
    nl = Netlist(DIE)
    a = nl.add_cell("a", 1, 1, x=10, y=10)
    b = nl.add_cell("b", 1, 1, x=30, y=10)
    nl.finalize()
    nl.add_net("pi", [Pin.terminal(0, 10), Pin(a.index)])     # delay 10
    nl.add_net("ab", [Pin(a.index), Pin(b.index)])            # delay 20
    nl.add_net("po", [Pin(b.index), Pin.terminal(60, 10)])    # delay 30
    return nl


class TestSTA:
    def test_chain_arrivals(self):
        nl = _chain_netlist()
        report = analyze_timing(nl)
        # arrival(a) = 10 (PI net), arrival(b) = 10 + 1 + 20 = 31
        assert report.arrival[0] == pytest.approx(10)
        assert report.arrival[1] == pytest.approx(31)
        # critical path = worst endpoint arrival (cell b)
        assert report.critical_path == pytest.approx(31)

    def test_criticality_on_chain(self):
        nl = _chain_netlist()
        report = analyze_timing(nl)
        # the a->b net lies on the single path: criticality 1
        assert report.net_criticality[1] == pytest.approx(1.0)

    def test_side_path_less_critical(self):
        nl = Netlist(DIE)
        a = nl.add_cell("a", 1, 1, x=10, y=10)
        b = nl.add_cell("b", 1, 1, x=50, y=10)   # long branch
        c = nl.add_cell("c", 1, 1, x=12, y=10)   # short branch
        nl.finalize()
        nl.add_net("pi", [Pin.terminal(0, 10), Pin(a.index)])
        long_net = nl.add_net("long", [Pin(a.index), Pin(b.index)])
        short_net = nl.add_net("short", [Pin(a.index), Pin(c.index)])
        report = analyze_timing(nl)
        crit_long = report.net_criticality[1]
        crit_short = report.net_criticality[2]
        assert crit_long > crit_short

    def test_cycle_broken(self):
        nl = Netlist(DIE)
        a = nl.add_cell("a", 1, 1, x=10, y=10)
        b = nl.add_cell("b", 1, 1, x=20, y=10)
        nl.finalize()
        nl.add_net("ab", [Pin(a.index), Pin(b.index)])
        nl.add_net("ba", [Pin(b.index), Pin(a.index)])  # cycle
        report = analyze_timing(nl)
        assert report.broken_arcs == 1
        assert np.isfinite(report.critical_path)

    def test_empty_netlist(self):
        nl = Netlist(DIE)
        nl.finalize()
        report = analyze_timing(nl)
        assert report.critical_path == 0.0

    def test_critical_nets_query(self):
        nl = _chain_netlist()
        report = analyze_timing(nl)
        assert 1 in report.critical_nets(0.9)


class TestReweighting:
    def test_critical_nets_gain_weight(self):
        nl = _chain_netlist()
        report = analyze_timing(nl)
        reweight_nets(nl, report, alpha=3.0)
        assert nl.nets[1].weight > 1.0  # the critical a->b net

    def test_base_weights_no_compounding(self):
        nl = _chain_netlist()
        base = [n.weight for n in nl.nets]
        report = analyze_timing(nl)
        reweight_nets(nl, report, alpha=3.0, base_weights=base)
        w1 = nl.nets[1].weight
        reweight_nets(nl, report, alpha=3.0, base_weights=base)
        assert nl.nets[1].weight == pytest.approx(w1)

    def test_hpwl_cache_invalidated(self):
        nl = _chain_netlist()
        before = nl.hpwl()
        report = analyze_timing(nl)
        reweight_nets(nl, report, alpha=10.0)
        assert nl.hpwl() > before  # heavier weights raise weighted HPWL


class TestLoop:
    def test_critical_path_improves(self):
        spec = NetlistSpec("td", 250, utilization=0.5, num_pads=12)
        nl, _ = generate_netlist(spec, seed=4)
        first, final = timing_driven_place(nl, iterations=2, alpha=4.0)
        # the loop returns the best placement seen, so it never regresses
        assert final.critical_path <= first.critical_path + 1e-9

    def test_weights_restored(self):
        spec = NetlistSpec("td", 150, utilization=0.5, num_pads=8)
        nl, _ = generate_netlist(spec, seed=5)
        base = [n.weight for n in nl.nets]
        timing_driven_place(nl, iterations=1)
        assert [n.weight for n in nl.nets] == base
