"""Global placers.

* :mod:`repro.place.bonnplace` — **BonnPlaceFBP**, the paper's tool:
  multilevel quadratic placement with flow-based partitioning and
  region-aware legalization.  Handles inclusive/exclusive, non-convex,
  overlapping movebounds exactly.
* :mod:`repro.place.rql` — an RQL-style force-directed baseline
  (relaxed quadratic spreading via cell shifting + anchors) with the
  naive movebound handling the paper measures against (Tables II/IV/V).
* :mod:`repro.place.kraftwerk` — a Kraftwerk2-style baseline (B2B net
  model + Poisson density forces) for the ISPD-2006-style comparison
  (Table VII).
* :mod:`repro.place.recursive_placer` — the pre-FBP BonnPlace scheme
  (recursive 2x2 partitioning, optional reflow) for ablations.
"""

from repro.place.base import (
    InfeasiblePlacementError,
    PlacementError,
    PlacerResult,
)
from repro.place.bonnplace import BonnPlaceFBP, BonnPlaceOptions
from repro.place.rql import RQLOptions, RQLPlacer
from repro.place.kraftwerk import KraftwerkOptions, KraftwerkPlacer
from repro.place.recursive_placer import RecursiveOptions, RecursivePlacer

__all__ = [
    "PlacerResult",
    "PlacementError",
    "InfeasiblePlacementError",
    "BonnPlaceFBP",
    "BonnPlaceOptions",
    "RQLPlacer",
    "RQLOptions",
    "KraftwerkPlacer",
    "KraftwerkOptions",
    "RecursivePlacer",
    "RecursiveOptions",
]
