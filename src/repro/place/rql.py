"""An RQL-style force-directed baseline placer.

RQL [Viswanathan et al., DAC 2007] is "relaxed quadratic spreading and
linearization": iterate quadratic solves with spreading forces derived
from bin utilization (FastPlace-style cell shifting) held by fixed-
point pseudo-nets.  This re-implementation follows the published
algorithm at our scale and — deliberately — reproduces its *naive*
movebound handling, which the paper evaluates against:

* movebound cells are clamped into their areas after every spreading
  step (a force/projection approach with no capacity awareness);
* legalization is plain row legalization over the whole chip, blind to
  regions — so exclusive areas and saturated movebounds produce the
  violation counts (and occasional infeasibility "crashes") that
  Tables IV/V report for RQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.legalize import build_segments, check_legality, tetris_legalize
from repro.metrics.density import DensityMap, default_bin_count
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist
from repro.obs import incr, span
from repro.place.base import PlacerResult
from repro.qp import QPOptions, solve_qp


@dataclass
class RQLOptions:
    """Tuning knobs of the RQL-style baseline."""

    max_iterations: int = 24
    overflow_stop: float = 0.08  # stop when overflow ratio drops below
    anchor_base: float = 0.012
    anchor_growth: float = 1.18
    shift_damping: float = 0.72  # relaxation of the cell-shifting move
    bins: Optional[int] = None
    qp: QPOptions = field(default_factory=QPOptions)
    density_target: float = 0.97
    respect_movebounds: bool = True  # naive clamping mode
    legalize: bool = True
    detailed_passes: int = 1  # post-legalization refinement


def _shift_axis(
    coords: np.ndarray,
    usage_1d: np.ndarray,
    lo: float,
    hi: float,
    damping: float,
) -> np.ndarray:
    """FastPlace cell shifting along one axis for one bin row/column.

    Bin boundaries move toward equalizing adjacent utilizations; cell
    coordinates map piecewise-linearly from old bins to new bins.
    """
    nb = len(usage_1d)
    width = (hi - lo) / nb
    old = np.linspace(lo, hi, nb + 1)
    new = old.copy()
    for i in range(1, nb):
        u_l, u_r = usage_1d[i - 1], usage_1d[i]
        denom = u_l + u_r
        if denom <= 1e-12:
            continue
        delta = damping * width * (u_l - u_r) / denom
        new[i] = old[i] + np.clip(delta, -0.49 * width, 0.49 * width)
    # piecewise-linear remap
    idx = np.clip(((coords - lo) / width).astype(int), 0, nb - 1)
    frac = (coords - old[idx]) / np.maximum(old[idx + 1] - old[idx], 1e-12)
    return new[idx] + frac * (new[idx + 1] - new[idx])


class RQLPlacer:
    """Relaxed-quadratic-spreading baseline with naive movebounds."""

    name = "RQL-like"

    def __init__(self, options: Optional[RQLOptions] = None) -> None:
        self.options = options or RQLOptions()
        self.iterations_run = 0

    # ------------------------------------------------------------------
    def _clamp_movebounds(
        self, netlist: Netlist, bounds: MoveBoundSet
    ) -> None:
        """Project every movebound cell to the closest point of its
        area — capacity-blind, exactly the naive approach."""
        exclusive = bounds.exclusive_area()
        default_area = None
        for cell in netlist.cells:
            if cell.fixed:
                continue
            x, y = netlist.x[cell.index], netlist.y[cell.index]
            if cell.movebound is not None:
                area = bounds.get(cell.movebound).area
                if not area.contains_point(x, y):
                    netlist.x[cell.index], netlist.y[cell.index] = (
                        area.clamp_point(x, y)
                    )
            elif not exclusive.is_empty and exclusive.contains_point(x, y):
                if default_area is None:
                    default_area = bounds.default_bound().area
                netlist.x[cell.index], netlist.y[cell.index] = (
                    default_area.clamp_point(x, y)
                )

    # ------------------------------------------------------------------
    def place(
        self,
        netlist: Netlist,
        bounds: Optional[MoveBoundSet] = None,
    ) -> PlacerResult:
        opts = self.options
        if bounds is None:
            bounds = MoveBoundSet(netlist.die)
        bounds.normalize()

        with span("place.global") as sp_global:
            with span("place.qp"):
                solve_qp(netlist, opts.qp)
            nb = opts.bins or default_bin_count(netlist)
            dmap = DensityMap(netlist, nb, nb)
            die = netlist.die
            movable = np.array(
                [c.index for c in netlist.cells if not c.fixed],
                dtype=np.int64,
            )

            anchor_weight = opts.anchor_base
            self.iterations_run = 0
            for it in range(opts.max_iterations):
                dmap.update()
                overflow = dmap.overflow_ratio(opts.density_target)
                if overflow < opts.overflow_stop:
                    break
                self.iterations_run += 1
                incr("rql.iterations")

                # cell shifting: x within each bin row, y within each col
                new_x = netlist.x.copy()
                new_y = netlist.y.copy()
                ys = netlist.y[movable]
                xs = netlist.x[movable]
                row_of = np.clip(
                    ((ys - die.y_lo) / dmap.bin_h).astype(int), 0, nb - 1
                )
                col_of = np.clip(
                    ((xs - die.x_lo) / dmap.bin_w).astype(int), 0, nb - 1
                )
                for j in range(nb):
                    sel = movable[row_of == j]
                    if len(sel):
                        new_x[sel] = _shift_axis(
                            netlist.x[sel],
                            dmap.usage[:, j],
                            die.x_lo,
                            die.x_hi,
                            opts.shift_damping,
                        )
                for i in range(nb):
                    sel = movable[col_of == i]
                    if len(sel):
                        new_y[sel] = _shift_axis(
                            netlist.y[sel],
                            dmap.usage[i, :],
                            die.y_lo,
                            die.y_hi,
                            opts.shift_damping,
                        )
                netlist.x, netlist.y = new_x, new_y
                if opts.respect_movebounds:
                    self._clamp_movebounds(netlist, bounds)
                netlist.clamp_into_die()

                anchors_x = [
                    (int(i), float(netlist.x[i]), anchor_weight)
                    for i in movable
                ]
                anchors_y = [
                    (int(i), float(netlist.y[i]), anchor_weight)
                    for i in movable
                ]
                with span("place.qp"):
                    solve_qp(
                        netlist,
                        opts.qp,
                        anchors_x=anchors_x,
                        anchors_y=anchors_y,
                    )
                if opts.respect_movebounds:
                    self._clamp_movebounds(netlist, bounds)
                anchor_weight *= opts.anchor_growth
        global_seconds = sp_global.wall_s

        legal_seconds = 0.0
        if opts.legalize:
            with span("place.legalize") as sp_legal:
                segments = build_segments(netlist)
                std_cells = [
                    c.index
                    for c in netlist.cells
                    if not c.fixed
                    and c.height <= netlist.row_height + 1e-9
                ]
                try:
                    tetris_legalize(netlist, std_cells, segments)
                except ValueError as exc:  # "crashed" outcome of Table IV
                    incr("rql.crashes")
                    crashed_result = PlacerResult(
                        placer=self.name,
                        instance=netlist.name,
                        hpwl=float("nan"),
                        global_seconds=global_seconds,
                        crashed=True,
                        error=str(exc),
                    )
                else:
                    crashed_result = None
                    if opts.detailed_passes > 0:
                        from repro.legalize.detailed import detailed_place

                        detailed_place(
                            netlist, bounds, passes=opts.detailed_passes,
                            density_target=opts.density_target,
                        )
            if crashed_result is not None:
                crashed_result.legal_seconds = sp_legal.wall_s
                return crashed_result
            legal_seconds = sp_legal.wall_s

        legality = check_legality(netlist, bounds)
        return PlacerResult(
            placer=self.name,
            instance=netlist.name,
            hpwl=netlist.hpwl(),
            global_seconds=global_seconds,
            legal_seconds=legal_seconds,
            legality=legality,
        )
