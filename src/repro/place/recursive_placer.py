"""The pre-FBP BonnPlace scheme: recursive partitioning placer.

Global QP, then the purely local recursive 2x2 partitioning of [5]
down to the target window size, optionally followed by reflow
(repartitioning) passes.  This is the ablation baseline the paper's
§IV argues against: it lacks FBP's global guarantee, so the result
reports local infeasibilities and relaxations when they occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.grid import Grid
from repro.legalize import check_legality, legalize_with_movebounds
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.netlist import Netlist
from repro.obs import span
from repro.partitioning import recursive_partition, repartition_pass
from repro.place.base import PlacerResult
from repro.place.bonnplace import BonnPlaceFBP, BonnPlaceOptions
from repro.qp import QPOptions, solve_qp


@dataclass
class RecursiveOptions:
    """Tuning knobs of the recursive baseline."""

    density_target: float = 0.97
    target_cells_per_window: int = 24
    max_levels: Optional[int] = None
    reflow_passes: int = 1
    qp: QPOptions = field(default_factory=QPOptions)
    legalize: bool = True
    detailed_passes: int = 1


class RecursivePlacer:
    """QP + recursive 2x2 partitioning + optional reflow."""

    name = "Recursive"

    def __init__(self, options: Optional[RecursiveOptions] = None) -> None:
        self.options = options or RecursiveOptions()
        self.partition_report = None

    def place(
        self,
        netlist: Netlist,
        bounds: Optional[MoveBoundSet] = None,
    ) -> PlacerResult:
        opts = self.options
        if bounds is None:
            bounds = MoveBoundSet(netlist.die)
        bounds.normalize()
        decomposition = decompose_regions(
            netlist.die, bounds, netlist.blockages
        )

        with span("place.global") as sp_global:
            with span("place.qp"):
                solve_qp(netlist, opts.qp)
            # reuse BonnPlace's level heuristic for a fair comparison
            proxy = BonnPlaceFBP(
                BonnPlaceOptions(
                    target_cells_per_window=opts.target_cells_per_window,
                    max_levels=opts.max_levels,
                )
            )
            levels = proxy.num_levels(netlist)
            with span("place.partition"):
                self.partition_report = recursive_partition(
                    netlist,
                    bounds,
                    decomposition,
                    max_level=levels,
                    density_target=opts.density_target,
                )
            grid = Grid(netlist.die, 2**levels, 2**levels)
            grid.build_regions(decomposition)
            for _ in range(opts.reflow_passes):
                with span("place.repartition"):
                    repartition_pass(
                        netlist,
                        bounds,
                        grid,
                        density_target=opts.density_target,
                        qp_options=opts.qp,
                    )
        global_seconds = sp_global.wall_s

        legal_seconds = 0.0
        if opts.legalize:
            with span("place.legalize") as sp_legal:
                legalize_with_movebounds(netlist, bounds, decomposition)
                if opts.detailed_passes > 0:
                    from repro.legalize.detailed import detailed_place

                    detailed_place(
                        netlist, bounds, decomposition,
                        passes=opts.detailed_passes,
                        density_target=opts.density_target,
                    )
            legal_seconds = sp_legal.wall_s

        legality = check_legality(netlist, bounds)
        return PlacerResult(
            placer=self.name,
            instance=netlist.name,
            hpwl=netlist.hpwl(),
            global_seconds=global_seconds,
            legal_seconds=legal_seconds,
            legality=legality,
        )
