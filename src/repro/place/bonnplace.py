"""BonnPlaceFBP — the paper's global placer.

The multilevel loop of partitioning-based analytical placement (§III)
with the new flow-based partitioning (§IV) as the core routine:

1. feasibility check (Theorem 2) — fail fast with a witness when no
   placement with the given movebounds exists;
2. unconstrained global QP;
3. per level L = 1, 2, ...: grid 2^L x 2^L, **FBP partitioning**
   (global MinCostFlow + realization), then an anchored global QP that
   restores connectivity while pseudo-nets of growing strength hold the
   spreading;
4. optional repartitioning (reflow) passes — off by default, since FBP
   removes the need; kept as an ablation knob;
5. region-aware legalization honoring all movebounds simultaneously.
"""

from __future__ import annotations

import math
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import List, Optional

from repro.fbp import FBPReport, fbp_partition
from repro.feasibility import check_feasibility
from repro.flows.warmstart import set_warm_start
from repro.geometry import activated_cache
from repro.grid import Grid
from repro.legalize import check_legality, legalize_with_movebounds
from repro.legalize.detailed import detailed_place
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.netlist import Netlist
from repro.obs import incr, maybe_check, span
from repro.partitioning import enforce_blocks, repartition_pass
from repro.place.base import (
    InfeasiblePlacementError,
    PlacementError,
    PlacerResult,
)
from repro.qp import QPOptions, solve_qp
from repro.resilience.checkpoint import ScheduleCheckpointer
from repro.resilience.diagnose import diagnose_infeasibility, relax_to_feasible
from repro.resilience.errors import (
    InfeasibleInputError,
    PipelineStageError,
    ReproError,
    SolverBudgetExceeded,
    SolverNumericsError,
)
from repro.resilience.faultinject import inject
from repro.resilience.validate import validate_instance
from repro.runstate import (
    DurableRunState,
    WindowSolverPool,
    activated,
    config_hash,
    get_active_pool,
)


@dataclass
class BonnPlaceOptions:
    """Tuning knobs of BonnPlaceFBP."""

    density_target: float = 0.97  # the paper's experimental setting
    target_cells_per_window: int = 14
    max_levels: Optional[int] = None
    anchor_base: float = 0.02
    qp: QPOptions = field(default_factory=QPOptions)
    run_local_qp: bool = True
    repartition_passes: int = 0  # ablation: reflow after each level
    final_reflow: bool = True  # one repartitioning pass at the last level
    mcf_method: str = "auto"
    #: backend of the per-window / repartitioning transportation solves
    #: ("auto" = LP via scipy; "ns" = warm-startable network simplex)
    transport_method: str = "auto"
    #: warm-start the network simplex across same-topology re-solves
    #: (bit-identical results by contract; ``--no-warm-start`` disables)
    warm_start: bool = True
    #: cache region decompositions / window clippings / fixed-cell
    #: usage across levels (bit-identical; ``--no-region-cache``
    #: disables)
    region_cache: bool = True
    legalize: bool = True
    #: post-legalization detailed placement passes (0 disables)
    detailed_passes: int = 1
    min_window_rows: float = 3.0  # stop refining below this window height
    #: BestChoice clustering ratio (paper: 5 industrial, 2 ISPD);
    #: None places flat
    cluster_ratio: Optional[float] = None
    #: graceful degradation: on an infeasible instance, relax capacities
    #: uniformly (up to ``max_relax``x) instead of raising
    relax_infeasible: bool = False
    max_relax: float = 8.0
    #: supervised parallel window-solver pool size for the per-window
    #: transportation solves (0 = serial; parallel and serial runs are
    #: bit-identical)
    pool_workers: int = 0
    #: per-task deadline of the pool (None = budget-derived default)
    pool_task_timeout: Optional[float] = None
    #: shard each level's FBP MinCostFlow into an N x N tile grid
    #: (None/<=1 = monolithic solve; exact when no flow crosses tile
    #: cuts, reported approximation otherwise — see repro.fbp.sharding)
    shard_tiles: Optional[int] = None
    #: tile-parallel realization dispatch when a pool is active:
    #: windows grouped into N x N spatial units (None = auto
    #: ``min(8, nx, ny)``; 0/1 = serial; bit-identical either way)
    realize_tiles: Optional[int] = None


def _project_into_bounds(netlist: Netlist, bounds: MoveBoundSet, cells) -> None:
    """Deterministically move re-assigned cells to the nearest interior
    point of their (new) movebound.  The scoped frontier transportation
    only shuffles cells within their own 2x2 block, so a cell far from
    its new bound must arrive there before its block is repaired."""
    for idx in cells:
        cell = netlist.cells[int(idx)]
        if not cell.movebound:
            continue
        area = bounds.get(cell.movebound).area
        x = float(netlist.x[cell.index])
        y = float(netlist.y[cell.index])
        best = None
        for r in area:
            hw = min(cell.width / 2, r.width / 2)
            hh = min(cell.height / 2, r.height / 2)
            px = min(max(x, r.x_lo + hw), r.x_hi - hw)
            py = min(max(y, r.y_lo + hh), r.y_hi - hh)
            d = abs(px - x) + abs(py - y)
            if best is None or d < best[0]:
                best = (d, px, py)
        if best is not None and best[0] > 0.0:
            netlist.x[cell.index] = best[1]
            netlist.y[cell.index] = best[2]


class BonnPlaceFBP:
    """Flow-based-partitioning global placer with movebound support."""

    name = "BonnPlaceFBP"

    def __init__(
        self,
        options: Optional[BonnPlaceOptions] = None,
        run_state: Optional[DurableRunState] = None,
    ) -> None:
        self.options = options or BonnPlaceOptions()
        #: per-level FBP reports of the last run (Table I consumes
        #: these; after a resume only the levels run by *this* process
        #: are present)
        self.level_reports: List[FBPReport] = []
        #: capacity relaxation factor applied by the last run (1.0 =
        #: none); > 1 only with ``relax_infeasible`` on an infeasible
        #: instance
        self.relax_factor: float = 1.0
        #: durable checkpoint/resume driver (``--run-dir``/``--resume``);
        #: None keeps the pre-existing purely in-memory behavior
        self.run_state = run_state
        #: per-run reflow warm-start slots (reset by ``_place_body``)
        self._reflow_slots: Optional[dict] = None

    # ------------------------------------------------------------------
    def num_levels(self, netlist: Netlist) -> int:
        """Refine until windows hold ~target_cells_per_window cells,
        but never shrink windows below a few row heights."""
        opts = self.options
        if opts.max_levels is not None:
            return opts.max_levels
        n_movable = sum(1 for c in netlist.cells if not c.fixed)
        by_cells = math.log2(
            max(n_movable / max(opts.target_cells_per_window, 1), 1)
        ) / 2
        by_rows = math.log2(
            max(
                netlist.die.height
                / (opts.min_window_rows * netlist.row_height),
                1,
            )
        )
        return max(1, min(int(math.ceil(by_cells)), int(by_rows), 7))

    # ------------------------------------------------------------------
    def place(
        self,
        netlist: Netlist,
        bounds: Optional[MoveBoundSet] = None,
    ) -> PlacerResult:
        """Run global placement + legalization on the netlist in place.

        With ``options.pool_workers > 0`` the per-window transportation
        solves run on a supervised worker pool for the duration of the
        run (unless a pool is already active, e.g. CLI-installed).
        """
        opts = self.options
        if opts.pool_workers > 0 and get_active_pool() is None:
            with WindowSolverPool(
                opts.pool_workers, task_timeout=opts.pool_task_timeout
            ) as pool, activated(pool):
                return self._place_impl(netlist, bounds)
        return self._place_impl(netlist, bounds)

    def _place_impl(
        self,
        netlist: Netlist,
        bounds: Optional[MoveBoundSet] = None,
    ) -> PlacerResult:
        opts = self.options
        if bounds is None:
            bounds = MoveBoundSet(netlist.die)
        bounds.normalize()
        validate_instance(netlist, bounds, opts.density_target)
        with ExitStack() as stack:
            # incremental-reuse layer: geometry cache scoped by the
            # instance + config hash, and the simplex warm-start
            # toggle.  Both are bit-identical to the uncached path by
            # contract and excluded from the resume config hash.
            if opts.region_cache:
                stack.enter_context(
                    activated_cache(self._geometry_scope(netlist, bounds))
                )
            stack.callback(set_warm_start, set_warm_start(opts.warm_start))
            return self._place_body(netlist, bounds)

    def incremental_refine(
        self,
        netlist: Netlist,
        bounds: MoveBoundSet,
        frontier=None,
        touched_cells=None,
    ) -> PlacerResult:
        """Incremental refinement from the *current* placement.

        The ECO engine's incremental solve (:mod:`repro.eco`).  With
        ``frontier`` — a set of finest-grid ``(ix, iy)`` window coords
        the delta invalidated — the solve is *scoped*: the re-assigned
        ``touched_cells`` are projected into their (new) movebounds,
        the movebound-aware block transportation is re-run over the
        frontier's 2x2 blocks only (enforced, not HPWL-gated), and the
        detailed passes sweep only the frontier's cells.  Everything
        outside the frontier keeps its partition — that locality is
        what makes a delta solve several times cheaper than the full
        multilevel loop.

        Without a frontier (net re-weighting, density changes — global
        effects), fall back to one full finest-level FBP pass: QP +
        partitioning at grid 2^L starting from the existing near-legal
        positions, then reflow, legalization and detailed passes.  FBP
        guarantees a feasible partitioning for *any* given placement
        (§IV), so both paths honor the just-patched movebounds.

        The caller is responsible for the Theorem-2 feasibility check
        (the engine runs it during delta validation).  Warm-start
        slots in ``self._reflow_slots`` persist across calls — the
        engine drops only the slots its invalidation frontier touched.
        A scoped solve that cannot place its frontier locally raises
        :class:`PlacementError`; the engine degrades to the full solve.
        """
        opts = self.options
        bounds.normalize()
        validate_instance(netlist, bounds, opts.density_target)
        with ExitStack() as stack:
            if opts.region_cache:
                stack.enter_context(
                    activated_cache(self._geometry_scope(netlist, bounds))
                )
            stack.callback(set_warm_start, set_warm_start(opts.warm_start))
            if frontier:
                return self._refine_scoped(
                    netlist, bounds, frontier, touched_cells or ()
                )
            return self._refine_body(netlist, bounds)

    def _refine_scoped(
        self,
        netlist: Netlist,
        bounds: MoveBoundSet,
        frontier,
        touched_cells,
    ) -> PlacerResult:
        opts = self.options
        density = opts.density_target
        decomposition = decompose_regions(
            netlist.die, bounds, netlist.blockages
        )
        if self._reflow_slots is None and opts.warm_start:
            self._reflow_slots = {}
        levels = self.num_levels(netlist)
        n = 2**levels
        with span("place.incremental") as sp_global:
            grid = Grid(netlist.die, n, n)
            grid.build_regions(decomposition)
            _project_into_bounds(netlist, bounds, touched_cells)
            blocks = sorted(
                {(ix - ix % 2, iy - iy % 2) for ix, iy in frontier}
            )
            with span("place.partition"):
                ok = enforce_blocks(
                    netlist,
                    bounds,
                    grid,
                    blocks,
                    density_target=density,
                    qp_options=opts.qp,
                    run_local_qp=opts.run_local_qp,
                    transport_method=opts.transport_method,
                    warm_slots=self._reflow_slots,
                )
            if not ok:
                raise PlacementError(
                    "frontier transportation infeasible during scoped "
                    "incremental refine (the delta's windows cannot "
                    "absorb their cells locally)",
                    stage="place.partition",
                    level=levels,
                )
        global_seconds = sp_global.wall_s

        # cells the scoped detailed pass may touch: everything now in a
        # frontier window, plus the re-assigned cells themselves
        widx = {grid.window(ix, iy).index for ix, iy in frontier}
        cw = grid.assign_cells(netlist)
        scoped = sorted(
            {
                c.index
                for c in netlist.cells
                if not c.fixed and int(cw[c.index]) in widx
            }
            | {int(i) for i in touched_cells}
        )

        legal_seconds = 0.0
        if opts.legalize:
            with span("place.legalize") as sp_legal:
                legalize_with_movebounds(netlist, bounds, decomposition)
                if opts.detailed_passes > 0:
                    detailed_place(
                        netlist, bounds, decomposition,
                        passes=opts.detailed_passes,
                        density_target=density,
                        cells=scoped,
                    )
            legal_seconds = sp_legal.wall_s
            maybe_check("movebound.containment", netlist, bounds)
        legality = check_legality(netlist, bounds)
        incr("place.incremental_refines")
        incr("place.incremental_scoped")
        return PlacerResult(
            placer=self.name,
            instance=netlist.name,
            hpwl=netlist.hpwl(),
            global_seconds=global_seconds,
            legal_seconds=legal_seconds,
            legality=legality,
        )

    def _refine_body(
        self, netlist: Netlist, bounds: MoveBoundSet
    ) -> PlacerResult:
        opts = self.options
        density = opts.density_target
        decomposition = decompose_regions(
            netlist.die, bounds, netlist.blockages
        )
        if self._reflow_slots is None and opts.warm_start:
            self._reflow_slots = {}
        levels = self.num_levels(netlist)
        n = 2**levels
        with span("place.incremental") as sp_global:
            grid = Grid(netlist.die, n, n)
            grid.build_regions(decomposition)
            with span("place.partition"):
                report = fbp_partition(
                    netlist,
                    bounds,
                    grid,
                    density_target=density,
                    qp_options=opts.qp,
                    mcf_method=opts.mcf_method,
                    run_local_qp=opts.run_local_qp,
                    transport_method=opts.transport_method,
                    shard_tiles=opts.shard_tiles,
                    realize_tiles=opts.realize_tiles,
                )
            self.level_reports.append(report)
            if not report.feasible:
                raise PlacementError(
                    "FBP infeasible during incremental refine "
                    "(should not happen after the Theorem-2 check)",
                    stage="place.partition",
                    level=levels,
                )
            if opts.final_reflow:
                with span("place.repartition"):
                    repartition_pass(
                        netlist,
                        bounds,
                        grid,
                        density_target=density,
                        qp_options=opts.qp,
                        transport_method=opts.transport_method,
                        warm_slots=self._reflow_slots,
                    )
        global_seconds = sp_global.wall_s

        legal_seconds = 0.0
        if opts.legalize:
            with span("place.legalize") as sp_legal:
                legalize_with_movebounds(netlist, bounds, decomposition)
                if opts.detailed_passes > 0:
                    detailed_place(
                        netlist, bounds, decomposition,
                        passes=opts.detailed_passes,
                        density_target=density,
                    )
            legal_seconds = sp_legal.wall_s
            maybe_check("movebound.containment", netlist, bounds)
        legality = check_legality(netlist, bounds)
        incr("place.incremental_refines")
        return PlacerResult(
            placer=self.name,
            instance=netlist.name,
            hpwl=netlist.hpwl(),
            global_seconds=global_seconds,
            legal_seconds=legal_seconds,
            legality=legality,
        )

    def _geometry_scope(self, netlist: Netlist, bounds: MoveBoundSet) -> str:
        """Cache scope: everything the cached geometry depends on —
        the instance's die/blockages/fixed cells/movebounds plus the
        full option set (mirrors the runstate config hash)."""
        payload = self._config_payload(
            netlist, self.options.density_target, self.num_levels(netlist)
        )
        die = netlist.die
        payload["instance"] = netlist.name
        payload["die"] = (die.x_lo, die.y_lo, die.x_hi, die.y_hi)
        payload["blockages"] = [
            (r.x_lo, r.y_lo, r.x_hi, r.y_hi) for r in netlist.blockages
        ]
        payload["bounds"] = [
            (
                b.name,
                [(r.x_lo, r.y_lo, r.x_hi, r.y_hi) for r in b.area],
            )
            for b in bounds.all_bounds()
        ]
        fixed = []
        for c in netlist.cells:
            if c.fixed:
                r = netlist.cell_rect(c.index)
                fixed.append((c.index, r.x_lo, r.y_lo, r.x_hi, r.y_hi))
        payload["fixed"] = fixed
        return config_hash(payload)

    def _place_body(
        self,
        netlist: Netlist,
        bounds: MoveBoundSet,
    ) -> PlacerResult:
        opts = self.options
        decomposition = decompose_regions(
            netlist.die, bounds, netlist.blockages
        )

        self.relax_factor = 1.0
        # per-run warm-start slots for the reflow passes, keyed per
        # block; successive passes over an unchanged block re-solve the
        # identical transportation instance, so the stored basis is
        # already optimal
        self._reflow_slots = {} if opts.warm_start else None
        density = opts.density_target
        with span("place.feasibility"):
            feas = check_feasibility(
                netlist, bounds, decomposition, density
            )
        if not feas.feasible:
            if opts.relax_infeasible:
                factor, feas = relax_to_feasible(
                    netlist,
                    bounds,
                    decomposition,
                    density,
                    max_relax=opts.max_relax,
                )
                self.relax_factor = factor
                density = opts.density_target * factor
                incr("place.relaxed_runs")
            else:
                diagnosis = diagnose_infeasibility(
                    netlist, bounds, decomposition, density, report=feas
                )
                raise InfeasiblePlacementError(
                    f"instance infeasible: {diagnosis.summary()}",
                    witness=feas.witness,
                    deficit=feas.deficit,
                    stage="place.feasibility",
                    context={"density_target": density},
                )

        self.level_reports = []

        with span("place.global") as sp_global:
            if opts.cluster_ratio is not None and opts.cluster_ratio > 1.0:
                self._global_clustered(netlist, bounds, decomposition, density)
            else:
                self._global_flat(netlist, bounds, decomposition, density)
        global_seconds = sp_global.wall_s

        legal_seconds = 0.0
        legalized = False
        if opts.legalize:
            with span("place.legalize") as sp_legal:
                try:
                    legalize_with_movebounds(netlist, bounds, decomposition)
                    if opts.detailed_passes > 0:
                        detailed_place(
                            netlist, bounds, decomposition,
                            passes=opts.detailed_passes,
                            density_target=density,
                        )
                    legalized = True
                except ReproError:
                    # a relaxed run placed more area than physically
                    # fits — a legal placement cannot exist, so return
                    # the overfilled placement with its legality report
                    # instead of failing the whole degraded run
                    if self.relax_factor <= 1.0:
                        raise
                    incr("place.relaxed_legalize_failures")
            legal_seconds = sp_legal.wall_s
            if legalized:
                maybe_check("movebound.containment", netlist, bounds)

        legality = check_legality(netlist, bounds)
        return PlacerResult(
            placer=self.name,
            instance=netlist.name,
            hpwl=netlist.hpwl(),
            global_seconds=global_seconds,
            legal_seconds=legal_seconds,
            legality=legality,
        )

    # ------------------------------------------------------------------
    def _global_flat(
        self,
        netlist: Netlist,
        bounds: MoveBoundSet,
        decomposition,
        density: float,
    ) -> None:
        """The multilevel QP + FBP loop on an unclustered netlist.

        Levels run under a :class:`ScheduleCheckpointer`: the placement
        is snapshotted after every completed level, and a retryable
        solver/stage failure restores the last snapshot and re-runs the
        failed level once before giving up — so a transient fault costs
        one level, not the whole run.

        With a :class:`DurableRunState` attached, every completed level
        (and the initial QP, as level 0) is additionally persisted to
        the run directory; on resume the newest durable level's
        placement is restored and the loop continues from the next
        level, reproducing the uninterrupted run bit-for-bit (levels
        are deterministic functions of the incoming placement).
        """
        opts = self.options
        levels = self.num_levels(netlist)
        rs = self.run_state

        start_level = 0
        resumed = None
        if rs is not None:
            cfg = config_hash(self._config_payload(netlist, density, levels))
            with span("place.runstate.begin"):
                resumed = rs.begin(netlist, cfg, levels)
        if resumed is None:
            with span("place.qp"):
                solve_qp(netlist, opts.qp)
            if rs is not None:
                rs.save_level(0, netlist)
        else:
            # positions already restored by rs.begin(); skip the work
            # the durable levels already cover
            start_level = resumed
            incr("place.resumed_runs")

        ckpt = ScheduleCheckpointer(netlist)
        ckpt.save(start_level)
        retried = set()
        level = start_level + 1
        while level <= levels:
            try:
                self._run_level(netlist, bounds, decomposition, level,
                                levels, density)
            except (
                SolverBudgetExceeded,
                SolverNumericsError,
                PipelineStageError,
            ) as exc:
                # infeasibility is a property of the input, not a
                # transient fault — never retried
                if isinstance(exc, InfeasibleInputError):
                    raise
                if level in retried:
                    # permanent: annotate with the failing level and
                    # re-raise unchanged so the classification (and
                    # CLI exit code) of the root cause survives
                    exc.level = level
                    exc.context["failed_after_retry"] = True
                    raise
                retried.add(level)
                ckpt.restore_latest()
                # level_reports only holds levels run by this process
                del self.level_reports[ckpt.last_level - start_level:]
                incr("place.level_retries")
                continue
            ckpt.save(level)
            if rs is not None:
                rs.save_level(level, netlist)
            level += 1

    def _config_payload(
        self, netlist: Netlist, density: float, levels: int
    ) -> dict:
        """What must match for a resume to be sound: the instance
        shape and every option that influences the level schedule."""
        from dataclasses import asdict

        payload = asdict(self.options)
        payload.update(
            num_cells=netlist.num_cells,
            num_nets=netlist.num_nets,
            density=density,
            levels=levels,
        )
        # parallelism knobs do not change the result (bit-identical by
        # construction) — a resume may legally change them
        payload.pop("pool_workers", None)
        payload.pop("pool_task_timeout", None)
        payload.pop("realize_tiles", None)
        # the incremental-reuse knobs are bit-identical by contract,
        # so a resume (or cache scope) may legally change them too
        payload.pop("warm_start", None)
        payload.pop("region_cache", None)
        return payload

    def _run_level(
        self,
        netlist: Netlist,
        bounds: MoveBoundSet,
        decomposition,
        level: int,
        levels: int,
        density: float,
    ) -> None:
        """One level of the multilevel loop: FBP partitioning at the
        2^level grid, optional reflow, and the anchored QP."""
        opts = self.options
        inject("stage.place.level")
        incr("place.levels")
        n = 2**level
        grid = Grid(netlist.die, n, n)
        grid.build_regions(decomposition)
        with span("place.partition"):
            report = fbp_partition(
                netlist,
                bounds,
                grid,
                density_target=density,
                qp_options=opts.qp,
                mcf_method=opts.mcf_method,
                run_local_qp=opts.run_local_qp,
                transport_method=opts.transport_method,
                shard_tiles=opts.shard_tiles,
                realize_tiles=opts.realize_tiles,
            )
        self.level_reports.append(report)
        if not report.feasible:
            raise PlacementError(
                f"FBP infeasible at level {level} "
                f"(should not happen after the Theorem-2 check)",
                stage="place.partition",
                level=level,
            )
        passes = opts.repartition_passes
        if level == levels and opts.final_reflow:
            passes = max(passes, 1)
        for _ in range(passes):
            with span("place.repartition"):
                repartition_pass(
                    netlist,
                    bounds,
                    grid,
                    density_target=density,
                    qp_options=opts.qp,
                    transport_method=opts.transport_method,
                    warm_slots=self._reflow_slots,
                )
        if level < levels:
            weight = opts.anchor_base * (2.0**level)
            anchors_x = [
                (c.index, float(netlist.x[c.index]), weight)
                for c in netlist.cells
                if not c.fixed
            ]
            anchors_y = [
                (c.index, float(netlist.y[c.index]), weight)
                for c in netlist.cells
                if not c.fixed
            ]
            with span("place.qp"):
                solve_qp(
                    netlist,
                    opts.qp,
                    anchors_x=anchors_x,
                    anchors_y=anchors_y,
                )

    # ------------------------------------------------------------------
    def _global_clustered(
        self,
        netlist: Netlist,
        bounds: MoveBoundSet,
        decomposition,
        density: float,
    ) -> None:
        """BestChoice clustering (paper §V experimental setup): place
        the clustered netlist, then one flat refinement pass."""
        opts = self.options
        if self.run_state is not None:
            raise PipelineStageError(
                "durable run state (--run-dir/--resume) is only "
                "supported for flat runs (cluster_ratio=None)",
                stage="place.runstate",
            )
        from dataclasses import replace as dc_replace

        from repro.cluster import bestchoice_cluster

        with span("place.cluster"):
            clustering = bestchoice_cluster(netlist, opts.cluster_ratio)
        sub = BonnPlaceFBP(
            dc_replace(
                opts,
                cluster_ratio=None,
                legalize=False,
                density_target=density,
            )
        )
        sub.place(clustering.clustered, bounds)
        self.level_reports = list(sub.level_reports)
        clustering.uncluster()
        # flat refinement: one partitioning pass at the finest grid
        levels = self.num_levels(netlist)
        grid = Grid(netlist.die, 2**levels, 2**levels)
        grid.build_regions(decomposition)
        with span("place.partition"):
            report = fbp_partition(
                netlist,
                bounds,
                grid,
                density_target=density,
                qp_options=opts.qp,
                mcf_method=opts.mcf_method,
                run_local_qp=opts.run_local_qp,
                transport_method=opts.transport_method,
                shard_tiles=opts.shard_tiles,
                realize_tiles=opts.realize_tiles,
            )
        self.level_reports.append(report)
        if opts.final_reflow:
            with span("place.repartition"):
                repartition_pass(
                    netlist,
                    bounds,
                    grid,
                    density_target=density,
                    qp_options=opts.qp,
                    transport_method=opts.transport_method,
                    warm_slots=self._reflow_slots,
                )
