"""Common placer result record and errors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.legalize import LegalityReport
from repro.resilience.errors import InfeasibleInputError, PipelineStageError


class PlacementError(PipelineStageError):
    """Raised when a placer cannot produce a placement (the analogue of
    the industrial tool 'crashing' on an instance, cf. Table IV).

    Part of the :mod:`repro.resilience` taxonomy (and still a
    ``RuntimeError`` through :class:`PipelineStageError`, so historical
    ``except RuntimeError`` call sites keep working)."""


class InfeasiblePlacementError(InfeasibleInputError, PlacementError):
    """The instance violates condition (1): no placement honoring the
    movebounds exists at the requested density.  Carries the min-cut
    ``witness`` subset and ``deficit``; exits with code 2 via the CLI."""


@dataclass
class PlacerResult:
    """Outcome of one placement run — the quantities the paper tables
    report: HPWL of the legal placement, wall-clock runtimes split into
    global placement and legalization (Table VI), and movebound
    violations (Tables IV/V)."""

    placer: str
    instance: str
    hpwl: float
    global_seconds: float
    legal_seconds: float
    legality: Optional[LegalityReport] = None
    crashed: bool = False
    error: str = ""

    @property
    def total_seconds(self) -> float:
        return self.global_seconds + self.legal_seconds

    @property
    def violations(self) -> int:
        if self.legality is None:
            return 0
        return self.legality.movebound_violations

    @property
    def global_fraction(self) -> float:
        total = self.total_seconds
        return self.global_seconds / total if total > 0 else 0.0
