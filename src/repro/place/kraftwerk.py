"""A Kraftwerk2-style baseline placer (Table VII comparison).

Kraftwerk2 [Spindler et al., TCAD 2008] iterates quadratic solves with
the Bound2Bound net model and a *move force* derived from a
demand-and-supply (Poisson) potential of the current density: cells are
pulled along the negative gradient of the potential, implemented as
target points held by pseudo-nets whose strength grows over the run.

The Poisson equation is solved spectrally (DCT, Neumann boundary) on
the bin grid — the same mathematical device as the original's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy.fft import dctn, idctn

from repro.legalize import (
    check_legality,
    legalize_with_movebounds,
)
from repro.metrics.density import DensityMap, default_bin_count
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist
from repro.obs import incr, span
from repro.place.base import PlacerResult
from repro.qp import QPOptions, solve_qp


@dataclass
class KraftwerkOptions:
    """Tuning knobs of the Kraftwerk2-style baseline."""

    max_iterations: int = 30
    overflow_stop: float = 0.08
    bins: Optional[int] = None
    step: float = 0.9  # scale of the gradient move
    anchor_base: float = 0.015
    anchor_growth: float = 1.2
    qp: QPOptions = field(default_factory=lambda: QPOptions(net_model="b2b"))
    density_target: float = 0.97
    legalize: bool = True
    detailed_passes: int = 1


def solve_poisson_neumann(rhs: np.ndarray) -> np.ndarray:
    """Solve  -laplace(phi) = rhs  with Neumann boundary via DCT-II.

    The rhs is mean-shifted (compatibility condition); the result's
    mean is arbitrary and set to zero.
    """
    n, m = rhs.shape
    f = rhs - rhs.mean()
    fh = dctn(f, type=2, norm="ortho")
    i = np.arange(n)[:, None]
    j = np.arange(m)[None, :]
    denom = (
        (2 * np.cos(np.pi * i / n) - 2)
        + (2 * np.cos(np.pi * j / m) - 2)
    )
    denom[0, 0] = 1.0
    ph = fh / (-denom)
    ph[0, 0] = 0.0
    return idctn(ph, type=2, norm="ortho")


class KraftwerkPlacer:
    """Quadratic placement with Poisson demand-supply move forces."""

    name = "Kraftwerk2-like"

    def __init__(self, options: Optional[KraftwerkOptions] = None) -> None:
        self.options = options or KraftwerkOptions()
        self.iterations_run = 0

    def place(
        self,
        netlist: Netlist,
        bounds: Optional[MoveBoundSet] = None,
    ) -> PlacerResult:
        opts = self.options
        if bounds is None:
            bounds = MoveBoundSet(netlist.die)
        bounds.normalize()

        with span("place.global") as sp_global:
            with span("place.qp"):
                solve_qp(netlist, QPOptions(net_model="hybrid"))
            nb = opts.bins or default_bin_count(netlist)
            dmap = DensityMap(netlist, nb, nb)
            die = netlist.die
            movable = np.array(
                [c.index for c in netlist.cells if not c.fixed],
                dtype=np.int64,
            )

            anchor_weight = opts.anchor_base
            self.iterations_run = 0
            for _it in range(opts.max_iterations):
                dmap.update()
                overflow = dmap.overflow_ratio(opts.density_target)
                if overflow < opts.overflow_stop:
                    break
                self.iterations_run += 1
                incr("kraftwerk.iterations")

                # demand minus supply, normalized per bin area
                bin_area = dmap.bin_w * dmap.bin_h
                demand = (
                    dmap.usage - opts.density_target * dmap.capacity
                ) / bin_area
                phi = solve_poisson_neumann(demand)
                # usage arrays are (i=x, j=y)-indexed, so axis 0 is x
                gx, gy = np.gradient(phi, dmap.bin_w, dmap.bin_h)

                ix = np.clip(
                    ((netlist.x[movable] - die.x_lo) / dmap.bin_w).astype(
                        int
                    ),
                    0,
                    nb - 1,
                )
                iy = np.clip(
                    ((netlist.y[movable] - die.y_lo) / dmap.bin_h).astype(
                        int
                    ),
                    0,
                    nb - 1,
                )
                tx = netlist.x[movable] - opts.step * gx[ix, iy]
                ty = netlist.y[movable] - opts.step * gy[ix, iy]

                anchors_x = [
                    (int(i), float(t), anchor_weight)
                    for i, t in zip(movable, tx)
                ]
                anchors_y = [
                    (int(i), float(t), anchor_weight)
                    for i, t in zip(movable, ty)
                ]
                with span("place.qp"):
                    solve_qp(
                        netlist,
                        opts.qp,
                        anchors_x=anchors_x,
                        anchors_y=anchors_y,
                    )
                anchor_weight *= opts.anchor_growth
        global_seconds = sp_global.wall_s

        legal_seconds = 0.0
        if opts.legalize:
            with span("place.legalize") as sp_legal:
                legalize_with_movebounds(netlist, bounds)
                if opts.detailed_passes > 0:
                    from repro.legalize.detailed import detailed_place

                    detailed_place(
                        netlist, bounds, passes=opts.detailed_passes,
                        density_target=opts.density_target,
                    )
            legal_seconds = sp_legal.wall_s

        legality = check_legality(netlist, bounds)
        return PlacerResult(
            placer=self.name,
            instance=netlist.name,
            hpwl=netlist.hpwl(),
            global_seconds=global_seconds,
            legal_seconds=legal_seconds,
            legality=legality,
        )
