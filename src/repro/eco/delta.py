"""The ECO delta model: what an incremental re-place may change.

A :class:`PlacementDelta` is the unit of change the transactional
engine (:mod:`repro.eco.engine`) accepts: new movebound rectangles
with cell assignments (the service's ``movebound_patch`` format maps
onto this 1:1), explicit cell re-assignments to existing bounds,
un-assignments back to the default bound, net re-weighting (the
timing-driven ECO case: the netlist objective changes, the geometry
does not), and a density-target change.

Deltas are *canonically encoded*: :meth:`PlacementDelta.digest` is the
config hash of the sorted JSON form, and identifies the delta in the
journal — a crashed-and-retried transaction recognizes its own
committed entry by ``(digest, base placement hash)`` and replays it
instead of re-solving.

Validation is two-staged and side-effect free (shadow state only):

1. :func:`validate_structure` — every name/rect/cell/weight checked
   against the *current* instance; refusal raises
   :class:`~repro.resilience.errors.DeltaValidationError` (exit 2).
2. the engine's condition (1) feasibility witness on the patched
   bounds (Theorem 2), also surfaced as ``DeltaValidationError``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.geometry import Rect, RectSet
from repro.movebounds import (
    DEFAULT_BOUND,
    EXCLUSIVE,
    INCLUSIVE,
    MoveBound,
    MoveBoundSet,
)
from repro.netlist import Netlist
from repro.resilience.errors import DeltaValidationError
from repro.runstate import config_hash

__all__ = [
    "MoveboundDelta",
    "PlacementDelta",
    "StagedChanges",
    "validate_structure",
    "build_patched_bounds",
]


@dataclass
class MoveboundDelta:
    """One new movebound: rectangles, kind, and the cells moved in."""

    name: str
    rects: List[Tuple[float, float, float, float]]
    exclusive: bool = False
    cells: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "rects": [list(map(float, r)) for r in self.rects],
            "exclusive": bool(self.exclusive),
            "cells": list(self.cells),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "MoveboundDelta":
        return cls(
            name=str(d["name"]),
            rects=[tuple(map(float, r)) for r in d.get("rects", [])],
            exclusive=bool(d.get("exclusive", False)),
            cells=[str(c) for c in d.get("cells", [])],
        )


@dataclass
class PlacementDelta:
    """A netlist/movebound/density delta, canonically encodable."""

    movebounds: List[MoveboundDelta] = field(default_factory=list)
    #: cell name -> existing movebound name
    assign: Dict[str, str] = field(default_factory=dict)
    #: cell names released back to the default bound
    unassign: List[str] = field(default_factory=list)
    #: net name -> new positive weight (timing-driven re-weighting)
    net_weights: Dict[str, float] = field(default_factory=dict)
    density_target: Optional[float] = None

    # -- encoding -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "movebounds": [m.to_dict() for m in self.movebounds],
            "assign": dict(self.assign),
            "unassign": list(self.unassign),
            "net_weights": {k: float(v) for k, v in self.net_weights.items()},
            "density_target": self.density_target,
        }

    @classmethod
    def from_dict(cls, d: Any) -> "PlacementDelta":
        """Decode a delta; a bare list is the service's
        ``movebound_patch`` format (each entry one new bound)."""
        if isinstance(d, list):
            return cls.from_movebound_patch(d)
        if not isinstance(d, dict):
            raise DeltaValidationError(
                f"delta must be a JSON object or a movebound-patch "
                f"list, got {type(d).__name__}",
                stage="eco.validate",
            )
        dens = d.get("density_target")
        return cls(
            movebounds=[
                MoveboundDelta.from_dict(m) for m in d.get("movebounds", [])
            ],
            assign={
                str(k): str(v) for k, v in (d.get("assign") or {}).items()
            },
            unassign=[str(c) for c in d.get("unassign", [])],
            net_weights={
                str(k): float(v)
                for k, v in (d.get("net_weights") or {}).items()
            },
            density_target=None if dens is None else float(dens),
        )

    @classmethod
    def from_movebound_patch(cls, patch: List[Dict]) -> "PlacementDelta":
        """The service ``replace`` wire format, unchanged from PR 7."""
        return cls(
            movebounds=[
                MoveboundDelta(
                    name=str(e["name"]),
                    rects=[tuple(map(float, r)) for r in e.get("rects", [])],
                    exclusive=bool(e.get("exclusive", False)),
                    cells=[str(c) for c in e.get("cells", [])],
                )
                for e in patch
            ]
        )

    def digest(self) -> str:
        """Canonical identity of the delta (config-hash form)."""
        return config_hash(self.to_dict())

    @property
    def is_noop(self) -> bool:
        return (
            not self.movebounds
            and not self.assign
            and not self.unassign
            and not self.net_weights
            and self.density_target is None
        )

    def touched_cells(self, netlist: Netlist) -> List[int]:
        """Indices of every cell the delta re-assigns (validated
        names only — call after :func:`validate_structure`)."""
        names: List[str] = []
        for m in self.movebounds:
            names.extend(m.cells)
        names.extend(self.assign)
        names.extend(self.unassign)
        return [netlist.cell_index(n) for n in names]


@dataclass
class StagedChanges:
    """Everything needed to roll the in-memory instance back."""

    #: cell index -> previous ``movebound`` attribute
    prev_movebounds: Dict[int, Optional[str]] = field(default_factory=dict)
    #: net index -> previous weight
    prev_weights: Dict[int, float] = field(default_factory=dict)
    prev_density: Optional[float] = None


def _fail(message: str, delta: PlacementDelta, **context: Any) -> None:
    raise DeltaValidationError(
        message,
        delta_digest=delta.digest(),
        stage="eco.validate",
        context=context or None,
    )


def validate_structure(
    netlist: Netlist, bounds: MoveBoundSet, delta: PlacementDelta
) -> None:
    """Structural validation against the current instance; raises
    :class:`DeltaValidationError` on the first refusal.  Reads only —
    the caller's netlist and bounds are never touched."""
    die = netlist.die
    seen_new: set = set()
    for m in delta.movebounds:
        if not m.name or m.name == DEFAULT_BOUND:
            _fail(f"invalid movebound name {m.name!r}", delta)
        if m.name in seen_new:
            _fail(f"movebound {m.name!r} appears twice in the delta", delta)
        if m.name in bounds:
            _fail(
                f"movebound {m.name!r} already exists; re-defining an "
                f"existing bound is not an incremental operation",
                delta,
            )
        seen_new.add(m.name)
        if not m.rects:
            _fail(f"movebound {m.name!r} has no rectangles", delta)
        for r in m.rects:
            if len(r) != 4 or not all(math.isfinite(v) for v in r):
                _fail(
                    f"movebound {m.name!r} rectangle {r!r} is not 4 "
                    f"finite coordinates",
                    delta,
                )
            x_lo, y_lo, x_hi, y_hi = r
            if x_lo >= x_hi or y_lo >= y_hi:
                _fail(
                    f"movebound {m.name!r} rectangle {r!r} has "
                    f"non-positive extent",
                    delta,
                )
            if not die.contains_rect(Rect(*r)):
                _fail(
                    f"movebound {m.name!r} rectangle {r!r} leaves the "
                    f"die {die}",
                    delta,
                )

    assigned: Dict[str, str] = {}

    def _check_cell(name: str, target: str) -> None:
        try:
            idx = netlist.cell_index(name)
        except KeyError:
            _fail(f"unknown cell {name!r}", delta)
        if netlist.cells[idx].fixed:
            _fail(f"cell {name!r} is fixed; a delta cannot move it", delta)
        if name in assigned:
            _fail(
                f"cell {name!r} is re-assigned twice "
                f"({assigned[name]!r} and {target!r})",
                delta,
            )
        assigned[name] = target

    for m in delta.movebounds:
        for c in m.cells:
            _check_cell(c, m.name)
    for c, target in delta.assign.items():
        if target not in bounds and target not in seen_new:
            _fail(
                f"cell {c!r} assigned to unknown movebound {target!r}",
                delta,
            )
        _check_cell(c, target)
    for c in delta.unassign:
        _check_cell(c, DEFAULT_BOUND)

    if delta.net_weights:
        by_name = {n.name: n for n in netlist.nets}
        for net_name, w in delta.net_weights.items():
            if net_name not in by_name:
                _fail(f"unknown net {net_name!r}", delta)
            if not math.isfinite(w) or w <= 0:
                _fail(
                    f"net {net_name!r} weight {w!r} must be a finite "
                    f"positive number",
                    delta,
                )

    if delta.density_target is not None:
        d = delta.density_target
        if not math.isfinite(d) or not (0.0 < d <= 1.5):
            _fail(
                f"density target {d!r} outside (0, 1.5]",
                delta,
            )


def build_patched_bounds(
    bounds: MoveBoundSet, delta: PlacementDelta, die
) -> MoveBoundSet:
    """A *fresh* MoveBoundSet with the delta's bounds added — shadow
    state; the caller's set is untouched.  Normalization failures
    (exclusive overlap, swallowed inclusive bound) are refusals."""
    patched = MoveBoundSet(
        die,
        [
            MoveBound(b.name, RectSet(b.area.rects), b.kind)
            for b in bounds
        ],
    )
    try:
        for m in delta.movebounds:
            patched.add_rects(
                m.name,
                [Rect(*r) for r in m.rects],
                kind=EXCLUSIVE if m.exclusive else INCLUSIVE,
            )
        patched.normalize()
    except (ValueError, DeltaValidationError) as exc:
        raise DeltaValidationError(
            f"patched movebounds do not normalize: {exc}",
            delta_digest=delta.digest(),
            stage="eco.validate",
        ) from exc
    return patched
