"""The transactional ECO re-place engine.

:class:`EcoEngine` applies a :class:`~repro.eco.delta.PlacementDelta`
to a placed instance with ACID discipline:

* **Atomic** — the only durable commit point is the checksummed journal
  entry (:mod:`repro.eco.journal`); a SIGKILL at any instant recovers
  to the pre- or post-delta placement bit-identically, never a torn
  hybrid.
* **Consistent** — the delta is validated *before* anything mutates
  (structural checks, then the Theorem-2 condition (1) feasibility
  witness on the patched bounds), and the incremental result is
  re-verified after the solve (movebound containment via the obs
  invariant registry, legality audit, bounded HPWL drift).  A result
  that fails verification is rolled back and re-solved from scratch.
* **Isolated** — mutations are staged against shadow state (a fresh
  patched :class:`MoveBoundSet`, recorded previous cell/net
  attributes); a refusal or crash before commit leaves the caller's
  instance untouched.
* **Durable** — both journal writes go through the runstate
  ``atomic_write`` (write → flush → fsync → rename → fsync(dir)).

Degradation ladder (``eco.fallbacks`` counts every rung taken):

1. incremental refine — one finest-level FBP pass from the current
   placement (:meth:`BonnPlaceFBP.incremental_refine`);
2. on solver failure, budget exhaustion, or verification failure:
   restore pre-delta positions and run the **full** solve on the
   patched instance (the resilient ns → ssp → heur solver chain of the
   full pipeline stays intact underneath);
3. on full-solve failure: roll the delta back entirely and re-raise —
   the caller still holds the consistent pre-delta placement.

Fault sites (:mod:`repro.resilience.faultinject`): ``eco.validate``,
``eco.apply``, ``eco.commit``, ``eco.rollback``; ``corrupt`` rules at
``eco.commit`` flip journal-entry bytes after checksumming so the next
reader must quarantine.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.eco.delta import (
    PlacementDelta,
    StagedChanges,
    build_patched_bounds,
    validate_structure,
)
from repro.eco.journal import DeltaJournal, JournalEntry, placement_sha
from repro.feasibility import check_feasibility
from repro.flows.warmstart import drop_block_slots
from repro.geometry import drop_scope
from repro.movebounds import DEFAULT_BOUND, MoveBoundSet, decompose_regions
from repro.netlist import Netlist, PlacementSnapshot
from repro.obs import incr, span
from repro.obs.invariants import InvariantViolation, checking, run_check
from repro.place.base import PlacerResult
from repro.place.bonnplace import BonnPlaceFBP
from repro.resilience.errors import (
    DeltaValidationError,
    InfeasibleInputError,
    PipelineStageError,
    ReproError,
)
from repro.resilience.faultinject import corruption, inject

__all__ = ["EcoOptions", "EcoResult", "EcoEngine"]


@dataclass
class EcoOptions:
    """Knobs of the transactional apply."""

    #: verification gate: hpwl_post must stay within this factor of
    #: hpwl_pre (a delta can legitimately raise HPWL — it adds
    #: constraints — but an unbounded jump means the incremental solve
    #: went off the rails and the full solve should decide instead)
    max_hpwl_drift: float = 4.0
    #: drift denominators below this use the floor (degenerate
    #: zero-wirelength instances)
    hpwl_floor: float = 1e-9
    #: force-enable the obs invariant registry (flow conservation,
    #: region capacity, containment) *during* the incremental solve —
    #: the ``--eco-verify`` CLI flag; the post-solve verification runs
    #: regardless
    verify_solve: bool = False
    #: degrade to the full multilevel solve instead of failing
    allow_fallback: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_hpwl_drift": self.max_hpwl_drift,
            "verify_solve": self.verify_solve,
            "allow_fallback": self.allow_fallback,
        }


@dataclass
class EcoResult:
    """Outcome of one committed delta transaction."""

    #: "eco" (incremental solve), "fallback" (full re-solve),
    #: "noop" (empty delta, placement byte-identical), or
    #: "replayed" (crashed-and-retried transaction restored from its
    #: own committed journal entry)
    mode: str
    delta_digest: str
    txn_seq: int
    hpwl_pre: float
    hpwl_post: float
    base_sha: str
    post_sha: str
    frontier_windows: int = 0
    slots_dropped: int = 0
    fallback_reason: str = ""
    eco_seconds: float = 0.0
    placement: Optional[PlacerResult] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "delta_digest": self.delta_digest,
            "txn_seq": self.txn_seq,
            "hpwl_pre": self.hpwl_pre,
            "hpwl_post": self.hpwl_post,
            "base_sha": self.base_sha,
            "post_sha": self.post_sha,
            "frontier_windows": self.frontier_windows,
            "slots_dropped": self.slots_dropped,
            "fallback_reason": self.fallback_reason,
            "eco_seconds": self.eco_seconds,
        }


@dataclass
class _Frontier:
    """Invalidation frontier: the finest-grid windows a delta touches
    and the reflow blocks / geometry scope derived from them."""

    windows: Set[Tuple[int, int]] = field(default_factory=set)
    blocks: Set[Tuple[int, int]] = field(default_factory=set)
    global_slots: bool = False


class EcoEngine:
    """Transactional incremental re-place on one in-memory instance.

    The engine owns the instance's movebound set for the duration of
    its lifetime — read ``engine.bounds`` after :meth:`apply`, since a
    committed delta swaps in the patched set.  ``run_dir=None`` runs
    fully in memory (no journal: still validated, verified and rolled
    back, but not crash-durable and not replayable).
    """

    def __init__(
        self,
        netlist: Netlist,
        bounds: Optional[MoveBoundSet] = None,
        placer: Optional[BonnPlaceFBP] = None,
        run_dir: Optional[str] = None,
        options: Optional[EcoOptions] = None,
    ) -> None:
        self.netlist = netlist
        self.bounds = (
            bounds if bounds is not None else MoveBoundSet(netlist.die)
        )
        self.bounds.normalize()
        self.placer = placer or BonnPlaceFBP()
        self.options = options or EcoOptions()
        self.journal = DeltaJournal(run_dir) if run_dir else None
        self._mem_seq = 0

    # -- recovery -------------------------------------------------------
    def recover(self) -> Optional[JournalEntry]:
        """Restore the newest committed transaction after a restart.

        Replays the *structural* mutations (bounds, assignments, net
        weights, density) of every committed delta in journal order —
        they are not part of the placement snapshot — then restores the
        final snapshot's positions bit-exactly.  Corrupt entries are
        quarantined by the journal as they are met; with none surviving
        the instance stays at its pre-delta state and None is returned.
        """
        if self.journal is None:
            return None
        newest = self.journal.latest()
        if newest is None:
            return None
        entry, snap = newest
        if len(snap.x) != self.netlist.num_cells:
            raise PipelineStageError(
                "ECO journal snapshot does not match the instance "
                f"({len(snap.x)} cells vs {self.netlist.num_cells})",
                stage="eco.recover",
            )
        for past in self.journal.entries():
            if past.seq > entry.seq:
                break
            delta = PlacementDelta.from_dict(past.delta)
            self._apply_structural(delta)
        self.netlist.restore(snap)
        incr("eco.recovered")
        return entry

    # -- the transaction ------------------------------------------------
    def apply(
        self, delta: Union[PlacementDelta, Dict, List]
    ) -> EcoResult:
        """Validate, stage, solve, verify, and commit one delta."""
        if not isinstance(delta, PlacementDelta):
            delta = PlacementDelta.from_dict(delta)
        netlist, opts = self.netlist, self.options
        incr("eco.transactions")
        with span("eco.apply") as sp:
            result = self._apply_impl(delta)
        result.eco_seconds = sp.wall_s
        return result

    def _apply_impl(self, delta: PlacementDelta) -> EcoResult:
        netlist, opts = self.netlist, self.options

        # ---- validate (nothing has mutated yet) -----------------------
        inject("eco.validate")
        validate_structure(netlist, self.bounds, delta)
        digest = delta.digest()
        base_sha = placement_sha(netlist)
        hpwl_pre = netlist.hpwl()
        pre = netlist.snapshot()

        # ---- idempotent replay of a crashed-and-retried commit --------
        if self.journal is not None:
            hit = self.journal.find_replay(digest, base_sha)
            if hit is not None:
                entry, snap = hit
                self._apply_structural(delta)
                netlist.restore(snap)
                incr("eco.replays")
                return EcoResult(
                    mode="replayed",
                    delta_digest=digest,
                    txn_seq=entry.seq,
                    hpwl_pre=entry.hpwl_pre,
                    hpwl_post=entry.hpwl_post,
                    base_sha=base_sha,
                    post_sha=entry.post_sha,
                    frontier_windows=entry.frontier_windows,
                )

        # ---- stage against shadow state -------------------------------
        scope_pre = self.placer._geometry_scope(netlist, self.bounds)
        staged, old_bounds = self._apply_structural(delta)

        # ---- condition (1) feasibility witness on the patched state ---
        try:
            decomposition = decompose_regions(
                netlist.die, self.bounds, netlist.blockages
            )
            with span("eco.feasibility"):
                report = check_feasibility(
                    netlist,
                    self.bounds,
                    decomposition,
                    self.placer.options.density_target,
                )
        except ReproError:
            self._rollback(staged, old_bounds, pre)
            raise
        if not report.feasible:
            self._rollback(staged, old_bounds, pre)
            incr("eco.validation_failures")
            raise DeltaValidationError(
                "delta makes the instance infeasible: movebounds "
                f"{sorted(report.witness or ())} overflow by "
                f"{report.deficit:.1f} area units (condition (1))",
                witness=report.witness,
                deficit=report.deficit,
                delta_digest=digest,
                stage="eco.validate",
            )

        # ---- no-op: commit a byte-identical transaction ---------------
        if delta.is_noop:
            return self._commit(
                delta, digest, base_sha, pre, hpwl_pre, hpwl_pre,
                mode="noop", frontier=_Frontier(),
                staged=staged, old_bounds=old_bounds,
            )

        # ---- invalidation frontier ------------------------------------
        frontier = self._frontier(delta)
        dropped = drop_block_slots(
            self.placer._reflow_slots,
            None if frontier.global_slots else frontier.blocks,
        )
        scope_post = self.placer._geometry_scope(netlist, self.bounds)
        if scope_post != scope_pre:
            drop_scope(scope_pre)
        incr("eco.frontier_windows", len(frontier.windows))

        # ---- incremental solve + verification -------------------------
        mode, reason, placement = "eco", "", None
        try:
            inject("eco.apply")
            # geometry deltas solve scoped to the frontier; net
            # re-weighting and density changes have global effect, so
            # they take the full finest-level refine instead
            scoped = (
                frontier.windows
                if not frontier.global_slots
                and delta.density_target is None
                else None
            )
            with ExitStack() as stack:
                if opts.verify_solve:
                    stack.enter_context(checking(True))
                placement = self.placer.incremental_refine(
                    netlist,
                    self.bounds,
                    frontier=scoped,
                    touched_cells=delta.touched_cells(netlist),
                )
            reason = self._verify(placement, hpwl_pre)
        except (DeltaValidationError, InfeasibleInputError):
            # the Theorem-2 check passed, so this is an engine-level
            # refusal (e.g. an injected infeasible fault): abort
            self._rollback(staged, old_bounds, pre)
            raise
        except InvariantViolation as exc:
            reason = f"invariant violated during incremental solve: {exc}"
        except ReproError as exc:
            reason = (
                f"incremental solve failed: {type(exc).__name__}: {exc}"
            )

        # ---- graceful degradation to the full solve -------------------
        if reason:
            incr("eco.fallbacks")
            if not opts.allow_fallback:
                self._rollback(staged, old_bounds, pre)
                raise PipelineStageError(
                    f"incremental re-place rejected and fallback "
                    f"disabled: {reason}",
                    stage="eco.apply",
                    context={"delta_digest": digest},
                )
            mode = "fallback"
            netlist.restore(pre)
            try:
                with span("eco.fallback"):
                    placement = self.placer.place(netlist, self.bounds)
            except ReproError:
                # rung 3: even the full solve refused — undo the delta
                # entirely; the caller keeps the pre-delta placement
                self._rollback(staged, old_bounds, pre)
                raise

        return self._commit(
            delta, digest, base_sha, pre, hpwl_pre, netlist.hpwl(),
            mode=mode, frontier=frontier, staged=staged,
            old_bounds=old_bounds, placement=placement,
            slots_dropped=dropped, fallback_reason=reason,
        )

    # -- internals ------------------------------------------------------
    def _apply_structural(
        self, delta: PlacementDelta
    ) -> Tuple[StagedChanges, MoveBoundSet]:
        """Swap in the patched bounds and mutate cell/net/density
        attributes, recording everything needed to roll back."""
        netlist = self.netlist
        old_bounds = self.bounds
        staged = StagedChanges()
        patched = build_patched_bounds(old_bounds, delta, netlist.die)

        def _move(name: str, target: Optional[str]) -> None:
            idx = netlist.cell_index(name)
            cell = netlist.cells[idx]
            staged.prev_movebounds.setdefault(idx, cell.movebound)
            cell.movebound = target

        for m in delta.movebounds:
            for c in m.cells:
                _move(c, m.name)
        for c, target in delta.assign.items():
            _move(c, None if target == DEFAULT_BOUND else target)
        for c in delta.unassign:
            _move(c, None)
        if delta.net_weights:
            by_name = {n.name: i for i, n in enumerate(netlist.nets)}
            for net_name, w in delta.net_weights.items():
                i = by_name[net_name]
                staged.prev_weights.setdefault(i, netlist.nets[i].weight)
                netlist.nets[i].weight = float(w)
            # the flat pin-array cache bakes weights in
            netlist._hpwl_cache = None
        if delta.density_target is not None:
            staged.prev_density = self.placer.options.density_target
            self.placer.options.density_target = delta.density_target
        self.bounds = patched
        return staged, old_bounds

    def _rollback(
        self,
        staged: StagedChanges,
        old_bounds: MoveBoundSet,
        pre: PlacementSnapshot,
    ) -> None:
        """Undo every staged mutation; the instance is exactly as it
        was before :meth:`apply`.  The journal is never touched here —
        a crash mid-rollback still recovers to the pre-delta state."""
        try:
            inject("eco.rollback")
        except ReproError:
            # a fault *inside* rollback must not leave the instance
            # torn — note it and keep restoring
            incr("eco.rollback_faults")
        netlist = self.netlist
        self.bounds = old_bounds
        for idx, prev in staged.prev_movebounds.items():
            netlist.cells[idx].movebound = prev
        if staged.prev_weights:
            for i, w in staged.prev_weights.items():
                netlist.nets[i].weight = w
            netlist._hpwl_cache = None
        if staged.prev_density is not None:
            self.placer.options.density_target = staged.prev_density
        netlist.restore(pre)
        incr("eco.rollbacks")

    def _frontier(self, delta: PlacementDelta) -> _Frontier:
        """Finest-grid windows the delta touches: windows intersecting
        any new movebound rectangle plus the windows currently holding
        re-assigned cells.  Reflow warm slots covering a touched window
        are invalidated (their 2x2 block origin); a net re-weighting
        invalidates *all* slots — the local-QP memo digests positions,
        not weights, so a stale hit would no longer be bit-identical to
        a cold solve."""
        netlist = self.netlist
        die = netlist.die
        n = 2 ** self.placer.num_levels(netlist)
        wx = (die.x_hi - die.x_lo) / n
        wy = (die.y_hi - die.y_lo) / n

        def _ix(v: float, lo: float, w: float) -> int:
            return min(n - 1, max(0, int((v - lo) / w)))

        fr = _Frontier(global_slots=bool(delta.net_weights))
        for m in delta.movebounds:
            for (x_lo, y_lo, x_hi, y_hi) in m.rects:
                for ix in range(
                    _ix(x_lo, die.x_lo, wx), _ix(x_hi, die.x_lo, wx) + 1
                ):
                    for iy in range(
                        _ix(y_lo, die.y_lo, wy),
                        _ix(y_hi, die.y_lo, wy) + 1,
                    ):
                        fr.windows.add((ix, iy))
        for idx in delta.touched_cells(netlist):
            x, y = float(netlist.x[idx]), float(netlist.y[idx])
            fr.windows.add((_ix(x, die.x_lo, wx), _ix(y, die.y_lo, wy)))
            # a re-assigned cell is projected into its (possibly
            # pre-existing) target bound before the scoped solve; its
            # destination window is part of the frontier too
            target = netlist.cells[idx].movebound
            if target:
                best = None
                for r in self.bounds.get(target).area:
                    px = min(max(x, r.x_lo), r.x_hi)
                    py = min(max(y, r.y_lo), r.y_hi)
                    d = abs(px - x) + abs(py - y)
                    if best is None or d < best[0]:
                        best = (d, px, py)
                if best is not None:
                    fr.windows.add(
                        (
                            _ix(best[1], die.x_lo, wx),
                            _ix(best[2], die.y_lo, wy),
                        )
                    )
        # reflow blocks are 2x2 windows anchored at even origins
        fr.blocks = {(ix - ix % 2, iy - iy % 2) for ix, iy in fr.windows}
        return fr

    def _verify(
        self, placement: Optional[PlacerResult], hpwl_pre: float
    ) -> str:
        """Post-solve verification; a non-empty string is the refusal
        reason (the caller degrades to the full solve)."""
        opts = self.options
        netlist = self.netlist
        try:
            run_check("movebound.containment", netlist, self.bounds)
        except InvariantViolation as exc:
            incr("eco.verify_failures")
            return f"containment check failed: {exc}"
        if (
            placement is not None
            and placement.legality is not None
            and not placement.legality.is_legal
        ):
            incr("eco.verify_failures")
            return "legality audit failed after incremental refine"
        floor = max(abs(hpwl_pre), opts.hpwl_floor)
        hpwl_post = netlist.hpwl()
        if hpwl_post > floor * opts.max_hpwl_drift:
            incr("eco.verify_failures")
            return (
                f"HPWL drift {hpwl_post / floor:.2f}x exceeds the "
                f"{opts.max_hpwl_drift:.2f}x gate"
            )
        return ""

    def _commit(
        self,
        delta: PlacementDelta,
        digest: str,
        base_sha: str,
        pre: PlacementSnapshot,
        hpwl_pre: float,
        hpwl_post: float,
        mode: str,
        frontier: _Frontier,
        staged: StagedChanges,
        old_bounds: MoveBoundSet,
        placement: Optional[PlacerResult] = None,
        slots_dropped: int = 0,
        fallback_reason: str = "",
    ) -> EcoResult:
        netlist = self.netlist
        if mode == "noop":
            # byte-identical by construction: restore the snapshot so
            # even float round-trips cannot perturb the payload
            netlist.restore(pre)
        post_sha = placement_sha(netlist)
        if self.journal is not None:
            seq = self.journal.next_seq()
        else:
            self._mem_seq += 1
            seq = self._mem_seq
        entry = JournalEntry(
            seq=seq,
            delta_digest=digest,
            delta=delta.to_dict(),
            base_sha=base_sha,
            post_sha=post_sha,
            snapshot_file="",
            snapshot_sha="",
            mode=mode,
            hpwl_pre=hpwl_pre,
            hpwl_post=hpwl_post,
            frontier_windows=len(frontier.windows),
            context={"fallback_reason": fallback_reason}
            if fallback_reason
            else {},
        )
        if self.journal is not None:
            try:
                inject("eco.commit")
                self.journal.commit(
                    entry,
                    netlist.snapshot(),
                    corrupt=corruption("eco.commit"),
                )
            except ReproError:
                # commit refused: the transaction aborts as a unit
                self._rollback(staged, old_bounds, pre)
                incr("eco.commit_failures")
                raise
        incr("eco.commits")
        incr(f"eco.commits.{mode}")
        return EcoResult(
            mode=mode,
            delta_digest=digest,
            txn_seq=seq,
            hpwl_pre=hpwl_pre,
            hpwl_post=hpwl_post,
            base_sha=base_sha,
            post_sha=post_sha,
            frontier_windows=len(frontier.windows),
            slots_dropped=slots_dropped,
            fallback_reason=fallback_reason,
            placement=placement,
        )
