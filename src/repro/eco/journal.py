"""The atomic checksummed delta journal of the ECO engine.

One journal lives inside a ``runstate`` run directory and records the
committed transactions of the incremental re-place engine::

    <run_dir>/
        eco/
            txn_000001.ckpt    # post-delta placement (snapshot codec)
            txn_000001.json    # checksummed journal entry (commit point)
            txn_000002.ckpt
            txn_000002.json
            quarantine/        # corrupt files moved aside, never read

Commit protocol (two atomic writes, strictly ordered):

1. the post-delta placement snapshot (``.ckpt``, the PR-3 snapshot
   codec: embedded SHA-256, magic, exact float64 round-trip);
2. the journal entry (``.json``) that *references* the snapshot by
   file name and hash — this write is the commit point.

A SIGKILL between the two leaves an unreferenced snapshot (harmless:
recovery ignores it), so at every instant the journal describes either
the pre-delta or the post-delta placement, never a torn hybrid.  Both
writes go through :func:`repro.runstate.store.atomic_write`
(write → flush → fsync → rename → fsync(dir)).

Every entry carries the delta's canonical digest and the SHA-256 of
the *pre*-delta placement: a crashed-and-retried transaction finds its
own committed entry by ``(delta_digest, base_sha)`` and replays the
stored placement bit-identically instead of re-solving.

Corruption (a ``corrupt`` rule at ``eco.commit``, media faults) is
detected on read: the offending entry and its snapshot are moved into
``quarantine/`` and recovery falls back to the next older committed
transaction — or the pre-delta base when none survive.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.netlist import Netlist, PlacementSnapshot
from repro.obs import incr
from repro.resilience.faultinject import inject
from repro.runstate.store import (
    CorruptRunStateError,
    atomic_write,
    decode_snapshot,
    encode_snapshot,
)

__all__ = ["JOURNAL_DIR", "JournalEntry", "DeltaJournal", "placement_sha"]

JOURNAL_DIR = "eco"
_FLOAT = "<f8"


def placement_sha(netlist: Netlist) -> str:
    """Bit-exact identity of the current placement: SHA-256 of the
    little-endian float64 x||y payload (the snapshot codec's payload,
    so it matches what the journal stores)."""
    x = np.ascontiguousarray(netlist.x, dtype=np.float64)
    y = np.ascontiguousarray(netlist.y, dtype=np.float64)
    payload = (
        x.astype(_FLOAT, copy=False).tobytes()
        + y.astype(_FLOAT, copy=False).tobytes()
    )
    return hashlib.sha256(payload).hexdigest()


@dataclass
class JournalEntry:
    """One committed delta transaction."""

    seq: int
    delta_digest: str
    delta: Dict[str, Any]
    base_sha: str  # pre-delta placement payload hash
    post_sha: str  # post-delta placement payload hash
    snapshot_file: str
    snapshot_sha: str  # hash of the snapshot *file* bytes
    mode: str  # "eco" | "fallback" | "noop"
    hpwl_pre: float = 0.0
    hpwl_post: float = 0.0
    frontier_windows: int = 0
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "delta_digest": self.delta_digest,
            "delta": self.delta,
            "base_sha": self.base_sha,
            "post_sha": self.post_sha,
            "snapshot_file": self.snapshot_file,
            "snapshot_sha": self.snapshot_sha,
            "mode": self.mode,
            "hpwl_pre": self.hpwl_pre,
            "hpwl_post": self.hpwl_post,
            "frontier_windows": self.frontier_windows,
            "context": self.context,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JournalEntry":
        return cls(
            seq=int(d["seq"]),
            delta_digest=str(d["delta_digest"]),
            delta=dict(d["delta"]),
            base_sha=str(d["base_sha"]),
            post_sha=str(d["post_sha"]),
            snapshot_file=str(d["snapshot_file"]),
            snapshot_sha=str(d["snapshot_sha"]),
            mode=str(d["mode"]),
            hpwl_pre=float(d.get("hpwl_pre", 0.0)),
            hpwl_post=float(d.get("hpwl_post", 0.0)),
            frontier_windows=int(d.get("frontier_windows", 0)),
            context=dict(d.get("context", {})),
        )


class DeltaJournal:
    """Durable, checksummed, crash-recoverable transaction log."""

    QUARANTINE_DIR = "quarantine"

    def __init__(self, run_dir: str) -> None:
        self.dir = os.path.join(run_dir, JOURNAL_DIR)
        os.makedirs(self.dir, exist_ok=True)

    # -- paths ----------------------------------------------------------
    def _entry_path(self, seq: int) -> str:
        return os.path.join(self.dir, f"txn_{seq:06d}.json")

    def _snapshot_path(self, seq: int) -> str:
        return os.path.join(self.dir, f"txn_{seq:06d}.ckpt")

    # -- write ----------------------------------------------------------
    def commit(
        self,
        entry: JournalEntry,
        snapshot: PlacementSnapshot,
        corrupt: bool = False,
    ) -> None:
        """Two-phase commit: snapshot file first, entry second (the
        commit point).  ``corrupt=True`` flips entry bytes *after*
        checksumming (fault injection: the reader must quarantine)."""
        snap_data = encode_snapshot(snapshot, entry.seq)
        entry.snapshot_file = os.path.basename(self._snapshot_path(entry.seq))
        entry.snapshot_sha = hashlib.sha256(snap_data).hexdigest()
        atomic_write(self._snapshot_path(entry.seq), snap_data)

        # the boundary between the two writes: a `kill` rule here
        # leaves an unreferenced snapshot and no entry — the retried
        # transaction re-solves and next_seq() skips the dirty slot
        inject("eco.commit.entry")

        body = entry.to_dict()
        canonical = json.dumps(body, sort_keys=True).encode()
        data = json.dumps(
            {"entry": body, "sha256": hashlib.sha256(canonical).hexdigest()},
            sort_keys=True,
            indent=1,
        ).encode()
        if corrupt:
            mangled = bytearray(data)
            mid = len(mangled) // 2
            for i in range(mid, min(mid + 8, len(mangled))):
                mangled[i] ^= 0xFF
            data = bytes(mangled)
        atomic_write(self._entry_path(entry.seq), data)
        incr("eco.journal_commits")

    # -- read -----------------------------------------------------------
    def next_seq(self) -> int:
        """1 + the highest transaction number any file in the journal
        dir mentions — committed, torn, or quarantine-bound alike, so
        a new transaction never reuses a dirty slot."""
        high = 0
        try:
            names = os.listdir(self.dir)
        except OSError:
            return 1
        for name in names:
            if name.startswith("txn_") and (
                name.endswith(".json") or name.endswith(".ckpt")
            ):
                try:
                    high = max(high, int(name[4:10]))
                except ValueError:
                    continue
        return high + 1

    def _read_entry(self, path: str) -> Optional[JournalEntry]:
        try:
            with open(path, "rb") as f:
                outer = json.loads(f.read())
            body = outer["entry"]
            digest = outer["sha256"]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, f"entry undecodable: {exc}")
            return None
        canonical = json.dumps(body, sort_keys=True).encode()
        if hashlib.sha256(canonical).hexdigest() != digest:
            self._quarantine(path, "entry body != embedded sha256")
            return None
        try:
            return JournalEntry.from_dict(body)
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, f"entry malformed: {exc}")
            return None

    def _load_snapshot(self, entry: JournalEntry) -> Optional[PlacementSnapshot]:
        path = os.path.join(self.dir, entry.snapshot_file)
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError as exc:
            self._quarantine(path, f"snapshot unreadable: {exc}")
            return None
        if hashlib.sha256(data).hexdigest() != entry.snapshot_sha:
            self._quarantine(path, "snapshot file hash != journal record")
            return None
        try:
            snap, _seq = decode_snapshot(data)
        except CorruptRunStateError as exc:
            self._quarantine(path, str(exc))
            return None
        return snap

    def entries(self) -> List[JournalEntry]:
        """Every committed entry that verifies, in transaction order;
        corrupt entries are quarantined as they are met."""
        out: List[JournalEntry] = []
        try:
            names = sorted(
                n
                for n in os.listdir(self.dir)
                if n.startswith("txn_") and n.endswith(".json")
            )
        except OSError:
            return out
        for name in names:
            entry = self._read_entry(os.path.join(self.dir, name))
            if entry is not None:
                out.append(entry)
        return out

    def latest(
        self,
    ) -> Optional[Tuple[JournalEntry, PlacementSnapshot]]:
        """Newest committed transaction whose entry *and* snapshot
        verify, scanning backwards past quarantined ones."""
        for entry in reversed(self.entries()):
            snap = self._load_snapshot(entry)
            if snap is not None:
                return entry, snap
            # entry verified but its snapshot did not: pull the entry
            # too, or recovery would keep trusting a headless commit
            self._quarantine(
                self._entry_path(entry.seq), "snapshot lost; entry retired"
            )
        return None

    def find_replay(
        self, delta_digest: str, base_sha: str
    ) -> Optional[Tuple[JournalEntry, PlacementSnapshot]]:
        """The committed transaction applying ``delta_digest`` on top
        of the placement ``base_sha``, if one exists — the idempotent
        replay path of a crashed-and-retried apply."""
        for entry in reversed(self.entries()):
            if entry.delta_digest == delta_digest and entry.base_sha == base_sha:
                snap = self._load_snapshot(entry)
                if snap is not None:
                    return entry, snap
        return None

    # -- hygiene --------------------------------------------------------
    def _quarantine(self, path: str, reason: str) -> None:
        qdir = os.path.join(self.dir, self.QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        dest = os.path.join(qdir, os.path.basename(path))
        try:
            os.replace(path, dest)
        except OSError:
            pass
        incr("eco.journal_quarantined")
        try:
            with open(dest + ".reason", "w") as f:
                f.write(reason + "\n")
        except OSError:
            pass
