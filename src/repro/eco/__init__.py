"""Transactional ECO (engineering change order) re-place engine.

Incremental placement deltas — new movebounds, cell re-assignments,
net re-weighting, density changes — applied with ACID discipline:
validated up front (structure + the Theorem-2 feasibility witness),
staged against shadow state, solved incrementally from the current
placement, re-verified, and committed through an atomic checksummed
delta journal.  See :mod:`repro.eco.engine` and docs/incremental.md.
"""

from repro.eco.delta import (
    MoveboundDelta,
    PlacementDelta,
    StagedChanges,
    build_patched_bounds,
    validate_structure,
)
from repro.eco.engine import EcoEngine, EcoOptions, EcoResult
from repro.eco.journal import (
    JOURNAL_DIR,
    DeltaJournal,
    JournalEntry,
    placement_sha,
)

__all__ = [
    "MoveboundDelta",
    "PlacementDelta",
    "StagedChanges",
    "validate_structure",
    "build_patched_bounds",
    "EcoEngine",
    "EcoOptions",
    "EcoResult",
    "DeltaJournal",
    "JournalEntry",
    "JOURNAL_DIR",
    "placement_sha",
]
