"""Netlist clustering.

The paper's experiments run both tools on netlists clustered with
**BestChoice** [Nam et al., TCAD 2006] (cluster ratio 5 for the
industrial set, 2 for ISPD 2006).  This package implements BestChoice
score-based pairwise clustering with lazy score updates, plus the
uncluster step that transfers cluster placements back to the flat
netlist.
"""

from repro.cluster.bestchoice import Clustering, bestchoice_cluster

__all__ = ["Clustering", "bestchoice_cluster"]
