"""BestChoice clustering (Nam/Reda/Alpert/Villarrubia/Kahng, TCAD 2006).

Score-based pairwise clustering: each movable cell keeps its best
neighbor by the BestChoice score

    score(u, v) = sum over shared nets  w_net / degree(net)
                  ----------------------------------------
                        size(u) + size(v)

(connectivity favoring small nets, normalized by the merged size).
Pairs are merged best-first off a priority queue with *lazy* updates:
a popped entry is re-scored and re-queued when stale — the technique
the BestChoice paper introduces.  Clustering stops at the requested
cluster ratio ``|C| / |clusters|``.

Constraints honored:

* fixed cells never cluster;
* cells of different movebounds never cluster (their constraint sets
  differ, so a merged cell would be over-constrained);
* cluster growth is capped (no snowballing into one giant cluster).

The resulting :class:`Clustering` builds a clustered netlist whose
placement can be transferred back to the flat netlist
(:meth:`Clustering.uncluster`), placing members at their cluster
center — the standard flow before a final flat refinement.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.netlist import Netlist, Pin


@dataclass
class Clustering:
    """Mapping between a flat netlist and its clustered counterpart."""

    flat: Netlist
    clustered: Netlist
    #: flat cell index -> clustered cell index
    cluster_of: np.ndarray
    #: clustered cell index -> flat member indices
    members: List[List[int]]

    @property
    def ratio(self) -> float:
        movable = sum(1 for c in self.flat.cells if not c.fixed)
        clusters = sum(1 for c in self.clustered.cells if not c.fixed)
        return movable / max(clusters, 1)

    def uncluster(self) -> None:
        """Copy cluster positions back to the flat netlist (members land
        on their cluster's center; a flat placement pass refines)."""
        for k, member_list in enumerate(self.members):
            for i in member_list:
                if not self.flat.cells[i].fixed:
                    self.flat.x[i] = self.clustered.x[k]
                    self.flat.y[i] = self.clustered.y[k]
        self.flat.clamp_into_die()


def _pair_scores_for(
    netlist: Netlist,
    cell: int,
    nets_of_cell: Dict[int, List[int]],
    cluster_sizes: np.ndarray,
    find,
) -> Optional[Tuple[float, int]]:
    """Best (score, neighbor) for `cell`, or None if isolated."""
    weights: Dict[int, float] = {}
    root_u = find(cell)
    for nidx in nets_of_cell.get(cell, ()):
        net = netlist.nets[nidx]
        if net.degree < 2 or net.degree > 10:
            continue
        contribution = net.weight / net.degree
        for pin in net.pins:
            if pin.cell_index < 0:
                continue
            root_v = find(pin.cell_index)
            if root_v == root_u:
                continue
            if netlist.cells[root_v].fixed:
                continue
            if (
                netlist.cells[root_v].movebound
                != netlist.cells[root_u].movebound
            ):
                continue
            weights[root_v] = weights.get(root_v, 0.0) + contribution
    best: Optional[Tuple[float, int]] = None
    for v, w in weights.items():
        score = w / (cluster_sizes[root_u] + cluster_sizes[v])
        if best is None or score > best[0]:
            best = (score, v)
    return best


def bestchoice_cluster(
    netlist: Netlist,
    cluster_ratio: float = 5.0,
    max_cluster_size: Optional[float] = None,
) -> Clustering:
    """Cluster the netlist down to ``|movable| / cluster_ratio`` clusters.

    Returns a :class:`Clustering`; the clustered netlist carries merged
    cells (area-preserving: width = total size / row height), inherited
    movebounds, and the induced nets with intra-cluster pins collapsed.
    """
    n = netlist.num_cells
    parent = np.arange(n)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return int(i)

    cluster_sizes = np.array([c.size for c in netlist.cells])
    movable = [c.index for c in netlist.cells if not c.fixed]
    target_clusters = max(int(len(movable) / cluster_ratio), 1)
    if max_cluster_size is None:
        avg = float(np.mean(cluster_sizes[movable])) if movable else 1.0
        max_cluster_size = avg * cluster_ratio * 4

    nets_of_cell: Dict[int, List[int]] = {}
    for nidx, net in enumerate(netlist.nets):
        for pin in net.pins:
            if pin.cell_index >= 0:
                nets_of_cell.setdefault(pin.cell_index, []).append(nidx)

    heap: List[Tuple[float, int, int]] = []
    for i in movable:
        best = _pair_scores_for(
            netlist, i, nets_of_cell, cluster_sizes, find
        )
        if best is not None:
            heapq.heappush(heap, (-best[0], i, best[1]))

    num_clusters = len(movable)
    # lazy updates can requeue; bound the total work defensively
    budget = 60 * max(len(movable), 1)
    while num_clusters > target_clusters and heap and budget > 0:
        budget -= 1
        neg_score, u, v = heapq.heappop(heap)
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        # lazy re-validation: the stored pairing may be stale
        best = _pair_scores_for(
            netlist, ru, nets_of_cell, cluster_sizes, find
        )
        if best is None:
            continue
        if best[1] != rv or abs(-neg_score - best[0]) > 1e-12:
            heapq.heappush(heap, (-best[0], ru, best[1]))
            continue
        if cluster_sizes[ru] + cluster_sizes[rv] > max_cluster_size:
            continue
        # merge rv into ru
        parent[rv] = ru
        cluster_sizes[ru] += cluster_sizes[rv]
        nets_of_cell.setdefault(ru, []).extend(
            nets_of_cell.get(rv, ())
        )
        num_clusters -= 1
        nxt = _pair_scores_for(
            netlist, ru, nets_of_cell, cluster_sizes, find
        )
        if nxt is not None:
            heapq.heappush(heap, (-nxt[0], ru, nxt[1]))

    # ------------------------------------------------------------------
    # build the clustered netlist
    # ------------------------------------------------------------------
    clustered = Netlist(
        netlist.die,
        row_height=netlist.row_height,
        site_width=netlist.site_width,
        name=f"{netlist.name}.clustered",
    )
    clustered.blockages = netlist.blockages
    members_by_root: Dict[int, List[int]] = {}
    for i in range(n):
        members_by_root.setdefault(find(i), []).append(i)

    cluster_index: Dict[int, int] = {}
    members: List[List[int]] = []
    for root in sorted(members_by_root):
        group = members_by_root[root]
        rep = netlist.cells[root]
        total = float(sum(netlist.cells[i].size for i in group))
        if rep.fixed:
            width, height = rep.width, rep.height
        else:
            height = netlist.row_height
            width = max(total / height, netlist.site_width)
        cx = float(
            np.average(netlist.x[group],
                       weights=cluster_sizes[group] if len(group) > 1 else None)
        ) if len(group) > 1 else float(netlist.x[root])
        cy = float(
            np.average(netlist.y[group],
                       weights=cluster_sizes[group] if len(group) > 1 else None)
        ) if len(group) > 1 else float(netlist.y[root])
        cell = clustered.add_cell(
            f"k{len(members)}",
            width,
            height,
            x=cx,
            y=cy,
            fixed=rep.fixed,
            movebound=rep.movebound,
        )
        cluster_index[root] = cell.index
        members.append(group)
    clustered.finalize()

    cluster_of = np.empty(n, dtype=np.int64)
    for root, group in members_by_root.items():
        for i in group:
            cluster_of[i] = cluster_index[root]

    # induced nets: collapse intra-cluster pins, drop degenerate nets
    for net in netlist.nets:
        seen: Set[int] = set()
        pins: List[Pin] = []
        for pin in net.pins:
            if pin.is_fixed_terminal:
                pins.append(pin)
                continue
            k = int(cluster_of[pin.cell_index])
            if k in seen:
                continue
            seen.add(k)
            pins.append(Pin(k))
        if len(pins) >= 2:
            clustered.add_net(net.name, pins, net.weight)

    return Clustering(netlist, clustered, cluster_of, members)
