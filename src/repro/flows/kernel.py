"""Structure-of-arrays flow kernels and the backend registry.

Every flow solve in the pipeline — window transportation (§III), the
global FBP MinCostFlow (§IV), feasibility relaxation chains — bottoms
out in the solvers of :mod:`repro.flows`.  Historically those were
pure-Python objects, dicts and ``heapq`` loops; with PR 4's warm
starts removing redundant solves, per-pivot and per-label work became
the dominant cost.  This module stores arcs as contiguous numpy
arrays (``tail``, ``head``, ``cost``, ``cap``, ``flow``) and
vectorizes the inner loops:

* :class:`ArraySimplex` — the network simplex on arrays.  The signed
  pricing key ``(cost - pot[tail] + pot[head]) * sign(state)`` of
  every arc lives in one float64 vector, maintained incrementally (a
  pivot invalidates only the arcs incident to the relabeled subtree),
  so block pricing degenerates to a slice + ``argmin``; canonical
  flow recomputation and warm-basis validation are vectorized
  level-by-level.
* :func:`solve_ssp_arrays` — successive shortest paths with
  numpy-backed Dijkstra labels (vectorized edge relaxation per popped
  node, CSR adjacency).

**Bit-identity contract.**  The array kernel is held to the same
standard as PR 4's warm starts: identical pivots, identical flows,
identical placements vs the object kernel.  That shapes the
implementation — elementwise numpy binary ops are IEEE-identical to
the scalar ops they replace, ``argmin`` keeps the first minimum
exactly like the scalar strict-``<`` scan, residual accumulation
interleaves tail/head updates in arc order via ``np.add.at``, and
node potentials stay a Python list refreshed per-node (the vectorized
``+= delta`` subtree shortcut is *not* bit-identical and is therefore
not used).  Sums that feed comparisons are accumulated sequentially,
never pairwise.  ``REPRO_VERIFY_KERNEL=1`` re-solves every instance
on the other kernel and raises on any divergence; CI runs the fast
test lane and a full CLI placement under it.

Registry: :func:`get_flow_backend` / :func:`set_flow_backend`, env
``REPRO_FLOW_BACKEND``, CLI ``--flow-backend``; default ``array``.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.flows.networksimplex import (
    INF,
    _LOWER,
    _TREE,
    _UPPER,
    _Simplex,
)
from repro.flows.tolerances import BASE_EPS, scale_eps
from repro.flows.warmstart import NSBasis
from repro.resilience.budget import BudgetClock
from repro.resilience.errors import SolverNumericsError

__all__ = [
    "ArraySimplex",
    "FLOW_BACKENDS",
    "add_kernel_cpu",
    "default_flow_backend",
    "get_flow_backend",
    "kernel_cpu_seconds",
    "reset_kernel_cpu",
    "set_flow_backend",
    "solve_ssp_arrays",
    "verify_kernel",
]

#: the selectable kernel implementations.  ``batched`` executes single
#: solves on the plain array kernel (byte-identical by construction)
#: and additionally routes *batches* of same-shaped window
#: transportation instances through
#: :mod:`repro.flows.batch` (BatchedArraySimplex).
FLOW_BACKENDS = ("object", "array", "batched")

_backend: Optional[str] = None


def default_flow_backend() -> str:
    """Backend from ``REPRO_FLOW_BACKEND``, else ``array``."""
    env = os.environ.get("REPRO_FLOW_BACKEND", "").strip()
    if env in FLOW_BACKENDS:
        return env
    return "array"


def get_flow_backend() -> str:
    """The active kernel backend (``object`` or ``array``)."""
    global _backend
    if _backend is None:
        _backend = default_flow_backend()
    return _backend


def set_flow_backend(name: Optional[str]) -> None:
    """Select the kernel backend process-wide.

    ``None`` resets to the environment/default selection.  Worker
    processes of the parallel window pool fork from the parent, so the
    selection is inherited there automatically.
    """
    global _backend
    if name is not None and name not in FLOW_BACKENDS:
        raise ValueError(
            f"unknown flow backend {name!r}; choose from {FLOW_BACKENDS}"
        )
    _backend = name


def verify_kernel() -> bool:
    """``REPRO_VERIFY_KERNEL=1``: shadow-solve every instance on the
    other backend and raise on any divergence."""
    return os.environ.get("REPRO_VERIFY_KERNEL", "") not in ("", "0")


# ----------------------------------------------------------------------
# kernel CPU accounting (consumed by benchmarks/bench_flowkernel.py):
# process_time spent inside the flow kernels, bucketed per backend, so
# the speedup gate measures the kernels themselves rather than the
# QP/legality/bookkeeping share of a whole placement run
# ----------------------------------------------------------------------
_kernel_cpu = {"object": 0.0, "array": 0.0, "batched": 0.0}


def add_kernel_cpu(backend: str, seconds: float) -> None:
    _kernel_cpu[backend] = _kernel_cpu.get(backend, 0.0) + seconds


def kernel_cpu_seconds(backend: Optional[str] = None) -> float:
    """Accumulated in-kernel CPU seconds (one backend or all)."""
    if backend is not None:
        return _kernel_cpu.get(backend, 0.0)
    return sum(_kernel_cpu.values())


def reset_kernel_cpu() -> None:
    for key in list(_kernel_cpu):
        _kernel_cpu[key] = 0.0


#: pricing key sign per arc state (_LOWER, _TREE, _UPPER): an arc is an
#: entering candidate iff ``rc * sign < -eps`` — LOWER wants rc < -eps
#: (sign +1), UPPER wants rc > eps (sign -1, an exact IEEE negation),
#: TREE never qualifies (sign 0 -> key 0).  The signed key equals the
#: scalar scan's comparison key, so argmin reproduces its choice and
#: its first-occurrence tie-breaking exactly.
_PRICE_SIGN = np.array([1.0, 0.0, -1.0])

#: incident-arc count at or above which a subtree refresh drops the
#: pricing-key cache (full vectorized rebuild at the next pricing
#: call) instead of patching keys one by one.  Movebound
#: transportation networks have high-degree region nodes (hundreds of
#: incident arcs per refresh), where the scalar patch costs more than
#: the rebuild; partitioning networks touch ~16 arcs per refresh and
#: stay on the scalar path.  Additionally gated on touched/m so huge
#: networks with comparatively small touch sets keep patching.
_PATCH_INVALIDATE_MIN = 64

#: BFS-level width at or above which the subtree relabel computes the
#: level's potentials with one vectorized gather + np.where instead
#: of the scalar per-node loop.  Below it, numpy's fixed per-op
#: overhead loses to ~0.5us/node of python.
_LEVEL_VECTOR_MIN = 48

#: incident-arc count at or above which a relabeled node's pricing
#: keys are patched with one vectorized gather (same float64
#: expression and sign selection as the scalar patch, so identical
#: bits) instead of the per-arc loop.
_PATCH_VECTOR_MIN = 48


class ArraySimplex(_Simplex):
    """Network simplex on contiguous arc arrays.

    Data layout: ``tail``/``head`` (int64), ``cost``/``cap``
    (float64) and ``state`` (int8) are numpy arrays — flow
    recomputation, warm-basis validation and the alternative-optima
    candidate screen run vectorized over them.  Pricing runs on a
    float64 *key cache*: ``(cost - pi[tail] + pi[head]) * sign`` for
    every arc, rebuilt once per basis initialization and thereafter
    patched incrementally — a pivot changes the potentials of one
    subtree and the state of at most two arcs, so only the keys of
    arcs incident to those nodes are recomputed.  ``_find_entering``
    is then a slice + ``argmin`` per pricing block with no gathers at
    all.  The spanning tree (parent / parent_arc / depth / children),
    the arc flows and the node potentials stay Python lists: tree
    surgery, the pivot cycle and per-node potential refresh are
    pointer-chasing loops where list indexing beats numpy scalar
    access — and the per-node potential recursion is the only
    evaluation order that is bit-identical to the object kernel.
    Read-only list mirrors of ``tail``/``head``/``cost``/``cap``/
    ``state`` serve those loops; the float64 potential vector
    (``_pi_np``) is maintained incrementally alongside the list, one
    store per relabeled node.
    """

    @classmethod
    def from_arrays(
        cls,
        n: int,
        tail: np.ndarray,
        head: np.ndarray,
        cost: np.ndarray,
        cap: np.ndarray,
    ) -> "ArraySimplex":
        sx = cls(n)
        sx.tail = np.ascontiguousarray(tail, dtype=np.int64)
        sx.head = np.ascontiguousarray(head, dtype=np.int64)
        sx.cost = np.ascontiguousarray(cost, dtype=np.float64)
        sx.cap = np.ascontiguousarray(cap, dtype=np.float64)
        m = sx.tail.shape[0]
        sx.flow = [0.0] * m
        sx.state = np.zeros(m, dtype=np.int8)  # _LOWER
        sx.stat_pricing_blocks = 0
        sx.stat_pricing_arcs = 0
        sx._pi_np = None
        sx._key_np = None
        return sx

    # ------------------------------------------------------------------
    # instance scans / artificial arcs (vectorized hook overrides)
    # ------------------------------------------------------------------
    def _max_abs_cost(self) -> float:
        if self.cost.size == 0:
            return 1.0
        return float(np.max(np.abs(self.cost)))

    def _flow_scale(self, balance) -> float:
        cap = self.cap
        fin = cap[np.isfinite(cap)]
        mc = float(np.max(np.abs(fin))) if fin.size else 0.0
        bal = np.asarray(balance, dtype=np.float64)
        bf = bal[np.isfinite(bal)]
        mb = float(np.max(np.abs(bf))) if bf.size else 0.0
        return mc if mc > mb else mb

    def _add_artificials(self, balance, big_m: float) -> None:
        n, root = self.n, self.n
        bal = np.asarray(balance, dtype=np.float64)[:n]
        pos = bal >= 0.0
        nodes = np.arange(n, dtype=np.int64)
        m0 = self.tail.shape[0]
        self.tail = np.concatenate([self.tail, np.where(pos, nodes, root)])
        self.head = np.concatenate([self.head, np.where(pos, root, nodes)])
        self.cost = np.concatenate([self.cost, np.full(n, big_m)])
        self.cap = np.concatenate([self.cap, np.full(n, INF)])
        self.flow = [0.0] * (m0 + n)
        self.state = np.concatenate(
            [self.state, np.zeros(n, dtype=np.int8)]
        )
        self._art0 = m0
        self.artificial = list(range(m0, m0 + n))
        # read-only scalar mirrors for the pivot/tree-surgery loops
        self._tail_list = self.tail.tolist()
        self._head_list = self.head.tolist()
        self._cost_list = self.cost.tolist()
        self._cap_list = self.cap.tolist()
        # node -> incident arc ids, for the incremental pricing-key
        # maintenance (a relabeled node invalidates exactly the keys
        # of its incident arcs).  Built as a CSR in one vectorized
        # pass; the per-node Python lists the patch loop wants are
        # materialized lazily (_node_arcs), so nodes never relabeled
        # during the solve cost nothing.
        m = m0 + n
        endpoints = np.concatenate([self.tail, self.head])
        order = np.argsort(endpoints, kind="stable")
        self._inc_arcs = order % m  # index i in the concat is arc i % m
        starts = np.zeros(n + 2, dtype=np.int64)
        np.cumsum(np.bincount(endpoints, minlength=n + 1), out=starts[1:])
        self._inc_start = starts.tolist()
        self._inc_start_np = starts
        self._inc: List[Optional[List[int]]] = [None] * (n + 1)
        self._pi_np = None
        self._key_np = None

    # ------------------------------------------------------------------
    # basis initialization
    # ------------------------------------------------------------------
    def _cold_init(self, balance) -> None:
        n, root = self.n, self.n
        big_m = self._big_m
        art0 = self._art0
        self.parent = [root] * (n + 1)
        self.parent_arc = list(range(art0, art0 + n)) + [-1]
        self.depth = [1] * n + [0]
        self.children = [{} for _ in range(n)] + [dict.fromkeys(range(n))]
        self.parent[root] = -1
        bal = np.asarray(balance, dtype=np.float64)[:n]
        pos = bal >= 0.0
        self.state[:] = _LOWER
        self.state[art0:] = _TREE
        self.flow = [0.0] * art0 + np.where(pos, bal, -bal).tolist()
        self.pi = np.where(pos, big_m, -big_m).tolist() + [0.0]
        self._pi_np = np.asarray(self.pi, dtype=np.float64)
        self._key_np = None

    def _try_warm_init(self, basis: NSBasis, balance) -> bool:
        n, root = self.n, self.n
        m = self.tail.shape[0]
        n_nodes = n + 1
        if basis.n_nodes != n_nodes or basis.n_arcs != m:
            return False
        parent = np.asarray(basis.parent, dtype=np.int64)
        parent_arc = np.asarray(basis.parent_arc, dtype=np.int64)
        state = np.asarray(basis.state, dtype=np.int8)
        if parent.shape[0] != n_nodes or state.shape[0] != m:
            return False
        if parent[root] != -1:
            return False
        # vectorized structural validation: parent/arc ranges, tree
        # states, and every tree arc connecting its child to its parent
        v = np.arange(n_nodes, dtype=np.int64)
        mask = v != root
        p = parent[mask]
        a = parent_arc[mask]
        v = v[mask]
        if np.any((p < 0) | (p >= n_nodes) | (a < 0) | (a >= m)):
            return False
        if np.any(state[a] != _TREE):
            return False
        ta, ha = self.tail[a], self.head[a]
        if not np.all(((ta == v) & (ha == p)) | ((ta == p) & (ha == v))):
            return False
        if int(np.count_nonzero(state == _TREE)) != n_nodes - 1:
            return False

        plist = parent.tolist()
        parc = parent_arc.tolist()
        children: List[Dict[int, None]] = [{} for _ in range(n_nodes)]
        for node in range(n_nodes):
            if node != root:
                children[plist[node]][node] = None

        # reachability from the root doubles as the cycle check, and
        # fills depths/potentials in one traversal (scalar per-node
        # recomputation: the bit-identical potential evaluation order)
        depth = [0] * n_nodes
        pi = [0.0] * n_nodes
        tl = self._tail_list
        cl = self._cost_list
        seen = 1
        stack = [root]
        while stack:
            node = stack.pop()
            for c in children[node]:
                aid = parc[c]
                depth[c] = depth[node] + 1
                if tl[aid] == c:  # arc c -> node
                    pi[c] = pi[node] + cl[aid]
                else:  # arc node -> c
                    pi[c] = pi[node] - cl[aid]
                seen += 1
                stack.append(c)
        if seen != n_nodes:
            return False

        self.parent = plist
        self.parent_arc = parc
        self.children = children
        self.depth = depth
        self.pi = pi
        self._pi_np = np.asarray(pi, dtype=np.float64)
        self._key_np = None
        self.state[:] = state
        if self._recompute_flows(balance):
            return True
        # see _Simplex._try_warm_init: after a capacity relaxation,
        # demote nonbasic UPPER arcs to LOWER and retry once
        self.state[self.state == _UPPER] = _LOWER
        if self._recompute_flows(balance):
            return True
        return False

    def _recompute_flows(self, balance) -> bool:
        n1 = self.n + 1
        eps = self.eps_flow
        state = self.state
        cap = self.cap
        tail = self.tail
        head = self.head
        resid = np.zeros(n1, dtype=np.float64)
        resid[: self.n] = np.asarray(balance, dtype=np.float64)[: self.n]

        at_upper = state == _UPPER
        if np.any(at_upper & ~np.isfinite(cap)):
            return False  # an uncapacitated arc cannot sit at UPPER
        flow_np = np.where(at_upper, cap, 0.0)
        carriers = np.nonzero(flow_np != 0.0)[0]
        if carriers.size:
            # interleave tail/head updates in arc order so np.add.at
            # accumulates the node residuals in exactly the object
            # kernel's sequential order (float addition is not
            # associative; the order is part of the identity contract)
            idx = np.empty(2 * carriers.size, dtype=np.int64)
            idx[0::2] = tail[carriers]
            idx[1::2] = head[carriers]
            vals = np.empty(2 * carriers.size, dtype=np.float64)
            f = flow_np[carriers]
            vals[0::2] = -f
            vals[1::2] = f
            np.add.at(resid, idx, vals)

        depth = np.asarray(self.depth, dtype=np.int64)
        parent = np.asarray(self.parent, dtype=np.int64)
        parc = np.asarray(self.parent_arc, dtype=np.int64)
        # leaf-to-root elimination, one depth level at a time.  Within
        # a level no node is another's parent, and the stable sort
        # keeps node ids ascending — the object kernel's exact
        # (depth desc, node id asc) elimination order.
        order = np.argsort(-depth, kind="stable")
        cuts = np.nonzero(np.diff(depth[order]))[0] + 1
        for vs in np.split(order, cuts):
            if self.depth[int(vs[0])] == 0:
                continue  # the root level terminates the elimination
            a = parc[vs]
            r = resid[vs]
            f = np.where(tail[a] == vs, r, -r)
            if np.any((f < -eps) | (f > cap[a] + eps)):
                return False
            f = np.where(f < 0.0, 0.0, f)
            f = np.where(f > cap[a], cap[a], f)
            flow_np[a] = f
            np.add.at(resid, parent[vs], r)
        self.flow = flow_np.tolist()
        return True

    def export_basis(self) -> NSBasis:
        return NSBasis(
            list(self.parent),
            list(self.parent_arc),
            self.state.tolist(),
            self.n + 1,
            self.tail.shape[0],
        )

    # ------------------------------------------------------------------
    # pricing
    # ------------------------------------------------------------------
    def _rebuild_key(self) -> np.ndarray:
        # full-array pricing key: (cost - pi[tail] + pi[head]) signed
        # by state.  Built once per basis initialization; thereafter a
        # pivot invalidates only the keys of arcs incident to the
        # relabeled subtree plus the two arcs whose state changed, and
        # those are patched in place (same expression, same current pi
        # — identical bits to a rebuild).  Pricing then never gathers:
        # it is a slice + argmin over this cache.
        pi = self._pi_np
        rc = self.cost - pi[self.tail]
        rc += pi[self.head]
        rc *= _PRICE_SIGN[self.state]
        self._key_np = rc
        self._state_list = self.state.tolist()
        return rc

    def _find_entering(self, block: int, start: int) -> Optional[int]:
        m = len(self._tail_list)
        eps = self.eps_cost
        key_np = self._key_np
        if key_np is None:
            key_np = self._rebuild_key()
        blocks = 0
        scanned = 0
        pos = start
        while scanned < m:
            rem = m - scanned
            upper = block if block < rem else rem
            end = pos + upper
            if end <= m:
                key = key_np[pos:end]
                j = int(key.argmin())
                best_key = float(key[j])
                best_arc = pos + j
                blocks += 1
            else:
                # the scan block wraps around the arc array: argmin
                # the two runs separately; a strict < on the second
                # keeps the first run's candidate on ties, matching
                # the scalar scan order
                k1 = key_np[pos:m]
                j = int(k1.argmin())
                best_key = float(k1[j])
                best_arc = pos + j
                k2 = key_np[: end - m]
                j = int(k2.argmin())
                k2j = float(k2[j])
                if k2j < best_key:
                    best_key = k2j
                    best_arc = j
                blocks += 2
            if best_key < -eps:
                self.stat_pricing_blocks += blocks
                self.stat_pricing_arcs += scanned + upper
                return best_arc
            scanned += upper
            pos = end % m
        self.stat_pricing_blocks += blocks
        self.stat_pricing_arcs += scanned
        return None

    def _find_entering_bland(self) -> Optional[int]:
        key_np = self._key_np
        if key_np is None:
            key_np = self._rebuild_key()
        idx = np.nonzero(key_np < -self.eps_cost)[0]
        return int(idx[0]) if idx.size else None

    # ------------------------------------------------------------------
    # pivoting
    # ------------------------------------------------------------------
    def _cycle(self, entering: int, forward: bool) -> List[Tuple[int, int]]:
        # same algorithm as _Simplex._cycle, on the list mirrors (the
        # cycle walk is pointer chasing; numpy scalar reads lose here)
        tl = self._tail_list
        hl = self._head_list
        depth = self.depth
        parent = self.parent
        parc = self.parent_arc
        u = tl[entering] if forward else hl[entering]
        v = hl[entering] if forward else tl[entering]
        path_u: List[int] = []
        path_v: List[int] = []
        a, b = u, v
        while a != b:
            if depth[a] >= depth[b]:
                path_u.append(a)
                a = parent[a]
            else:
                path_v.append(b)
                b = parent[b]
        cycle: List[Tuple[int, int]] = [(entering, 1 if forward else -1)]
        for node in path_u:
            arc = parc[node]
            cycle.append((arc, 1 if hl[arc] == node else -1))
        for node in path_v:
            arc = parc[node]
            cycle.append((arc, 1 if tl[arc] == node else -1))
        return cycle

    def _pivot(self, entering: int) -> float:
        # mirrors _Simplex._pivot on the list mirrors: pivot cycles
        # are a handful of arcs, so the scalar leaving-arc scan and
        # flow update beat vectorized gathers at this size (numpy's
        # fixed per-op overhead exceeds the whole scalar loop).  The
        # cycle walk is fused in — the arcs are visited in the exact
        # order _Simplex._cycle lists them (entering, u-path, v-path),
        # so every comparison and tie-break is unchanged, without
        # materializing the (arc, direction) tuple list twice over.
        sl = self._state_list
        forward = sl[entering] == _LOWER
        tl = self._tail_list
        hl = self._head_list
        capl = self._cap_list
        flow = self.flow
        depth = self.depth
        parent = self.parent
        parc = self.parent_arc
        u = tl[entering] if forward else hl[entering]
        v = hl[entering] if forward else tl[entering]
        # the leaving-arc fold visits arcs in the exact order
        # _Simplex._cycle lists them: entering, all u-path arcs, all
        # v-path arcs (order-sensitive inside eps-tie chains).  The
        # u-side fold runs inline during the walk — its start state is
        # known before the walk and flows are untouched until the
        # update below, so interleaved v-steps cannot perturb it and
        # every comparison sees the same operands in the same order.
        # Only the v-path is materialized (its fold must start from the
        # u-fold's final state); the u-path is re-walked from the
        # parent pointers when a nonzero delta needs flow updates.
        eps = self.eps_flow
        delta = INF
        leaving = entering
        room = capl[entering] - flow[entering] if forward else flow[entering]
        if room < delta - eps:  # arc == leaving here, so no tie branch
            delta = room
        arcs_v: List[int] = []
        fwd_v: List[bool] = []
        av_app = arcs_v.append
        fv_app = fwd_v.append
        a, b = u, v
        while a != b:
            if depth[a] >= depth[b]:
                arc = parc[a]
                room = (
                    capl[arc] - flow[arc] if hl[arc] == a else flow[arc]
                )
                if room < delta - eps or (
                    room <= delta + eps and arc < leaving
                ):
                    if room < delta:
                        delta = room
                    leaving = arc
                a = parent[a]
            else:
                arc = parc[b]
                av_app(arc)
                fv_app(tl[arc] == b)
                b = parent[b]
        join = a

        for arc, fwd in zip(arcs_v, fwd_v):
            room = capl[arc] - flow[arc] if fwd else flow[arc]
            if room < delta - eps or (room <= delta + eps and arc < leaving):
                if room < delta:
                    delta = room
                leaving = arc
        if delta == INF:
            raise SolverNumericsError(
                "network simplex: unbounded pivot cycle", solver="ns"
            )

        if delta > 0:
            if forward:
                flow[entering] += delta
            else:
                flow[entering] -= delta
            a = u
            while a != join:
                arc = parc[a]
                if hl[arc] == a:
                    flow[arc] += delta
                else:
                    flow[arc] -= delta
                a = parent[a]
            for arc, fwd in zip(arcs_v, fwd_v):
                if fwd:
                    flow[arc] += delta
                else:
                    flow[arc] -= delta

        if leaving == entering:
            # bound toggle: no relabel, so patch the one changed
            # pricing key here (sign flip of the same reduced cost)
            ns = _UPPER if forward else _LOWER
            self.state[entering] = ns
            sl[entering] = ns
            pi = self.pi
            t, h = tl[entering], hl[entering]
            rc = (self._cost_list[entering] - pi[t]) + pi[h]
            self._key_np[entering] = rc if ns == _LOWER else -rc
            return delta

        ls = _LOWER if flow[leaving] <= eps else _UPPER
        self.state[leaving] = ls
        sl[leaving] = ls
        self.state[entering] = _TREE
        sl[entering] = _TREE
        # a tree arc's key is pinned at +-0.0 (sign 0) and skipped by
        # the incremental patching, so zero it here once; the leaving
        # arc is incident to the relabeled subtree and is patched by
        # _refresh_subtree below
        self._key_np[entering] = 0.0

        lu, lv = tl[leaving], hl[leaving]
        sub_root = lu if self.depth[lu] > self.depth[lv] else lv
        inside = u if self._in_subtree(u, sub_root) else v
        self._detach(sub_root)
        self._reroot(inside, sub_root)
        outside = v if inside == u else u
        self.parent[inside] = outside
        self.parent_arc[inside] = entering
        self.children[outside][inside] = None
        self._refresh_subtree(inside)
        return delta

    def _refresh_subtree(self, sub_root: int) -> None:
        # level-by-level relabel: every node of a BFS level shares one
        # depth, and its potential pi[node] = pi[parent] +- cost[arc]
        # depends only on the previous level — so a wide level (the
        # thousands of leaf cells under a high-degree region node) is
        # relabeled with one gather + np.where while narrow levels
        # (chains) stay on the scalar loop.  Both paths evaluate the
        # identical float64 expression, so the potentials match the
        # object kernel bit for bit regardless of which path ran.
        tl = self._tail_list
        cl = self._cost_list
        parent = self.parent
        parc = self.parent_arc
        depth = self.depth
        pi = self.pi
        pi_np = self._pi_np
        children = self.children
        starts = self._inc_start
        nodes = []
        touched = 0
        level = [sub_root]
        d = depth[parent[sub_root]] + 1
        while level:
            nodes.extend(level)
            nxt = []
            if len(level) >= _LEVEL_VECTOR_MIN:
                cnt = len(level)
                lv = np.fromiter(level, np.int64, cnt)
                arcs = np.fromiter((parc[v] for v in level), np.int64, cnt)
                ps = np.fromiter((parent[v] for v in level), np.int64, cnt)
                c = self.cost[arcs]
                pv = pi_np[ps]
                newpi = np.where(self.tail[arcs] == lv, pv + c, pv - c)
                pi_np[lv] = newpi
                starts_np = self._inc_start_np
                touched += int((starts_np[lv + 1] - starts_np[lv]).sum())
                for v, val in zip(level, newpi.tolist()):
                    pi[v] = val
                    depth[v] = d
                    cs = children[v]
                    if cs:
                        nxt.extend(cs)
            else:
                for v in level:
                    arc = parc[v]
                    p = parent[v]
                    if tl[arc] == v:  # arc v -> p
                        val = pi[p] + cl[arc]
                    else:  # arc p -> v
                        val = pi[p] - cl[arc]
                    pi[v] = val
                    pi_np[v] = val
                    depth[v] = d
                    touched += starts[v + 1] - starts[v]
                    nxt.extend(children[v])
            level = nxt
            d += 1
        # patch the pricing keys of every nonbasic arc incident to a
        # relabeled node.  Small touch sets (a few nodes, ~2m/n arcs
        # each) take the scalar loop — per-element python cost beats
        # numpy's fixed per-op overhead there.  Large ones (deep
        # subtrees, high-degree region nodes of the movebound
        # transportation networks) just drop the cache: the next
        # pricing call re-derives every key with one vectorized pass
        # over all m arcs, which costs less than patching hundreds of
        # keys one by one — and _rebuild_key is the definition the
        # scalar patch reproduces bit for bit anyway (LOWER: rc * 1.0
        # == rc, UPPER: rc * -1.0 == -rc, TREE keys pinned at +-0.0
        # and skipped).
        key = self._key_np
        if key is None:
            return
        if (
            touched >= _PATCH_INVALIDATE_MIN
            and touched * 24 >= len(self._tail_list)
        ):
            self._key_np = None
            return
        sl = self._state_list
        inc = self._inc
        hl = self._head_list
        for node in nodes:
            n_inc = starts[node + 1] - starts[node]
            if n_inc >= _PATCH_VECTOR_MIN:
                # wide node (root / region node): one gathered pass.
                # Same expression over the same float64 values as the
                # scalar loop below (pi_np mirrors pi bit for bit), so
                # the patched keys are identical either way.
                an = self._inc_arcs[starts[node] : starts[node + 1]]
                st = self.state[an]
                a2 = an[st != _TREE]
                rc = self.cost[a2] - pi_np[self.tail[a2]]
                rc += pi_np[self.head[a2]]
                key[a2] = np.where(self.state[a2] == _LOWER, rc, -rc)
                continue
            arcs = inc[node]
            if arcs is None:
                arcs = inc[node] = self._inc_arcs[
                    starts[node] : starts[node + 1]
                ].tolist()
            for a in arcs:
                s = sl[a]
                if s == _TREE:
                    continue
                rc = (cl[a] - pi[tl[a]]) + pi[hl[a]]
                key[a] = rc if s == _LOWER else -rc

    def has_alternative_optima(self) -> bool:
        # vectorized candidate screen; the (rare) qualifying arcs walk
        # their cycles through the shared _cycle_room helper
        art_start = self._art0
        pi = self._pi_np
        rc = self.cost - pi[self.tail]
        rc += pi[self.head]
        state = self.state
        cand = ((state == _LOWER) & (rc <= self.eps_cost)) | (
            (state == _UPPER) & (rc >= -self.eps_cost)
        )
        for a in np.nonzero(cand)[0]:
            forward = bool(state[a] == _LOWER)
            if self._cycle_room(int(a), forward, art_start) > self.eps_flow:
                return True
        return False


# ----------------------------------------------------------------------
# successive shortest paths on arrays
# ----------------------------------------------------------------------
def solve_ssp_arrays(
    n: int,
    tails: np.ndarray,
    heads: np.ndarray,
    costs: np.ndarray,
    caps: np.ndarray,
    supply: np.ndarray,
    clock: Optional[BudgetClock] = None,
) -> Tuple[np.ndarray, float, float, int]:
    """Array-backed SSP with Johnson potentials (Dijkstra).

    Bit-identical to ``MinCostFlowProblem._solve_ssp_object``: the
    residual graph interleaves forward/reverse edges (``eid ^ 1``), the
    CSR adjacency preserves per-node edge insertion order, and edge
    relaxation of a popped node is vectorized against the pre-update
    distance labels — falling back to the scalar scan for the rare
    node whose improving edges hit a duplicate head, where the
    sequential order matters.  Returns
    ``(flows_per_input_arc, routed, total_supply, augmentations)``.
    """
    tails = np.ascontiguousarray(tails, dtype=np.int64)
    heads = np.ascontiguousarray(heads, dtype=np.int64)
    costs = np.ascontiguousarray(costs, dtype=np.float64)
    caps = np.ascontiguousarray(caps, dtype=np.float64)
    supply = np.ascontiguousarray(supply, dtype=np.float64)
    m0 = tails.shape[0]
    s_node, t_node = n, n + 1
    n_total = n + 2

    # same scale-relative balance threshold as the object solver's
    # _supply_eps (bit-identity contract between the two kernels)
    finite_supply = np.isfinite(supply)
    eps_supply = scale_eps(
        float(np.max(np.abs(supply[finite_supply]), initial=0.0))
    )
    pos = supply > eps_supply
    neg = supply < -eps_supply
    extra_nodes = np.nonzero(pos | neg)[0]
    node_pos = pos[extra_nodes]
    e_src = np.where(node_pos, s_node, extra_nodes)
    e_dst = np.where(node_pos, extra_nodes, t_node)
    e_cap = np.where(node_pos, supply[extra_nodes], -supply[extra_nodes])
    total_supply = 0.0
    for b in supply[pos].tolist():
        total_supply += b

    # interleaved residual arrays: edge 2i is arc i, edge 2i+1 its
    # reverse (same ``eid ^ 1`` pairing as the object solver)
    src_all = np.concatenate([tails, e_src])
    dst_all = np.concatenate([heads, e_dst])
    cap_fwd = np.concatenate([caps, e_cap])
    cost_fwd = np.concatenate([costs, np.zeros(extra_nodes.shape[0])])
    m = src_all.shape[0]
    to = np.empty(2 * m, dtype=np.int64)
    to[0::2] = dst_all
    to[1::2] = src_all
    cap = np.empty(2 * m, dtype=np.float64)
    cap[0::2] = cap_fwd
    cap[1::2] = 0.0
    cost = np.empty(2 * m, dtype=np.float64)
    cost[0::2] = cost_fwd
    cost[1::2] = -cost_fwd

    # CSR adjacency over edge *sources*; the stable sort keeps each
    # node's edges in insertion order, like the object adjacency lists
    edge_src = np.empty(2 * m, dtype=np.int64)
    edge_src[0::2] = src_all
    edge_src[1::2] = dst_all
    adj_order = np.argsort(edge_src, kind="stable")
    adj_start = np.zeros(n_total + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(edge_src, minlength=n_total), out=adj_start[1:]
    )

    eps_cost = scale_eps(_finite_mag(cost))
    eps_flow = scale_eps(_finite_mag(cap))

    potential = np.zeros(n_total, dtype=np.float64)
    routed = 0.0
    augmentations = 0
    while routed < total_supply - eps_flow:
        if clock is not None:
            clock.tick()
            clock.check_time()
        dist = np.full(n_total, INF)
        prev_edge = np.full(n_total, -1, dtype=np.int64)
        dist[s_node] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, s_node)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u] + eps_cost:
                continue
            eids = adj_order[adj_start[u] : adj_start[u + 1]]
            if eids.size == 0:
                continue
            live = cap[eids] > eps_flow
            if not live.any():
                continue
            le = eids[live]
            vs = to[le]
            nd = d + cost[le] + potential[u]
            nd -= potential[vs]
            improve = nd < dist[vs] - eps_cost
            ii = np.nonzero(improve)[0]
            if ii.size == 0:
                continue
            vv = vs[ii]
            if np.unique(vv).size != vv.size:
                # duplicate heads among the improving edges: replay
                # the scalar sequential relaxation for this node so a
                # later edge compares against the earlier edge's
                # updated label, exactly like the object solver
                for eid in le.tolist():
                    v2 = int(to[eid])
                    nd2 = d + cost[eid] + potential[u] - potential[v2]
                    if nd2 < dist[v2] - eps_cost:
                        dist[v2] = nd2
                        prev_edge[v2] = eid
                        heapq.heappush(heap, (float(nd2), v2))
                continue
            dist[vv] = nd[ii]
            prev_edge[vv] = le[ii]
            for nd2, v2 in zip(nd[ii].tolist(), vv.tolist()):
                heapq.heappush(heap, (nd2, v2))
        if dist[t_node] == INF:
            break  # no augmenting path: infeasible remainder
        finite = dist < INF
        potential[finite] += dist[finite]
        # bottleneck along the path (paths are short; scalar walk)
        push = total_supply - routed
        v = t_node
        while v != s_node:
            eid = prev_edge[v]
            push = min(push, cap[eid])
            v = to[eid ^ 1]
        v = t_node
        while v != s_node:
            eid = prev_edge[v]
            cap[eid] -= push
            cap[eid ^ 1] += push
            v = to[eid ^ 1]
        routed += push
        augmentations += 1

    flows = cap[1 : 2 * m0 : 2].copy() if m0 else np.zeros(0)
    return flows, float(routed), total_supply, augmentations


def _finite_mag(values: np.ndarray) -> float:
    """Vectorized :func:`repro.flows.tolerances.magnitude`."""
    if values.size == 0:
        return 0.0
    av = np.abs(values)
    fin = av[np.isfinite(av)]
    return float(np.max(fin)) if fin.size else 0.0
