"""Batched window transportation solves (BatchedArraySimplex).

The per-window transportation solves of the FBP realization step are
independent by construction (§III/§IV.B), and PR 5's ``ArraySimplex``
already made each solve cheap — what remains is the per-instance
Python constant: graph build, solver construction, the per-pivot
*pricing call* overhead.  This module amortizes that constant by
packing many window instances into one padded structure-of-arrays
call:

* instances are **shape-bucketed** by ``(n_supply, n_demand)``; within
  a bucket every instance's arc arrays are stacked as rows of
  ``(B, m_max)`` C-contiguous matrices (``cost``, ``cap``, ``state``,
  and the signed pricing-key cache), padded to the widest row,
* per-instance arc *topology* (the finite-cost arc pattern plus the
  super-source/sink and artificial arcs it induces) is interned in a
  small cache and shared across rows, stages and calls: tail/head
  arrays, their list mirrors, the CSR node→arc incidence, the
  deterministic tie-break stream and the warm-start fingerprint are
  all pure functions of the topology,
* the simplex runs **in lockstep** over the bucket: each round, every
  still-active row prices one Dantzig block through a single 2-D
  modular gather + masked ``argmin`` over the stacked reduced-cost
  cache, then executes its pivot/relabel; converged rows go inert
  (convergence masking) and the last surviving row finishes on the
  plain scalar loop,
* **padding arcs never participate**: a row's solver state is a view
  of its first ``m_b`` columns and every gathered index is reduced
  mod ``m_b``, so padding columns are provably never read or written
  — the ``kernel.batch.padding`` invariant (``obs`` registry) checks
  exactly that.

Bit-identity contract.  Each row of a batch is the *same* algorithm
as a single :class:`~repro.flows.kernel.ArraySimplex` solve — the row
class subclasses it and overrides only storage installation and the
key-cache rebuild (same expressions, into a stacked row view).  The
batched pricing gather reproduces ``_find_entering`` exactly: the
rotated-window ``argmin`` keeps the first minimum like the scalar
strict-``<`` scan, including across a wrap (the rotation makes the
two-run tie-break a plain first-occurrence).  Pivots, flows, costs,
warm-start behavior, counters and placements are identical to the
``array`` (and hence ``object``) backend; ``REPRO_VERIFY_KERNEL=1``
shadow-solves every row on the object kernel and also compares the
full per-pivot entering-arc trace.

Entry points: :func:`solve_transportation_batched` (the batched
equivalent of per-task
:func:`~repro.flows.transportation.solve_transportation_with_relaxation`)
and :func:`bucket_task_indices` (the shape-bucketing the supervised
pool uses to dispatch whole buckets).  Single-instance buckets route
through the plain serial path (array kernel), byte-identical.
"""

from __future__ import annotations

import hashlib
import math
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flows.kernel import ArraySimplex, _PRICE_SIGN
from repro.flows import kernel as _kernel
from repro.flows.networksimplex import (
    EPS,
    INF,
    _LOWER,
    _Simplex,
    _verify_against_cold,
)
from repro.flows.tolerances import scale_eps
from repro.flows.transportation import (
    RELAX_CHAIN_WINDOW,
    TransportResult,
    TransportStats,
    _validate,
    solve_transportation,
    solve_transportation_with_relaxation,
)
from repro.flows.warmstart import (
    WarmStartSlot,
    fingerprint,
    verify_warm_start,
    warm_start_enabled,
)
from repro.obs import incr
from repro.obs.invariants import _fail, maybe_check, register
from repro.resilience.budget import get_default_budget
from repro.resilience.errors import SolverNumericsError

__all__ = [
    "BatchedArraySimplex",
    "bucket_task_indices",
    "solve_transportation_batched",
]


# ----------------------------------------------------------------------
# shared per-topology artifacts
# ----------------------------------------------------------------------
class _Topology:
    """Everything about one transportation instance that is a pure
    function of its *arc topology* — shared across the rows of a
    bucket, across relaxation stages, and across calls.

    Mirrors the transform of
    :func:`repro.flows.transportation._solve_ns` +
    :func:`repro.flows.networksimplex.solve_network_simplex_arrays`
    exactly: bipartite arcs in row-major order over the finite-cost
    mask, super source/sink arcs appended in node order, artificial
    arcs v<->root per real node.
    """

    __slots__ = (
        "n", "k", "n_real", "m_arc", "m0", "m",
        "src_idx", "snk_idx", "extra_nodes", "node_pos",
        "tail", "head", "tail_list", "head_list", "artificial",
        "inc_arcs", "inc_start", "inc_start_np", "inc",
        "rand_plus1", "fp", "block",
    )

    def __init__(
        self,
        n: int,
        k: int,
        finite: np.ndarray,
        sup_pos: np.ndarray,
        cap_pos: np.ndarray,
    ) -> None:
        self.n, self.k = n, k
        src_idx, snk_idx = np.nonzero(finite)
        self.src_idx = src_idx
        self.snk_idx = snk_idx
        m_arc = src_idx.shape[0]
        self.m_arc = m_arc
        n_sup = n + k
        s_node, t_node = n_sup, n_sup + 1
        tails = src_idx.astype(np.int64)
        heads = (snk_idx + n).astype(np.int64)
        # super transform: pos/neg over supply = concat([supplies,
        # -capacities]); the sign patterns are the bucket inputs
        pos = np.concatenate([sup_pos, np.zeros(k, dtype=bool)])
        neg = np.concatenate([np.zeros(n, dtype=bool), cap_pos])
        extra_nodes = np.nonzero(pos | neg)[0]
        node_pos = pos[extra_nodes]
        e_tails = np.where(node_pos, s_node, extra_nodes)
        e_heads = np.where(node_pos, extra_nodes, t_node)
        full_tail = np.concatenate([tails, e_tails])
        full_head = np.concatenate([heads, e_heads])
        self.extra_nodes = extra_nodes
        self.node_pos = node_pos
        self.m0 = int(full_tail.shape[0])
        n_real = n_sup + 2
        self.n_real = n_real
        root = n_real
        # artificial arc directions follow the balance signs: every
        # node balances at 0 except s (total >= 0) and t (-total,
        # negative iff any positive supply exists)
        bal_pos = np.ones(n_real, dtype=bool)
        if bool(sup_pos.any()):
            bal_pos[t_node] = False
        nodes = np.arange(n_real, dtype=np.int64)
        a_tail = np.where(bal_pos, nodes, root)
        a_head = np.where(bal_pos, root, nodes)
        self.tail = np.ascontiguousarray(
            np.concatenate([full_tail, a_tail]), dtype=np.int64
        )
        self.head = np.ascontiguousarray(
            np.concatenate([full_head, a_head]), dtype=np.int64
        )
        m = self.m0 + n_real
        self.m = m
        self.tail_list = self.tail.tolist()
        self.head_list = self.head.tolist()
        self.artificial = list(range(self.m0, m))
        # CSR node -> incident arcs, exactly as ArraySimplex builds it
        endpoints = np.concatenate([self.tail, self.head])
        order = np.argsort(endpoints, kind="stable")
        self.inc_arcs = order % m
        starts = np.zeros(n_real + 2, dtype=np.int64)
        np.cumsum(
            np.bincount(endpoints, minlength=n_real + 1), out=starts[1:]
        )
        self.inc_start = starts.tolist()
        self.inc_start_np = starts
        # lazily-materialized per-node arc lists, shared by every row
        # of this topology (contents are topology-pure)
        self.inc: List[Optional[List[int]]] = [None] * (n_real + 1)
        # deterministic tie-break stream: a pure function of the arc
        # count (see _solve_ns); rows scale it by their own |cost| max
        self.rand_plus1 = (
            np.random.default_rng(0x7F4A7C15).random(m_arc) + 1.0
        )
        self.fp = fingerprint(n_sup + 3, full_tail, full_head)
        self.block = max(int(np.sqrt(m)) + 10, 20)


_TOPO_CACHE: "OrderedDict[tuple, _Topology]" = OrderedDict()
_TOPO_CACHE_MAX = 256


def _topology_for(
    n: int,
    k: int,
    finite: np.ndarray,
    sup_pos: np.ndarray,
    cap_pos: np.ndarray,
) -> _Topology:
    key = (
        n, k, finite.tobytes(), sup_pos.tobytes(), cap_pos.tobytes()
    )
    topo = _TOPO_CACHE.get(key)
    if topo is None:
        topo = _Topology(n, k, finite, sup_pos, cap_pos)
        _TOPO_CACHE[key] = topo
        if len(_TOPO_CACHE) > _TOPO_CACHE_MAX:
            _TOPO_CACHE.popitem(last=False)
        incr("kernel.batch.topologies")
    else:
        _TOPO_CACHE.move_to_end(key)
    return topo


# ----------------------------------------------------------------------
# one row of a batch
# ----------------------------------------------------------------------
class _BatchRow(ArraySimplex):
    """One instance's simplex state over stacked-storage row views.

    Inherits the entire pivot machinery (pricing scan, cycle walk,
    tree surgery, subtree relabel, flow recomputation, warm-basis
    validation) from :class:`ArraySimplex`; overrides only where the
    arrays come from — ``cost``/``cap``/``state`` and the pricing-key
    cache are views of one row of the bucket's ``(B, m_max)``
    matrices, and the topology-pure arrays are shared, not rebuilt.
    """

    def __init__(
        self,
        topo: _Topology,
        cost_row: np.ndarray,
        cap_row: np.ndarray,
        state_row: np.ndarray,
        key_row: np.ndarray,
    ) -> None:
        _Simplex.__init__(self, topo.n_real)
        self.topo = topo
        self.tail = topo.tail
        self.head = topo.head
        self.cost = cost_row
        self.cap = cap_row
        self.state = state_row
        self.flow = [0.0] * topo.m
        self.stat_pricing_blocks = 0
        self.stat_pricing_arcs = 0
        self._pi_np = None
        self._key_np = None
        self._key_row = key_row

    def _rebuild_key(self) -> np.ndarray:
        # identical expression to ArraySimplex._rebuild_key, evaluated
        # into this row's persistent slice of the stacked key matrix so
        # the batched pricing gather sees it without copies
        pi = self._pi_np
        out = self._key_row
        np.subtract(self.cost, pi[self.tail], out=out)
        out += pi[self.head]
        out *= _PRICE_SIGN[self.state]
        self._key_np = out
        self._state_list = self.state.tolist()
        return out

    def begin(self, balance: np.ndarray, warm_basis) -> None:
        """The prologue of ``_Simplex.solve`` up to basis init, with
        ``_add_artificials`` replaced by installing the per-row big-M
        into the pre-sized artificial columns (same order, same
        values: tolerances are derived *before* the artificials, from
        the pre-artificial cost/cap slices, exactly like the serial
        solve sees them)."""
        topo = self.topo
        m0 = topo.m0
        cost_pre = self.cost[:m0]
        max_cost = (
            float(np.max(np.abs(cost_pre))) if cost_pre.size else 1.0
        )
        big_m = (self.n + 1) * (max_cost + 1.0)
        self.eps_cost = scale_eps(max_cost)
        cap_pre = self.cap[:m0]
        fin = cap_pre[np.isfinite(cap_pre)]
        mc = float(np.max(np.abs(fin))) if fin.size else 0.0
        bf = balance[np.isfinite(balance)]
        mb = float(np.max(np.abs(bf))) if bf.size else 0.0
        self.eps_flow = scale_eps(mc if mc > mb else mb)
        self._big_m = big_m
        self.cost[m0:] = big_m
        self.cap[m0:] = INF
        self._art0 = m0
        self.artificial = topo.artificial
        self._tail_list = topo.tail_list
        self._head_list = topo.head_list
        self._cost_list = self.cost.tolist()
        self._cap_list = self.cap.tolist()
        self._inc_arcs = topo.inc_arcs
        self._inc_start = topo.inc_start
        self._inc_start_np = topo.inc_start_np
        self._inc = topo.inc
        self._pi_np = None
        self._key_np = None
        self.warm_used = False
        if warm_basis is not None and self._try_warm_init(
            warm_basis, balance
        ):
            self.warm_used = True
        else:
            self._cold_init(balance)

    def finish(self, balance: np.ndarray) -> bool:
        """The epilogue of ``_Simplex.solve``: canonical flow
        recomputation + the artificial-flow feasibility test."""
        if not self._recompute_flows(balance):
            raise SolverNumericsError(
                "network simplex basis flows violate arc bounds at "
                "optimality (beyond scaled tolerance)",
                solver="ns",
            )
        return self._artificials_clear()


class _RowLoop:
    """Per-row pivot-loop control state (the local variables of
    ``_Simplex.solve``'s while loop, one set per batch row)."""

    __slots__ = (
        "m", "block", "dantzig_budget", "degenerate_trigger",
        "bland_cycle_cap", "pivots", "degenerate", "consec",
        "use_bland", "scan_start", "clock", "done",
    )

    def __init__(self, m: int, block: int, clock) -> None:
        self.m = m
        self.block = block
        self.dantzig_budget = 40 * m + 400
        self.degenerate_trigger = 2 * m + 40
        self.bland_cycle_cap = 10 * m + 1000
        self.pivots = 0
        self.degenerate = 0
        self.consec = 0
        self.use_bland = False
        self.scan_start = 0
        self.clock = clock
        self.done = False


def _apply_pivot(row: _BatchRow, lp: _RowLoop, entering: int) -> None:
    """One iteration's post-pricing tail of ``_Simplex.solve``."""
    lp.scan_start = (entering + 1) % lp.m
    if row.pivot_trace is not None:
        row.pivot_trace.append(entering)
    delta = row._pivot(entering)
    if not math.isfinite(delta):
        raise SolverNumericsError(
            "network simplex pivot produced non-finite flow change",
            solver="ns",
        )
    lp.pivots += 1
    if delta <= row.eps_flow:
        lp.degenerate += 1
        lp.consec += 1
        if lp.use_bland and lp.consec >= lp.bland_cycle_cap:
            raise SolverNumericsError(
                f"network simplex appears to be cycling "
                f"({lp.consec} consecutive degenerate "
                f"pivots under Bland's rule)",
                solver="ns",
                context={"pivots": lp.pivots},
            )
    else:
        lp.consec = 0


def _finish_scalar(row: _BatchRow, lp: _RowLoop) -> int:
    """Run one row's pivot loop to optimality on the scalar path —
    the literal ``_Simplex.solve`` loop body, continuing from the
    row's current control state.  Used for the last active row of a
    bucket and for ambiguous-warm redos."""
    rounds = 0
    while True:
        rounds += 1
        if lp.clock is not None:
            lp.clock.tick()
        lp.use_bland = lp.use_bland or (
            lp.pivots >= lp.dantzig_budget
            or lp.consec >= lp.degenerate_trigger
        )
        if lp.use_bland:
            entering = row._find_entering_bland()
        else:
            entering = row._find_entering(lp.block, lp.scan_start)
        if entering is None:
            lp.done = True
            return rounds
        _apply_pivot(row, lp, entering)


# Below this many undecided rows, the numpy glue of a gather round
# (index building, 2-D fancy gather, masking) costs more than simply
# pricing each row with the scalar ``_find_entering`` it reproduces
# bit for bit, so small actives dispatch scalar.
_PRICE_SCALAR_MAX = 3


def _price_batch(
    key2d: np.ndarray,
    rows: List[_BatchRow],
    loops: List[_RowLoop],
    ids: List[int],
    entering: Dict[int, Optional[int]],
    statics: Tuple[np.ndarray, np.ndarray, np.ndarray],
) -> None:
    """Batched Dantzig pricing: one block per undecided row per
    gather round, via a single 2-D modular gather + masked argmin.

    Per row this reproduces ``ArraySimplex._find_entering`` bit for
    bit: gathering the rotated window ``key[(pos + j) % m]`` makes
    ``argmin``'s first-occurrence tie-break equal to the scalar scan's
    strict-``<`` order even across a wrap, and the per-row pricing
    stats (blocks scanned, arcs examined, wrap double-count) follow
    the scalar bookkeeping exactly.
    """
    for b in ids:
        if rows[b]._key_np is None:
            rows[b]._rebuild_key()
    A = len(ids)
    m_all, blk_all, eps_all = statics
    rid = np.fromiter(ids, np.int64, count=A)
    pos = np.fromiter(
        (loops[b].scan_start for b in ids), np.int64, count=A
    )
    mrow = m_all[rid]
    blk = blk_all[rid]
    eps = eps_all[rid]
    scanned = np.zeros(A, np.int64)
    blocks_acc = np.zeros(A, np.int64)
    und = np.arange(A)
    while und.size:
        upper = np.minimum(blk[und], mrow[und] - scanned[und])
        width = int(upper.max())
        cols = np.arange(width)
        idx = pos[und, None] + cols
        idx %= mrow[und, None]
        g = key2d[rid[und, None], idx]
        # mask columns beyond each row's own block: +inf never wins
        # argmin against the >= 1 real columns
        g[cols >= upper[:, None]] = np.inf
        j = g.argmin(axis=1)
        best = g[np.arange(und.size), j]
        blocks_acc[und] += np.where(pos[und] + upper > mrow[und], 2, 1)
        found = best < -eps[und]
        if found.any():
            fu = und[found]
            arcs = (pos[fu] + j[found]) % mrow[fu]
            arcs_scanned = scanned[fu] + upper[found]
            for t in range(fu.size):
                b = ids[int(fu[t])]
                entering[b] = int(arcs[t])
                rows[b].stat_pricing_blocks += int(blocks_acc[fu[t]])
                rows[b].stat_pricing_arcs += int(arcs_scanned[t])
        rem = und[~found]
        scanned[rem] += upper[~found]
        pos[rem] = (pos[rem] + upper[~found]) % mrow[rem]
        exhausted = rem[scanned[rem] >= mrow[rem]]
        for b_local in exhausted.tolist():
            b = ids[b_local]
            entering[b] = None
            rows[b].stat_pricing_blocks += int(blocks_acc[b_local])
            rows[b].stat_pricing_arcs += int(scanned[b_local])
        und = rem[scanned[rem] < mrow[rem]]


def _run_lockstep(
    rows: List[_BatchRow],
    loops: List[_RowLoop],
    key2d: np.ndarray,
) -> int:
    """Advance every row one pivot per round until all converge.

    Per row, the sequence of (clock tick, Bland check, entering-arc
    search, pivot) is exactly ``_Simplex.solve``'s loop; the rounds
    only interleave rows, they never reorder a row's own steps.
    Returns the number of lockstep rounds (for ``kernel.batch.*``
    accounting)."""
    active = [b for b in range(len(rows)) if not loops[b].done]
    rounds = 0
    B = len(rows)
    statics = (
        np.fromiter((lp.m for lp in loops), np.int64, count=B),
        np.fromiter((lp.block for lp in loops), np.int64, count=B),
        np.fromiter((r.eps_cost for r in rows), np.float64, count=B),
    )
    while active:
        if len(active) == 1:
            b = active[0]
            rounds += _finish_scalar(rows[b], loops[b])
            break
        rounds += 1
        entering: Dict[int, Optional[int]] = {}
        dantzig: List[int] = []
        for b in active:
            lp = loops[b]
            if lp.clock is not None:
                lp.clock.tick()
            lp.use_bland = lp.use_bland or (
                lp.pivots >= lp.dantzig_budget
                or lp.consec >= lp.degenerate_trigger
            )
            if lp.use_bland:
                entering[b] = rows[b]._find_entering_bland()
            else:
                dantzig.append(b)
        if len(dantzig) <= _PRICE_SCALAR_MAX:
            for b in dantzig:
                entering[b] = rows[b]._find_entering(
                    loops[b].block, loops[b].scan_start
                )
        elif dantzig:
            _price_batch(key2d, rows, loops, dantzig, entering, statics)
        nxt: List[int] = []
        for b in active:
            e = entering[b]
            if e is None:
                loops[b].done = True
                continue
            _apply_pivot(rows[b], loops[b], e)
            nxt.append(b)
        active = nxt
    return rounds


class BatchedArraySimplex:
    """Solve a bucket of same-shaped transportation instances as one
    stacked structure-of-arrays lockstep simplex.

    Construction stacks every instance's arc data into ``(B, m_max)``
    matrices (rows padded to the widest topology in the bucket) and
    wires one :class:`_BatchRow` per instance over its row views;
    :meth:`solve` runs the warm-start protocol, the lockstep pivot
    loop, the canonical flow recomputation and (under
    ``REPRO_VERIFY_KERNEL``) the per-row object-kernel shadow solve.
    """

    def __init__(self, items: List["_TaskState"]) -> None:
        B = len(items)
        self.items = items
        self.m_max = max(it.topo.m for it in items)
        self.cost2d = np.zeros((B, self.m_max))
        self.cap2d = np.zeros((B, self.m_max))
        self.state2d = np.zeros((B, self.m_max), dtype=np.int8)
        self.key2d = np.zeros((B, self.m_max))
        self.rows: List[_BatchRow] = []
        self.loops: List[_RowLoop] = []
        self.balances: List[np.ndarray] = []
        self.arc_costs: List[np.ndarray] = []
        self.rounds = 0
        budget = get_default_budget()
        trace = _kernel.verify_kernel()
        for b, it in enumerate(items):
            topo = it.topo
            m, m0, m_arc = topo.m, topo.m0, topo.m_arc
            arc_costs = it.costs[topo.src_idx, topo.snk_idx]
            self.arc_costs.append(arc_costs)
            scale = (
                float(np.max(np.abs(arc_costs), initial=0.0)) or 1.0
            )
            self.cost2d[b, :m_arc] = arc_costs + topo.rand_plus1 * (
                scale * 2.0**-20
            )
            self.cap2d[b, :m_arc] = INF
            supply = np.concatenate([it.supplies, -it.caps_stage])
            self.cap2d[b, m_arc:m0] = np.where(
                topo.node_pos,
                supply[topo.extra_nodes],
                -supply[topo.extra_nodes],
            )
            # sequential accumulation: bit-identical to the scalar
            # builder's running sum (see solve_network_simplex_arrays),
            # including its scale-relative balance threshold
            finite_supply = np.isfinite(supply)
            eps_supply = scale_eps(
                float(np.max(np.abs(supply[finite_supply]), initial=0.0))
            )
            total = 0.0
            for v in supply[supply > eps_supply].tolist():
                total += v
            balance = np.zeros(topo.n_real)
            balance[topo.n + topo.k] = total
            balance[topo.n + topo.k + 1] = -total
            self.balances.append(balance)
            row = _BatchRow(
                topo,
                self.cost2d[b, :m],
                self.cap2d[b, :m],
                self.state2d[b, :m],
                self.key2d[b, :m],
            )
            if trace:
                row.pivot_trace = []
            it.use_warm = it.slot is not None and warm_start_enabled()
            warm_basis = None
            if it.use_warm and it.slot.matches(topo.fp):
                warm_basis = it.slot.basis
            it.warm_basis_tried = warm_basis is not None
            row.begin(balance, warm_basis)
            self.rows.append(row)
            self.loops.append(
                _RowLoop(m, topo.block, budget.clock("ns"))
            )

    def solve(self) -> List[Tuple[bool, _BatchRow]]:
        """Run the bucket to optimality; returns per-row
        ``(feasible, row)`` with the full single-solve warm-start
        protocol applied (ambiguous warm rows redone cold)."""
        self.rounds = _run_lockstep(self.rows, self.loops, self.key2d)
        out: List[Tuple[bool, _BatchRow]] = []
        for b, it in enumerate(self.items):
            row = self.rows[b]
            lp = self.loops[b]
            row.pivots = lp.pivots
            row.degenerate_pivots = lp.degenerate
            balance = self.balances[b]
            feasible = row.finish(balance)
            cold = not row.warm_used
            if row.warm_used:
                if row.has_alternative_optima():
                    incr("warmstart.ambiguous")
                    row, feasible = self._redo_cold(b, lp.clock)
                    self.rows[b] = row
                    cold = True
                else:
                    incr("warmstart.hits")
                    if it.slot.cold_pivots > row.pivots:
                        incr(
                            "warmstart.pivots_saved",
                            it.slot.cold_pivots - row.pivots,
                        )
                    if verify_warm_start():
                        _verify_against_cold(
                            row,
                            feasible,
                            lambda b=b: self._cold_builder(b),
                            balance,
                            list(range(it.topo.m_arc)),
                        )
            elif it.use_warm:
                if it.warm_basis_tried:
                    incr("warmstart.rejected")
                else:
                    incr("warmstart.misses")
            if it.use_warm:
                it.slot.store(
                    it.topo.fp, row.export_basis(), row.pivots, cold
                )
            out.append((feasible, row))
        maybe_check(
            "kernel.batch.padding",
            self.state2d,
            [r.flow for r in self.rows],
            [it.topo.m for it in self.items],
        )
        return out

    def _fresh_cold_row(self, b: int) -> _BatchRow:
        """A new row over the same storage, cold-initialized — the
        batched equivalent of ``build(backend)`` in the serial warm
        verification (the storage rewrite is idempotent)."""
        topo = self.items[b].topo
        m = topo.m
        row = _BatchRow(
            topo,
            self.cost2d[b, :m],
            self.cap2d[b, :m],
            self.state2d[b, :m],
            self.key2d[b, :m],
        )
        return row

    def _cold_builder(self, b: int) -> ArraySimplex:
        """The serial ``build("array")`` equivalent for row ``b`` —
        used by the REPRO_VERIFY_WARMSTART cross-check, whose cold
        reference must run a complete ``solve()`` from the
        pre-artificial instance data (the row's own arrays already
        carry artificial columns)."""
        topo = self.items[b].topo
        m0 = topo.m0
        return ArraySimplex.from_arrays(
            topo.n_real,
            topo.tail[:m0].copy(),
            topo.head[:m0].copy(),
            self.cost2d[b, :m0].copy(),
            self.cap2d[b, :m0].copy(),
        )

    def _redo_cold(self, b: int, clock) -> Tuple[_BatchRow, bool]:
        """Ambiguous warm optimum: redo this row cold, identical to a
        never-warmed run (same storage, same clock, scalar loop)."""
        it = self.items[b]
        topo = it.topo
        row = self._fresh_cold_row(b)
        if _kernel.verify_kernel():
            row.pivot_trace = []
        balance = self.balances[b]
        row.begin(balance, None)
        lp = _RowLoop(topo.m, topo.block, clock)
        self.rounds += _finish_scalar(row, lp)
        self.loops[b] = lp
        row.pivots = lp.pivots
        row.degenerate_pivots = lp.degenerate
        feasible = row.finish(balance)
        return row, feasible

    # -- cross-kernel verification ------------------------------------
    def verify_row(self, b: int, feasible: bool, cold: bool) -> None:
        """REPRO_VERIFY_KERNEL: shadow-solve row ``b`` on the object
        kernel and require identical feasibility, flows, and — for
        cold solves — pivot count *and* the per-pivot entering-arc
        trace."""
        it = self.items[b]
        topo = it.topo
        row = self.rows[b]
        m0, m_arc = topo.m0, topo.m_arc
        shadow = _Simplex(topo.n_real)
        shadow.tail = topo.tail[:m0].tolist()
        shadow.head = topo.head[:m0].tolist()
        shadow.cost = self.cost2d[b, :m0].tolist()
        shadow.cap = self.cap2d[b, :m0].tolist()
        shadow.flow = [0.0] * m0
        shadow.state = [_LOWER] * m0
        shadow.pivot_trace = []
        shadow_feasible = shadow.solve(self.balances[b], clock=None)
        flows = np.array(row.flow[:m_arc], dtype=np.float64)
        shadow_flows = np.array(shadow.flow[:m_arc], dtype=np.float64)
        same = shadow_feasible == feasible and np.array_equal(
            flows, shadow_flows
        )
        if same and cold:
            same = (
                row.pivots == shadow.pivots
                and row.pivot_trace == shadow.pivot_trace
            )
        if not same:
            raise SolverNumericsError(
                "batched and object flow kernels disagree "
                "(REPRO_VERIFY_KERNEL)",
                solver="ns",
                context={
                    "backend": "batched",
                    "feasible": feasible,
                    "shadow_feasible": shadow_feasible,
                    "pivots": row.pivots,
                    "shadow_pivots": shadow.pivots,
                    "max_flow_delta": float(
                        np.max(
                            np.abs(flows - shadow_flows), initial=0.0
                        )
                    ),
                },
            )
        incr("kernel.verified")


@register("kernel.batch.padding")
def check_batch_padding(
    state2d: np.ndarray,
    flow_rows: Sequence[Sequence[float]],
    m_rows: Sequence[int],
) -> None:
    """Padding columns of a batch must be provably untouched: every
    row's flow vector has exactly its own topology's length (padding
    arcs cannot carry flow they were never given), and the stacked
    state matrix beyond each row's arc count still holds the pristine
    ``_LOWER`` fill (no pivot ever indexed a padding column)."""
    for b, m_b in enumerate(m_rows):
        if len(flow_rows[b]) != m_b:
            _fail(
                "kernel.batch.padding",
                f"row {b}: flow vector has {len(flow_rows[b])} entries, "
                f"topology has {m_b} arcs",
            )
        pad = state2d[b, m_b:]
        if pad.size and np.any(pad != _LOWER):
            _fail(
                "kernel.batch.padding",
                f"row {b}: padding arc state mutated "
                f"(arcs >= {m_b} were touched by the solver)",
            )


# ----------------------------------------------------------------------
# the batched relaxation-chain driver
# ----------------------------------------------------------------------
class _TaskState:
    """Per-task bookkeeping across the relaxation chain."""

    __slots__ = (
        "index", "supplies", "capacities", "costs", "finite", "total",
        "n", "k", "slot", "digest", "result", "stage", "done",
        "caps_stage", "topo", "use_warm", "warm_basis_tried",
    )

    def __init__(self, index: int, supplies, capacities, costs) -> None:
        self.index = index
        self.supplies = np.asarray(supplies, dtype=np.float64)
        self.capacities = np.asarray(capacities, dtype=np.float64)
        self.costs = np.asarray(costs, dtype=np.float64)
        self.finite = None
        self.total = 0.0
        self.n = 0
        self.k = 0
        self.slot = None
        self.digest = None
        self.result = None
        self.stage = 0
        self.done = False
        self.caps_stage = None
        self.topo = None
        self.use_warm = False
        self.warm_basis_tried = False


def bucket_task_indices(
    tasks: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> List[List[int]]:
    """Shape-bucket task indices by ``(n_supply, n_demand)`` in
    first-seen order — the unit of dispatch for the supervised pool
    under the batched backend (a bucket is requeued whole on a worker
    crash; results stay index-aligned regardless)."""
    buckets: "OrderedDict[tuple, List[int]]" = OrderedDict()
    for i, (_s, _c, costs) in enumerate(tasks):
        shape = np.asarray(costs).shape
        buckets.setdefault(shape, []).append(i)
    return list(buckets.values())


def batched_backend_active(method: str) -> bool:
    """True when window batches should route through this module:
    the batched backend is selected and the transport method is the
    network simplex (the only batchable backend)."""
    return method == "ns" and _kernel.get_flow_backend() == "batched"


def _bucket_result(
    it: _TaskState, feasible: bool, row: _BatchRow
) -> TransportResult:
    """Per-row result assembly + counters, replicating the serial
    ``_solve_ns`` tail and ``solve_transportation`` accounting."""
    topo = it.topo
    n, k = it.n, it.k
    incr("kernel.solves.batched")
    if row.degenerate_pivots:
        incr("ns.degenerate_pivots", row.degenerate_pivots)
    if row.stat_pricing_blocks:
        incr("kernel.pricing_blocks", row.stat_pricing_blocks)
        incr("kernel.pricing_arcs", row.stat_pricing_arcs)
    flows = np.array(row.flow[: topo.m_arc], dtype=np.float64)
    stats = TransportStats(pivots=row.pivots)
    if not feasible:
        result = TransportResult(False, np.zeros((n, k)), INF, stats)
    else:
        flow = np.zeros((n, k))
        flow[topo.src_idx, topo.snk_idx] = flows
        arc_costs = it.costs[topo.src_idx, topo.snk_idx]
        cost = float(np.dot(arc_costs, flows))
        result = TransportResult(True, flow, cost, stats)
    stats.method = "ns"
    stats.nodes = n + k
    stats.arcs = topo.m_arc
    incr("transport.solves")
    incr("transport.solves.ns")
    incr("transport.nodes", stats.nodes)
    incr("transport.arcs", stats.arcs)
    incr("transport.pivots", stats.pivots)
    incr("transport.augmenting_paths", stats.augmenting_paths)
    if not result.feasible:
        incr("transport.infeasible")
    return result


def solve_transportation_batched(
    tasks: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    chain: Tuple[Tuple[float, float], ...] = RELAX_CHAIN_WINDOW,
    method: str = "ns",
    warm_slots: Optional[Sequence[Optional[WarmStartSlot]]] = None,
) -> List[Tuple[TransportResult, int]]:
    """Batched equivalent of calling
    :func:`~repro.flows.transportation.solve_transportation_with_relaxation`
    on every task: same results, same stages, same counters, same
    warm-start protocol — but same-shaped instances of each relaxation
    stage are solved as one :class:`BatchedArraySimplex` call.

    ``warm_slots`` optionally passes one caller-owned
    :class:`~repro.flows.warmstart.WarmStartSlot` per task (else each
    ``ns`` task gets a private slot shared across its stages, exactly
    like the serial path); the exact-instance memo of caller-owned
    slots is honored.  Returns ``(result, stage)`` per task, in task
    order.  Non-``ns`` methods fall back to the serial path.
    """
    if method != "ns":
        return [
            solve_transportation_with_relaxation(
                s, c, co, chain=chain, method=method,
                warm_slot=(warm_slots[i] if warm_slots else None),
            )
            for i, (s, c, co) in enumerate(tasks)
        ]

    states: List[_TaskState] = []
    for i, (supplies, capacities, costs) in enumerate(tasks):
        it = _TaskState(i, supplies, capacities, costs)
        it.total = it.supplies.sum()
        slot = warm_slots[i] if warm_slots is not None else None
        if slot is not None and warm_start_enabled():
            # exact-instance memo of a caller-owned slot (see
            # solve_transportation_with_relaxation)
            h = hashlib.sha256()
            h.update(it.supplies.tobytes())
            h.update(it.capacities.tobytes())
            h.update(it.costs.tobytes())
            h.update(repr(chain).encode())
            h.update(method.encode())
            it.digest = h.digest()
            if slot.memo_digest == it.digest:
                incr("warmstart.instance_hits")
                memo, stage = slot.memo_value
                it.result = TransportResult(
                    memo.feasible, memo.flow.copy(), memo.cost, memo.stats
                )
                it.stage = stage
                it.done = True
                it.slot = slot
                # the serial path returns before the memo store; mark
                # this task store-free so the final loop skips it too
                it.digest = None
                states.append(it)
                continue
        it.slot = slot if slot is not None else WarmStartSlot()
        _validate(it.supplies, it.capacities, it.costs)
        it.n, it.k = it.costs.shape
        if it.n == 0:
            it.result = TransportResult(
                True, np.zeros((0, it.k)), 0.0
            )
            it.stage = 0
            it.done = True
            states.append(it)
            continue
        it.finite = np.isfinite(it.costs)
        if not np.all(it.finite.any(axis=1) | (it.supplies <= 0)):
            # quick-infeasible at every stage: the serial chain loops
            # through all stages and returns the last stage's (still
            # infeasible, counter-free) result
            it.result = TransportResult(
                False, np.zeros((it.n, it.k)), INF
            )
            it.stage = max(len(chain) - 1, 0)
            it.done = True
        states.append(it)

    for stage, (mult, frac) in enumerate(chain):
        alive = [it for it in states if not it.done]
        if not alive:
            break
        # shape-bucket this stage's survivors; the arc topology is
        # per-row (capacity relaxation can flip super-arc patterns
        # between stages), only the (n, k) shape must match to stack
        buckets: "OrderedDict[tuple, List[_TaskState]]" = OrderedDict()
        for it in alive:
            it.stage = stage
            it.caps_stage = it.capacities * mult + frac * it.total
            _validate(it.supplies, it.caps_stage, it.costs)
            buckets.setdefault((it.n, it.k), []).append(it)
        for bucket in buckets.values():
            if len(bucket) == 1:
                it = bucket[0]
                incr("kernel.batch.singletons")
                # single-instance buckets route through the plain
                # serial path — the array kernel, byte-identical
                it.result = solve_transportation(
                    it.supplies,
                    it.caps_stage,
                    it.costs,
                    method="ns",
                    warm_slot=it.slot,
                )
                continue
            for it in bucket:
                # same scale-relative threshold as the serial ns entry
                # point computes over concat([supplies, -caps])
                sup_all = np.concatenate([it.supplies, -it.caps_stage])
                finite_sup = np.isfinite(sup_all)
                eps_it = scale_eps(
                    float(np.max(np.abs(sup_all[finite_sup]), initial=0.0))
                )
                it.topo = _topology_for(
                    it.n,
                    it.k,
                    it.finite,
                    it.supplies > eps_it,
                    it.caps_stage > eps_it,
                )
            incr("kernel.batch.buckets")
            incr("kernel.batch.instances", len(bucket))
            t0 = time.process_time()
            batch = BatchedArraySimplex(bucket)
            solved = batch.solve()
            _kernel.add_kernel_cpu(
                "batched", time.process_time() - t0
            )
            m_max = batch.m_max
            padded = sum(m_max - it.topo.m for it in bucket)
            if padded:
                incr("kernel.batch.padded_arcs", padded)
            incr("kernel.batch.rounds", batch.rounds)
            if _kernel.verify_kernel():
                for b, (feasible, row) in enumerate(solved):
                    batch.verify_row(b, feasible, not row.warm_used)
            for b, it in enumerate(bucket):
                feasible, row = solved[b]
                it.result = _bucket_result(it, feasible, row)
        for it in alive:
            if it.result.feasible:
                it.done = True

    out: List[Tuple[TransportResult, int]] = []
    for it in states:
        if it.digest is not None and it.slot is not None:
            it.slot.memo_digest = it.digest
            it.slot.memo_value = (
                TransportResult(
                    it.result.feasible,
                    it.result.flow.copy(),
                    it.result.cost,
                    it.result.stats,
                ),
                it.stage,
            )
        out.append((it.result, it.stage))
    return out
