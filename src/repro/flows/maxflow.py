"""Maximum flow via Dinic's algorithm.

Capacities are floats (cell areas), so the implementation carries an
epsilon below which residual capacity counts as zero.  The feasibility
checks (Theorems 1 and 2 of the paper) only compare the max-flow value
against the total cell area, so float arithmetic is sufficient.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.flows.tolerances import BASE_EPS, magnitude, scale_eps
from repro.obs import incr

INF = float("inf")
EPS = BASE_EPS


@dataclass
class MaxFlowStats:
    """Effort accounting of one :meth:`Dinic.max_flow` call."""

    nodes: int = 0
    arcs: int = 0
    bfs_phases: int = 0
    augmenting_paths: int = 0
    value: float = 0.0

    def to_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "arcs": self.arcs,
            "bfs_phases": self.bfs_phases,
            "augmenting_paths": self.augmenting_paths,
            "value": self.value,
        }


class Dinic:
    """Dinic max-flow on a graph with hashable node keys.

    Arcs are added with :meth:`add_edge`; parallel arcs are allowed.
    After :meth:`max_flow`, :attr:`stats` holds size and effort counts.
    """

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        # adjacency: for each node, list of edge ids
        self._adj: List[List[int]] = []
        # edge arrays: to-node, residual capacity, id of reverse edge
        self._to: List[int] = []
        self._cap: List[float] = []
        self._eps = EPS
        self.stats = MaxFlowStats()

    def _node(self, key: Hashable) -> int:
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._adj)
            self._index[key] = idx
            self._adj.append([])
        return idx

    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> int:
        """Add a directed arc u -> v; returns the edge id (for flow
        readback via :meth:`flow_on`)."""
        if capacity < 0:
            raise ValueError("negative capacity")
        ui, vi = self._node(u), self._node(v)
        eid = len(self._to)
        self._to.append(vi)
        self._cap.append(capacity)
        self._adj[ui].append(eid)
        self._to.append(ui)
        self._cap.append(0.0)
        self._adj[vi].append(eid + 1)
        return eid

    def flow_on(self, edge_id: int) -> float:
        """Flow routed over the arc with the given id (after max_flow)."""
        return self._cap[edge_id ^ 1]

    # ------------------------------------------------------------------
    def _bfs_levels(self, s: int, t: int) -> Optional[List[int]]:
        level = [-1] * len(self._adj)
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for eid in self._adj[u]:
                v = self._to[eid]
                if level[v] < 0 and self._cap[eid] > self._eps:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[t] >= 0 else None

    def _dfs_push(
        self,
        u: int,
        t: int,
        pushed: float,
        level: List[int],
        it: List[int],
    ) -> float:
        if u == t:
            return pushed
        while it[u] < len(self._adj[u]):
            eid = self._adj[u][it[u]]
            v = self._to[eid]
            if self._cap[eid] > self._eps and level[v] == level[u] + 1:
                d = self._dfs_push(
                    v, t, min(pushed, self._cap[eid]), level, it
                )
                if d > self._eps:
                    self._cap[eid] -= d
                    self._cap[eid ^ 1] += d
                    return d
            it[u] += 1
        return 0.0

    def max_flow(self, source: Hashable, sink: Hashable) -> float:
        """Maximum s-t flow value."""
        s, t = self._node(source), self._node(sink)
        # residual-capacity epsilon scales with the largest capacity so
        # that million-cell areas don't leave "residual" float dust
        # that the absolute 1e-9 would treat as routable
        self._eps = scale_eps(magnitude(self._cap))
        stats = self.stats = MaxFlowStats(
            nodes=len(self._adj), arcs=len(self._to) // 2
        )
        total = 0.0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                break
            stats.bfs_phases += 1
            it = [0] * len(self._adj)
            while True:
                pushed = self._dfs_push(s, t, INF, level, it)
                if pushed <= self._eps:
                    break
                total += pushed
                stats.augmenting_paths += 1
        stats.value = total
        incr("maxflow.solves")
        incr("maxflow.nodes", stats.nodes)
        incr("maxflow.arcs", stats.arcs)
        incr("maxflow.bfs_phases", stats.bfs_phases)
        incr("maxflow.augmenting_paths", stats.augmenting_paths)
        return total

    def min_cut_reachable(self, source: Hashable) -> List[Hashable]:
        """Nodes reachable from the source in the final residual graph
        (the source side of a minimum cut)."""
        s = self._node(source)
        seen = [False] * len(self._adj)
        seen[s] = True
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for eid in self._adj[u]:
                v = self._to[eid]
                if not seen[v] and self._cap[eid] > self._eps:
                    seen[v] = True
                    queue.append(v)
        rev = {i: k for k, i in self._index.items()}
        return [rev[i] for i, flag in enumerate(seen) if flag]


def max_flow_value(
    edges: Dict[tuple, float], source: Hashable, sink: Hashable
) -> float:
    """Convenience wrapper: max flow over ``{(u, v): capacity}`` arcs."""
    dinic = Dinic()
    for (u, v), cap in edges.items():
        dinic.add_edge(u, v, cap)
    return dinic.max_flow(source, sink)
