"""Network simplex for min-cost flow.

The paper computes its FBP flows with "a (sequential) NetworkSimplex
algorithm"; this module provides one, as a third interchangeable
backend besides the successive-shortest-path solver and the HiGHS LP.

Implementation notes
--------------------
Classic primal network simplex on the bounded-arc formulation:

* the instance is first transformed like the other backends (super
  source/sink absorb supplies and demand capacities), so all node
  balances are zero except ``s`` and ``t``;
* a strongly feasible-ish start: an artificial root node connected to
  every node by big-M arcs carrying the initial imbalance;
* spanning tree kept as parent/parent-arc/depth arrays with child
  lists; entering arcs picked by block pricing (Dantzig within a
  block); the pivot cycle is found by walking both endpoints to their
  common ancestor; ties in the leaving-arc choice break by smallest
  arc id (a Bland-style guard against cycling);
* after a pivot, potentials are updated only on the reattached subtree.

Infeasibility = any artificial arc still carrying flow at optimality.

Resilience: the pivot loop ticks a
:class:`~repro.resilience.budget.BudgetClock` (iteration/wall-time
limits -> :class:`SolverBudgetExceeded`), runs of degenerate pivots
force an early switch to Bland's rule, and apparent cycling under
Bland (which terminates finitely when arithmetic is exact, so a long
degenerate run there means the float comparisons have broken down) or
non-finite pivot state raises
:class:`~repro.resilience.errors.SolverNumericsError`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.obs import incr
from repro.resilience.budget import BudgetClock
from repro.resilience.errors import SolverNumericsError

INF = float("inf")
EPS = 1e-9

_LOWER, _TREE, _UPPER = 0, 1, 2


class _Simplex:
    """Network simplex core on integer node ids."""

    def __init__(self, n: int) -> None:
        self.n = n  # real nodes; root is node n
        self.tail: List[int] = []
        self.head: List[int] = []
        self.cost: List[float] = []
        self.cap: List[float] = []
        self.flow: List[float] = []
        self.state: List[int] = []
        self.pivots = 0  # pivot count of the last solve()
        self.degenerate_pivots = 0  # zero-delta pivots of the last solve()

    def add_arc(self, u: int, v: int, cost: float, cap: float) -> int:
        self.tail.append(u)
        self.head.append(v)
        self.cost.append(cost)
        self.cap.append(cap)
        self.flow.append(0.0)
        self.state.append(_LOWER)
        return len(self.tail) - 1

    # ------------------------------------------------------------------
    def solve(
        self,
        balance: List[float],
        clock: Optional[BudgetClock] = None,
    ) -> bool:
        """Optimize; returns True when no artificial arc carries flow."""
        n, root = self.n, self.n
        num_real = len(self.tail)
        max_cost = max((abs(c) for c in self.cost), default=1.0)
        big_m = (n + 1) * (max_cost + 1.0)

        # artificial tree arcs
        self.parent = [root] * (n + 1)
        self.parent_arc = [-1] * (n + 1)
        self.depth = [1] * (n + 1)
        self.children: List[List[int]] = [[] for _ in range(n + 1)]
        self.parent[root] = -1
        self.depth[root] = 0
        self.pi = [0.0] * (n + 1)
        artificial: List[int] = []
        for v in range(n):
            b = balance[v]
            if b >= 0:
                # tree arc v -> root: 0 = M - pi[v] + pi[root]
                aid = self.add_arc(v, root, big_m, INF)
                self.flow[aid] = b
                self.pi[v] = big_m
            else:
                # tree arc root -> v: 0 = M - pi[root] + pi[v]
                aid = self.add_arc(root, v, big_m, INF)
                self.flow[aid] = -b
                self.pi[v] = -big_m
            self.state[aid] = _TREE
            artificial.append(aid)
            self.parent_arc[v] = aid
            self.children[root].append(v)

        m = len(self.tail)
        block = max(int(np.sqrt(m)) + 10, 20)
        scan_start = 0
        # Dantzig/block pricing can cycle on degenerate pivots; after a
        # generous budget — or a long *consecutive* run of degenerate
        # pivots, the actual cycling signature — switch to Bland's
        # rule (smallest eligible arc id), which terminates finitely.
        dantzig_budget = 40 * m + 400
        degenerate_trigger = 2 * m + 40
        # Under Bland, cycling is impossible with exact arithmetic; a
        # run this long means the epsilon comparisons have broken down.
        bland_cycle_cap = 10 * m + 1000
        pivots = 0
        degenerate = 0
        consecutive_degenerate = 0
        use_bland = False
        while True:
            if clock is not None:
                clock.tick()
            use_bland = use_bland or (
                pivots >= dantzig_budget
                or consecutive_degenerate >= degenerate_trigger
            )
            if use_bland:
                entering = self._find_entering_bland()
            else:
                entering = self._find_entering(block, scan_start)
            if entering is None:
                break
            scan_start = (entering + 1) % m
            delta = self._pivot(entering)
            if not math.isfinite(delta):
                raise SolverNumericsError(
                    "network simplex pivot produced non-finite flow change",
                    solver="ns",
                )
            pivots += 1
            if delta <= EPS:
                degenerate += 1
                consecutive_degenerate += 1
                if use_bland and consecutive_degenerate >= bland_cycle_cap:
                    raise SolverNumericsError(
                        f"network simplex appears to be cycling "
                        f"({consecutive_degenerate} consecutive degenerate "
                        f"pivots under Bland's rule)",
                        solver="ns",
                        context={"pivots": pivots},
                    )
            else:
                consecutive_degenerate = 0

        self.pivots = pivots
        self.degenerate_pivots = degenerate
        return all(self.flow[a] <= EPS for a in artificial)

    def _find_entering_bland(self) -> Optional[int]:
        for a in range(len(self.tail)):
            if self.state[a] == _LOWER and self._reduced_cost(a) < -EPS:
                return a
            if self.state[a] == _UPPER and self._reduced_cost(a) > EPS:
                return a
        return None

    # ------------------------------------------------------------------
    def _reduced_cost(self, a: int) -> float:
        return self.cost[a] - self.pi[self.tail[a]] + self.pi[self.head[a]]

    def _find_entering(self, block: int, start: int) -> Optional[int]:
        m = len(self.tail)
        best: Optional[Tuple[float, int]] = None
        scanned = 0
        i = start
        while scanned < m:
            upper = min(block, m - scanned)
            for _ in range(upper):
                a = i
                i = (i + 1) % m
                if self.state[a] == _LOWER:
                    rc = self._reduced_cost(a)
                    if rc < -EPS and (best is None or rc < best[0]):
                        best = (rc, a)
                elif self.state[a] == _UPPER:
                    rc = self._reduced_cost(a)
                    if rc > EPS and (best is None or -rc < best[0]):
                        best = (-rc, a)
            scanned += upper
            if best is not None:
                return best[1]
        return None

    def _pivot(self, entering: int) -> float:
        """Execute one pivot; returns the flow change |delta| around
        the cycle (0.0 for a degenerate pivot)."""
        # orientation: push along the entering arc's direction when it
        # enters from LOWER, against it when from UPPER
        forward = self.state[entering] == _LOWER
        u = self.tail[entering] if forward else self.head[entering]
        v = self.head[entering] if forward else self.tail[entering]

        # collect the cycle: walk u and v up to their common ancestor
        path_u: List[int] = []  # arcs from u upward
        path_v: List[int] = []
        a, b = u, v
        while a != b:
            if self.depth[a] >= self.depth[b]:
                path_u.append(a)
                a = self.parent[a]
            else:
                path_v.append(b)
                b = self.parent[b]

        # cycle arcs with their push direction (+1 = along arc).  The
        # entering arc carries u -> v; the conservation cycle returns
        # v -> ancestor -> u through the tree.
        cycle: List[Tuple[int, int]] = [
            (entering, 1 if forward else -1)
        ]
        # u-side: return flow runs ancestor -> node (downward toward u),
        # which is along the tree arc when it points at the node
        for node in path_u:
            arc = self.parent_arc[node]
            cycle.append((arc, 1 if self.head[arc] == node else -1))
        # v-side: return flow runs node -> parent (upward from v)
        for node in path_v:
            arc = self.parent_arc[node]
            cycle.append((arc, 1 if self.tail[arc] == node else -1))

        delta = INF
        leaving = entering
        for arc, direction in cycle:
            room = (
                self.cap[arc] - self.flow[arc]
                if direction > 0
                else self.flow[arc]
            )
            if room < delta - EPS or (
                room <= delta + EPS and arc < leaving
            ):
                delta = min(delta, room)
                leaving = arc
        if delta == INF:
            raise SolverNumericsError(
                "network simplex: unbounded pivot cycle", solver="ns"
            )

        # apply the flow change around the cycle
        if delta > 0:
            for arc, direction in cycle:
                self.flow[arc] += direction * delta

        if leaving == entering:
            # the entering arc saturates: toggle its bound state
            self.state[entering] = _UPPER if forward else _LOWER
            return delta

        # tree update: entering becomes a tree arc, leaving becomes
        # LOWER/UPPER depending on which bound it hit
        if self.flow[leaving] <= EPS:
            self.state[leaving] = _LOWER
        else:
            self.state[leaving] = _UPPER
        self.state[entering] = _TREE

        # the leaving arc disconnects a subtree; reattach it via the
        # entering arc.  Identify the subtree root: the deeper endpoint
        # of the leaving arc.
        lu, lv = self.tail[leaving], self.head[leaving]
        sub_root = lu if self.depth[lu] > self.depth[lv] else lv

        # the entering arc connects u-side and v-side; the endpoint
        # inside the detached subtree becomes its new root
        inside = (
            u if self._in_subtree(u, sub_root) else v
        )
        # re-root the subtree at `inside` by reversing parent pointers
        self._detach(sub_root)
        self._reroot(inside, sub_root)
        # hang it below the other endpoint of the entering arc
        outside = v if inside == u else u
        self.parent[inside] = outside
        self.parent_arc[inside] = entering
        self.children[outside].append(inside)
        self._refresh_subtree(inside)
        return delta

    # ------------------------------------------------------------------
    def _in_subtree(self, node: int, sub_root: int) -> bool:
        a = node
        while a != -1:
            if a == sub_root:
                return True
            if self.depth[a] < self.depth[sub_root]:
                return False
            a = self.parent[a]
        return False

    def _detach(self, sub_root: int) -> None:
        p = self.parent[sub_root]
        if p != -1:
            self.children[p].remove(sub_root)
        self.parent[sub_root] = -1
        self.parent_arc[sub_root] = -1

    def _reroot(self, new_root: int, old_root: int) -> None:
        """Reverse parent pointers on the path new_root -> old_root."""
        path = [new_root]
        while path[-1] != old_root:
            path.append(self.parent[path[-1]])
        # capture the connecting arcs before any mutation: reversing a
        # pair overwrites parent_arc entries later pairs still need
        arcs = [self.parent_arc[path[i]] for i in range(len(path) - 1)]
        for i in range(len(path) - 1):
            child, parent = path[i], path[i + 1]
            # reverse: parent becomes child's child
            self.children[parent].remove(child)
            self.children[child].append(parent)
            self.parent[parent] = child
            self.parent_arc[parent] = arcs[i]
        self.parent[new_root] = -1
        self.parent_arc[new_root] = -1

    def _refresh_subtree(self, sub_root: int) -> None:
        """Recompute depth and potential for the reattached subtree."""
        stack = [sub_root]
        while stack:
            node = stack.pop()
            p = self.parent[node]
            arc = self.parent_arc[node]
            self.depth[node] = self.depth[p] + 1
            if self.tail[arc] == node:  # arc node -> p
                self.pi[node] = self.pi[p] + self.cost[arc]
            else:  # arc p -> node
                self.pi[node] = self.pi[p] - self.cost[arc]
            stack.extend(self.children[node])


def solve_network_simplex(
    supplies: Dict[Hashable, float],
    arcs,
    clock: Optional[BudgetClock] = None,
) -> Tuple[bool, float, np.ndarray, int]:
    """Solve a min-cost flow instance (same semantics as the other
    backends: positive supplies, negative demands-as-capacities).

    ``clock`` is ticked once per pivot (budget enforcement).  Returns
    ``(feasible, cost, flows_per_input_arc, pivots)``.
    """
    index = {k: i for i, k in enumerate(supplies)}
    n = len(index)
    sx = _Simplex(n + 2)
    s_node, t_node = n, n + 1

    arc_ids = []
    for arc in arcs:
        arc_ids.append(
            sx.add_arc(index[arc.tail], index[arc.head], arc.cost, arc.capacity)
        )
    total_supply = 0.0
    balance = [0.0] * (n + 2)
    for key, b in supplies.items():
        if b > EPS:
            sx.add_arc(s_node, index[key], 0.0, b)
            total_supply += b
        elif b < -EPS:
            sx.add_arc(index[key], t_node, 0.0, -b)
    balance[s_node] = total_supply
    balance[t_node] = -total_supply

    feasible = sx.solve(balance, clock=clock)
    if sx.degenerate_pivots:
        incr("ns.degenerate_pivots", sx.degenerate_pivots)
    flows = np.array([sx.flow[a] for a in arc_ids], dtype=np.float64)
    cost = float(
        sum(f * a.cost for f, a in zip(flows, arcs))
    )
    return feasible, cost, flows, sx.pivots
