"""Network simplex for min-cost flow.

The paper computes its FBP flows with "a (sequential) NetworkSimplex
algorithm"; this module provides one, as a third interchangeable
backend besides the successive-shortest-path solver and the HiGHS LP.

Implementation notes
--------------------
Classic primal network simplex on the bounded-arc formulation:

* the instance is first transformed like the other backends (super
  source/sink absorb supplies and demand capacities), so all node
  balances are zero except ``s`` and ``t``;
* a strongly feasible-ish start: an artificial root node connected to
  every node by big-M arcs carrying the initial imbalance;
* spanning tree kept as parent/parent-arc/depth arrays with child
  lists; entering arcs picked by block pricing (Dantzig within a
  block); the pivot cycle is found by walking both endpoints to their
  common ancestor; ties in the leaving-arc choice break by smallest
  arc id (a Bland-style guard against cycling);
* after a pivot, potentials are updated only on the reattached subtree.

Infeasibility = any artificial arc still carrying flow at optimality.

Two interchangeable kernels execute this algorithm: the scalar
object/list implementation in this module (:class:`_Simplex`) and the
structure-of-arrays kernel of :mod:`repro.flows.kernel`
(:class:`~repro.flows.kernel.ArraySimplex`), which vectorizes block
pricing, flow recomputation and basis validation with numpy while
keeping every comparison and accumulation order bit-identical.  The
kernel is chosen by the :mod:`repro.flows.kernel` registry
(``--flow-backend``/``REPRO_FLOW_BACKEND``, default ``array``) and the
identity contract is enforceable at runtime via
``REPRO_VERIFY_KERNEL=1`` (every solve re-runs on the other kernel and
any divergence raises).

Warm starts: callers that re-solve the same arc topology (capacity
relaxation chains, ``--relax-infeasible`` model re-solves) pass a
:class:`~repro.flows.warmstart.WarmStartSlot`; the previous solve's
spanning-tree basis is re-flowed against the new balances and pivoting
continues from there instead of from the all-artificial tree.  Flows
are canonically recomputed from the final basis after *every* solve,
and a warm solve whose optimum is ambiguous (a nonbasic arc with zero
reduced cost admitting a non-degenerate pivot — i.e. alternative
optimal flows exist) is redone cold, so warm and cold solves return
identical results (see :mod:`repro.flows.warmstart`).

Numeric tolerances are scale-relative (:mod:`repro.flows.tolerances`):
reduced-cost tests scale with the instance's largest |cost|, flow and
degeneracy tests with its largest capacity/balance.  The historical
absolute ``1e-9`` misclassified legitimate degenerate runs on
large-cost instances as cycling (:class:`SolverNumericsError`).

Resilience: the pivot loop ticks a
:class:`~repro.resilience.budget.BudgetClock` (iteration/wall-time
limits -> :class:`SolverBudgetExceeded`), runs of degenerate pivots
force an early switch to Bland's rule, and apparent cycling under
Bland (which terminates finitely when arithmetic is exact, so a long
degenerate run there means the float comparisons have broken down) or
non-finite pivot state raises
:class:`~repro.resilience.errors.SolverNumericsError`.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.obs import incr
from repro.resilience.budget import BudgetClock
from repro.resilience.errors import SolverNumericsError
from repro.flows.tolerances import BASE_EPS, magnitude, scale_eps
from repro.flows.warmstart import (
    NSBasis,
    WarmStartSlot,
    fingerprint,
    verify_warm_start,
    warm_start_enabled,
)

INF = float("inf")
EPS = BASE_EPS  # backward-compatible name; significance tests only

_LOWER, _TREE, _UPPER = 0, 1, 2


class _Simplex:
    """Network simplex core on integer node ids."""

    def __init__(self, n: int) -> None:
        self.n = n  # real nodes; root is node n
        self.tail: List[int] = []
        self.head: List[int] = []
        self.cost: List[float] = []
        self.cap: List[float] = []
        self.flow: List[float] = []
        self.state: List[int] = []
        self.pivots = 0  # pivot count of the last solve()
        self.degenerate_pivots = 0  # zero-delta pivots of the last solve()
        self.warm_used = False  # last solve() started from a warm basis
        #: when a list is installed here, every executed pivot appends
        #: its entering arc id — the per-pivot trace the differential
        #: tests compare across kernels (None = no tracing, zero cost)
        self.pivot_trace: Optional[List[int]] = None
        self.eps_cost = BASE_EPS
        self.eps_flow = BASE_EPS

    def add_arc(self, u: int, v: int, cost: float, cap: float) -> int:
        self.tail.append(u)
        self.head.append(v)
        self.cost.append(cost)
        self.cap.append(cap)
        self.flow.append(0.0)
        self.state.append(_LOWER)
        return len(self.tail) - 1

    # ------------------------------------------------------------------
    def solve(
        self,
        balance: List[float],
        clock: Optional[BudgetClock] = None,
        warm_basis: Optional[NSBasis] = None,
    ) -> bool:
        """Optimize; returns True when no artificial arc carries flow."""
        n = self.n
        max_cost = self._max_abs_cost()
        big_m = (n + 1) * (max_cost + 1.0)
        # scale-relative tolerances: cost comparisons scale with the
        # largest |cost|, flow comparisons with the largest finite
        # capacity / balance (floor: the historical absolute 1e-9)
        self.eps_cost = scale_eps(max_cost)
        self.eps_flow = scale_eps(self._flow_scale(balance))
        self._big_m = big_m

        # artificial arcs v<->root (direction from the balance sign);
        # created identically for cold and warm solves so arc ids align
        # with a recorded basis of the same topology
        self._add_artificials(balance, big_m)

        self.warm_used = False
        if warm_basis is not None and self._try_warm_init(warm_basis, balance):
            self.warm_used = True
        else:
            self._cold_init(balance)

        m = len(self.tail)
        block = max(int(np.sqrt(m)) + 10, 20)
        scan_start = 0
        # Dantzig/block pricing can cycle on degenerate pivots; after a
        # generous budget — or a long *consecutive* run of degenerate
        # pivots, the actual cycling signature — switch to Bland's
        # rule (smallest eligible arc id), which terminates finitely.
        dantzig_budget = 40 * m + 400
        degenerate_trigger = 2 * m + 40
        # Under Bland, cycling is impossible with exact arithmetic; a
        # run this long means the epsilon comparisons have broken down.
        bland_cycle_cap = 10 * m + 1000
        pivots = 0
        degenerate = 0
        consecutive_degenerate = 0
        use_bland = False
        # loop-invariant hoists: tick/trace/eps/find/pivot are fixed
        # for the whole solve, and this loop runs once per pivot
        tick = clock.tick if clock is not None else None
        trace = self.pivot_trace
        eps_flow = self.eps_flow
        find_entering = self._find_entering
        do_pivot = self._pivot
        while True:
            if tick is not None:
                tick()
            use_bland = use_bland or (
                pivots >= dantzig_budget
                or consecutive_degenerate >= degenerate_trigger
            )
            if use_bland:
                entering = self._find_entering_bland()
            else:
                entering = find_entering(block, scan_start)
            if entering is None:
                break
            scan_start = (entering + 1) % m
            if trace is not None:
                trace.append(entering)
            delta = do_pivot(entering)
            if not math.isfinite(delta):
                raise SolverNumericsError(
                    "network simplex pivot produced non-finite flow change",
                    solver="ns",
                )
            pivots += 1
            if delta <= eps_flow:
                degenerate += 1
                consecutive_degenerate += 1
                if use_bland and consecutive_degenerate >= bland_cycle_cap:
                    raise SolverNumericsError(
                        f"network simplex appears to be cycling "
                        f"({consecutive_degenerate} consecutive degenerate "
                        f"pivots under Bland's rule)",
                        solver="ns",
                        context={"pivots": pivots},
                    )
            else:
                consecutive_degenerate = 0

        self.pivots = pivots
        self.degenerate_pivots = degenerate
        # canonical flow recomputation: the returned flows are a pure
        # function of (final basis, instance data), independent of the
        # pivot path that reached the basis — the mechanism behind the
        # warm == cold identity contract
        if not self._recompute_flows(balance):
            raise SolverNumericsError(
                "network simplex basis flows violate arc bounds at "
                "optimality (beyond scaled tolerance)",
                solver="ns",
            )
        return self._artificials_clear()

    # ------------------------------------------------------------------
    # instance scans and artificial-arc setup (overridden by the
    # array kernel with vectorized equivalents; see repro.flows.kernel)
    # ------------------------------------------------------------------
    def _max_abs_cost(self) -> float:
        return max((abs(c) for c in self.cost), default=1.0)

    def _flow_scale(self, balance: List[float]) -> float:
        return max(magnitude(self.cap), magnitude(balance))

    def _add_artificials(self, balance: List[float], big_m: float) -> None:
        n, root = self.n, self.n
        self.artificial: List[int] = []
        for v in range(n):
            if balance[v] >= 0:
                aid = self.add_arc(v, root, big_m, INF)
            else:
                aid = self.add_arc(root, v, big_m, INF)
            self.artificial.append(aid)

    def _artificials_clear(self) -> bool:
        return all(self.flow[a] <= self.eps_flow for a in self.artificial)

    # ------------------------------------------------------------------
    # basis initialization
    # ------------------------------------------------------------------
    def _cold_init(self, balance: List[float]) -> None:
        """All-artificial big-M starting tree (the classic cold start)."""
        n, root = self.n, self.n
        big_m = self._big_m
        self.parent = [root] * (n + 1)
        self.parent_arc = [-1] * (n + 1)
        self.depth = [1] * (n + 1)
        # child sets as insertion-ordered dicts: iteration matches the
        # list-append order exactly, but unlinking a child is O(1)
        # instead of an O(degree) list scan — the root and the region
        # nodes of transportation networks have hundreds of children
        self.children: List[Dict[int, None]] = [{} for _ in range(n + 1)]
        self.parent[root] = -1
        self.depth[root] = 0
        self.pi = [0.0] * (n + 1)
        for a in range(len(self.tail)):
            self.state[a] = _LOWER
            self.flow[a] = 0.0
        for v in range(n):
            aid = self.artificial[v]
            b = balance[v]
            if b >= 0:
                # tree arc v -> root: 0 = M - pi[v] + pi[root]
                self.flow[aid] = b
                self.pi[v] = big_m
            else:
                # tree arc root -> v: 0 = M - pi[root] + pi[v]
                self.flow[aid] = -b
                self.pi[v] = -big_m
            self.state[aid] = _TREE
            self.parent_arc[v] = aid
            self.children[root][v] = None

    def _try_warm_init(self, basis: NSBasis, balance: List[float]) -> bool:
        """Install a previous basis and re-flow it for the new data.

        Non-destructive until the basis is fully validated: a spanning
        tree over all nodes, every tree arc connecting its child to its
        parent, and the recomputed flows within arc bounds.  Any
        failure leaves the caller to cold-start.
        """
        n, root = self.n, self.n
        m = len(self.tail)
        n_nodes = n + 1
        if basis.n_nodes != n_nodes or basis.n_arcs != m:
            return False
        parent = list(basis.parent)
        parent_arc = list(basis.parent_arc)
        state = list(basis.state)
        if len(parent) != n_nodes or len(state) != m:
            return False
        if parent[root] != -1:
            return False
        children: List[Dict[int, None]] = [{} for _ in range(n_nodes)]
        tree_arcs = 0
        for v in range(n_nodes):
            if v == root:
                continue
            p = parent[v]
            a = parent_arc[v]
            if not (0 <= p < n_nodes) or not (0 <= a < m):
                return False
            if state[a] != _TREE:
                return False
            if not (
                (self.tail[a] == v and self.head[a] == p)
                or (self.tail[a] == p and self.head[a] == v)
            ):
                return False
            children[p][v] = None
        for s in state:
            if s == _TREE:
                tree_arcs += 1
        if tree_arcs != n_nodes - 1:
            return False

        # reachability from the root doubles as the cycle check, and
        # fills depths/potentials in one traversal
        depth = [0] * n_nodes
        pi = [0.0] * n_nodes
        seen = 1
        stack = [root]
        while stack:
            node = stack.pop()
            for c in children[node]:
                a = parent_arc[c]
                depth[c] = depth[node] + 1
                if self.tail[a] == c:  # arc c -> node
                    pi[c] = pi[node] + self.cost[a]
                else:  # arc node -> c
                    pi[c] = pi[node] - self.cost[a]
                seen += 1
                stack.append(c)
        if seen != n_nodes:
            return False

        self.parent = parent
        self.parent_arc = parent_arc
        self.children = children
        self.depth = depth
        self.pi = pi
        for a in range(m):
            self.state[a] = state[a]
        if self._recompute_flows(balance):
            return True
        # Typical after a capacity relaxation: arcs recorded at UPPER
        # re-flow at the new (larger) bound and overship.  Demote every
        # nonbasic arc to LOWER — the tree (and hence the duals) is
        # unchanged, and pivoting repairs the primal — before giving
        # up on the basis entirely.
        for a in range(m):
            if self.state[a] == _UPPER:
                self.state[a] = _LOWER
        if self._recompute_flows(balance):
            return True
        # basis is primal-infeasible for the new data: reject (the
        # caller cold-starts; _cold_init resets all mutated state)
        return False

    def _recompute_flows(self, balance: List[float]) -> bool:
        """Derive all arc flows from (basis states, tree, balances).

        Nonbasic arcs sit at their bound (LOWER -> 0, UPPER -> cap);
        tree-arc flows follow by leaf-to-root elimination of node
        residuals in deterministic (depth desc, node id asc) order.
        Returns False when any derived flow violates its arc bounds by
        more than the scaled tolerance; violations within tolerance are
        clamped onto the bound.
        """
        m = len(self.tail)
        eps = self.eps_flow
        resid = list(balance) + [0.0]  # + the artificial root's zero balance
        for a in range(m):
            st = self.state[a]
            if st == _TREE:
                continue
            if st == _LOWER:
                f = 0.0
            else:
                f = self.cap[a]
                if not math.isfinite(f):
                    return False  # an uncapacitated arc cannot sit at UPPER
            self.flow[a] = f
            if f != 0.0:
                resid[self.tail[a]] -= f
                resid[self.head[a]] += f

        order = sorted(range(self.n + 1), key=lambda v: (-self.depth[v], v))
        for v in order:
            if self.parent[v] == -1:
                continue  # root
            a = self.parent_arc[v]
            r = resid[v]
            f = r if self.tail[a] == v else -r
            if f < -eps or f > self.cap[a] + eps:
                return False
            if f < 0.0:
                f = 0.0
            elif f > self.cap[a]:
                f = self.cap[a]
            self.flow[a] = f
            resid[self.parent[v]] += r
        return True

    def export_basis(self) -> NSBasis:
        """Snapshot the current basis for a future warm start."""
        return NSBasis(
            list(self.parent),
            list(self.parent_arc),
            list(self.state),
            self.n + 1,
            len(self.tail),
        )

    # ------------------------------------------------------------------
    # pricing
    # ------------------------------------------------------------------
    def _find_entering_bland(self) -> Optional[int]:
        for a in range(len(self.tail)):
            if self.state[a] == _LOWER and self._reduced_cost(a) < -self.eps_cost:
                return a
            if self.state[a] == _UPPER and self._reduced_cost(a) > self.eps_cost:
                return a
        return None

    def _reduced_cost(self, a: int) -> float:
        return self.cost[a] - self.pi[self.tail[a]] + self.pi[self.head[a]]

    def _find_entering(self, block: int, start: int) -> Optional[int]:
        m = len(self.tail)
        eps = self.eps_cost
        best: Optional[Tuple[float, int]] = None
        scanned = 0
        i = start
        while scanned < m:
            upper = min(block, m - scanned)
            for _ in range(upper):
                a = i
                i = (i + 1) % m
                if self.state[a] == _LOWER:
                    rc = self._reduced_cost(a)
                    if rc < -eps and (best is None or rc < best[0]):
                        best = (rc, a)
                elif self.state[a] == _UPPER:
                    rc = self._reduced_cost(a)
                    if rc > eps and (best is None or -rc < best[0]):
                        best = (-rc, a)
            scanned += upper
            if best is not None:
                return best[1]
        return None

    # ------------------------------------------------------------------
    # pivoting
    # ------------------------------------------------------------------
    def _cycle(self, entering: int, forward: bool) -> List[Tuple[int, int]]:
        """The pivot cycle of ``entering`` as (arc, push direction).

        ``+1`` pushes along the arc, ``-1`` against it; the entering
        arc carries u -> v and the tree path returns v -> ... -> u.
        """
        u = self.tail[entering] if forward else self.head[entering]
        v = self.head[entering] if forward else self.tail[entering]
        path_u: List[int] = []  # nodes from u upward
        path_v: List[int] = []
        a, b = u, v
        while a != b:
            if self.depth[a] >= self.depth[b]:
                path_u.append(a)
                a = self.parent[a]
            else:
                path_v.append(b)
                b = self.parent[b]
        cycle: List[Tuple[int, int]] = [(entering, 1 if forward else -1)]
        # u-side: return flow runs ancestor -> node (downward toward u),
        # which is along the tree arc when it points at the node
        for node in path_u:
            arc = self.parent_arc[node]
            cycle.append((arc, 1 if self.head[arc] == node else -1))
        # v-side: return flow runs node -> parent (upward from v)
        for node in path_v:
            arc = self.parent_arc[node]
            cycle.append((arc, 1 if self.tail[arc] == node else -1))
        return cycle

    def _pivot(self, entering: int) -> float:
        """Execute one pivot; returns the flow change |delta| around
        the cycle (0.0 for a degenerate pivot)."""
        # orientation: push along the entering arc's direction when it
        # enters from LOWER, against it when from UPPER
        forward = self.state[entering] == _LOWER
        u = self.tail[entering] if forward else self.head[entering]
        v = self.head[entering] if forward else self.tail[entering]
        cycle = self._cycle(entering, forward)

        eps = self.eps_flow
        delta = INF
        leaving = entering
        for arc, direction in cycle:
            room = (
                self.cap[arc] - self.flow[arc]
                if direction > 0
                else self.flow[arc]
            )
            if room < delta - eps or (
                room <= delta + eps and arc < leaving
            ):
                delta = min(delta, room)
                leaving = arc
        if delta == INF:
            raise SolverNumericsError(
                "network simplex: unbounded pivot cycle", solver="ns"
            )

        # apply the flow change around the cycle
        if delta > 0:
            for arc, direction in cycle:
                self.flow[arc] += direction * delta

        if leaving == entering:
            # the entering arc saturates: toggle its bound state
            self.state[entering] = _UPPER if forward else _LOWER
            return delta

        # tree update: entering becomes a tree arc, leaving becomes
        # LOWER/UPPER depending on which bound it hit
        if self.flow[leaving] <= eps:
            self.state[leaving] = _LOWER
        else:
            self.state[leaving] = _UPPER
        self.state[entering] = _TREE

        # the leaving arc disconnects a subtree; reattach it via the
        # entering arc.  Identify the subtree root: the deeper endpoint
        # of the leaving arc.
        lu, lv = self.tail[leaving], self.head[leaving]
        sub_root = lu if self.depth[lu] > self.depth[lv] else lv

        # the entering arc connects u-side and v-side; the endpoint
        # inside the detached subtree becomes its new root
        inside = (
            u if self._in_subtree(u, sub_root) else v
        )
        # re-root the subtree at `inside` by reversing parent pointers
        self._detach(sub_root)
        self._reroot(inside, sub_root)
        # hang it below the other endpoint of the entering arc
        outside = v if inside == u else u
        self.parent[inside] = outside
        self.parent_arc[inside] = entering
        self.children[outside][inside] = None
        self._refresh_subtree(inside)
        return delta

    def has_alternative_optima(self) -> bool:
        """True when the optimum just reached is not unique.

        A nonbasic arc with (near-)zero reduced cost whose pivot cycle
        admits a non-degenerate push means a different optimal *flow*
        exists — a warm solve that ends here may legitimately differ
        from the canonical cold solve, so the caller redoes it cold.
        Strictly nonzero reduced costs on all nonbasic arcs imply the
        optimal flow vector is unique (standard LP degeneracy theory),
        which is what makes accepting the warm result safe.

        Artificial (big-M) arcs carrying zero flow are excluded from
        the push room: every artificial arc shares the same big-M cost,
        so cycles through the root tie at exactly zero reduced cost —
        but a *feasible* alternative optimum can never route flow
        through an artificial arc, so such cycles do not witness real
        ambiguity.
        """
        art_start = (
            self.artificial[0] if self.artificial else len(self.tail)
        )
        for a in range(len(self.tail)):
            st = self.state[a]
            if st == _TREE:
                continue
            rc = self._reduced_cost(a)
            if st == _LOWER and rc <= self.eps_cost:
                forward = True
            elif st == _UPPER and rc >= -self.eps_cost:
                forward = False
            else:
                continue
            if self._cycle_room(a, forward, art_start) > self.eps_flow:
                return True
        return False

    def _cycle_room(self, a: int, forward: bool, art_start: int) -> float:
        """Non-degenerate push room around ``a``'s pivot cycle
        (zero-flow artificial arcs excluded; see has_alternative_optima)."""
        room = INF
        for arc, direction in self._cycle(a, forward):
            if (
                direction > 0
                and arc >= art_start
                and self.flow[arc] <= self.eps_flow
            ):
                r = 0.0
            else:
                r = (
                    self.cap[arc] - self.flow[arc]
                    if direction > 0
                    else self.flow[arc]
                )
            if r < room:
                room = r
        return room

    # ------------------------------------------------------------------
    def _in_subtree(self, node: int, sub_root: int) -> bool:
        a = node
        while a != -1:
            if a == sub_root:
                return True
            if self.depth[a] < self.depth[sub_root]:
                return False
            a = self.parent[a]
        return False

    def _detach(self, sub_root: int) -> None:
        p = self.parent[sub_root]
        if p != -1:
            del self.children[p][sub_root]
        self.parent[sub_root] = -1
        self.parent_arc[sub_root] = -1

    def _reroot(self, new_root: int, old_root: int) -> None:
        """Reverse parent pointers on the path new_root -> old_root."""
        path = [new_root]
        while path[-1] != old_root:
            path.append(self.parent[path[-1]])
        # capture the connecting arcs before any mutation: reversing a
        # pair overwrites parent_arc entries later pairs still need
        arcs = [self.parent_arc[path[i]] for i in range(len(path) - 1)]
        for i in range(len(path) - 1):
            child, parent = path[i], path[i + 1]
            # reverse: parent becomes child's child
            del self.children[parent][child]
            self.children[child][parent] = None
            self.parent[parent] = child
            self.parent_arc[parent] = arcs[i]
        self.parent[new_root] = -1
        self.parent_arc[new_root] = -1

    def _refresh_subtree(self, sub_root: int) -> None:
        """Recompute depth and potential for the reattached subtree."""
        stack = [sub_root]
        while stack:
            node = stack.pop()
            p = self.parent[node]
            arc = self.parent_arc[node]
            self.depth[node] = self.depth[p] + 1
            if self.tail[arc] == node:  # arc node -> p
                self.pi[node] = self.pi[p] + self.cost[arc]
            else:  # arc p -> node
                self.pi[node] = self.pi[p] - self.cost[arc]
            stack.extend(self.children[node])


def _verify_against_cold(
    warm: "_Simplex",
    warm_feasible: bool,
    build,
    balance: List[float],
    arc_ids: List[int],
) -> None:
    """REPRO_VERIFY_WARMSTART: re-solve cold, require the same answer."""
    cold = build()
    cold_feasible = cold.solve(balance)
    warm_flows = np.array([warm.flow[a] for a in arc_ids])
    cold_flows = np.array([cold.flow[a] for a in arc_ids])
    same = warm_feasible == cold_feasible and np.allclose(
        warm_flows, cold_flows, rtol=1e-9, atol=8 * warm.eps_flow
    )
    if not same:
        raise SolverNumericsError(
            "warm-started network simplex disagrees with the cold solve "
            "(REPRO_VERIFY_WARMSTART)",
            solver="ns",
            context={
                "warm_feasible": warm_feasible,
                "cold_feasible": cold_feasible,
                "max_flow_delta": float(
                    np.max(np.abs(warm_flows - cold_flows), initial=0.0)
                ),
            },
        )


def solve_network_simplex_arrays(
    supply: np.ndarray,
    tails: np.ndarray,
    heads: np.ndarray,
    costs: np.ndarray,
    caps: np.ndarray,
    clock: Optional[BudgetClock] = None,
    warm_slot: Optional[WarmStartSlot] = None,
    backend: Optional[str] = None,
) -> Tuple[bool, float, np.ndarray, int]:
    """Array-native network-simplex entry point.

    Nodes are integers ``0..n-1`` with per-node balances ``supply``
    (positive = supply, negative = demand-as-capacity); arcs are the
    parallel arrays ``tails/heads/costs/caps``.  The super source/sink
    transform, backend construction and the warm-start protocol are
    shared by both kernels, so the ``object`` and ``array`` backends
    see bit-identical instances and differ only in how the pivot
    machinery is executed — the basis of the kernel identity contract
    (``REPRO_VERIFY_KERNEL=1`` re-solves on the other backend and
    requires identical feasibility, flows and — for cold solves —
    pivot counts).

    ``clock`` is ticked once per pivot (budget enforcement).  When
    ``warm_slot`` holds a basis of the same arc topology (and warm
    starts are enabled), pivoting starts from it instead of the
    all-artificial tree; the slot is refreshed with this solve's final
    basis either way.  Returns
    ``(feasible, cost, flows_per_input_arc, pivots)``.
    """
    from repro.flows import kernel

    if backend is None:
        backend = kernel.get_flow_backend()

    supply = np.ascontiguousarray(supply, dtype=np.float64)
    tails = np.ascontiguousarray(tails, dtype=np.int64)
    heads = np.ascontiguousarray(heads, dtype=np.int64)
    costs = np.ascontiguousarray(costs, dtype=np.float64)
    caps = np.ascontiguousarray(caps, dtype=np.float64)
    n = supply.shape[0]
    s_node, t_node = n, n + 1
    n_orig = tails.shape[0]

    # super source/sink transform.  The extra arcs are appended in
    # *node order* with the s-arc/t-arc choice per node — exactly the
    # order the historical object builder produced, so arc ids (and
    # hence pivot sequences and warm-start fingerprints) are unchanged.
    finite_supply = np.isfinite(supply)
    eps_supply = scale_eps(
        float(np.max(np.abs(supply[finite_supply]), initial=0.0))
    )
    pos = supply > eps_supply
    neg = supply < -eps_supply
    extra_nodes = np.nonzero(pos | neg)[0]
    node_pos = pos[extra_nodes]
    e_tails = np.where(node_pos, s_node, extra_nodes)
    e_heads = np.where(node_pos, extra_nodes, t_node)
    e_caps = np.where(node_pos, supply[extra_nodes], -supply[extra_nodes])
    full_tail = np.concatenate([tails, e_tails])
    full_head = np.concatenate([heads, e_heads])
    full_cost = np.concatenate([costs, np.zeros(extra_nodes.shape[0])])
    full_cap = np.concatenate([caps, e_caps])
    # sequential accumulation (not np.sum) so the total is bit-identical
    # to the historical scalar builder's running sum
    total = 0.0
    for b in supply[pos].tolist():
        total += b
    balance = np.zeros(n + 2, dtype=np.float64)
    balance[s_node] = total
    balance[t_node] = -total

    def build(bk: str) -> _Simplex:
        # single solves under the batched backend run on the plain
        # array kernel (bit-identical by construction); only *batches*
        # route through repro.flows.batch
        if bk in ("array", "batched"):
            return kernel.ArraySimplex.from_arrays(
                n + 2, full_tail, full_head, full_cost, full_cap
            )
        sx = _Simplex(n + 2)
        sx.tail = full_tail.tolist()
        sx.head = full_head.tolist()
        sx.cost = full_cost.tolist()
        sx.cap = full_cap.tolist()
        m = full_tail.shape[0]
        sx.flow = [0.0] * m
        sx.state = [_LOWER] * m
        return sx

    def run_primary() -> Tuple[_Simplex, bool, bool]:
        sx = build(backend)
        use_warm = warm_slot is not None and warm_start_enabled()
        warm_basis = None
        fp = None
        if use_warm:
            fp = fingerprint(n + 3, full_tail, full_head)
            if warm_slot.matches(fp):
                warm_basis = warm_slot.basis
        feasible = sx.solve(balance, clock=clock, warm_basis=warm_basis)
        cold = not sx.warm_used
        if sx.warm_used:
            if sx.has_alternative_optima():
                # alternative optimal flows exist: the warm path may
                # have landed on a different optimum than the canonical
                # cold path would — redo cold, identical to a
                # never-warmed run
                incr("warmstart.ambiguous")
                sx = build(backend)
                feasible = sx.solve(balance, clock=clock)
                cold = True
            else:
                incr("warmstart.hits")
                if warm_slot.cold_pivots > sx.pivots:
                    incr(
                        "warmstart.pivots_saved",
                        warm_slot.cold_pivots - sx.pivots,
                    )
                if verify_warm_start():
                    _verify_against_cold(
                        sx,
                        feasible,
                        lambda: build(backend),
                        balance,
                        list(range(n_orig)),
                    )
        elif use_warm:
            if warm_basis is not None:
                incr("warmstart.rejected")  # basis stale for the new data
            else:
                incr("warmstart.misses")
        if use_warm:
            warm_slot.store(fp, sx.export_basis(), sx.pivots, cold)
        return sx, feasible, cold

    t0 = time.process_time()
    sx, feasible, cold = run_primary()
    kernel.add_kernel_cpu(backend, time.process_time() - t0)

    incr(f"kernel.solves.{backend}")
    if sx.degenerate_pivots:
        incr("ns.degenerate_pivots", sx.degenerate_pivots)
    blocks = getattr(sx, "stat_pricing_blocks", 0)
    if blocks:
        incr("kernel.pricing_blocks", blocks)
        incr("kernel.pricing_arcs", getattr(sx, "stat_pricing_arcs", 0))
    flows = np.array(sx.flow[:n_orig], dtype=np.float64)

    if kernel.verify_kernel():
        other = "array" if backend == "object" else "object"
        shadow = build(other)
        # no clock: the shadow solve must not consume the caller's
        # iteration/wall-time budget
        shadow_feasible = shadow.solve(balance, clock=None)
        shadow_flows = np.array(shadow.flow[:n_orig], dtype=np.float64)
        same = shadow_feasible == feasible and np.array_equal(
            flows, shadow_flows
        )
        # pivot counts are only comparable cold-vs-cold (the shadow
        # always runs cold; a warm primary legitimately pivots less)
        if same and cold:
            same = sx.pivots == shadow.pivots
        if not same:
            raise SolverNumericsError(
                f"{backend} and {other} flow kernels disagree "
                f"(REPRO_VERIFY_KERNEL)",
                solver="ns",
                context={
                    "backend": backend,
                    "feasible": feasible,
                    "shadow_feasible": shadow_feasible,
                    "pivots": sx.pivots,
                    "shadow_pivots": shadow.pivots,
                    "max_flow_delta": float(
                        np.max(np.abs(flows - shadow_flows), initial=0.0)
                    ),
                },
            )
        incr("kernel.verified")

    cost = float(np.dot(flows, costs))
    return feasible, cost, flows, sx.pivots


def solve_network_simplex(
    supplies: Dict[Hashable, float],
    arcs,
    clock: Optional[BudgetClock] = None,
    warm_slot: Optional[WarmStartSlot] = None,
) -> Tuple[bool, float, np.ndarray, int]:
    """Solve a min-cost flow instance (same semantics as the other
    backends: positive supplies, negative demands-as-capacities).

    Keyed-node convenience adapter: flattens ``supplies``/``arcs`` into
    the parallel-array form and delegates to
    :func:`solve_network_simplex_arrays` (which selects the object or
    array kernel via the :mod:`repro.flows.kernel` registry).
    """
    index = {k: i for i, k in enumerate(supplies)}
    n = len(index)
    m = len(arcs)
    tails = np.fromiter(
        (index[a.tail] for a in arcs), dtype=np.int64, count=m
    )
    heads = np.fromiter(
        (index[a.head] for a in arcs), dtype=np.int64, count=m
    )
    costs = np.fromiter((a.cost for a in arcs), dtype=np.float64, count=m)
    caps = np.fromiter(
        (a.capacity for a in arcs), dtype=np.float64, count=m
    )
    supply = np.fromiter(supplies.values(), dtype=np.float64, count=n)
    return solve_network_simplex_arrays(
        supply, tails, heads, costs, caps, clock=clock, warm_slot=warm_slot
    )
