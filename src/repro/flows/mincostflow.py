"""Min-cost flow with node supplies and demand capacities.

The FBP model (paper §IV.A) is a transshipment problem: cell-group
nodes supply their total cell area, region nodes can absorb up to their
capacity, transit nodes conserve flow, and all arcs are uncapacitated
with non-negative (distance) costs.  Total demand may exceed total
supply, so region demands act as capacities — implemented via the
standard super-source/super-sink transformation.

Four interchangeable backends:

``ssp``
    Pure-Python successive shortest paths with Johnson potentials
    (Dijkstra).  Exact; used for small instances and as a test oracle.
``ns``
    Pure-Python primal network simplex
    (:mod:`repro.flows.networksimplex`) — the paper computes its FBP
    flows with "a (sequential) NetworkSimplex algorithm", and it is
    the fastest backend here as well; the ``auto`` default above a few
    hundred arcs.
``lp``
    scipy ``linprog`` (HiGHS) on the arc-incidence LP; an independent
    cross-check that returns a basic optimal solution.
``heur``
    Feasibility-only transportation heuristic: route supplies with a
    cost-oblivious Dinic max-flow over the same network.  Suboptimal
    but strongly polynomial; the terminal fallback of the
    :class:`~repro.resilience.solver.ResilientSolver` chain.

All detect infeasibility (Theorem 3's "no fractional placement
exists") instead of silently returning partial flow.  Every solve runs
under a :class:`~repro.resilience.budget.SolverBudget` (iteration +
wall-time limits; the process default is unlimited) and raises the
structured :class:`~repro.resilience.errors.SolverBudgetExceeded` /
:class:`~repro.resilience.errors.SolverNumericsError` instead of
stalling or returning garbage.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.flows.tolerances import (
    BASE_EPS,
    FEASIBILITY_EPS,
    SIGNIFICANCE_EPS,
    magnitude,
    scale_eps,
)
from repro.obs import incr, maybe_check
from repro.resilience.budget import BudgetClock, SolverBudget, get_default_budget
from repro.resilience.errors import ReproError, SolverNumericsError
from repro.resilience.faultinject import inject, perturbation

INF = float("inf")
# absolute epsilon for *significance* tests (is this supply nonzero?);
# numeric comparisons inside the solvers use scale-relative tolerances
# from repro.flows.tolerances instead
EPS = BASE_EPS


@dataclass(frozen=True)
class Arc:
    """A directed arc with cost and (possibly infinite) capacity."""

    tail: Hashable
    head: Hashable
    cost: float
    capacity: float = INF


@dataclass
class SolveStats:
    """Solver effort accounting attached to every flow solve.

    ``pivots`` counts network-simplex pivots (or LP iterations for the
    HiGHS backend); ``augmenting_paths`` counts shortest-path
    augmentations of the SSP backend.  Either may be 0 for backends it
    does not apply to.
    """

    method: str = ""
    nodes: int = 0
    arcs: int = 0
    pivots: int = 0
    augmenting_paths: int = 0
    objective: float = 0.0
    routed: float = 0.0

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "nodes": self.nodes,
            "arcs": self.arcs,
            "pivots": self.pivots,
            "augmenting_paths": self.augmenting_paths,
            "objective": self.objective,
            "routed": self.routed,
        }


@dataclass
class FlowResult:
    """Outcome of a min-cost flow solve."""

    feasible: bool
    cost: float
    flows: np.ndarray  # flow per arc, in add_arc order
    arcs: List[Arc]
    routed: float  # total supply actually routed
    #: solver effort/size accounting (always present after solve())
    stats: SolveStats = field(default_factory=SolveStats)
    #: backend attempt history when solved through a ResilientSolver
    attempts: List = field(default_factory=list)

    def flow_on(self, arc_id: int) -> float:
        return float(self.flows[arc_id])

    def nonzero_arcs(
        self, tol: Optional[float] = None
    ) -> List[Tuple[int, Arc, float]]:
        """(arc_id, arc, flow) for every arc carrying significant flow.

        ``tol`` defaults to the scale-relative significance threshold
        (``SIGNIFICANCE_EPS`` scaled by the largest flow); on unit-scale
        instances that is exactly the historical absolute ``1e-7``.
        """
        if tol is None:
            mag = float(np.max(self.flows, initial=0.0))
            tol = scale_eps(mag, base=SIGNIFICANCE_EPS)
        ids = np.nonzero(self.flows > tol)[0]
        return [
            (int(i), self.arcs[i], float(self.flows[i])) for i in ids
        ]


class MinCostFlowProblem:
    """Builder + solver for a supply/demand min-cost flow instance.

    Supplies are positive ``b`` values, demands negative.  Demands are
    treated as capacities: the instance is feasible when every unit of
    supply can reach demand, even if total demand exceeds total supply.
    """

    def __init__(self) -> None:
        self._supply: Dict[Hashable, float] = {}
        self.arcs: List[Arc] = []

    # ------------------------------------------------------------------
    def add_node(self, key: Hashable, supply: float = 0.0) -> None:
        """Declare a node; positive supply, negative demand, 0 transit."""
        self._supply[key] = self._supply.get(key, 0.0) + supply

    def add_arc(
        self,
        tail: Hashable,
        head: Hashable,
        cost: float,
        capacity: float = INF,
    ) -> int:
        """Add an arc; returns its id for flow readback."""
        if cost < 0:
            raise ValueError("negative arc costs are not supported")
        if capacity < 0:
            raise ValueError("negative capacity")
        for key in (tail, head):
            if key not in self._supply:
                self._supply[key] = 0.0
        self.arcs.append(Arc(tail, head, cost, capacity))
        return len(self.arcs) - 1

    def add_arcs(
        self,
        tails: Sequence[Hashable],
        heads: Sequence[Hashable],
        costs,
        capacities=None,
    ) -> range:
        """Bulk :meth:`add_arc`; returns the ``range`` of new arc ids.

        Validation is vectorized; node registration and arc creation
        keep the exact per-arc (tail, head) order of repeated
        ``add_arc`` calls, so node numbering — and therefore solver
        behavior — is identical to the scalar path.
        """
        costs = np.asarray(costs, dtype=np.float64)
        if np.any(costs < 0):
            raise ValueError("negative arc costs are not supported")
        if capacities is None:
            caps = [INF] * len(tails)
        else:
            cap_arr = np.asarray(capacities, dtype=np.float64)
            if np.any(cap_arr < 0):
                raise ValueError("negative capacity")
            caps = cap_arr.tolist()
        start = len(self.arcs)
        supply = self._supply
        append = self.arcs.append
        for t, h, c, cp in zip(tails, heads, costs.tolist(), caps):
            if t not in supply:
                supply[t] = 0.0
            if h not in supply:
                supply[h] = 0.0
            append(Arc(t, h, c, cp))
        return range(start, len(self.arcs))

    @property
    def nodes(self) -> List[Hashable]:
        return list(self._supply)

    def supply_of(self, key: Hashable) -> float:
        return self._supply.get(key, 0.0)

    def total_supply(self) -> float:
        return sum(s for s in self._supply.values() if s > 0)

    def total_demand(self) -> float:
        return -sum(s for s in self._supply.values() if s < 0)

    # ------------------------------------------------------------------
    def solve(
        self,
        method: str = "auto",
        budget: Optional[SolverBudget] = None,
        warm_slot=None,
    ) -> FlowResult:
        """Solve; ``method`` in {"auto", "ssp", "lp", "ns", "heur"}.

        "auto" picks SSP for small instances and the network simplex
        above (the paper's solver family; measured fastest here too).
        The HiGHS LP remains available as an independent cross-check;
        "heur" is the feasibility-only fallback.  ``budget`` bounds
        iterations/wall time (defaults to the process-wide budget).
        ``warm_slot`` (a :class:`repro.flows.warmstart.WarmStartSlot`)
        lets repeated "ns" solves of the same arc topology reuse the
        previous spanning-tree basis; other backends ignore it.
        """
        if method == "auto":
            method = "ssp" if len(self.arcs) <= 500 else "ns"
        if method not in ("ssp", "lp", "ns", "heur"):
            raise ValueError(f"unknown method {method!r}")
        if budget is None:
            budget = get_default_budget()
        clock = budget.clock(method)
        inject(f"solver.{method}")
        eps = perturbation("solver.costs")
        saved_arcs = None
        if eps:
            # deterministic numeric perturbation of arc costs (fault
            # harness): alternate -eps/0/+eps by arc index
            saved_arcs = self.arcs
            self.arcs = [
                Arc(a.tail, a.head, max(a.cost + eps * ((i % 3) - 1), 0.0),
                    a.capacity)
                for i, a in enumerate(saved_arcs)
            ]
        try:
            if method == "ssp":
                result = self._solve_ssp(clock)
            elif method == "lp":
                result = self._solve_lp(budget)
            elif method == "ns":
                result = self._solve_ns(clock, warm_slot)
            else:
                result = self._solve_heur()
        except ReproError as exc:
            incr("mcf.solve_errors")
            incr(f"mcf.solve_errors.{method}")
            if not exc.stage:
                exc.stage = f"solver.{method}"
            raise
        finally:
            if saved_arcs is not None:
                self.arcs = saved_arcs

        stats = result.stats
        stats.method = method
        stats.nodes = len(self._supply)
        stats.arcs = len(self.arcs)
        stats.objective = result.cost if result.feasible else INF
        stats.routed = result.routed
        incr("mcf.solves")
        incr(f"mcf.solves.{method}")
        incr("mcf.nodes", stats.nodes)
        incr("mcf.arcs", stats.arcs)
        incr("mcf.pivots", stats.pivots)
        incr("mcf.augmenting_paths", stats.augmenting_paths)
        if not result.feasible:
            incr("mcf.infeasible")
        maybe_check("flow.conservation", self, result)
        return result

    def _supply_eps(self) -> float:
        """Scale-relative threshold for classifying node balances.

        A node counts as a source/sink only when ``|b|`` clears this;
        with million-cell supplies the float error of an aggregated
        balance is itself far above the absolute 1e-9, which would
        otherwise manufacture spurious micro-sources.
        """
        return scale_eps(magnitude(self._supply.values()))

    # ------------------------------------------------------------------
    # successive shortest paths with potentials
    # ------------------------------------------------------------------
    def _solve_ssp(self, clock: Optional[BudgetClock] = None) -> FlowResult:
        """SSP via the selected kernel (``repro.flows.kernel`` registry).

        Under ``REPRO_VERIFY_KERNEL=1`` the instance is re-solved on the
        other kernel (without the caller's budget clock) and any
        divergence in feasibility, flows or augmentation count raises —
        the same bit-identity contract the network simplex enforces.
        """
        from repro.flows import kernel

        backend = kernel.get_flow_backend()
        impl = (
            self._solve_ssp_array
            if backend == "array"
            else self._solve_ssp_object
        )
        t0 = time.process_time()
        result = impl(clock)
        kernel.add_kernel_cpu(backend, time.process_time() - t0)
        incr(f"kernel.ssp_solves.{backend}")
        if kernel.verify_kernel():
            shadow = (
                self._solve_ssp_object(None)
                if backend == "array"
                else self._solve_ssp_array(None)
            )
            same = (
                shadow.feasible == result.feasible
                and np.array_equal(result.flows, shadow.flows)
                and result.stats.augmenting_paths
                == shadow.stats.augmenting_paths
            )
            if not same:
                raise SolverNumericsError(
                    "object and array SSP kernels disagree "
                    "(REPRO_VERIFY_KERNEL)",
                    solver="ssp",
                    context={
                        "backend": backend,
                        "feasible": result.feasible,
                        "shadow_feasible": shadow.feasible,
                        "augmentations": result.stats.augmenting_paths,
                        "shadow_augmentations": (
                            shadow.stats.augmenting_paths
                        ),
                        "max_flow_delta": float(
                            np.max(
                                np.abs(result.flows - shadow.flows),
                                initial=0.0,
                            )
                        ),
                    },
                )
            incr("kernel.verified")
        return result

    def _solve_ssp_array(
        self, clock: Optional[BudgetClock] = None
    ) -> FlowResult:
        from repro.flows import kernel

        index: Dict[Hashable, int] = {k: i for i, k in enumerate(self._supply)}
        n = len(index)
        m = len(self.arcs)
        tails = np.fromiter(
            (index[a.tail] for a in self.arcs), dtype=np.int64, count=m
        )
        heads = np.fromiter(
            (index[a.head] for a in self.arcs), dtype=np.int64, count=m
        )
        costs = np.fromiter(
            (a.cost for a in self.arcs), dtype=np.float64, count=m
        )
        caps = np.fromiter(
            (a.capacity for a in self.arcs), dtype=np.float64, count=m
        )
        supply = np.fromiter(
            self._supply.values(), dtype=np.float64, count=n
        )
        flows, routed, total_supply, augmentations = kernel.solve_ssp_arrays(
            n, tails, heads, costs, caps, supply, clock=clock
        )
        total_cost = float(np.dot(flows, costs))
        feasible = routed >= total_supply - scale_eps(
            total_supply, base=FEASIBILITY_EPS
        )
        return FlowResult(
            feasible,
            total_cost,
            flows,
            list(self.arcs),
            routed,
            SolveStats(augmenting_paths=augmentations),
        )

    def _solve_ssp_object(
        self, clock: Optional[BudgetClock] = None
    ) -> FlowResult:
        index: Dict[Hashable, int] = {k: i for i, k in enumerate(self._supply)}
        n = len(index)
        s_node, t_node = n, n + 1
        n_total = n + 2

        # residual arrays
        to: List[int] = []
        cap: List[float] = []
        cost: List[float] = []
        adj: List[List[int]] = [[] for _ in range(n_total)]
        orig_ids: List[int] = []  # residual edge id of each original arc

        def add(u: int, v: int, c: float, w: float) -> int:
            eid = len(to)
            to.append(v)
            cap.append(c)
            cost.append(w)
            adj[u].append(eid)
            to.append(u)
            cap.append(0.0)
            cost.append(-w)
            adj[v].append(eid + 1)
            return eid

        for arc in self.arcs:
            orig_ids.append(
                add(index[arc.tail], index[arc.head], arc.capacity, arc.cost)
            )
        eps_supply = self._supply_eps()
        total_supply = 0.0
        for key, b in self._supply.items():
            if b > eps_supply:
                add(s_node, index[key], b, 0.0)
                total_supply += b
            elif b < -eps_supply:
                add(index[key], t_node, -b, 0.0)

        # scale-relative tolerances: distance comparisons scale with
        # the largest |cost|, capacity/flow comparisons with the
        # largest finite capacity (absolute 1e-9 on unit-scale data)
        eps_cost = scale_eps(magnitude(cost))
        eps_flow = scale_eps(magnitude(cap))
        potential = [0.0] * n_total
        routed = 0.0
        augmentations = 0
        while routed < total_supply - eps_flow:
            if clock is not None:
                clock.tick()
                clock.check_time()
            # Dijkstra from s in the reduced-cost residual graph
            dist = [INF] * n_total
            prev_edge = [-1] * n_total
            dist[s_node] = 0.0
            heap: List[Tuple[float, int]] = [(0.0, s_node)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u] + eps_cost:
                    continue
                for eid in adj[u]:
                    if cap[eid] <= eps_flow:
                        continue
                    v = to[eid]
                    nd = d + cost[eid] + potential[u] - potential[v]
                    if nd < dist[v] - eps_cost:
                        dist[v] = nd
                        prev_edge[v] = eid
                        heapq.heappush(heap, (nd, v))
            if dist[t_node] == INF:
                break  # no augmenting path: infeasible remainder
            for v in range(n_total):
                if dist[v] < INF:
                    potential[v] += dist[v]
            # bottleneck along the path
            push = total_supply - routed
            v = t_node
            while v != s_node:
                eid = prev_edge[v]
                push = min(push, cap[eid])
                v = to[eid ^ 1]
            v = t_node
            while v != s_node:
                eid = prev_edge[v]
                cap[eid] -= push
                cap[eid ^ 1] += push
                v = to[eid ^ 1]
            routed += push
            augmentations += 1

        flows = np.array(
            [cap[eid ^ 1] for eid in orig_ids], dtype=np.float64
        )
        # np.dot, like the array kernel, so both backends report the
        # bit-identical objective for bit-identical flows
        arc_costs = np.fromiter(
            (a.cost for a in self.arcs),
            dtype=np.float64,
            count=len(self.arcs),
        )
        total_cost = float(np.dot(flows, arc_costs))
        feasible = routed >= total_supply - scale_eps(
            total_supply, base=FEASIBILITY_EPS
        )
        return FlowResult(
            feasible,
            total_cost,
            flows,
            list(self.arcs),
            routed,
            SolveStats(augmenting_paths=augmentations),
        )

    # ------------------------------------------------------------------
    # network simplex backend (the paper's solver family)
    # ------------------------------------------------------------------
    def _solve_ns(
        self, clock: Optional[BudgetClock] = None, warm_slot=None
    ) -> FlowResult:
        from repro.flows.networksimplex import solve_network_simplex

        feasible, cost, flows, pivots = solve_network_simplex(
            self._supply, self.arcs, clock=clock, warm_slot=warm_slot
        )
        routed = self.total_supply() if feasible else 0.0
        stats = SolveStats(pivots=pivots)
        if not feasible:
            return FlowResult(
                False,
                INF,
                np.zeros(len(self.arcs)),
                list(self.arcs),
                0.0,
                stats,
            )
        return FlowResult(True, cost, flows, list(self.arcs), routed, stats)

    # ------------------------------------------------------------------
    # HiGHS LP backend
    # ------------------------------------------------------------------
    def _solve_lp(self, budget: Optional[SolverBudget] = None) -> FlowResult:
        from scipy.optimize import linprog
        from scipy.sparse import coo_matrix

        index: Dict[Hashable, int] = {k: i for i, k in enumerate(self._supply)}
        n = len(index)
        s_row, t_row = n, n + 1

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        costs: List[float] = []
        uppers: List[Optional[float]] = []

        def add_var(u: int, v: int, w: float, capv: float) -> None:
            j = len(costs)
            rows.extend([u, v])
            cols.extend([j, j])
            vals.extend([1.0, -1.0])
            costs.append(w)
            uppers.append(None if capv == INF else capv)

        for arc in self.arcs:
            add_var(index[arc.tail], index[arc.head], arc.cost, arc.capacity)
        n_orig = len(self.arcs)
        eps_supply = self._supply_eps()
        total_supply = 0.0
        for key, b in self._supply.items():
            if b > eps_supply:
                add_var(s_row, index[key], 0.0, b)
                total_supply += b
            elif b < -eps_supply:
                add_var(index[key], t_row, 0.0, -b)

        n_vars = len(costs)
        a_eq = coo_matrix(
            (vals, (rows, cols)), shape=(n + 2, n_vars)
        ).tocsc()
        b_eq = np.zeros(n + 2)
        b_eq[s_row] = total_supply
        b_eq[t_row] = -total_supply

        options = {}
        if budget is not None and budget.max_iters is not None:
            options["maxiter"] = budget.max_iters
        if budget is not None and budget.max_seconds is not None:
            options["time_limit"] = budget.max_seconds
        res = linprog(
            c=np.array(costs),
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=[(0.0, u) for u in uppers],
            method="highs",
            options=options or None,
        )
        # HiGHS reports its iteration count as `nit`; file it under
        # pivots — for the simplex-based default that is what it is
        lp_pivots = int(getattr(res, "nit", 0) or 0)
        if res.status == 1:  # iteration/time limit reached
            from repro.resilience.errors import SolverBudgetExceeded

            raise SolverBudgetExceeded(
                f"HiGHS hit its budget: {res.message}",
                solver="lp",
                iterations=lp_pivots,
            )
        if res.status == 2:  # infeasible
            return FlowResult(
                False,
                INF,
                np.zeros(n_orig),
                list(self.arcs),
                0.0,
                SolveStats(pivots=lp_pivots),
            )
        if not res.success:
            raise SolverNumericsError(
                f"LP solver failed: {res.message}", solver="lp"
            )
        flows = np.asarray(res.x[:n_orig], dtype=np.float64)
        total_cost = float(
            sum(f * a.cost for f, a in zip(flows, self.arcs))
        )
        return FlowResult(
            True,
            total_cost,
            flows,
            list(self.arcs),
            total_supply,
            SolveStats(pivots=lp_pivots),
        )

    # ------------------------------------------------------------------
    # transportation heuristic: feasibility-only fallback
    # ------------------------------------------------------------------
    def _solve_heur(self) -> FlowResult:
        """Route a *feasible* (not optimal) flow with Dinic max-flow.

        Cost-oblivious: the objective is whatever the max-flow routing
        happens to cost.  Strongly polynomial, so it terminates even on
        instances that stall the cost-driven solvers — the terminal
        fallback of the resilience chain.  Arc insertion order is
        deterministic, so repeated runs return identical flows.
        """
        from repro.flows.maxflow import Dinic

        dinic = Dinic()
        arc_ids = [
            dinic.add_edge(arc.tail, arc.head, arc.capacity)
            for arc in self.arcs
        ]
        eps_supply = self._supply_eps()
        total_supply = 0.0
        for key, b in self._supply.items():
            if b > eps_supply:
                dinic.add_edge(("__source__",), key, b)
                total_supply += b
            elif b < -eps_supply:
                dinic.add_edge(key, ("__sink__",), -b)
        routed = (
            dinic.max_flow(("__source__",), ("__sink__",))
            if total_supply > 0
            else 0.0
        )
        flows = np.array(
            [dinic.flow_on(eid) for eid in arc_ids], dtype=np.float64
        )
        if not np.all(np.isfinite(flows)):
            raise SolverNumericsError(
                "heuristic produced non-finite flow", solver="heur"
            )
        total_cost = float(
            sum(f * a.cost for f, a in zip(flows, self.arcs))
        )
        feasible = routed >= total_supply - scale_eps(
            total_supply, base=FEASIBILITY_EPS
        )
        return FlowResult(
            feasible,
            total_cost if feasible else INF,
            flows,
            list(self.arcs),
            routed,
            SolveStats(augmenting_paths=dinic.stats.augmenting_paths),
        )


def solve_min_cost_flow(
    supplies: Dict[Hashable, float],
    arcs: Sequence[Arc],
    method: str = "auto",
) -> FlowResult:
    """One-shot convenience wrapper around :class:`MinCostFlowProblem`."""
    problem = MinCostFlowProblem()
    for key, b in supplies.items():
        problem.add_node(key, b)
    for arc in arcs:
        problem.add_arc(arc.tail, arc.head, arc.cost, arc.capacity)
    return problem.solve(method)
