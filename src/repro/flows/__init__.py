"""Network-flow substrate.

Three solvers, all built here rather than assumed:

* :mod:`repro.flows.maxflow` — Dinic's algorithm, used by the
  feasibility checks of Theorems 1 and 2.
* :mod:`repro.flows.mincostflow` — min-cost flow with node
  supplies/demands.  Backends: a pure-Python successive-shortest-path
  implementation with Johnson potentials (exact, used for small
  instances and as a test oracle) and a scipy/HiGHS LP formulation for
  the large FBP instances.  The paper used a network-simplex code; the
  optimum is solver-independent.
* :mod:`repro.flows.transportation` — the (unbalanced Hitchcock)
  transportation problem of the Section III partitioning step, with
  forbidden (infinite-cost) arcs for movebound constraints and an
  almost-integral rounding per [Brenner 2008].

The network-simplex and SSP solvers execute on one of two
interchangeable kernels (:mod:`repro.flows.kernel`): the scalar
``object`` kernel and the vectorized structure-of-arrays ``array``
kernel (the default), selected via
:func:`~repro.flows.kernel.set_flow_backend` /
``REPRO_FLOW_BACKEND`` / ``--flow-backend`` and held to a bit-identity
contract (``REPRO_VERIFY_KERNEL=1`` shadow-solves every instance on
the other kernel).
"""

from repro.flows.kernel import (
    ArraySimplex,
    get_flow_backend,
    set_flow_backend,
)
from repro.flows.maxflow import Dinic, MaxFlowStats, max_flow_value
from repro.flows.mincostflow import (
    Arc,
    FlowResult,
    MinCostFlowProblem,
    SolveStats,
    solve_min_cost_flow,
)
from repro.flows.transportation import (
    RELAX_CHAIN_PARTITION,
    RELAX_CHAIN_WINDOW,
    TransportResult,
    TransportStats,
    round_almost_integral,
    solve_transportation,
    solve_transportation_with_relaxation,
)

__all__ = [
    "ArraySimplex",
    "get_flow_backend",
    "set_flow_backend",
    "Dinic",
    "MaxFlowStats",
    "max_flow_value",
    "Arc",
    "FlowResult",
    "MinCostFlowProblem",
    "SolveStats",
    "solve_min_cost_flow",
    "TransportResult",
    "TransportStats",
    "solve_transportation",
    "solve_transportation_with_relaxation",
    "RELAX_CHAIN_WINDOW",
    "RELAX_CHAIN_PARTITION",
    "round_almost_integral",
]
