"""The transportation (unbalanced Hitchcock) problem of §III.

Partitioning assigns cells (sources, supply = cell size) to regions or
windows (sinks, capacity = capa) minimizing total movement cost, with
``cost = +inf`` on cell→region arcs forbidden by movebounds.  Total
capacity may exceed total supply (unbalanced).

The default backend formulates the problem as an LP over the
finite-cost arcs and solves it with scipy's HiGHS — a network LP that
HiGHS handles essentially as fast as a dedicated transportation code at
our instance sizes.  A pure-Python min-cost-flow backend is retained as
a cross-check oracle.

A basic optimal solution of the transportation LP has at most
``n + k - 1`` positive variables, hence at most ``k - 1`` fractionally
split sources ([Brenner 2008], and the "almost integral" remark in
§III of the paper).  :func:`round_almost_integral` converts such a
solution into an integral assignment, overflowing any sink by at most
one cell.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.flows.tolerances import SIGNIFICANCE_EPS, scale_eps
from repro.flows.warmstart import WarmStartSlot, warm_start_enabled
from repro.obs import incr
from repro.resilience.budget import SolverBudget, get_default_budget
from repro.resilience.errors import (
    InfeasibleInputError,
    SolverBudgetExceeded,
    SolverNumericsError,
)

INF = float("inf")


@dataclass
class TransportStats:
    """Size/effort accounting of one transportation solve.

    ``nodes`` is sources + sinks, ``arcs`` the admissible
    (finite-cost) source->sink pairs.  ``pivots`` are HiGHS iterations
    for the LP backend; ``augmenting_paths`` are SSP augmentations for
    the min-cost-flow oracle backend.
    """

    method: str = ""
    nodes: int = 0
    arcs: int = 0
    pivots: int = 0
    augmenting_paths: int = 0

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "nodes": self.nodes,
            "arcs": self.arcs,
            "pivots": self.pivots,
            "augmenting_paths": self.augmenting_paths,
        }


@dataclass
class TransportResult:
    """Solution of a transportation instance.

    ``flow[i, j]`` is the amount of source i routed to sink j; rows sum
    to the supplies when feasible.
    """

    feasible: bool
    flow: np.ndarray
    cost: float
    #: solver effort/size accounting (always present after solve)
    stats: TransportStats = field(default_factory=TransportStats)

    def split_sources(self, tol: Optional[float] = None) -> List[int]:
        """Indices of sources split across more than one sink.

        The significance threshold scales with the largest flow in the
        solution (``tol`` overrides it), so million-area instances do
        not report every source as "split" by accumulated float dust.
        """
        if tol is None:
            scale = float(np.max(np.abs(self.flow), initial=0.0))
            tol = scale_eps(scale, base=SIGNIFICANCE_EPS)
        positive = self.flow > tol
        return [i for i in range(self.flow.shape[0]) if positive[i].sum() > 1]


def _validate(
    supplies: np.ndarray, capacities: np.ndarray, costs: np.ndarray
) -> None:
    if costs.shape != (len(supplies), len(capacities)):
        raise InfeasibleInputError(
            f"cost matrix shape {costs.shape} does not match "
            f"{len(supplies)} sources x {len(capacities)} sinks",
            stage="transport.validate",
        )
    if np.any(supplies < 0) or np.any(capacities < 0):
        raise InfeasibleInputError(
            "supplies and capacities must be non-negative",
            stage="transport.validate",
        )
    if np.any(np.isnan(costs)):
        raise InfeasibleInputError(
            "NaN cost entries", stage="transport.validate"
        )


def solve_transportation(
    supplies: np.ndarray,
    capacities: np.ndarray,
    costs: np.ndarray,
    method: str = "auto",
    budget: Optional[SolverBudget] = None,
    warm_slot=None,
) -> TransportResult:
    """Solve min sum_ij costs[i,j] * f[i,j]
    s.t. sum_j f[i,j] = supplies[i], sum_i f[i,j] <= capacities[j],
    f >= 0, and f[i,j] = 0 wherever costs[i,j] = +inf.

    Returns an infeasible result (zero flow) when the supplies cannot
    be routed, e.g. when movebound-admissible sinks lack capacity.

    ``method="ns"`` runs the pure-Python network simplex, the only
    backend that supports warm starts: pass a
    :class:`~repro.flows.warmstart.WarmStartSlot` as ``warm_slot`` and
    repeated solves of the same arc topology (e.g. the stages of a
    capacity relaxation chain) start from the previous basis.
    """
    supplies = np.asarray(supplies, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    _validate(supplies, capacities, costs)
    n, k = costs.shape

    if n == 0:
        return TransportResult(True, np.zeros((0, k)), 0.0)

    # quick necessary check: every source needs an admissible sink
    finite = np.isfinite(costs)
    if not np.all(finite.any(axis=1) | (supplies <= 0)):
        return TransportResult(False, np.zeros((n, k)), INF)

    if budget is None:
        budget = get_default_budget()
    if method == "auto":
        method = "lp"
    if method == "lp":
        result = _solve_lp(supplies, capacities, costs, finite, budget)
    elif method == "mcf":
        result = _solve_mcf(supplies, capacities, costs, finite, budget)
    elif method == "ns":
        result = _solve_ns(
            supplies, capacities, costs, finite, budget, warm_slot
        )
    else:
        raise ValueError(f"unknown method {method!r}")

    stats = result.stats
    stats.method = method
    stats.nodes = n + k
    stats.arcs = int(finite.sum())
    incr("transport.solves")
    incr(f"transport.solves.{method}")
    incr("transport.nodes", stats.nodes)
    incr("transport.arcs", stats.arcs)
    incr("transport.pivots", stats.pivots)
    incr("transport.augmenting_paths", stats.augmenting_paths)
    if not result.feasible:
        incr("transport.infeasible")
    return result


def _solve_lp(
    supplies: np.ndarray,
    capacities: np.ndarray,
    costs: np.ndarray,
    finite: np.ndarray,
    budget: Optional[SolverBudget] = None,
) -> TransportResult:
    from scipy.optimize import linprog
    from scipy.sparse import coo_matrix

    n, k = costs.shape
    src_idx, snk_idx = np.nonzero(finite)
    n_vars = len(src_idx)
    var_costs = costs[src_idx, snk_idx]

    # equality rows: one per source
    eq_rows = src_idx
    eq_cols = np.arange(n_vars)
    a_eq = coo_matrix(
        (np.ones(n_vars), (eq_rows, eq_cols)), shape=(n, n_vars)
    ).tocsc()
    # inequality rows: one per sink
    a_ub = coo_matrix(
        (np.ones(n_vars), (snk_idx, eq_cols)), shape=(k, n_vars)
    ).tocsc()

    options = {}
    if budget is not None and budget.max_iters is not None:
        options["maxiter"] = budget.max_iters
    if budget is not None and budget.max_seconds is not None:
        options["time_limit"] = budget.max_seconds
    res = linprog(
        c=var_costs,
        A_eq=a_eq,
        b_eq=supplies,
        A_ub=a_ub,
        b_ub=capacities,
        bounds=(0.0, None),
        method="highs",
        options=options or None,
    )
    lp_pivots = int(getattr(res, "nit", 0) or 0)
    if res.status == 1:
        raise SolverBudgetExceeded(
            f"transportation LP hit its budget: {res.message}",
            solver="lp",
            iterations=lp_pivots,
        )
    if res.status == 2:
        return TransportResult(
            False, np.zeros((n, k)), INF, TransportStats(pivots=lp_pivots)
        )
    if not res.success:
        raise SolverNumericsError(
            f"transportation LP failed: {res.message}", solver="lp"
        )
    flow = np.zeros((n, k))
    flow[src_idx, snk_idx] = res.x
    return TransportResult(
        True, flow, float(res.fun), TransportStats(pivots=lp_pivots)
    )


def _solve_mcf(
    supplies: np.ndarray,
    capacities: np.ndarray,
    costs: np.ndarray,
    finite: np.ndarray,
    budget: Optional[SolverBudget] = None,
) -> TransportResult:
    """Oracle backend on the pure-Python min-cost-flow solver."""
    from repro.flows.mincostflow import MinCostFlowProblem

    n, k = costs.shape
    problem = MinCostFlowProblem()
    for i in range(n):
        problem.add_node(("s", i), float(supplies[i]))
    for j in range(k):
        problem.add_node(("t", j), -float(capacities[j]))
    arc_ids = {}
    for i in range(n):
        for j in range(k):
            if finite[i, j]:
                arc_ids[(i, j)] = problem.add_arc(
                    ("s", i), ("t", j), float(costs[i, j])
                )
    result = problem.solve(method="ssp", budget=budget)
    stats = TransportStats(augmenting_paths=result.stats.augmenting_paths)
    if not result.feasible:
        return TransportResult(False, np.zeros((n, k)), INF, stats)
    flow = np.zeros((n, k))
    for (i, j), aid in arc_ids.items():
        flow[i, j] = result.flow_on(aid)
    return TransportResult(True, flow, result.cost, stats)


def _solve_ns(
    supplies: np.ndarray,
    capacities: np.ndarray,
    costs: np.ndarray,
    finite: np.ndarray,
    budget: Optional[SolverBudget] = None,
    warm_slot=None,
) -> TransportResult:
    """Warm-startable network-simplex backend.

    Builds the bipartite min-cost-flow instance directly as arrays —
    integer nodes 0..n-1 for sources, n..n+k-1 for sinks (the same
    numbering the historical keyed builder produced, so warm-start
    fingerprints are unchanged) and one uncapacitated arc per
    admissible pair in row-major order — and hands ``warm_slot``
    through to
    :func:`repro.flows.networksimplex.solve_network_simplex_arrays`.
    """
    from repro.flows.networksimplex import solve_network_simplex_arrays

    n, k = costs.shape
    supply = np.concatenate([supplies, -capacities])
    src_idx, snk_idx = np.nonzero(finite)
    arc_costs = costs[src_idx, snk_idx]
    # Deterministic tie-breaking: L1 distances on a grid tie constantly,
    # making the optimal flow non-unique — every warm-started solve
    # would then detect ambiguity and redo the work cold.  A tiny
    # per-arc perturbation (~2^-20 relative, well above the solver's
    # relative cost epsilon but orders below any real cost difference
    # the placement could notice) makes the optimum unique for almost
    # every instance.  It must NOT be linear in the arc index: a
    # simplex cycle through sources i,i' and sinks j,j' sums indices as
    # idx(i,j) - idx(i,j') + idx(i',j') - idx(i',j) = 0 in row-major
    # order, cancelling any linear perturbation exactly.  A seeded PRNG
    # stream is a pure function of the arc count, so cold and warm
    # solves of either arm perturb — and hence pick — identically.
    scale = float(np.max(np.abs(arc_costs), initial=0.0)) or 1.0
    rng = np.random.default_rng(0x7F4A7C15)
    tie_break = (rng.random(len(arc_costs)) + 1.0) * (scale * 2.0**-20)
    perturbed = arc_costs + tie_break
    clock = budget.clock("ns") if budget is not None else None
    feasible, _cost, flows, pivots = solve_network_simplex_arrays(
        supply,
        src_idx.astype(np.int64),
        (snk_idx + n).astype(np.int64),
        perturbed,
        np.full(len(perturbed), INF),
        clock=clock,
        warm_slot=warm_slot,
    )
    stats = TransportStats(pivots=pivots)
    if not feasible:
        return TransportResult(False, np.zeros((n, k)), INF, stats)
    flow = np.zeros((n, k))
    flow[src_idx, snk_idx] = flows
    # report the cost of the *unperturbed* objective
    cost = float(np.dot(arc_costs, np.asarray(flows, dtype=np.float64)))
    return TransportResult(True, flow, cost, stats)


def round_almost_integral(
    result: TransportResult,
    supplies: np.ndarray,
    capacities: np.ndarray,
    costs: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, float]:
    """Round a fractional transportation solution to an integral
    assignment (one sink per source).

    Split sources are processed in decreasing supply order; each goes to
    the admissible sink where it already routes the most flow, preferring
    sinks with enough remaining slack.  Returns ``(assignment, max_overflow)``
    where ``assignment[i]`` is the sink of source i and ``max_overflow``
    is the largest resulting capacity violation (0 in the common case).
    """
    supplies = np.asarray(supplies, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    flow = result.flow
    n, k = flow.shape
    assignment = np.full(n, -1, dtype=np.int64)
    load = np.zeros(k)

    # significance threshold scales with the largest supply so that
    # big-area instances don't misclassify float dust as real flow
    tol = scale_eps(
        float(np.max(supplies, initial=0.0)), base=SIGNIFICANCE_EPS
    )
    positive = flow > tol
    n_pos = positive.sum(axis=1)
    zero_rows = np.nonzero(n_pos == 0)[0]
    if len(zero_rows):
        bad = zero_rows[supplies[zero_rows] > tol]
        if len(bad):
            raise SolverNumericsError(
                f"source {bad[0]} has supply but no flow", solver="transport"
            )
        # zero-size sources: put each on its cheapest admissible sink
        if costs is not None:
            assignment[zero_rows] = np.argmin(costs[zero_rows], axis=1)
        else:
            assignment[zero_rows] = 0
    whole = np.nonzero(n_pos == 1)[0]
    if len(whole):
        sinks = np.argmax(positive[whole], axis=1)
        assignment[whole] = sinks
        np.add.at(load, sinks, supplies[whole])
    split = np.nonzero(n_pos > 1)[0].tolist()

    for i in sorted(split, key=lambda i: -supplies[i]):
        order = np.argsort(-flow[i])
        candidates = [j for j in order if flow[i, j] > tol]
        best = None
        for j in candidates:
            if load[j] + supplies[i] <= capacities[j] + tol:
                best = j
                break
        if best is None:
            best = candidates[0]  # overflow the largest-share sink
        assignment[i] = best
        load[best] += supplies[i]

    overflow = float(np.max(np.maximum(load - capacities, 0.0), initial=0.0))
    return assignment, overflow


#: relaxation chains used by the partitioning call sites; each entry is
#: ``(capacity_multiplier, supply_sum_fraction_added)`` — effective
#: capacities are ``caps * mult + frac * supplies.sum()``.  Stage 0 is
#: always the exact instance.
RELAX_CHAIN_WINDOW = ((1.0, 0.0), (1.1, 0.0), (2.0, 1.0))
RELAX_CHAIN_PARTITION = ((1.0, 0.0), (1.1, 0.0), (1.0, 1.0))


def solve_transportation_with_relaxation(
    supplies: np.ndarray,
    capacities: np.ndarray,
    costs: np.ndarray,
    chain: Tuple[Tuple[float, float], ...] = RELAX_CHAIN_WINDOW,
    method: str = "auto",
    warm_slot=None,
) -> Tuple[TransportResult, int]:
    """Solve a transportation instance, escalating through a capacity
    relaxation chain until a stage is feasible.

    Returns ``(result, stage)`` where ``stage`` is the index of the
    chain entry that produced the result (0 = exact; the last stage's
    result is returned even when infeasible).  This is a *pure function
    of its arrays* — the parallel window-solver pool ships it to worker
    processes and merges results in deterministic task order, so pooled
    and serial runs are bit-identical.

    Every stage re-solves the same arc topology with scaled
    capacities, so with the "ns" backend the stages share one
    :class:`~repro.flows.warmstart.WarmStartSlot`: stage ``k+1``
    starts from stage ``k``'s basis instead of cold (a local slot —
    worker processes and the serial path behave identically).  A
    caller that re-solves the same topology repeatedly (repartition
    passes) can pass its own persistent ``warm_slot`` instead.
    """
    supplies = np.asarray(supplies, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    total = supplies.sum()
    digest = None
    if warm_slot is not None and warm_start_enabled():
        # exact-instance memo: a persistent slot whose last call had
        # bit-identical arrays (a repartition block that reverted and
        # is re-solved unchanged) returns the stored result directly
        h = hashlib.sha256()
        h.update(supplies.tobytes())
        h.update(capacities.tobytes())
        h.update(costs.tobytes())
        h.update(repr(chain).encode())
        h.update(method.encode())
        digest = h.digest()
        if warm_slot.memo_digest == digest:
            incr("warmstart.instance_hits")
            memo, stage = warm_slot.memo_value
            result = TransportResult(
                memo.feasible, memo.flow.copy(), memo.cost, memo.stats
            )
            return result, stage
    if warm_slot is None and method == "ns":
        warm_slot = WarmStartSlot()
    result = None
    stage = 0
    for stage, (mult, frac) in enumerate(chain):
        caps = capacities * mult + frac * total
        result = solve_transportation(
            supplies, caps, costs, method=method, warm_slot=warm_slot
        )
        if result.feasible:
            break
    if digest is not None:
        warm_slot.memo_digest = digest
        warm_slot.memo_value = (
            TransportResult(
                result.feasible, result.flow.copy(), result.cost, result.stats
            ),
            stage,
        )
    return result, stage
