"""Scale-relative numeric tolerances for the flow solvers.

The solvers historically compared reduced costs, flow deltas and
residual capacities against an absolute ``EPS = 1e-9``.  That is fine
for unit-scale instances but wrong in both directions once costs or
capacities grow: with costs around ``1e9`` the float error of a reduced
cost is itself ~``1e-7``, so the absolute test keeps finding spurious
"eligible" arcs and a perfectly legitimate degenerate run is
misclassified as :class:`~repro.resilience.errors.SolverNumericsError`
("appears to be cycling").

Every comparison therefore derives its epsilon from the magnitude of
the quantities being compared:

* cost-like comparisons (reduced costs, shortest-path distances) scale
  with the largest absolute arc cost of the instance;
* flow-like comparisons (pivot deltas, residual capacities, artificial
  residuals) scale with the largest finite capacity / balance.

For unit-scale instances (`scale <= 1`) the helpers return exactly the
historical ``1e-9``, so small-instance behavior is unchanged.
"""

from __future__ import annotations

import math
from typing import Iterable

#: The historical absolute epsilon; still the floor of every tolerance.
BASE_EPS = 1e-9

#: Base for "did we route (almost) all supply?" feasibility checks.
#: ``scale_eps(total_supply, base=FEASIBILITY_EPS)`` equals the
#: historical ``1e-6 * max(total_supply, 1.0)`` for finite totals.
FEASIBILITY_EPS = 1e-6

#: Base for "is this flow significant?" reporting thresholds
#: (:meth:`repro.flows.mincostflow.FlowResult.nonzero_arcs`); the
#: historical absolute ``1e-7``, now scaled by the largest flow.
SIGNIFICANCE_EPS = 1e-7


def scale_eps(scale: float, base: float = BASE_EPS) -> float:
    """``base`` scaled by the instance magnitude (never below ``base``).

    Non-finite or nonsensical scales (inf capacities, NaN) fall back to
    the unscaled base rather than disabling the comparison entirely.
    """
    if not math.isfinite(scale) or scale <= 1.0:
        return base
    return base * scale


def magnitude(values: Iterable[float]) -> float:
    """Largest finite absolute value of ``values`` (0.0 when empty)."""
    mag = 0.0
    for v in values:
        av = abs(v)
        if av > mag and math.isfinite(av):
            mag = av
    return mag
