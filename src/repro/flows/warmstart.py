"""Warm-start bases for the network simplex.

The multilevel FBP schedule re-solves near-identical min-cost-flow
instances: a capacity-relaxation chain re-solves the *same* arc
topology with scaled capacities, and ``--relax-infeasible`` re-solves
the whole FBP model after a minimal capacity bump.  Cold-starting the
simplex from the all-artificial big-M tree each time throws away the
previous spanning-tree basis, which is usually still primal-feasible
(and, when costs are unchanged, already dual-feasible) for the new
data.

A :class:`WarmStartSlot` carries the final basis of the last solve of
one arc topology, identified by a :func:`fingerprint` over the
transformed instance (node count + arc tails/heads, *not* costs or
capacities — those may change between re-solves).  The solver only
accepts a basis whose fingerprint matches, re-derives all flows from
the new balances (so a stale basis is detected, not trusted), and
falls back to a cold solve whenever the basis is primal-infeasible for
the new data or the optimum is ambiguous.

Identity contract: a warm-started solve must return the same answer as
a cold solve of the same instance.  Three mechanisms enforce it:

* flows are canonically recomputed from the final basis at the end of
  *every* solve (cold or warm), so the result is a pure function of
  (final basis, instance data);
* after a warm solve the optimum is probed for ambiguity — a nonbasic
  arc with (near-)zero reduced cost that admits a non-degenerate
  pivot means alternative optimal flows exist, and the solver redoes
  the solve cold rather than risk returning a different optimum than
  the canonical cold path;
* ``REPRO_VERIFY_WARMSTART=1`` additionally re-solves cold after every
  accepted warm solve and raises on any disagreement (used by tests
  and the CI identity job).

Switched off globally with :func:`set_warm_start` (the
``--no-warm-start`` CLI flag).
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Optional, Sequence

import numpy as np


class NSBasis:
    """Spanning-tree basis snapshot of a network-simplex solve.

    ``parent``/``parent_arc`` describe the tree over all nodes
    (including the artificial root, which has parent ``-1``);
    ``state`` is the LOWER/TREE/UPPER state of every arc, including
    super-source/sink and artificial arcs.
    """

    __slots__ = ("parent", "parent_arc", "state", "n_nodes", "n_arcs")

    def __init__(
        self,
        parent: List[int],
        parent_arc: List[int],
        state: List[int],
        n_nodes: int,
        n_arcs: int,
    ) -> None:
        self.parent = parent
        self.parent_arc = parent_arc
        self.state = state
        self.n_nodes = n_nodes
        self.n_arcs = n_arcs


class WarmStartSlot:
    """Mutable holder for the last basis of one arc topology.

    Callers that re-solve the same topology (relaxation chains, model
    re-solves) keep one slot alive across solves and pass it to
    :func:`~repro.flows.networksimplex.solve_network_simplex`.  The
    slot records the pivot count of the cold solve that seeded it so
    the ``warmstart.pivots_saved`` counter can report actual savings.

    A slot additionally memoizes the *exact* last instance: when a
    caller re-submits bit-identical input arrays (a repartition block
    whose positions did not change since the previous pass), the stored
    result is returned without touching the solver at all — the
    strongest form of warm start, and trivially bit-exact.
    """

    __slots__ = ("fingerprint", "basis", "cold_pivots",
                 "memo_digest", "memo_value")

    def __init__(self) -> None:
        self.fingerprint: Optional[str] = None
        self.basis: Optional[NSBasis] = None
        self.cold_pivots: int = 0
        #: sha256 of the full input arrays of the last solve, and the
        #: value returned for them (exact-instance memoization)
        self.memo_digest: Optional[bytes] = None
        self.memo_value = None

    def matches(self, fp: str) -> bool:
        return self.basis is not None and self.fingerprint == fp

    def store(self, fp: str, basis: NSBasis, pivots: int, cold: bool) -> None:
        """Record the final basis of a solve of topology ``fp``.

        ``cold_pivots`` tracks the effort of the most recent *cold*
        solve of this topology; warm solves keep the previous value so
        savings are measured against a real cold baseline.
        """
        if cold or self.fingerprint != fp:
            self.cold_pivots = pivots
        self.fingerprint = fp
        self.basis = basis

    def clear(self) -> None:
        self.fingerprint = None
        self.basis = None
        self.cold_pivots = 0


def fingerprint(n_nodes: int, tails: Sequence[int], heads: Sequence[int]) -> str:
    """Topology fingerprint of a transformed instance.

    Covers the node count and every arc endpoint (real, super-source/
    sink and — implicitly, since they are a pure function of the node
    count — artificial arcs).  Costs and capacities are deliberately
    excluded: a basis remains a valid starting point when only they
    change.
    """
    h = hashlib.sha256()
    h.update(n_nodes.to_bytes(8, "little"))
    h.update(len(tails).to_bytes(8, "little"))
    h.update(np.asarray(tails, dtype=np.int64).tobytes())
    h.update(np.asarray(heads, dtype=np.int64).tobytes())
    return h.hexdigest()


_enabled = True


def warm_start_enabled() -> bool:
    return _enabled


def set_warm_start(enabled: bool) -> bool:
    """Globally enable/disable warm starts; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def verify_warm_start() -> bool:
    """True when every warm solve must be checked against a cold one."""
    return os.environ.get("REPRO_VERIFY_WARMSTART", "") not in ("", "0")


def drop_block_slots(slots: Optional[dict], blocks) -> int:
    """Invalidate the reflow warm slots of the given blocks.

    The ECO engine's invalidation frontier: a committed delta changes
    the geometry (and therefore the transportation instances) of the
    grid blocks it touches, so their stored bases and local-QP memos
    must not seed the next incremental solve.  ``slots`` is the
    per-block dict owned by ``BonnPlaceFBP._reflow_slots``; every key
    ends in the block origin ``(bx, by)`` (see
    ``repartition_pass``).  Untouched blocks keep their slots — that
    reuse is where the incremental speedup comes from.

    ``blocks=None`` drops *every* slot — the global frontier of a net
    re-weighting delta, where the local-QP memo (which digests cells
    and positions, not weights) would otherwise return stale answers.

    Returns the number of slots dropped (``warmstart.slots_invalidated``).
    """
    if not slots:
        return 0
    if blocks is None:
        doomed = list(slots)
    else:
        doomed_blocks = {(int(bx), int(by)) for bx, by in blocks}
        doomed = [
            k
            for k in slots
            if isinstance(k, tuple)
            and len(k) >= 2
            and (k[-2], k[-1]) in doomed_blocks
        ]
    for k in doomed:
        del slots[k]
    if doomed:
        from repro.obs import incr

        incr("warmstart.slots_invalidated", len(doomed))
    return len(doomed)
