"""Pin-density congestion estimation and cell inflation.

A cheap, standard congestion proxy: per placement bin, congestion =
pin count per unit of free area, normalized by the design average.
Cells in bins above a threshold get their *width* inflated by a factor
growing with the excess (capped), which reserves whitespace for
routing exactly where wires crowd.  Inflation is virtual — the
original widths are stored and restorable — but all placement
machinery (capacities, partitioning, legalization) sees the inflated
sizes, which is what stresses feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.metrics.density import DensityMap, default_bin_count
from repro.netlist import Netlist


@dataclass
class InflationResult:
    """Bookkeeping of an inflation pass (needed to deflate)."""

    original_widths: Dict[int, float] = field(default_factory=dict)
    inflated_cells: int = 0
    added_area: float = 0.0
    max_factor: float = 1.0


def congestion_map(
    netlist: Netlist, bins: Optional[int] = None
) -> np.ndarray:
    """Pin density per bin, normalized so the design average is 1.0."""
    nb = bins or default_bin_count(netlist)
    dmap = DensityMap(netlist, nb, nb)
    pins = np.zeros((nb, nb))
    for net in netlist.nets:
        for pin in net.pins:
            px, py = netlist.pin_position(pin)
            i, j = dmap.bin_of(px, py)
            pins[i, j] += 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        density = np.where(
            dmap.capacity > 1e-9, pins / np.maximum(dmap.capacity, 1e-9), 0.0
        )
    avg = density[density > 0].mean() if np.any(density > 0) else 1.0
    return density / max(avg, 1e-12)


def inflate_cells(
    netlist: Netlist,
    threshold: float = 1.4,
    strength: float = 0.5,
    max_factor: float = 1.6,
    bins: Optional[int] = None,
) -> InflationResult:
    """Inflate cells sitting in congested bins.

    A cell in a bin with normalized congestion ``c > threshold`` gets
    width scaled by ``min(1 + strength * (c - threshold), max_factor)``.
    Returns the bookkeeping needed by :func:`deflate_cells`.
    """
    nb = bins or default_bin_count(netlist)
    congestion = congestion_map(netlist, nb)
    dmap = DensityMap(netlist, nb, nb)
    result = InflationResult()
    for cell in netlist.cells:
        if cell.fixed:
            continue
        i, j = dmap.bin_of(netlist.x[cell.index], netlist.y[cell.index])
        c = congestion[i, j]
        if c <= threshold:
            continue
        factor = min(1.0 + strength * (c - threshold), max_factor)
        if factor <= 1.0 + 1e-9:
            continue
        result.original_widths[cell.index] = cell.width
        result.added_area += cell.size * (factor - 1.0)
        result.max_factor = max(result.max_factor, factor)
        cell.width *= factor
        result.inflated_cells += 1
    if result.inflated_cells:
        netlist._dim_cache = None
        netlist._hpwl_cache = netlist._hpwl_cache  # pin offsets unchanged
    return result


def deflate_cells(netlist: Netlist, inflation: InflationResult) -> None:
    """Restore the original cell widths recorded by inflate_cells."""
    for index, width in inflation.original_widths.items():
        netlist.cells[index].width = width
    if inflation.original_widths:
        netlist._dim_cache = None
