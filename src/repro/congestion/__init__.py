"""Congestion-driven cell inflation.

Paper §IV, on recursive partitioning: "partitioning into subwindows of
w assumes that a feasible partitioning in w exists, which is not always
true due to rounding effects in partitioning or **increased cell sizes
from congestion avoidance**" — i.e. placers inflate cells in congested
areas, and the local recursive scheme can then wedge itself, while
FBP's global flow re-establishes feasibility.

This package provides the inflation mechanism (pin-density-based bloat
factors applied as virtual cell widths) so that claim is exercisable:
see ``benchmarks/bench_congestion_inflation.py``.
"""

from repro.congestion.inflation import (
    InflationResult,
    congestion_map,
    deflate_cells,
    inflate_cells,
)

__all__ = [
    "congestion_map",
    "inflate_cells",
    "deflate_cells",
    "InflationResult",
]
