"""Cross-level geometry cache for the multilevel FBP schedule.

The schedule recomputes geometric artifacts from scratch at every
level: the Hanan-grid region decomposition, the clipping of every
region to every grid window (``Grid.build_regions``), and the fixed
cell area per (window, region) (``fixed_cell_usage``).  All of these
are pure functions of the *instance* (die, movebounds, blockages,
fixed cells) and the grid dimensions — they never depend on the
movable placement — so a run can compute each once and levels can
derive their window clippings from the previous level's (a level's
windows are exact refinements of the coarser level's; see
``Grid.build_regions``).

A :class:`GeometryCache` is a keyed store scoped by a config hash (the
same hash :mod:`repro.runstate` uses to decide whether a resume is
sound): any option or instance change that could alter the cached
geometry changes the scope, so stale entries can never be returned —
they are simply never looked up.  Stores live in a small module-level
LRU so repeated runs of the same instance+config (benchmarks,
``--resume``, relaxation re-runs) also reuse each other's geometry.

Activation is explicit and lexically scoped (:func:`activated_cache`);
with no active cache every consumer computes exactly what it computed
before this module existed.  The ``--no-region-cache`` CLI flag simply
skips activation.

Counters: every lookup increments ``cache.hit`` or ``cache.miss``.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs import incr

__all__ = [
    "GeometryCache",
    "activated_cache",
    "active_cache",
    "drop_scope",
]

#: Number of (instance, config) scopes kept alive at module level.
_MAX_SCOPES = 8

_stores: "OrderedDict[str, Dict[object, object]]" = OrderedDict()
_active: Optional["GeometryCache"] = None


class GeometryCache:
    """Keyed store of geometry artifacts for one (instance, config).

    Values are treated as immutable by every consumer; callers that
    need a mutable view copy on read (e.g. ``list(cached_regions)``).
    """

    __slots__ = ("scope", "_store")

    def __init__(self, scope: str) -> None:
        self.scope = scope
        self._store = _stores.get(scope)
        if self._store is None:
            self._store = {}
            _stores[scope] = self._store
        _stores.move_to_end(scope)
        while len(_stores) > _MAX_SCOPES:
            _stores.popitem(last=False)

    def get(self, key: object) -> Optional[object]:
        """Value stored under ``key``; counts a hit/miss either way."""
        value = self._store.get(key)
        if value is None:
            incr("cache.miss")
        else:
            incr("cache.hit")
        return value

    def peek(self, key: object) -> Optional[object]:
        """Like :meth:`get` but without touching the counters (used
        for derivation lookups that are neither a hit nor a miss of
        the requested key)."""
        return self._store.get(key)

    def put(self, key: object, value: object) -> None:
        self._store[key] = value


def drop_scope(scope: str) -> bool:
    """Evict one scope's store from the module-level LRU.

    The ECO engine's invalidation frontier calls this when a committed
    delta changes the instance geometry: the pre-delta scope can never
    be looked up again by that engine (the new bounds hash to a new
    scope), so holding its store would only crowd younger scopes out
    of the LRU.  Returns True when a store was actually dropped
    (``cache.scope_dropped``).
    """
    removed = _stores.pop(scope, None) is not None
    if removed:
        incr("cache.scope_dropped")
    return removed


def active_cache() -> Optional[GeometryCache]:
    """The cache of the innermost :func:`activated_cache`, or None."""
    return _active


@contextmanager
def activated_cache(scope: str) -> Iterator[GeometryCache]:
    """Activate a :class:`GeometryCache` for ``scope`` in this block.

    Nests (a clustered run activates its own scope inside the outer
    run's); the previous active cache is restored on exit.
    """
    global _active
    previous = _active
    cache = GeometryCache(scope)
    _active = cache
    try:
        yield cache
    finally:
        _active = previous
