"""Planar geometry substrate: rectangles, rectangle sets, Hanan grids.

Everything in the placer is axis-parallel, so this package implements
exact integer/float rectangle arithmetic without any external geometry
dependency.  The central types are:

* :class:`~repro.geometry.rect.Rect` — a closed axis-parallel rectangle.
* :class:`~repro.geometry.rectset.RectSet` — a union of rectangles kept
  in a disjoint normal form, with area, intersection, subtraction and
  containment queries.
* :func:`~repro.geometry.hanan.hanan_grid` — the Hanan grid used by the
  region decomposition of the paper (Lemma 1).
"""

from repro.geometry.rect import Rect
from repro.geometry.rectset import RectSet
from repro.geometry.hanan import hanan_coordinates, hanan_cells
from repro.geometry.cache import (
    GeometryCache,
    activated_cache,
    active_cache,
    drop_scope,
)

__all__ = [
    "Rect",
    "RectSet",
    "hanan_coordinates",
    "hanan_cells",
    "GeometryCache",
    "activated_cache",
    "drop_scope",
    "active_cache",
]
