"""Axis-parallel rectangles.

A :class:`Rect` is a closed rectangle ``[x_lo, x_hi] x [y_lo, y_hi]``.
Degenerate rectangles (zero width or height) are permitted as values but
most constructors in the placer reject them; helpers below distinguish
*area overlap* (open-interior intersection) from mere boundary touching,
which matters for legality checks: two abutting cells share an edge but
do not overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple


@dataclass(frozen=True, order=True)
class Rect:
    """A closed axis-parallel rectangle ``[x_lo, x_hi] x [y_lo, y_hi]``."""

    x_lo: float
    y_lo: float
    x_hi: float
    y_hi: float

    def __post_init__(self) -> None:
        if self.x_hi < self.x_lo or self.y_hi < self.y_lo:
            raise ValueError(
                f"malformed rectangle: ({self.x_lo}, {self.y_lo}, "
                f"{self.x_hi}, {self.y_hi})"
            )

    # ------------------------------------------------------------------
    # basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x_hi - self.x_lo

    @property
    def height(self) -> float:
        return self.y_hi - self.y_lo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x_lo + self.x_hi), 0.5 * (self.y_lo + self.y_hi))

    @property
    def is_empty(self) -> bool:
        """True when the rectangle has zero area."""
        return self.width == 0 or self.height == 0

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        return self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x_lo <= other.x_lo
            and self.y_lo <= other.y_lo
            and self.x_hi >= other.x_hi
            and self.y_hi >= other.y_hi
        )

    def touches(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least one point."""
        return (
            self.x_lo <= other.x_hi
            and other.x_lo <= self.x_hi
            and self.y_lo <= other.y_hi
            and other.y_lo <= self.y_hi
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the rectangles share interior area (not just edges)."""
        return (
            self.x_lo < other.x_hi
            and other.x_lo < self.x_hi
            and self.y_lo < other.y_hi
            and other.y_lo < self.y_hi
        )

    # ------------------------------------------------------------------
    # constructions
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlap rectangle, or None when interiors are disjoint."""
        if not self.overlaps(other):
            return None
        return Rect(
            max(self.x_lo, other.x_lo),
            max(self.y_lo, other.y_lo),
            min(self.x_hi, other.x_hi),
            min(self.y_hi, other.y_hi),
        )

    def intersection_area(self, other: "Rect") -> float:
        w = min(self.x_hi, other.x_hi) - max(self.x_lo, other.x_lo)
        h = min(self.y_hi, other.y_hi) - max(self.y_lo, other.y_lo)
        if w <= 0 or h <= 0:
            return 0.0
        return w * h

    def bbox_union(self, other: "Rect") -> "Rect":
        """Smallest rectangle containing both operands."""
        return Rect(
            min(self.x_lo, other.x_lo),
            min(self.y_lo, other.y_lo),
            max(self.x_hi, other.x_hi),
            max(self.y_hi, other.y_hi),
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x_lo + dx, self.y_lo + dy, self.x_hi + dx, self.y_hi + dy)

    def inflated(self, margin: float) -> "Rect":
        """Grow (or shrink, for negative margin) by `margin` on all sides."""
        return Rect(
            self.x_lo - margin,
            self.y_lo - margin,
            self.x_hi + margin,
            self.y_hi + margin,
        )

    def clamp_point(self, x: float, y: float) -> Tuple[float, float]:
        """Closest point of the rectangle to ``(x, y)``."""
        return (
            min(max(x, self.x_lo), self.x_hi),
            min(max(y, self.y_lo), self.y_hi),
        )

    def distance_to_point(self, x: float, y: float) -> float:
        """L1 distance from ``(x, y)`` to the rectangle (0 when inside)."""
        cx, cy = self.clamp_point(x, y)
        return abs(cx - x) + abs(cy - y)

    def subtract(self, other: "Rect") -> Iterator["Rect"]:
        """Yield up to four rectangles covering ``self`` minus ``other``."""
        inter = self.intersection(other)
        if inter is None:
            yield self
            return
        if inter.y_hi < self.y_hi:  # top band
            yield Rect(self.x_lo, inter.y_hi, self.x_hi, self.y_hi)
        if self.y_lo < inter.y_lo:  # bottom band
            yield Rect(self.x_lo, self.y_lo, self.x_hi, inter.y_lo)
        if self.x_lo < inter.x_lo:  # left band
            yield Rect(self.x_lo, inter.y_lo, inter.x_lo, inter.y_hi)
        if inter.x_hi < self.x_hi:  # right band
            yield Rect(inter.x_hi, inter.y_lo, self.x_hi, inter.y_hi)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.x_lo, self.y_lo, self.x_hi, self.y_hi)

    def __repr__(self) -> str:  # compact, eval-able
        return f"Rect({self.x_lo}, {self.y_lo}, {self.x_hi}, {self.y_hi})"


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Smallest rectangle covering all input rectangles.

    Raises ValueError on an empty input because there is no natural
    empty bounding box.
    """
    it = iter(rects)
    try:
        box = next(it)
    except StopIteration:
        raise ValueError("bounding_box of an empty rectangle collection")
    for r in it:
        box = box.bbox_union(r)
    return box


def total_area(rects: Iterable[Rect]) -> float:
    """Sum of rectangle areas (counts overlaps twice; see RectSet.area
    for the measure-theoretic union area)."""
    return sum(r.area for r in rects)
