"""Unions of rectangles in disjoint normal form.

A :class:`RectSet` stores a region of the plane as a list of pairwise
interior-disjoint rectangles.  Movebound areas, region areas and free
(blockage-subtracted) space are all RectSets.  The normal form makes
area, containment and intersection queries exact and cheap, at the cost
of a normalization pass on construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.rect import Rect, bounding_box


def _disjointify(rects: Sequence[Rect]) -> List[Rect]:
    """Rewrite a rectangle list as pairwise interior-disjoint rectangles
    covering the same point set.

    Processes rectangles one at a time, subtracting the already-placed
    union from each newcomer.  Quadratic in the worst case, which is fine
    at the region counts the placer produces (hundreds to a few
    thousand).
    """
    placed: List[Rect] = []
    for rect in rects:
        if rect.is_empty:
            continue
        pending = [rect]
        for existing in placed:
            next_pending: List[Rect] = []
            for piece in pending:
                next_pending.extend(piece.subtract(existing))
            pending = next_pending
            if not pending:
                break
        placed.extend(p for p in pending if not p.is_empty)
    return placed


def _merge_pass(rects: List[Rect]) -> List[Rect]:
    """One pass of greedy merging of abutting rectangles (equal-height
    horizontal neighbors, then equal-width vertical neighbors)."""
    changed = True
    out = list(rects)
    while changed:
        changed = False
        out.sort(key=lambda r: (r.y_lo, r.y_hi, r.x_lo))
        merged: List[Rect] = []
        for r in out:
            if merged:
                m = merged[-1]
                if (
                    m.y_lo == r.y_lo
                    and m.y_hi == r.y_hi
                    and m.x_hi == r.x_lo
                ):
                    merged[-1] = Rect(m.x_lo, m.y_lo, r.x_hi, r.y_hi)
                    changed = True
                    continue
            merged.append(r)
        out = merged
        out.sort(key=lambda r: (r.x_lo, r.x_hi, r.y_lo))
        merged = []
        for r in out:
            if merged:
                m = merged[-1]
                if (
                    m.x_lo == r.x_lo
                    and m.x_hi == r.x_hi
                    and m.y_hi == r.y_lo
                ):
                    merged[-1] = Rect(m.x_lo, m.y_lo, m.x_hi, r.y_hi)
                    changed = True
                    continue
            merged.append(r)
        out = merged
    return out


class RectSet:
    """A union of axis-parallel rectangles, normalized to be disjoint.

    Instances are immutable; all operations return new sets.
    """

    __slots__ = ("_rects", "_area", "_centroid")

    def __init__(self, rects: Iterable[Rect] = ()) -> None:
        self._rects: Tuple[Rect, ...] = tuple(
            sorted(_merge_pass(_disjointify(list(rects))))
        )
        # memoized derived quantities (instances are immutable)
        self._area: Optional[float] = None
        self._centroid: Optional[Tuple[float, float]] = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def rects(self) -> Tuple[Rect, ...]:
        return self._rects

    @property
    def area(self) -> float:
        if self._area is None:
            self._area = sum(r.area for r in self._rects)
        return self._area

    @property
    def is_empty(self) -> bool:
        return not self._rects

    def bounding_box(self) -> Rect:
        return bounding_box(self._rects)

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._rects)

    def __len__(self) -> int:
        return len(self._rects)

    def __eq__(self, other: object) -> bool:
        """Set equality as point sets (via symmetric-difference area)."""
        if not isinstance(other, RectSet):
            return NotImplemented
        if self.is_empty and other.is_empty:
            return True
        return (
            self.subtract(other).area == 0 and other.subtract(self).area == 0
        )

    def __hash__(self) -> int:  # rely on normal form
        return hash(self._rects)

    def __repr__(self) -> str:
        return f"RectSet({list(self._rects)!r})"

    # ------------------------------------------------------------------
    # point / rect predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        return any(r.contains_point(x, y) for r in self._rects)

    def contains_rect(self, rect: Rect) -> bool:
        """True when `rect` lies entirely inside the union.

        `rect` may straddle several member rectangles, so this is an
        area argument: the part of `rect` covered by the union must
        equal the whole of `rect`.
        """
        if rect.is_empty:
            return self.contains_point(*rect.center)
        covered = sum(r.intersection_area(rect) for r in self._rects)
        return covered >= rect.area - 1e-9 * max(rect.area, 1.0)

    def overlaps_rect(self, rect: Rect) -> bool:
        return any(r.overlaps(rect) for r in self._rects)

    def intersection_area(self, rect: Rect) -> float:
        return sum(r.intersection_area(rect) for r in self._rects)

    # ------------------------------------------------------------------
    # boolean operations
    # ------------------------------------------------------------------
    def union(self, other: "RectSet") -> "RectSet":
        return RectSet(self._rects + other._rects)

    def intersect_rect(self, rect: Rect) -> "RectSet":
        pieces = []
        for r in self._rects:
            inter = r.intersection(rect)
            if inter is not None:
                pieces.append(inter)
        return RectSet(pieces)

    def intersect(self, other: "RectSet") -> "RectSet":
        pieces: List[Rect] = []
        for r in self._rects:
            for s in other._rects:
                inter = r.intersection(s)
                if inter is not None:
                    pieces.append(inter)
        return RectSet(pieces)

    def subtract_rect(self, rect: Rect) -> "RectSet":
        pieces: List[Rect] = []
        for r in self._rects:
            pieces.extend(r.subtract(rect))
        return RectSet(pieces)

    def subtract(self, other: "RectSet") -> "RectSet":
        out = self
        for rect in other._rects:
            out = out.subtract_rect(rect)
        return out

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def centroid(self) -> Tuple[float, float]:
        """Area-weighted centroid of the union."""
        if self.is_empty:
            raise ValueError("centroid of an empty RectSet")
        if self._centroid is not None:
            return self._centroid
        a = self.area
        if a == 0:
            self._centroid = self._rects[0].center
            return self._centroid
        cx = sum(r.area * r.center[0] for r in self._rects) / a
        cy = sum(r.area * r.center[1] for r in self._rects) / a
        self._centroid = (cx, cy)
        return self._centroid

    def clamp_point(self, x: float, y: float) -> Tuple[float, float]:
        """Closest (L1) point of the union to ``(x, y)``."""
        if self.is_empty:
            raise ValueError("clamp_point on an empty RectSet")
        best: Optional[Tuple[float, Tuple[float, float]]] = None
        for r in self._rects:
            px, py = r.clamp_point(x, y)
            d = abs(px - x) + abs(py - y)
            if best is None or d < best[0]:
                best = (d, (px, py))
                if d == 0:
                    break
        assert best is not None
        return best[1]

    def distance_to_point(self, x: float, y: float) -> float:
        px, py = self.clamp_point(x, y)
        return abs(px - x) + abs(py - y)

    def distances_to_points(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> np.ndarray:
        """L1 distance of each ``(xs[i], ys[i])`` to the union.

        Bit-identical to calling :meth:`distance_to_point` per point
        (same clamp arithmetic, and the minimum over member rectangles
        does not depend on evaluation order), but one numpy pass per
        rectangle instead of a Python loop per point.
        """
        if self.is_empty:
            raise ValueError("distances_to_points on an empty RectSet")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        best = np.full(xs.shape, np.inf)
        for r in self._rects:
            d = np.abs(np.clip(xs, r.x_lo, r.x_hi) - xs) + np.abs(
                np.clip(ys, r.y_lo, r.y_hi) - ys
            )
            np.minimum(best, d, out=best)
        return best
