"""Hanan grids.

Lemma 1 of the paper: the Hanan grid induced by the rectangle
coordinates of the movebounds decomposes the chip area into O(l^2)
rectangles, each of which is movebound-pure and can therefore serve as a
region.  This module provides the coordinate extraction and the cell
enumeration used by :mod:`repro.movebounds.regions`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.geometry.rect import Rect


def hanan_coordinates(
    rects: Iterable[Rect], frame: Rect
) -> Tuple[List[float], List[float]]:
    """Sorted unique x and y coordinates of the Hanan grid.

    The grid is induced by all rectangle edges, clipped to (and always
    including) the `frame` boundary.
    """
    xs = {frame.x_lo, frame.x_hi}
    ys = {frame.y_lo, frame.y_hi}
    for r in rects:
        for x in (r.x_lo, r.x_hi):
            if frame.x_lo < x < frame.x_hi:
                xs.add(x)
        for y in (r.y_lo, r.y_hi):
            if frame.y_lo < y < frame.y_hi:
                ys.add(y)
    return sorted(xs), sorted(ys)


def hanan_cells(xs: Sequence[float], ys: Sequence[float]) -> Iterator[Rect]:
    """All grid cells of the Hanan grid with the given coordinates."""
    for i in range(len(xs) - 1):
        for j in range(len(ys) - 1):
            yield Rect(xs[i], ys[j], xs[i + 1], ys[j + 1])


def hanan_decomposition(rects: Iterable[Rect], frame: Rect) -> List[Rect]:
    """Decompose `frame` into Hanan-grid cells induced by `rects`.

    The returned rectangles tile `frame` exactly, and no rectangle edge
    of the input crosses the interior of any returned cell.
    """
    xs, ys = hanan_coordinates(rects, frame)
    return list(hanan_cells(xs, ys))
