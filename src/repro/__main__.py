"""``python -m repro`` entry point.

Observability flags (``--trace``, ``--trace-json PATH``,
``--check-invariants``) are handled in :mod:`repro.cli` and apply to
every subcommand, e.g.::

    python -m repro --trace-json out.json place Rabe --dir work/
"""

import sys

from repro.cli import main

sys.exit(main())
