"""ASCII renderers."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.movebounds import DEFAULT_BOUND, MoveBoundSet, RegionDecomposition
from repro.netlist import Netlist


def _canvas(width: int, height: int) -> List[List[str]]:
    return [[" "] * width for _ in range(height)]


def _to_text(canvas: List[List[str]]) -> str:
    # row 0 is the top of the chip
    return "\n".join("".join(row) for row in canvas)


def render_regions(
    decomposition: RegionDecomposition,
    width: int = 72,
    height: int = 28,
) -> str:
    """Render the maximal regions (Figure 1 right): each region gets a
    letter; the default-only region prints as '.'."""
    die = decomposition.die
    canvas = _canvas(width, height)
    symbols = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
    legend: Dict[str, str] = {}
    for row in range(height):
        for col in range(width):
            x = die.x_lo + (col + 0.5) / width * die.width
            y = die.y_hi - (row + 0.5) / height * die.height
            region = decomposition.region_at(x, y)
            if region is None:
                continue
            if region.signature == frozenset({DEFAULT_BOUND}):
                canvas[row][col] = "."
                continue
            key = ",".join(
                sorted(n for n in region.signature if n != DEFAULT_BOUND)
            )
            if key not in legend:
                legend[key] = symbols[len(legend) % len(symbols)]
            canvas[row][col] = legend[key]
    lines = [_to_text(canvas), ""]
    for key, sym in sorted(legend.items(), key=lambda kv: kv[1]):
        lines.append(f"  {sym} = region covered by {{{key}}}")
    lines.append("  . = unconstrained (default) region")
    return "\n".join(lines)


def render_placement(
    netlist: Netlist,
    bounds: Optional[MoveBoundSet] = None,
    width: int = 72,
    height: int = 28,
) -> str:
    """Density picture of the current placement: darker = more cells.
    Movebound areas are outlined with their first letter."""
    die = netlist.die
    shades = " .:-=+*#%@"
    counts = [[0] * width for _ in range(height)]
    for cell in netlist.cells:
        if cell.fixed:
            continue
        col = int((netlist.x[cell.index] - die.x_lo) / die.width * width)
        row = int(
            (die.y_hi - netlist.y[cell.index]) / die.height * height
        )
        col = min(max(col, 0), width - 1)
        row = min(max(row, 0), height - 1)
        counts[row][col] += 1
    peak = max((max(r) for r in counts), default=1) or 1
    canvas = _canvas(width, height)
    for row in range(height):
        for col in range(width):
            level = int(counts[row][col] / peak * (len(shades) - 1))
            canvas[row][col] = shades[level]
    if bounds is not None:
        for bound in bounds:
            mark = bound.name[-1]
            for rect in bound.area:
                c0 = int((rect.x_lo - die.x_lo) / die.width * width)
                c1 = int((rect.x_hi - die.x_lo) / die.width * width)
                r0 = int((die.y_hi - rect.y_hi) / die.height * height)
                r1 = int((die.y_hi - rect.y_lo) / die.height * height)
                c0, c1 = max(c0, 0), min(c1, width - 1)
                r0, r1 = max(r0, 0), min(r1, height - 1)
                for c in range(c0, c1 + 1):
                    canvas[r0][c] = mark
                    canvas[r1][c] = mark
                for r in range(r0, r1 + 1):
                    canvas[r][c0] = mark
                    canvas[r][c1] = mark
    return _to_text(canvas)


def render_flow_graph(model, result=None, max_arcs: int = 40) -> str:
    """Textual dump of an FBP model (Figures 2-3): node/edge counts by
    type and, when a flow result is given, the flow-carrying external
    arcs in 'window -> window (movebound): flow' form."""
    stats = model.stats
    lines = [
        f"FBP MinCostFlow instance: |V|={stats.num_nodes} "
        f"|E|={stats.num_arcs} (|E|/|V|={stats.arc_node_ratio:.2f})",
        f"  windows={stats.num_windows} region nodes={stats.num_regions} "
        f"cell groups={stats.num_cell_groups} transits={stats.num_transits}",
        f"  external arcs={stats.num_external_arcs}",
    ]
    if result is not None:
        flows = model.external_flows(result)
        lines.append(f"  flow-carrying external arcs: {len(flows)}")
        for arc, f in flows[:max_arcs]:
            v = model.grid.windows[arc.src_window]
            w = model.grid.windows[arc.dst_window]
            lines.append(
                f"    ({v.ix},{v.iy}) -{arc.direction}-> ({w.ix},{w.iy})"
                f"  [{arc.bound}]  flow={f:.1f}"
            )
        if len(flows) > max_arcs:
            lines.append(f"    ... and {len(flows) - max_arcs} more")
    return "\n".join(lines)
