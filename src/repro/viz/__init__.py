"""ASCII visualization of placements, regions and flow graphs.

The paper's Figures 1-4 are diagrams; these renderers produce their
textual equivalents for the example scripts, with no plotting
dependency.
"""

from repro.viz.ascii import (
    render_flow_graph,
    render_placement,
    render_regions,
)

__all__ = ["render_placement", "render_regions", "render_flow_graph"]
