"""The placement-service daemon: accept, admit, dispatch, supervise.

A single asyncio process with three concerns:

* **serving** — a Unix-socket (or localhost-TCP) JSON-lines server;
  one request per connection, so a wedged client can never wedge the
  daemon;
* **scheduling** — a tick loop that dispatches queued jobs (priority
  order, bounded by global/tenant concurrency and the respawn-rate
  cap), reaps finished children, and enforces per-attempt deadlines;
* **supervision** — a crashed, stalled, or corrupt-result attempt is
  retried with exponential backoff; after ``max_attempts`` child
  attempts the job runs *in the daemon* (executor thread, fault sites
  suppressed) — the terminal safety net that guarantees every
  accepted job reaches a terminal state.

Crash tolerance of the daemon itself: every state transition is
committed to the durable job table *before* it takes effect (the
``submit`` reply, in particular, is only sent after the record is on
disk).  A restarted daemon calls :meth:`ServiceDaemon.recover`: jobs
found ``running`` have their orphaned children killed, a committed
``result.json`` is honored as-is, and everything else is re-queued —
``place`` jobs resume bit-identically from their run-dir manifests,
so SIGKILLing the daemon at *any* instant loses no accepted job and
changes no result bits.

Fault-injection sites (daemon side):

* ``svc.accept``   — hit on every submit before admission; ``stage``
  rules become structured error replies, ``kill`` rules crash the
  daemon at its most delicate point (record not yet written —
  the client sees a dropped connection and must retry);
* ``svc.dispatch`` — hit before each dispatch *mutation*; a ``kill``
  here leaves the job ``queued`` and recoverable by construction.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import time
from typing import Any, Dict, List, Optional

from repro.obs import get_tracer, incr
from repro.resilience.errors import (
    JobCancelledError,
    PipelineStageError,
    ReproError,
    ServiceOverloadError,
)
from repro.resilience.faultinject import inject
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.jobs import JobRecord, JobStore
from repro.service.protocol import (
    PROTOCOL_VERSION,
    JobSpec,
    decode_line,
    encode_message,
    error_payload,
    make_error_reply,
    make_reply,
)
from repro.service.quota import QuotaLedger
from repro.service.worker import (
    clear_result,
    read_result,
    run_job_child,
    run_job_to_file,
)

__all__ = ["ServiceDaemon", "META_FILE"]

#: scheduler tick (seconds): deadline/reap granularity
_TICK = 0.05

#: daemon metadata file in the state dir (pid, address) — for humans
#: and tooling; the socket path is the contract clients rely on
META_FILE = "service.json"


class ServiceDaemon:
    """One service instance rooted at a durable state directory."""

    def __init__(
        self,
        state_dir: str,
        policy: Optional[AdmissionPolicy] = None,
        socket_path: Optional[str] = None,
        tcp_port: Optional[int] = None,
    ) -> None:
        import multiprocessing as mp

        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.store = JobStore(state_dir)
        self.policy = policy or AdmissionPolicy()
        # durable quota meter: the ledger loads on every construction,
        # so a crash-restart cycle cannot refill a tenant's quota
        self.admission = AdmissionController(
            self.policy, ledger=QuotaLedger(state_dir)
        )
        self.tcp_port = tcp_port
        self.socket_path = socket_path or os.path.join(
            state_dir, "service.sock"
        )
        # fork: children inherit the fault plan and flow backend, so a
        # job behaves exactly as the same run under `repro place` would
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)

        self.jobs: Dict[str, JobRecord] = {}
        self._children: Dict[str, Any] = {}
        self._fallbacks: Dict[str, Any] = {}
        self._deadlines: Dict[str, float] = {}
        self._events: Dict[str, asyncio.Event] = {}
        self._seq = 0
        self._next_job_num = 1
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # job-set views
    # ------------------------------------------------------------------
    def _queued(self) -> List[JobRecord]:
        return [j for j in self.jobs.values() if j.state == "queued"]

    def _running(self) -> List[JobRecord]:
        return [j for j in self.jobs.values() if j.state == "running"]

    def _event(self, job_id: str) -> asyncio.Event:
        ev = self._events.get(job_id)
        if ev is None:
            ev = asyncio.Event()
            if job_id in self.jobs and self.jobs[job_id].terminal:
                ev.set()
            self._events[job_id] = ev
        return ev

    def _notify(self, job_id: str) -> None:
        if self._events.get(job_id) is not None:
            self._events[job_id].set()

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------
    def recover(self) -> None:
        """Rebuild the in-memory job table from disk and re-queue
        every non-terminal job (orphaned children killed first)."""
        for rec in self.store.load_all():
            self.jobs[rec.job_id] = rec
            self._seq = max(self._seq, rec.seq + 1)
            self._next_job_num = max(
                self._next_job_num, int(rec.job_id[1:]) + 1
            )
            if rec.state == "running":
                if rec.pid:
                    self._kill_orphan(rec.pid)
                committed = read_result(self.store.job_dir(rec.job_id))
                if committed is not None:
                    # the attempt outlived the daemon and committed —
                    # honor it, do not re-run
                    payload, error = committed
                    self._finish(rec, payload, error)
                    incr("svc.recovered_results")
                else:
                    rec.state = "queued"
                    rec.pid = None
                    # a daemon death is not the job's fault: no
                    # attempt charged, no backoff
                    rec.not_before = 0.0
                    self.store.save(rec)
                    incr("svc.orphans_requeued")
            elif rec.state == "queued":
                incr("svc.recovered_queued")

    def _kill_orphan(self, pid: int) -> None:
        """Kill a previous daemon's child so it cannot race the
        re-dispatched attempt for the job's run directory."""
        try:
            with open(f"/proc/{pid}/cmdline", "rb") as f:
                cmdline = f.read()
            if b"repro" not in cmdline and b"python" not in cmdline:
                incr("svc.orphan_pid_skipped")
                return  # pid was recycled by an unrelated process
        except OSError:
            return  # already gone
        try:
            os.kill(pid, signal.SIGKILL)
            incr("svc.orphans_killed")
        except OSError:
            return
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except OSError:
                return
            time.sleep(0.01)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                reply = await self._serve_request(decode_line(line))
            except ReproError as exc:
                reply = make_error_reply(exc)
            except Exception as exc:  # noqa: BLE001 — daemon must survive
                incr("svc.internal_errors")
                reply = make_error_reply(
                    PipelineStageError(
                        f"internal error: {exc!r}", stage="svc.protocol"
                    )
                )
            writer.write(encode_message(reply))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-reply; nothing to do
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_request(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        op = str(msg.get("op", ""))
        if op == "ping":
            counts: Dict[str, int] = {}
            for job in self.jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return make_reply(
                pid=os.getpid(), protocol=PROTOCOL_VERSION, jobs=counts
            )
        if op == "submit":
            return self._op_submit(msg)
        if op == "status":
            return make_reply(job=self._get_job(msg).public_view())
        if op == "result":
            return await self._op_result(msg)
        if op == "cancel":
            return self._op_cancel(msg)
        if op == "jobs":
            ordered = sorted(self.jobs.values(), key=lambda j: j.seq)
            return make_reply(jobs=[j.public_view() for j in ordered])
        if op == "stats":
            return make_reply(
                counters=dict(get_tracer().counters),
                queued=len(self._queued()),
                running=len(self._running()),
            )
        if op == "shutdown":
            assert self._loop is not None and self._stop is not None
            # let the reply flush before the server tears down
            self._loop.call_later(0.1, self._stop.set)
            return make_reply(stopping=True)
        raise PipelineStageError(
            f"unknown op {op!r}", stage="svc.protocol"
        )

    def _get_job(self, msg: Dict[str, Any]) -> JobRecord:
        job_id = str(msg.get("job_id", ""))
        job = self.jobs.get(job_id)
        if job is None:
            raise PipelineStageError(
                f"unknown job {job_id!r}", stage="svc.jobs"
            )
        return job

    def _op_submit(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        inject("svc.accept")
        spec = JobSpec.from_dict(msg.get("spec", {}) or {})
        spec.validate()
        record = JobRecord(
            job_id=f"j{self._next_job_num:06d}",
            spec=spec,
            seq=self._seq,
            submitted_at=time.time(),
        )
        victim = self.admission.admit(
            record, self._queued(), self._running()
        )
        if victim is not None:
            self._shed(victim, record)
        self._next_job_num += 1
        self._seq += 1
        record.budget_seconds = self.admission.job_budget_seconds(
            spec.tenant
        )
        self.jobs[record.job_id] = record
        # the commit point of acceptance: durable before the reply
        self.store.save(record)
        incr("svc.accepted")
        return make_reply(job_id=record.job_id)

    def _shed(self, victim: JobRecord, incoming: JobRecord) -> None:
        victim.state = "shed"
        victim.finished_at = time.time()
        victim.error = error_payload(
            ServiceOverloadError(
                f"shed under overload by higher-priority job "
                f"{incoming.job_id} (tenant {incoming.tenant!r})",
                tenant=victim.tenant,
                shed_job=victim.job_id,
                stage="svc.accept",
            )
        )
        self.store.save(victim)
        self._notify(victim.job_id)

    async def _op_result(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        job = self._get_job(msg)
        if not job.terminal and msg.get("wait"):
            timeout = msg.get("timeout")
            try:
                await asyncio.wait_for(
                    self._event(job.job_id).wait(),
                    None if timeout is None else float(timeout),
                )
            except asyncio.TimeoutError:
                raise PipelineStageError(
                    f"timed out waiting for job {job.job_id}",
                    stage="svc.result",
                ) from None
        if job.state == "done":
            return make_reply(job=job.public_view(), result=job.result)
        if job.state in ("failed", "shed"):
            reply = make_error_reply(
                PipelineStageError("job failed", stage="svc.result")
            )
            # surface the job's own classified error, not a wrapper
            if job.error is not None:
                reply["error"] = job.error
            reply["job"] = job.public_view()
            return reply
        if job.state == "cancelled":
            reply = make_error_reply(
                JobCancelledError(
                    f"job {job.job_id} was cancelled",
                    job_id=job.job_id,
                    stage="svc.result",
                )
            )
            reply["job"] = job.public_view()
            return reply
        return make_reply(job=job.public_view(), pending=True)

    def _op_cancel(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        job = self._get_job(msg)
        if job.terminal:
            return make_reply(job_id=job.job_id, state=job.state)
        proc = self._children.get(job.job_id)
        if proc is not None and proc.is_alive():
            proc.kill()
        job.state = "cancelled"
        job.pid = None
        job.finished_at = time.time()
        job.error = error_payload(
            JobCancelledError(
                f"job {job.job_id} cancelled by client",
                job_id=job.job_id,
                stage="svc.cancel",
            )
        )
        self.store.save(job)
        self._notify(job.job_id)
        incr("svc.cancelled")
        return make_reply(job_id=job.job_id, state="cancelled")

    # ------------------------------------------------------------------
    # scheduling + supervision
    # ------------------------------------------------------------------
    async def _scheduler_loop(self) -> None:
        assert self._stop is not None
        while not self._stop.is_set():
            try:
                self._reap()
                self._enforce_deadlines()
                self._dispatch()
            except Exception:  # noqa: BLE001 — the loop must survive
                incr("svc.scheduler_errors")
            await asyncio.sleep(_TICK)

    def _cleanup_child(self, job_id: str) -> None:
        proc = self._children.pop(job_id, None)
        self._deadlines.pop(job_id, None)
        if proc is not None:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=1.0)

    def _reap(self) -> None:
        for job_id in list(self._children):
            job = self.jobs[job_id]
            proc = self._children[job_id]
            if job.terminal:  # cancelled under our feet
                self._cleanup_child(job_id)
                continue
            committed = read_result(self.store.job_dir(job_id))
            if committed is not None:
                payload, error = committed
                self._cleanup_child(job_id)
                self._finish(job, payload, error)
            elif not proc.is_alive():
                # died without a valid commit: crash or corrupt result
                self._cleanup_child(job_id)
                incr("svc.child_crashes")
                self._attempt_failed(job)
        for job_id in list(self._fallbacks):
            fut = self._fallbacks[job_id]
            if not fut.done():
                continue
            del self._fallbacks[job_id]
            job = self.jobs[job_id]
            if job.terminal:
                continue
            committed = read_result(self.store.job_dir(job_id))
            if committed is not None:
                payload, error = committed
                self._finish(job, payload, error)
            else:
                # run_job_to_file never raises, so only an I/O failure
                # of the commit itself lands here — terminal
                self._finish(
                    job,
                    None,
                    error_payload(
                        PipelineStageError(
                            "in-daemon fallback produced no result",
                            stage="svc.fallback",
                        )
                    ),
                )

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for job_id, deadline in list(self._deadlines.items()):
            if now <= deadline:
                continue
            job = self.jobs[job_id]
            self._cleanup_child(job_id)
            incr("svc.job_timeouts")
            self._attempt_failed(job)

    def _attempt_failed(self, job: JobRecord) -> None:
        job.state = "queued"
        job.pid = None
        job.not_before = time.time() + self.admission.backoff_delay(
            job.attempts
        )
        self.store.save(job)
        incr("svc.retries")

    def _dispatch(self) -> None:
        pol = self.policy
        running = len(self._children) + len(self._fallbacks)
        if running >= pol.max_running:
            return
        now = time.time()
        eligible = [j for j in self._queued() if j.not_before <= now]
        eligible.sort(key=lambda j: (-j.priority, j.seq))
        tenant_running: Dict[str, int] = {}
        for job in self._running():
            tenant_running[job.tenant] = (
                tenant_running.get(job.tenant, 0) + 1
            )
        for job in eligible:
            if running >= pol.max_running:
                break
            if tenant_running.get(job.tenant, 0) >= pol.tenant_max_running:
                continue
            if job.attempts >= pol.max_attempts:
                self._dispatch_fallback(job)
            else:
                if not self.admission.may_spawn():
                    break  # rate-capped: retry next tick
                if not self._dispatch_child(job):
                    continue
            running += 1
            tenant_running[job.tenant] = (
                tenant_running.get(job.tenant, 0) + 1
            )

    def _dispatch_child(self, job: JobRecord) -> bool:
        # the fault site fires before any mutation: a `kill` here
        # leaves the job queued and durable — fully recoverable
        try:
            inject("svc.dispatch")
        except ReproError:
            incr("svc.dispatch_faults")
            job.attempts += 1
            self._attempt_failed(job)
            return False
        job_dir = self.store.job_dir(job.job_id)
        os.makedirs(job_dir, exist_ok=True)
        clear_result(job_dir)
        proc = self._ctx.Process(
            target=run_job_child,
            args=(job.spec.to_dict(), job_dir, job.budget_seconds),
            daemon=True,
            name=f"repro-svc-{job.job_id}",
        )
        proc.start()
        self.admission.note_spawn()
        job.state = "running"
        job.pid = proc.pid
        job.attempts += 1
        if job.started_at is None:
            job.started_at = time.time()
        self.store.save(job)
        self._children[job.job_id] = proc
        self._deadlines[job.job_id] = time.monotonic() + self.policy.job_timeout
        incr("svc.dispatched")
        return True

    def _dispatch_fallback(self, job: JobRecord) -> None:
        """The terminal safety net: run the job in an executor thread
        of the daemon itself, with the child fault sites suppressed —
        same pure function, so the result is identical to a healthy
        child's."""
        try:
            inject("svc.dispatch")
        except ReproError:
            incr("svc.dispatch_faults")
            self._attempt_failed(job)
            return
        assert self._loop is not None
        job_dir = self.store.job_dir(job.job_id)
        os.makedirs(job_dir, exist_ok=True)
        clear_result(job_dir)
        job.state = "running"
        job.pid = None
        job.attempts += 1
        if job.started_at is None:
            job.started_at = time.time()
        self.store.save(job)
        self._fallbacks[job.job_id] = self._loop.run_in_executor(
            None,
            run_job_to_file,
            job.spec,
            job_dir,
            job.budget_seconds,
            False,
        )
        incr("svc.fallbacks")

    def _finish(
        self,
        job: JobRecord,
        payload: Optional[Dict[str, Any]],
        error: Optional[Dict[str, Any]],
    ) -> None:
        if job.terminal:
            return
        job.state = "done" if error is None else "failed"
        job.result = payload
        job.error = error
        job.pid = None
        job.finished_at = time.time()
        if job.started_at is not None:
            elapsed = max(0.0, job.finished_at - job.started_at)
            self.admission.charge(job.tenant, elapsed)
            incr("svc.job_wall_seconds", elapsed)
        self.store.save(job)
        self._notify(job.job_id)
        incr("svc.completed" if error is None else "svc.failed")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Serve until ``shutdown`` (or :meth:`stop`)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                self._loop.add_signal_handler(sig, self._stop.set)
        self.recover()
        if self.tcp_port is not None:
            server = await asyncio.start_server(
                self._handle_conn, host="127.0.0.1", port=self.tcp_port
            )
            addr = server.sockets[0].getsockname()
            endpoint = f"tcp://127.0.0.1:{addr[1]}"
            self.tcp_port = addr[1]
        else:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
            server = await asyncio.start_unix_server(
                self._handle_conn, path=self.socket_path
            )
            endpoint = f"unix://{self.socket_path}"
        self._write_meta(endpoint)
        scheduler = asyncio.create_task(self._scheduler_loop())
        # the readiness line tooling and tests wait for
        print(f"repro service listening on {endpoint}", flush=True)
        try:
            await self._stop.wait()
        finally:
            scheduler.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await scheduler
            server.close()
            await server.wait_closed()
            self._shutdown_children()

    def serve_forever(self) -> None:
        asyncio.run(self.run())

    def stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    def _shutdown_children(self) -> None:
        """Graceful stop: kill in-flight children and durably re-queue
        their jobs (no attempt charged) so the next daemon finishes
        them; in-daemon fallbacks are awaited via their commit files
        on the next start."""
        for job_id in list(self._children):
            job = self.jobs[job_id]
            self._cleanup_child(job_id)
            if not job.terminal:
                job.state = "queued"
                job.pid = None
                job.not_before = 0.0
                self.store.save(job)

    def _write_meta(self, endpoint: str) -> None:
        meta = {
            "pid": os.getpid(),
            "endpoint": endpoint,
            "protocol": PROTOCOL_VERSION,
            "started_at": time.time(),
        }
        with open(os.path.join(self.state_dir, META_FILE), "w") as f:
            json.dump(meta, f, indent=1, sort_keys=True)
            f.write("\n")
