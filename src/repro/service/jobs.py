"""Durable job table of the placement service.

Every accepted job is one checksummed JSON record under
``<state_dir>/jobs/`` plus one private run directory under
``<state_dir>/runs/<job_id>/`` that the job's child process owns
(``runstate`` snapshots, the placed output, and the checksummed
``result.json``).  Records are written with the same atomic
write → fsync → rename discipline as the runstate store, so a reader
— in particular a *restarted* daemon — sees either the previous or
the new complete record, never a torn write.

The record is the commit point of acceptance: the daemon persists the
record *before* replying ``ok`` to ``submit``, so an accepted job can
never be lost to a daemon crash.  On restart,
:meth:`JobStore.load_all` rediscovers every record; jobs left in
``queued`` or ``running`` are re-queued (orphaned child processes are
killed first — see :mod:`repro.service.daemon`), and ``place`` jobs
resume bit-identically from their run-dir manifests.

Lifecycle states::

    queued --> running --> done
       |          |  \\--> failed      (structured error outcome)
       |          \\-----> queued      (crash/stall/corrupt: retry
       |                               with backoff, then in-daemon
       |                               fallback)
       |--> cancelled                  (client cancel)
       \\--> shed                      (admission evicted it under
                                       overload; ServiceOverloadError)

``done``/``failed``/``cancelled``/``shed`` are terminal.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import incr
from repro.resilience.errors import PipelineStageError
from repro.runstate.store import _atomic_write
from repro.service.protocol import JobSpec

__all__ = [
    "JOB_STATES",
    "JOB_TERMINAL_STATES",
    "JobRecord",
    "JobStore",
]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "shed")
JOB_TERMINAL_STATES = frozenset({"done", "failed", "cancelled", "shed"})

_JOB_ID_RE = re.compile(r"^j(\d{6})$")


@dataclass
class JobRecord:
    """One job's durable state (mirrors the on-disk record)."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    #: admission order; ties in priority dispatch break on this
    seq: int = 0
    attempts: int = 0
    #: wall-clock instant before which the scheduler must not
    #: re-dispatch (exponential backoff after a failed attempt)
    not_before: float = 0.0
    #: pid of the running child (None while queued / in-daemon
    #: fallback); a restarted daemon kills this pid if still alive
    pid: Optional[int] = None
    #: per-job solver budget in seconds (from the tenant quota)
    budget_seconds: Optional[float] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        return self.state in JOB_TERMINAL_STATES

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def priority(self) -> int:
        return self.spec.priority

    def public_view(self) -> Dict[str, Any]:
        """What ``status`` replies with."""
        return {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "instance": self.spec.instance,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "state": self.state,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "seq": self.seq,
            "attempts": self.attempts,
            "not_before": self.not_before,
            "pid": self.pid,
            "budget_seconds": self.budget_seconds,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobRecord":
        rec = cls(
            job_id=str(d["job_id"]),
            spec=JobSpec.from_dict(d["spec"]),
            state=str(d["state"]),
            seq=int(d.get("seq", 0)),
            attempts=int(d.get("attempts", 0)),
            not_before=float(d.get("not_before", 0.0)),
            pid=d.get("pid"),
            budget_seconds=d.get("budget_seconds"),
            submitted_at=float(d.get("submitted_at", 0.0)),
            result=d.get("result"),
            error=d.get("error"),
        )
        rec.started_at = d.get("started_at")
        rec.finished_at = d.get("finished_at")
        if rec.state not in JOB_STATES:
            raise PipelineStageError(
                f"job record {rec.job_id} has unknown state {rec.state!r}",
                stage="svc.jobs",
            )
        return rec


class JobStore:
    """Durable store of job records rooted at one service state dir."""

    JOBS_DIR = "jobs"
    RUNS_DIR = "runs"
    QUARANTINE_DIR = "quarantine"

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        os.makedirs(os.path.join(state_dir, self.JOBS_DIR), exist_ok=True)
        os.makedirs(os.path.join(state_dir, self.RUNS_DIR), exist_ok=True)

    # -- paths ----------------------------------------------------------
    def record_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, self.JOBS_DIR, f"{job_id}.json")

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.state_dir, self.RUNS_DIR, job_id)

    # -- ids ------------------------------------------------------------
    def next_job_id(self) -> str:
        """Monotonic across restarts: one past the largest id on disk."""
        top = 0
        jobs_dir = os.path.join(self.state_dir, self.JOBS_DIR)
        for name in os.listdir(jobs_dir):
            m = _JOB_ID_RE.match(name[:-5]) if name.endswith(".json") else None
            if m:
                top = max(top, int(m.group(1)))
        return f"j{top + 1:06d}"

    # -- durable record I/O --------------------------------------------
    def save(self, record: JobRecord) -> None:
        body = record.to_dict()
        canonical = json.dumps(body, sort_keys=True).encode()
        outer = {
            "job": body,
            "sha256": hashlib.sha256(canonical).hexdigest(),
        }
        _atomic_write(
            self.record_path(record.job_id),
            json.dumps(outer, sort_keys=True, indent=1).encode(),
        )
        incr("svc.records_written")

    def load(self, job_id: str) -> JobRecord:
        path = self.record_path(job_id)
        try:
            with open(path, "rb") as f:
                outer = json.loads(f.read())
            body = outer["job"]
            digest = outer["sha256"]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise PipelineStageError(
                f"job record unreadable at {path}: {exc}", stage="svc.jobs"
            ) from exc
        canonical = json.dumps(body, sort_keys=True).encode()
        if hashlib.sha256(canonical).hexdigest() != digest:
            raise PipelineStageError(
                f"job record checksum mismatch at {path}", stage="svc.jobs"
            )
        return JobRecord.from_dict(body)

    def _quarantine(self, job_id: str, reason: str) -> None:
        qdir = os.path.join(self.state_dir, self.QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        path = self.record_path(job_id)
        dest = os.path.join(qdir, os.path.basename(path))
        try:
            os.replace(path, dest)
        except OSError:
            pass
        try:
            with open(dest + ".reason", "w") as f:
                f.write(reason + "\n")
        except OSError:
            pass
        incr("svc.records_quarantined")

    def load_all(self) -> List[JobRecord]:
        """Every verifiable record, sorted by seq (admission order).

        A record that fails verification is quarantined and skipped —
        it can only arise from media corruption, never from a torn
        write (writes are atomic), so skipping cannot drop an accepted
        job that the daemon acknowledged.
        """
        jobs_dir = os.path.join(self.state_dir, self.JOBS_DIR)
        records = []
        for name in sorted(os.listdir(jobs_dir)):
            if not name.endswith(".json"):
                continue
            job_id = name[:-5]
            try:
                records.append(self.load(job_id))
            except PipelineStageError as exc:
                self._quarantine(job_id, str(exc))
        records.sort(key=lambda r: (r.seq, r.job_id))
        return records
