"""Durable per-tenant quota metering for the placement service.

The admission controller meters wall-clock seconds per tenant; before
this module the meter lived only in daemon memory, so a crash-restart
cycle silently refilled every tenant's quota — a crash-looping daemon
(or a tenant inducing one) could launder unlimited solver time.

:class:`QuotaLedger` persists the meter in the daemon state directory
as a checksummed JSON file written through the same
``write → flush → fsync → rename → fsync(dir)`` sequence as the job
table and the ECO delta journal
(:func:`repro.runstate.store.atomic_write`).  The controller loads it
on construction (daemon restart included) and commits after every
charge; a torn or corrupted ledger is quarantined aside (``.corrupt``)
and the meter restarts empty — fail-open, because refusing every
tenant on a bad ledger would turn a media fault into a total outage.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict

from repro.obs import incr
from repro.runstate.store import atomic_write

__all__ = ["QuotaLedger", "QUOTA_FILE"]

QUOTA_FILE = "quota.json"


class QuotaLedger:
    """Checksummed ``{tenant: seconds_used}`` map in the state dir."""

    def __init__(self, state_dir: str) -> None:
        self.path = os.path.join(state_dir, QUOTA_FILE)

    def load(self) -> Dict[str, float]:
        """The persisted meter; empty on absence or corruption (the
        corrupt file is moved aside for post-mortem, never trusted)."""
        try:
            with open(self.path, "rb") as f:
                outer = json.loads(f.read())
            body = outer["used"]
            digest = outer["sha256"]
        except OSError:
            return {}
        except (ValueError, KeyError, TypeError):
            self._quarantine("ledger undecodable")
            return {}
        canonical = json.dumps(body, sort_keys=True).encode()
        if hashlib.sha256(canonical).hexdigest() != digest:
            self._quarantine("ledger body != embedded sha256")
            return {}
        try:
            return {str(k): float(v) for k, v in body.items()}
        except (AttributeError, ValueError, TypeError):
            self._quarantine("ledger malformed")
            return {}

    def save(self, used: Dict[str, float]) -> None:
        """Atomically commit the meter (called after every charge)."""
        body = {str(k): float(v) for k, v in used.items()}
        canonical = json.dumps(body, sort_keys=True).encode()
        data = json.dumps(
            {
                "used": body,
                "sha256": hashlib.sha256(canonical).hexdigest(),
            },
            sort_keys=True,
            indent=1,
        ).encode()
        atomic_write(self.path, data)
        incr("svc.quota_persisted")

    def _quarantine(self, reason: str) -> None:
        incr("svc.quota_quarantined")
        try:
            os.replace(self.path, self.path + ".corrupt")
            with open(self.path + ".corrupt.reason", "w") as f:
                f.write(reason + "\n")
        except OSError:
            pass
