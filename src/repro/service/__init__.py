"""Placement-as-a-service: a crash-tolerant job daemon.

The serving layer the ROADMAP's first open item asks for: a long-lived
asyncio daemon (``repro serve``) that multiplexes concurrent place /
feasibility-check / incremental-replace requests onto the machinery
PRs 2–3 built — :class:`~repro.resilience.budget.SolverBudget` driven
admission control, per-job durable ``runstate`` run directories, and
supervised child processes with retry/backoff — so that any job, or
the daemon itself, can be SIGKILLed at any instant and a restarted
daemon finishes every accepted job with results bit-identical to an
uninterrupted run.

Five pieces (see docs/service.md):

* :mod:`repro.service.protocol` — the JSON-lines request/response
  protocol and the :class:`JobSpec` job description;
* :mod:`repro.service.jobs` — the durable job table (atomic,
  checksummed per-job records; orphan discovery on restart);
* :mod:`repro.service.admission` — bounded queue, per-tenant
  concurrency and wall-clock quotas, deterministic
  shed-oldest-lowest-priority overload behavior
  (:class:`~repro.resilience.errors.ServiceOverloadError`, exit 5);
* :mod:`repro.service.worker` — the job executor run inside a
  supervised child process, writing checksummed result files;
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — the
  asyncio server and the blocking client behind
  ``repro submit|status|result|cancel``.
"""

from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.jobs import (
    JOB_TERMINAL_STATES,
    JobRecord,
    JobStore,
)
from repro.service.protocol import (
    JOB_KINDS,
    PROTOCOL_VERSION,
    JobSpec,
    decode_line,
    encode_message,
    error_from_payload,
    error_payload,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "ServiceClient",
    "ServiceDaemon",
    "JobRecord",
    "JobStore",
    "JobSpec",
    "JOB_KINDS",
    "JOB_TERMINAL_STATES",
    "PROTOCOL_VERSION",
    "encode_message",
    "decode_line",
    "error_payload",
    "error_from_payload",
]
