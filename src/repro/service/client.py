"""Blocking client of the placement service (``repro submit`` etc.).

One connection per request, JSON line in, JSON line out.  Error
replies are re-raised as their
:class:`~repro.resilience.errors.ReproError` taxonomy class, so CLI
callers inherit the exit-code contract for free — a shed or refused
job exits 5, an infeasible instance placed through the service still
exits 2.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Dict, Optional

from repro.resilience.errors import PipelineStageError
from repro.service.protocol import (
    JobSpec,
    decode_line,
    encode_message,
    error_from_payload,
)

__all__ = ["ServiceClient", "SOCKET_ENV_VAR"]

SOCKET_ENV_VAR = "REPRO_SERVICE_SOCKET"


class ServiceClient:
    """Talk to one daemon over its Unix socket or localhost TCP port."""

    #: bounded connect retry: a daemon that was just spawned takes a
    #: moment to bind its socket, and a restarting daemon is briefly
    #: away — both surface as connection-refused / missing socket file
    CONNECT_RETRIES = 5
    CONNECT_BACKOFF = 0.05  # seconds; doubles per attempt (~1.5s total)

    def __init__(
        self,
        socket_path: Optional[str] = None,
        tcp_port: Optional[int] = None,
        timeout: float = 30.0,
        connect_retries: Optional[int] = None,
        connect_backoff: Optional[float] = None,
    ) -> None:
        if socket_path is None and tcp_port is None:
            socket_path = os.environ.get(SOCKET_ENV_VAR)
        if socket_path is None and tcp_port is None:
            raise PipelineStageError(
                "no service address: pass --socket/--tcp or set "
                f"{SOCKET_ENV_VAR}",
                stage="svc.client",
            )
        self.socket_path = socket_path
        self.tcp_port = tcp_port
        self.timeout = timeout
        self.connect_retries = (
            self.CONNECT_RETRIES
            if connect_retries is None
            else max(0, int(connect_retries))
        )
        self.connect_backoff = (
            self.CONNECT_BACKOFF
            if connect_backoff is None
            else max(0.0, float(connect_backoff))
        )

    # -- transport ------------------------------------------------------
    def _connect(self, timeout: Optional[float]) -> socket.socket:
        if self.tcp_port is not None:
            sock = socket.create_connection(
                ("127.0.0.1", self.tcp_port), timeout=timeout
            )
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self.socket_path)
        return sock

    def _connect_with_retry(
        self, timeout: Optional[float]
    ) -> socket.socket:
        """Connect, retrying connection-refused (and a not-yet-created
        Unix socket file) with exponential backoff.

        No request bytes have been sent when these failures occur, so
        retrying is always safe.  Exhaustion surfaces as a classified
        :class:`PipelineStageError` (exit 5 via the service CLI), never
        a raw ``OSError`` traceback."""
        delay = self.connect_backoff
        last: Optional[OSError] = None
        for attempt in range(self.connect_retries + 1):
            try:
                return self._connect(timeout)
            except (ConnectionRefusedError, FileNotFoundError) as exc:
                last = exc
                if attempt == self.connect_retries:
                    break
                time.sleep(delay)
                delay *= 2.0
        raise PipelineStageError(
            f"service at {self.socket_path or self.tcp_port} not "
            f"accepting connections after {self.connect_retries + 1} "
            f"attempts: {last}",
            stage="svc.client",
        ) from last

    def request(
        self,
        msg: Dict[str, Any],
        timeout: Optional[float] = -1,
    ) -> Dict[str, Any]:
        """One round trip; raises the reply's classified error."""
        if timeout == -1:
            timeout = self.timeout
        try:
            with self._connect_with_retry(timeout) as sock:
                sock.sendall(encode_message(msg))
                chunks = []
                while True:
                    chunk = sock.recv(1 << 16)
                    if not chunk:
                        break
                    chunks.append(chunk)
                    if chunk.endswith(b"\n"):
                        break
        except socket.timeout as exc:
            raise PipelineStageError(
                f"service request timed out after {timeout}s",
                stage="svc.client",
            ) from exc
        except OSError as exc:
            raise PipelineStageError(
                f"cannot reach service at "
                f"{self.socket_path or self.tcp_port}: {exc}",
                stage="svc.client",
            ) from exc
        raw = b"".join(chunks)
        if not raw:
            raise PipelineStageError(
                "service closed the connection without a reply "
                "(daemon crashed mid-request?)",
                stage="svc.client",
            )
        reply = decode_line(raw)
        if not reply.get("ok", False):
            exc = error_from_payload(reply.get("error", {}) or {})
            exc.context.setdefault("reply", reply.get("job"))
            raise exc
        return reply

    # -- convenience ops ------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(self, spec: JobSpec) -> str:
        reply = self.request({"op": "submit", "spec": spec.to_dict()})
        return str(reply["job_id"])

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "status", "job_id": job_id})["job"]

    def result(
        self,
        job_id: str,
        wait: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The job's result payload; with ``wait`` blocks until the
        job is terminal.  Raises the job's classified error when it
        failed, was cancelled, or was shed."""
        msg: Dict[str, Any] = {"op": "result", "job_id": job_id}
        if wait:
            msg["wait"] = True
            if timeout is not None:
                msg["timeout"] = timeout
        # waiting replies arrive whenever the job finishes: do not
        # apply the short default socket timeout
        return self.request(msg, timeout=timeout if wait else -1)

    def wait_for(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll ``status`` until terminal — unlike :meth:`result` with
        ``wait``, this survives daemon restarts mid-wait (the blocking
        connection would die with the daemon)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                job = self.status(job_id)
            except PipelineStageError:
                job = None  # daemon briefly away (restarting)
            if job is not None and job["state"] in (
                "done", "failed", "cancelled", "shed",
            ):
                return job
            if time.monotonic() > deadline:
                raise PipelineStageError(
                    f"timed out waiting for job {job_id}",
                    stage="svc.client",
                )
            time.sleep(poll)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "cancel", "job_id": job_id})

    def jobs(self) -> Any:
        return self.request({"op": "jobs"})["jobs"]

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})
