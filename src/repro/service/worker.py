"""Job execution for the placement service.

:func:`execute_job` is the *same pure function* whether it runs in a
supervised child process (:func:`run_job_child`, the normal path) or
in the daemon itself (the terminal fallback after ``max_attempts``
child crashes) — so a crash-looping child degrades to
correct-but-slow, never to a divergent result.

Crash tolerance of one attempt:

* ``place``/``replace`` jobs own a durable ``runstate`` run directory
  (``<job_dir>/run``) opened with ``resume=True``: the first attempt
  starts fresh, every retry resumes from the last durable level, and
  the final placement is bit-identical to an uninterrupted run by the
  PR-3 contract;
* the outcome — success payload *or* classified error — is committed
  by atomically writing a checksummed ``<job_dir>/result.json``; the
  daemon (restarted or not) trusts only a file that verifies, so a
  torn or corrupted result re-runs the attempt instead of corrupting
  the job table.

Fault-injection sites (fire inside the child, per attempt; the
in-daemon fallback bypasses them by design, mirroring the worker
pool's serial fallback):

* ``svc.child.kill``     — ``kill`` rules hard-exit the attempt,
* ``svc.child.stall``    — ``stall:SECONDS`` rules wedge it (deadline
  supervision must reap and retry),
* ``svc.result.corrupt`` — ``corrupt`` rules flip result bytes after
  checksumming, so the daemon must detect and retry.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple

from repro.obs import span
from repro.resilience.budget import SolverBudget, set_default_budget
from repro.resilience.errors import PipelineStageError, ReproError
from repro.resilience.faultinject import corruption, inject
from repro.runstate.store import _atomic_write
from repro.service.protocol import JobSpec, error_payload

__all__ = [
    "RESULT_FILE",
    "validate_options",
    "execute_job",
    "write_result",
    "read_result",
    "run_job_child",
    "run_job_to_file",
]

RESULT_FILE = "result.json"

#: placer options a job spec may set; anything else is refused at
#: admission so a typo'd option fails loudly instead of silently
#: placing with defaults
ALLOWED_OPTIONS = {
    "placer": str,
    "density": float,
    "relax_infeasible": bool,
    "transport_method": str,
    "warm_start": bool,
    "region_cache": bool,
    "legalize": bool,
    # replace jobs: route through the transactional ECO engine
    # (repro.eco) instead of a full re-place; see docs/incremental.md
    "eco": bool,
    "eco_verify": bool,
    "max_hpwl_drift": float,
}


def validate_options(options: Dict[str, Any]) -> None:
    for key, value in options.items():
        want = ALLOWED_OPTIONS.get(key)
        if want is None:
            raise PipelineStageError(
                f"unknown job option {key!r} "
                f"(choose from {sorted(ALLOWED_OPTIONS)})",
                stage="svc.accept",
            )
        if want is float and isinstance(value, int):
            continue
        if not isinstance(value, want):
            raise PipelineStageError(
                f"job option {key!r} must be {want.__name__}, "
                f"got {type(value).__name__}",
                stage="svc.accept",
            )


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _apply_movebound_patch(netlist, bounds, patch) -> None:
    """Apply an incremental-replace floorplan change: new movebound
    rectangles plus cell reassignments, on top of the loaded
    instance."""
    from repro.geometry import Rect
    from repro.movebounds import EXCLUSIVE, INCLUSIVE

    for entry in patch:
        name = str(entry["name"])
        rects = [Rect(*map(float, r)) for r in entry["rects"]]
        kind = EXCLUSIVE if entry.get("exclusive") else INCLUSIVE
        bounds.add_rects(name, rects, kind=kind)
        for cell_name in entry.get("cells", []):
            idx = netlist.cell_index(str(cell_name))
            netlist.cells[idx].movebound = name


def execute_job(spec: JobSpec, job_dir: str) -> Dict[str, Any]:
    """Run one job to completion and return its result payload.

    Deterministic: the payload's ``pl_sha256`` (place/replace) and the
    feasibility fields (check) are pure functions of the spec and the
    instance files — wall-clock fields are reported but excluded from
    any identity contract.
    """
    from repro.bookshelf import load_instance, save_instance

    netlist, bounds = load_instance(spec.dir, spec.instance)
    if spec.kind == "check":
        from repro.feasibility import check_feasibility

        density = float(spec.options.get("density", 0.97))
        report = check_feasibility(netlist, bounds, density_target=density)
        return {
            "kind": "check",
            "feasible": bool(report.feasible),
            "total_cell_area": float(report.total_cell_area),
            "routed_area": float(report.routed_area),
            "witness": sorted(report.witness) if report.witness else None,
        }

    if spec.kind == "replace" and spec.options.get("eco", True) and (
        spec.options.get("placer", "fbp") == "fbp"
    ):
        return _execute_replace_eco(spec, job_dir, netlist, bounds)

    if spec.kind == "replace" and spec.movebound_patch:
        # legacy path (non-FBP placers or eco=False): patch the
        # instance in place, then run the full pipeline below
        _apply_movebound_patch(netlist, bounds, spec.movebound_patch)

    from repro.place import (
        BonnPlaceFBP,
        KraftwerkPlacer,
        RecursivePlacer,
        RQLPlacer,
    )
    from repro.runstate import DurableRunState

    placers = {
        "fbp": BonnPlaceFBP,
        "rql": RQLPlacer,
        "kraftwerk": KraftwerkPlacer,
        "recursive": RecursivePlacer,
    }
    placer = placers[spec.options.get("placer", "fbp")]()
    opts = spec.options
    if hasattr(placer, "options"):
        po = placer.options
        if opts.get("relax_infeasible"):
            po.relax_infeasible = True
        if "warm_start" in opts:
            po.warm_start = bool(opts["warm_start"])
        if "region_cache" in opts:
            po.region_cache = bool(opts["region_cache"])
        if "legalize" in opts:
            po.legalize = bool(opts["legalize"])
        if "transport_method" in opts:
            po.transport_method = str(opts["transport_method"])
    if hasattr(placer, "run_state"):
        # resume=True: fresh when the run dir is empty, bit-identical
        # continuation from the manifest after any crashed attempt
        placer.run_state = DurableRunState(
            os.path.join(job_dir, "run"), resume=True
        )
    result = placer.place(netlist, bounds)

    out_dir = os.path.join(job_dir, "out")
    save_instance(out_dir, netlist, bounds)
    pl_path = os.path.join(out_dir, f"{spec.instance}.pl")
    with open(pl_path, "rb") as f:
        pl_sha = hashlib.sha256(f.read()).hexdigest()
    return {
        "kind": spec.kind,
        "hpwl": float(result.hpwl),
        "legal": bool(result.legality.is_legal) if result.legality else None,
        "relax_factor": float(getattr(placer, "relax_factor", 1.0)),
        "pl_file": pl_path,
        "pl_sha256": pl_sha,
        "global_seconds": float(result.global_seconds),
        "legal_seconds": float(result.legal_seconds),
    }


def _execute_replace_eco(
    spec: JobSpec, job_dir: str, netlist, bounds
) -> Dict[str, Any]:
    """The ``replace`` path through the transactional ECO engine.

    The delta journal lives in ``<job_dir>/run/eco``: an attempt that
    crashed *after* its commit point is replayed bit-identically by
    ``(delta digest, base placement hash)``; one that crashed before
    re-solves from the pristine loaded placement — both deterministic,
    so retries cannot diverge.  Solver failure or verification failure
    degrades to the full multilevel solve inside the engine
    (``eco.fallbacks``); an empty patch is a committed no-op and the
    saved ``.pl`` is byte-identical to the input placement.
    """
    from repro.bookshelf import save_instance
    from repro.eco import EcoEngine, EcoOptions, PlacementDelta
    from repro.place import BonnPlaceFBP

    opts = spec.options
    placer = BonnPlaceFBP()
    po = placer.options
    if "density" in opts:
        po.density_target = float(opts["density"])
    if opts.get("relax_infeasible"):
        po.relax_infeasible = True
    if "warm_start" in opts:
        po.warm_start = bool(opts["warm_start"])
    if "region_cache" in opts:
        po.region_cache = bool(opts["region_cache"])
    if "legalize" in opts:
        po.legalize = bool(opts["legalize"])
    if "transport_method" in opts:
        po.transport_method = str(opts["transport_method"])

    engine = EcoEngine(
        netlist,
        bounds,
        placer=placer,
        run_dir=os.path.join(job_dir, "run"),
        options=EcoOptions(
            verify_solve=bool(opts.get("eco_verify", False)),
            max_hpwl_drift=float(opts.get("max_hpwl_drift", 4.0)),
        ),
    )
    delta = PlacementDelta.from_movebound_patch(spec.movebound_patch or [])
    eco = engine.apply(delta)

    out_dir = os.path.join(job_dir, "out")
    save_instance(out_dir, netlist, engine.bounds)
    pl_path = os.path.join(out_dir, f"{spec.instance}.pl")
    with open(pl_path, "rb") as f:
        pl_sha = hashlib.sha256(f.read()).hexdigest()
    placement = eco.placement
    legality = placement.legality if placement is not None else None
    return {
        "kind": spec.kind,
        "hpwl": float(netlist.hpwl()),
        "legal": bool(legality.is_legal) if legality is not None else None,
        "relax_factor": float(getattr(placer, "relax_factor", 1.0)),
        "pl_file": pl_path,
        "pl_sha256": pl_sha,
        "global_seconds": float(
            placement.global_seconds if placement else 0.0
        ),
        "legal_seconds": float(
            placement.legal_seconds if placement else 0.0
        ),
        "eco": eco.to_dict(),
    }


# ----------------------------------------------------------------------
# the checksummed result file — the attempt's commit point
# ----------------------------------------------------------------------
def write_result(
    job_dir: str,
    payload: Optional[Dict[str, Any]] = None,
    error: Optional[Dict[str, Any]] = None,
    allow_faults: bool = True,
) -> None:
    """Atomically commit the attempt outcome to ``result.json``.

    ``allow_faults=False`` is the in-daemon fallback path: injected
    ``svc.result.corrupt`` rules must not be able to wedge the
    terminal safety net."""
    body = {"payload": payload, "error": error}
    canonical = json.dumps(body, sort_keys=True).encode()
    data = json.dumps(
        {"result": body, "sha256": hashlib.sha256(canonical).hexdigest()},
        sort_keys=True,
        indent=1,
    ).encode()
    if allow_faults and corruption("svc.result.corrupt"):
        # flip bytes after checksumming: the daemon's read must detect
        # the mismatch and treat the attempt as failed
        mangled = bytearray(data)
        mid = len(mangled) // 2
        for i in range(mid, min(mid + 8, len(mangled))):
            mangled[i] ^= 0xFF
        data = bytes(mangled)
    _atomic_write(os.path.join(job_dir, RESULT_FILE), data)


def read_result(
    job_dir: str,
) -> Optional[Tuple[Optional[Dict[str, Any]], Optional[Dict[str, Any]]]]:
    """Load + verify ``result.json``; ``(payload, error)`` on a valid
    commit, None when absent or failing verification (the attempt did
    not complete — retry)."""
    path = os.path.join(job_dir, RESULT_FILE)
    try:
        with open(path, "rb") as f:
            outer = json.loads(f.read())
        body = outer["result"]
        digest = outer["sha256"]
    except (OSError, ValueError, KeyError, TypeError):
        return None
    canonical = json.dumps(body, sort_keys=True).encode()
    if hashlib.sha256(canonical).hexdigest() != digest:
        return None
    return body.get("payload"), body.get("error")


def clear_result(job_dir: str) -> None:
    """Drop a stale result file before re-dispatching an attempt."""
    try:
        os.unlink(os.path.join(job_dir, RESULT_FILE))
    except OSError:
        pass


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run_job_to_file(
    spec: JobSpec,
    job_dir: str,
    budget_seconds: Optional[float] = None,
    allow_faults: bool = True,
) -> None:
    """Execute the job and commit its outcome — success payload or
    classified error — to the result file.  Exceptions never escape:
    every outcome is a durable, structured commit."""
    os.makedirs(job_dir, exist_ok=True)
    if budget_seconds is not None:
        set_default_budget(SolverBudget(max_seconds=budget_seconds))
    try:
        # the span root of this job: every placer/solver span nests
        # under it in the attempt's trace
        with span(f"svc.job.{spec.kind}"):
            payload = execute_job(spec, job_dir)
        write_result(job_dir, payload=payload, allow_faults=allow_faults)
    except ReproError as exc:
        write_result(
            job_dir, error=error_payload(exc), allow_faults=allow_faults
        )
    except Exception as exc:  # noqa: BLE001 — classify, don't crash
        wrapped = PipelineStageError(
            f"job execution failed: {exc!r}", stage="svc.job"
        )
        write_result(
            job_dir, error=error_payload(wrapped), allow_faults=allow_faults
        )


def run_job_child(
    spec_dict: Dict[str, Any],
    job_dir: str,
    budget_seconds: Optional[float] = None,
) -> None:
    """Child-process entry: arm the per-attempt fault sites, then run.

    ``kill`` rules at ``svc.child.kill`` hard-exit before any work
    (SIGKILL semantics); ``stall`` rules at ``svc.child.stall`` wedge
    the attempt so the daemon's deadline supervision must reap it.
    """
    inject("svc.child.kill")
    inject("svc.child.stall")
    run_job_to_file(
        JobSpec.from_dict(spec_dict),
        job_dir,
        budget_seconds=budget_seconds,
        allow_faults=True,
    )
