"""Admission control of the placement service.

Backed by the ``resilience`` budget machinery: every accepted job gets
a wall-clock :class:`~repro.resilience.budget.SolverBudget` carved out
of its tenant's remaining quota, so a tenant under quota pressure
degrades gracefully through the existing ns → ssp → heuristic fallback
chain instead of being killed mid-solve.

Overload behavior is *deterministic* and *structured*:

* the global queue is bounded (``max_queue``); a submit against a full
  queue either **sheds** the oldest job of the strictly
  lowest-priority class (when the incoming job outranks it) or is
  **refused** — both surface as
  :class:`~repro.resilience.errors.ServiceOverloadError` (exit 5),
  never as a daemon crash or an unbounded queue;
* per-tenant queue depth and concurrency are capped so one
  pathological tenant cannot starve the fleet;
* a tenant whose wall-clock quota is exhausted is refused until quota
  frees up (completed jobs charge their elapsed time); with a
  :class:`~repro.service.quota.QuotaLedger` the meter is durable —
  SIGKILLing the daemon does not refill anyone's quota.

Retry pacing also lives here: exponential backoff per failed attempt
and a global child-spawn rate cap (token window) that keeps a
crash-looping job from fork-spinning the host.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional

from repro.obs import incr
from repro.resilience.errors import ServiceOverloadError
from repro.service.jobs import JobRecord

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclass
class AdmissionPolicy:
    """Tunables of the admission controller (CLI flags of ``serve``)."""

    #: bound of the global queued-job set; beyond it, shed or refuse
    max_queue: int = 64
    #: concurrent running jobs across all tenants
    max_running: int = 2
    #: concurrent running jobs per tenant
    tenant_max_running: int = 2
    #: queued jobs per tenant
    tenant_max_queued: int = 32
    #: wall-clock seconds a tenant may consume (None = unmetered);
    #: remaining quota also caps each job's solver budget
    tenant_quota_seconds: Optional[float] = None
    #: per-attempt deadline: a child past it is killed and retried
    job_timeout: float = 300.0
    #: child attempts before the in-daemon fallback runs the job
    max_attempts: int = 3
    #: exponential backoff after a failed attempt: base * 2^(n-1) ...
    backoff_base: float = 0.25
    #: ... capped here
    backoff_cap: float = 5.0
    #: child-spawn rate cap: at most ``respawn_cap`` spawns per
    #: ``respawn_window`` seconds, crash-loops included
    respawn_window: float = 10.0
    respawn_cap: int = 50


class AdmissionController:
    """Decides accept / shed / refuse, and paces retries."""

    def __init__(
        self, policy: AdmissionPolicy, ledger: Optional[object] = None
    ) -> None:
        self.policy = policy
        #: durable quota meter (:class:`repro.service.quota.QuotaLedger`);
        #: None keeps the meter in memory only (tests, ad-hoc daemons)
        self.ledger = ledger
        #: wall-clock seconds consumed per tenant; with a ledger the
        #: meter survives daemon crash-restart cycles — a SIGKILLed
        #: daemon cannot refill a tenant's quota
        self.tenant_used: Dict[str, float] = (
            ledger.load() if ledger is not None else {}
        )
        self._spawn_times: Deque[float] = deque()

    # -- admission ------------------------------------------------------
    def admit(
        self,
        incoming: JobRecord,
        queued: Iterable[JobRecord],
        running: Iterable[JobRecord],
    ) -> Optional[JobRecord]:
        """Admit ``incoming`` against the current queued/running sets.

        Returns the job to *shed* (caller marks it terminal and
        notifies its waiters) when acceptance requires eviction, else
        None.  Raises :class:`ServiceOverloadError` when the job must
        be refused.  Deterministic: the decision is a pure function of
        the job sets and the policy.
        """
        pol = self.policy
        queued = list(queued)
        tenant = incoming.tenant

        remaining = self.quota_remaining(tenant)
        if remaining is not None and remaining <= 0.0:
            incr("svc.refused_quota")
            raise ServiceOverloadError(
                f"tenant {tenant!r} wall-clock quota exhausted "
                f"({pol.tenant_quota_seconds:.0f}s)",
                tenant=tenant,
                stage="svc.accept",
            )
        tenant_queued = [j for j in queued if j.tenant == tenant]
        if len(tenant_queued) >= pol.tenant_max_queued:
            incr("svc.refused_tenant_queue")
            raise ServiceOverloadError(
                f"tenant {tenant!r} queue full "
                f"({pol.tenant_max_queued} queued jobs)",
                tenant=tenant,
                stage="svc.accept",
            )
        if len(queued) < pol.max_queue:
            return None
        # global queue full: shed the oldest job of the strictly
        # lowest-priority class if the incoming job outranks it,
        # else refuse the incoming job itself
        victim = self.shed_victim(queued)
        if victim is not None and victim.priority < incoming.priority:
            incr("svc.shed")
            return victim
        incr("svc.refused_queue_full")
        raise ServiceOverloadError(
            f"service queue full ({pol.max_queue} jobs) and no "
            f"lower-priority job to shed",
            tenant=tenant,
            stage="svc.accept",
        )

    @staticmethod
    def shed_victim(queued: Iterable[JobRecord]) -> Optional[JobRecord]:
        """The deterministic eviction choice: lowest priority first,
        oldest (smallest admission seq) among those, lexicographically
        smallest job id among full ties — recovered queues can carry
        equal (priority, seq) pairs, and the shed decision must not
        depend on dict iteration order."""
        victim = None
        for job in queued:
            if victim is None or (
                job.priority, job.seq, job.job_id
            ) < (victim.priority, victim.seq, victim.job_id):
                victim = job
        return victim

    # -- quotas + budgets ----------------------------------------------
    def quota_remaining(self, tenant: str) -> Optional[float]:
        quota = self.policy.tenant_quota_seconds
        if quota is None:
            return None
        return quota - self.tenant_used.get(tenant, 0.0)

    def charge(self, tenant: str, seconds: float) -> None:
        self.tenant_used[tenant] = (
            self.tenant_used.get(tenant, 0.0) + max(0.0, seconds)
        )
        if self.ledger is not None:
            self.ledger.save(self.tenant_used)

    def job_budget_seconds(self, tenant: str) -> Optional[float]:
        """The per-job solver budget admission derives from the
        tenant's remaining quota: under quota pressure the solver
        chain degrades (ns → ssp → heuristic) instead of the job
        being killed at the deadline."""
        remaining = self.quota_remaining(tenant)
        if remaining is None:
            return None
        return max(1.0, min(self.policy.job_timeout, remaining))

    # -- retry pacing ---------------------------------------------------
    def backoff_delay(self, attempts: int) -> float:
        """Delay before re-dispatching a job that failed ``attempts``
        times: base * 2^(attempts-1), capped."""
        pol = self.policy
        return min(
            pol.backoff_cap, pol.backoff_base * (2.0 ** max(0, attempts - 1))
        )

    def may_spawn(self, now: Optional[float] = None) -> bool:
        """Token-window respawn-rate cap over child process spawns."""
        now = time.monotonic() if now is None else now
        window = self.policy.respawn_window
        while self._spawn_times and now - self._spawn_times[0] > window:
            self._spawn_times.popleft()
        if len(self._spawn_times) >= self.policy.respawn_cap:
            incr("svc.respawn_deferred")
            return False
        return True

    def note_spawn(self, now: Optional[float] = None) -> None:
        self._spawn_times.append(
            time.monotonic() if now is None else now
        )
