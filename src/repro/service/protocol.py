"""JSON-lines wire protocol of the placement service.

One request, one reply, both a single JSON object on one line (UTF-8,
``\\n``-terminated).  The daemon listens on a Unix socket (default) or
localhost TCP; the client opens one connection per request, so a
half-written request can never wedge the daemon — a connection that
fails mid-line is simply dropped.

Requests carry ``op`` plus op-specific fields::

    {"op": "ping"}
    {"op": "submit", "spec": {...JobSpec...}}
    {"op": "status", "job_id": "j000003"}
    {"op": "result", "job_id": "j000003", "wait": true}
    {"op": "cancel", "job_id": "j000003"}
    {"op": "jobs"}
    {"op": "stats"}
    {"op": "shutdown"}

Replies carry ``ok``; on failure ``ok`` is false and ``error`` is a
structured payload mapping back onto the
:class:`~repro.resilience.errors.ReproError` taxonomy (so the client
can exit with the mapped code — overload and cancellation are exit 5)::

    {"ok": true, "job_id": "j000003"}
    {"ok": false, "error": {"type": "ServiceOverloadError",
                            "exit_code": 5, "message": "..."}}

The protocol is versioned; ``ping`` replies include the daemon's
version so mismatched clients fail loudly instead of misparsing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.resilience.errors import (
    DeltaValidationError,
    InfeasibleInputError,
    JobCancelledError,
    PipelineStageError,
    ReproError,
    ServiceOverloadError,
    SolverBudgetExceeded,
    SolverNumericsError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_KINDS",
    "JobSpec",
    "encode_message",
    "decode_line",
    "error_payload",
    "error_from_payload",
]

PROTOCOL_VERSION = 1

#: the request kinds the service multiplexes (ROADMAP: concurrent
#: placement / feasibility-check / incremental-replace requests)
JOB_KINDS = ("place", "check", "replace")

#: max accepted request line — a malformed client cannot balloon the
#: daemon's memory by streaming an unbounded "line"
MAX_LINE_BYTES = 1 << 20


@dataclass
class JobSpec:
    """What a client asks the service to run.

    ``kind``:

    * ``place``   — full placement of the Bookshelf instance at
      ``dir``/``instance``; the placed instance is written under the
      job's run directory, and the job resumes bit-identically from
      its durable run-dir manifest after any crash.
    * ``check``   — Theorem-2 feasibility check (fast, stateless).
    * ``replace`` — incremental re-place: ``movebound_patch`` entries
      ``{"name": ..., "rects": [[x_lo, y_lo, x_hi, y_hi], ...],
      "cells": [cell names...]}`` are applied to the loaded instance
      before placing, modeling a floorplan change request.

    ``options`` is a whitelisted subset of placer options (see
    :mod:`repro.service.worker`); unknown keys are rejected at
    admission, not silently dropped.
    """

    kind: str
    instance: str
    dir: str
    tenant: str = "default"
    priority: int = 0
    options: Dict[str, Any] = field(default_factory=dict)
    movebound_patch: List[Dict[str, Any]] = field(default_factory=list)

    def validate(self) -> None:
        if self.kind not in JOB_KINDS:
            raise PipelineStageError(
                f"unknown job kind {self.kind!r} (choose from {JOB_KINDS})",
                stage="svc.accept",
            )
        if not self.instance or not isinstance(self.instance, str):
            raise PipelineStageError(
                "job spec needs a non-empty instance name",
                stage="svc.accept",
            )
        if not self.dir or not isinstance(self.dir, str):
            raise PipelineStageError(
                "job spec needs a non-empty instance directory",
                stage="svc.accept",
            )
        if not isinstance(self.priority, int):
            raise PipelineStageError(
                "job priority must be an integer", stage="svc.accept"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise PipelineStageError(
                "job tenant must be a non-empty string", stage="svc.accept"
            )
        from repro.service.worker import validate_options

        validate_options(self.options)
        for entry in self.movebound_patch:
            if "name" not in entry or "rects" not in entry:
                raise PipelineStageError(
                    "movebound_patch entries need 'name' and 'rects'",
                    stage="svc.accept",
                )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "instance": self.instance,
            "dir": self.dir,
            "tenant": self.tenant,
            "priority": self.priority,
            "options": dict(self.options),
            "movebound_patch": [dict(e) for e in self.movebound_patch],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobSpec":
        return cls(
            kind=str(d.get("kind", "")),
            instance=str(d.get("instance", "")),
            dir=str(d.get("dir", "")),
            tenant=str(d.get("tenant", "default")),
            priority=int(d.get("priority", 0)),
            options=dict(d.get("options", {}) or {}),
            movebound_patch=list(d.get("movebound_patch", []) or []),
        )


# ----------------------------------------------------------------------
# wire framing
# ----------------------------------------------------------------------
def encode_message(msg: Dict[str, Any]) -> bytes:
    """One message -> one JSON line."""
    return json.dumps(msg, sort_keys=True, default=repr).encode() + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """One JSON line -> one message dict; structured error on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise PipelineStageError(
            f"request line exceeds {MAX_LINE_BYTES} bytes",
            stage="svc.protocol",
        )
    try:
        msg = json.loads(line)
    except ValueError as exc:
        raise PipelineStageError(
            f"request is not valid JSON: {exc}", stage="svc.protocol"
        ) from exc
    if not isinstance(msg, dict):
        raise PipelineStageError(
            "request must be a JSON object", stage="svc.protocol"
        )
    return msg


# ----------------------------------------------------------------------
# error payloads — the taxonomy over the wire
# ----------------------------------------------------------------------
_ERROR_TYPES: Tuple[Type[ReproError], ...] = (
    ServiceOverloadError,
    JobCancelledError,
    DeltaValidationError,
    InfeasibleInputError,
    SolverBudgetExceeded,
    SolverNumericsError,
    PipelineStageError,
    ReproError,
)
_ERROR_BY_NAME = {cls.__name__: cls for cls in _ERROR_TYPES}


def error_payload(exc: ReproError) -> Dict[str, Any]:
    """Serialize a classified failure for the wire / the result file."""
    return {
        "type": type(exc).__name__,
        "exit_code": int(exc.exit_code),
        "message": exc.diagnosis(),
    }


def error_from_payload(payload: Dict[str, Any]) -> ReproError:
    """Reconstruct a classified failure from its wire payload.

    Unknown types degrade to :class:`ReproError` but keep the
    transmitted exit code, so a newer daemon never makes an older
    client exit with the wrong code.
    """
    name = str(payload.get("type", "ReproError"))
    message = str(payload.get("message", "service error"))
    cls = _ERROR_BY_NAME.get(name)
    if cls is None:
        exc: ReproError = ReproError(message)
        exc.exit_code = int(payload.get("exit_code", ReproError.exit_code))
        return exc
    exc = cls(message)
    wire_code = payload.get("exit_code")
    if wire_code is not None:
        exc.exit_code = int(wire_code)
    return exc


def make_error_reply(exc: ReproError) -> Dict[str, Any]:
    return {"ok": False, "error": error_payload(exc)}


def make_reply(**fields: Any) -> Dict[str, Any]:
    reply: Dict[str, Any] = {"ok": True}
    reply.update(fields)
    return reply
