"""Zero-dependency tracing: nested spans, timers, monotonic counters.

The tracer records a *tree of spans* — named scopes entered with
``with tracer.span("place.partition"):`` — aggregated by path: entering
the same path twice accumulates wall/CPU time and bumps the call count
instead of growing the tree.  This keeps trace size bounded by the
number of distinct instrumentation points, not by iteration counts, so
the placer can leave instrumentation on unconditionally.

Span naming convention (see docs/observability.md): dot-separated
lowercase components, coarse phase first (``place.partition``,
``fbp.flow``, ``legalize.abacus``).  Nesting in the tree comes from
runtime nesting, not from the dots — the dots only make flat exports
readable.

Alongside spans the tracer keeps *monotonic counters*
(``tracer.incr("mcf.pivots", 12)``): plain named floats that only ever
increase, used by the flow solvers to report pivots, augmenting paths
and graph sizes.

A process-wide default tracer backs the module-level helpers
:func:`span`, :func:`incr` and :func:`get_tracer`; library code uses
those so callers that never touch the tracer pay one dict lookup per
instrumentation point and nothing else.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "SpanNode",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "reset_tracer",
    "span",
    "incr",
]

#: Schema identifier stamped into every JSON export; bump on layout
#: changes so downstream consumers can dispatch.
TRACE_SCHEMA = "repro.obs.trace/v1"


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "parent", "children", "count", "wall_s", "cpu_s")

    def __init__(self, name: str, parent: Optional["SpanNode"]) -> None:
        self.name = name
        self.parent = parent
        self.children: Dict[str, SpanNode] = {}
        self.count = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0

    @property
    def path(self) -> str:
        """Slash-joined path from the root, e.g. ``place/fbp.flow``."""
        parts: List[str] = []
        node: Optional[SpanNode] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name, self)
            self.children[name] = node
        return node

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "children": [
                c.to_dict() for c in self.children.values()
            ],
        }

    def walk(self) -> Iterator["SpanNode"]:
        yield self
        for child in self.children.values():
            yield from child.walk()


class _ActiveSpan:
    """Context manager for one live span; exposes the elapsed times of
    its own activation after exit (``with t.span("x") as s: ...;
    s.wall_s``) so callers can keep reporting per-call durations."""

    __slots__ = ("_tracer", "_name", "_node", "wall_s", "cpu_s", "_t0", "_c0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._node: Optional[SpanNode] = None
        self.wall_s = 0.0
        self.cpu_s = 0.0

    @property
    def name(self) -> str:
        return self._name

    @property
    def path(self) -> str:
        return self._node.path if self._node is not None else self._name

    def __enter__(self) -> "_ActiveSpan":
        self._node = self._tracer._push(self._name)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._c0
        node = self._node
        node.count += 1
        node.wall_s += self.wall_s
        node.cpu_s += self.cpu_s
        self._tracer._pop(node)


class Tracer:
    """Span tree + counter store.

    Not thread-safe by design: the placement pipeline is sequential and
    per-call locking would be pure overhead.  Use one tracer per thread
    if that ever changes.
    """

    def __init__(self) -> None:
        self.root = SpanNode("", None)
        self._stack: List[SpanNode] = [self.root]
        self.counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        return _ActiveSpan(self, name)

    def _push(self, name: str) -> SpanNode:
        node = self._stack[-1].child(name)
        self._stack.append(node)
        return node

    def _pop(self, node: SpanNode) -> None:
        # tolerate exits out of order (a span leaked across an
        # exception boundary): unwind down to the node being closed
        while len(self._stack) > 1:
            top = self._stack.pop()
            if top is node:
                break

    @property
    def current_path(self) -> str:
        return self._stack[-1].path

    def spans_by_path(self) -> Dict[str, SpanNode]:
        """Flat ``path -> node`` view of the whole span tree."""
        return {
            node.path: node
            for node in self.root.walk()
            if node is not self.root
        }

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increase a monotonic counter (negative amounts are an error)."""
        if amount < 0:
            raise ValueError(f"counter {name!r}: negative increment {amount}")
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded spans and counters; active spans are
        abandoned (their exit becomes a no-op pop of a dead node)."""
        self.root = SpanNode("", None)
        self._stack = [self.root]
        self.counters = {}

    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "spans": [c.to_dict() for c in self.root.children.values()],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write_json(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    def report_ascii(self, min_wall_s: float = 0.0) -> str:
        """Human-readable tree: wall/CPU milliseconds and call counts."""
        lines = [
            f"{'span':<44} {'calls':>7} {'wall ms':>10} {'cpu ms':>10}"
        ]

        def emit(node: SpanNode, depth: int) -> None:
            if node.wall_s < min_wall_s:
                return
            label = "  " * depth + node.name
            lines.append(
                f"{label:<44} {node.count:>7d} "
                f"{1e3 * node.wall_s:>10.1f} {1e3 * node.cpu_s:>10.1f}"
            )
            for child in node.children.values():
                emit(child, depth + 1)

        for child in self.root.children.values():
            emit(child, 0)
        if self.counters:
            lines.append("")
            lines.append(f"{'counter':<44} {'value':>12}")
            for name in sorted(self.counters):
                value = self.counters[name]
                text = f"{value:g}"
                lines.append(f"{name:<44} {text:>12}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# process-wide default tracer
# ----------------------------------------------------------------------
_default = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer used by the library hooks."""
    return _default


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer; returns the previous one."""
    global _default
    previous = _default
    _default = tracer
    return previous


def reset_tracer() -> Tracer:
    """Clear the default tracer (fresh runs, test isolation)."""
    _default.reset()
    return _default


def span(name: str) -> _ActiveSpan:
    """Open a span on the default tracer."""
    return _default.span(name)


def incr(name: str, amount: float = 1.0) -> None:
    """Bump a counter on the default tracer."""
    _default.incr(name, amount)
