"""Structured stats reporting on top of the tracer.

One function, :func:`stats_payload`, defines the JSON layout every
consumer shares — the CLI's ``--trace-json``, the benchmark harness's
``*.stats.json`` files, and the tests.  Layout (schema
``repro.obs.stats/v1``)::

    {
      "schema": "repro.obs.stats/v1",
      "trace": { "schema": "repro.obs.trace/v1",
                 "counters": {...}, "spans": [...] },
      "phases": { "<path>": {"count": n, "wall_s": w, "cpu_s": c}, ... },
      ...extra keys supplied by the caller...
    }

``phases`` is the flattened span tree keyed by slash-joined span path;
it exists so consumers asking "how long did legalization take" don't
have to walk the tree.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.obs.tracer import Tracer, get_tracer

__all__ = ["STATS_SCHEMA", "stats_payload", "write_stats_json"]

STATS_SCHEMA = "repro.obs.stats/v1"


def stats_payload(
    tracer: Optional[Tracer] = None, extra: Optional[dict] = None
) -> dict:
    """Build the canonical stats dictionary from a tracer snapshot."""
    tracer = tracer or get_tracer()
    payload = {
        "schema": STATS_SCHEMA,
        "trace": tracer.to_dict(),
        "phases": {
            path: {
                "count": node.count,
                "wall_s": node.wall_s,
                "cpu_s": node.cpu_s,
            }
            for path, node in sorted(tracer.spans_by_path().items())
        },
    }
    if extra:
        payload.update(extra)
    return payload


def write_stats_json(
    path: str,
    tracer: Optional[Tracer] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Write the stats payload to ``path``; returns the payload."""
    payload = stats_payload(tracer, extra)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return payload
