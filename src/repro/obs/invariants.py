"""Opt-in invariant checks for the FBP pipeline.

The paper's correctness story rests on three conditions the pipeline is
supposed to maintain; this module turns each into an executable check:

* **flow conservation** — after every MinCostFlow solve, each node's
  flow balance must match its supply (transit nodes conserve exactly,
  demand nodes absorb at most their capacity), and every arc's flow
  must respect ``[0, capacity]``;
* **capacity condition (1)** — after a feasible FBP solve, the flow
  absorbed by each (window, region) must not exceed its advertised
  free capacity;
* **movebound containment** — after realization, every cell the pass
  assigned to a region must sit geometrically inside its movebound's
  area.

All checks are *disabled by default* and cost one dict lookup + one
``os.environ`` read per call site when off.  Enable them with the
``REPRO_CHECK_INVARIANTS=1`` environment variable (any of ``1``,
``true``, ``yes``, ``on``), the ``--check-invariants`` CLI flag, or
programmatically with :func:`set_invariants_enabled` /
:func:`checking` (tests use the latter two).  A failed check raises
:class:`InvariantViolation` — a subclass of ``AssertionError`` so test
frameworks report it as an assertion failure.

Checks register themselves in a name -> callable registry so call
sites go through :func:`maybe_check`, which is the single place the
enable gate lives::

    maybe_check("flow.conservation", problem, result)
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.obs.tracer import incr

__all__ = [
    "ENV_VAR",
    "InvariantViolation",
    "invariants_enabled",
    "set_invariants_enabled",
    "checking",
    "register",
    "registered_checks",
    "maybe_check",
    "run_check",
    "check_flow_conservation",
    "check_region_capacity",
    "check_movebound_containment",
]

#: Environment variable gating all invariant checks.
ENV_VAR = "REPRO_CHECK_INVARIANTS"

_TRUTHY = {"1", "true", "yes", "on"}

#: Programmatic override: None = defer to the environment.
_override: Optional[bool] = None


class InvariantViolation(AssertionError):
    """A pipeline invariant failed; carries the check name."""

    def __init__(self, check: str, message: str) -> None:
        super().__init__(f"[{check}] {message}")
        self.check = check


def invariants_enabled() -> bool:
    """True when invariant checks should run (override beats env)."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def set_invariants_enabled(enabled: Optional[bool]) -> None:
    """Force checks on/off; ``None`` restores environment control."""
    global _override
    _override = enabled


@contextlib.contextmanager
def checking(enabled: bool = True):
    """Temporarily force the invariant gate (scoped, re-entrant)."""
    global _override
    previous = _override
    _override = enabled
    try:
        yield
    finally:
        _override = previous


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_registry: Dict[str, Callable] = {}


def register(name: str) -> Callable[[Callable], Callable]:
    """Decorator adding a check function under ``name``."""

    def wrap(fn: Callable) -> Callable:
        _registry[name] = fn
        return fn

    return wrap


def registered_checks() -> Tuple[str, ...]:
    return tuple(sorted(_registry))


def maybe_check(name: str, *args, **kwargs) -> None:
    """Run the named check iff invariants are enabled; no-op otherwise."""
    if not invariants_enabled():
        return
    run_check(name, *args, **kwargs)


def run_check(name: str, *args, **kwargs) -> None:
    """Run the named check unconditionally (tests, debugging)."""
    fn = _registry.get(name)
    if fn is None:
        raise KeyError(
            f"unknown invariant {name!r}; known: {registered_checks()}"
        )
    incr(f"invariants.{name}.runs")
    fn(*args, **kwargs)


def _fail(check: str, message: str) -> None:
    incr(f"invariants.{check}.violations")
    raise InvariantViolation(check, message)


# ----------------------------------------------------------------------
# the checks
# ----------------------------------------------------------------------
@register("flow.conservation")
def check_flow_conservation(problem, result, tol: float = 1e-6) -> None:
    """Every node balances, every arc flow is within its bounds.

    ``problem`` is a :class:`repro.flows.MinCostFlowProblem`, ``result``
    the :class:`~repro.flows.FlowResult` of its solve.  Skipped
    semantics: on an infeasible result there is no flow to conserve, so
    only arc-bound sanity is checked.
    """
    net: Dict = {}
    for arc, f in zip(problem.arcs, result.flows):
        f = float(f)
        if f < -tol:
            _fail(
                "flow.conservation",
                f"arc {arc.tail!r}->{arc.head!r} carries negative flow {f}",
            )
        if f > arc.capacity + tol:
            _fail(
                "flow.conservation",
                f"arc {arc.tail!r}->{arc.head!r} flow {f} exceeds "
                f"capacity {arc.capacity}",
            )
        net[arc.tail] = net.get(arc.tail, 0.0) + f
        net[arc.head] = net.get(arc.head, 0.0) - f
    if not result.feasible:
        return
    scale = max(problem.total_supply(), 1.0)
    for node in problem.nodes:
        b = problem.supply_of(node)
        outflow = net.get(node, 0.0)  # out minus in
        if b > 0:
            if abs(outflow - b) > tol * scale:
                _fail(
                    "flow.conservation",
                    f"supply node {node!r}: ships {outflow}, supply {b}",
                )
        elif b < 0:
            absorbed = -outflow
            if absorbed < -tol * scale or absorbed > -b + tol * scale:
                _fail(
                    "flow.conservation",
                    f"demand node {node!r}: absorbs {absorbed}, "
                    f"capacity {-b}",
                )
        elif abs(outflow) > tol * scale:
            _fail(
                "flow.conservation",
                f"transit node {node!r}: imbalance {outflow}",
            )


@register("fbp.region_capacity")
def check_region_capacity(model, result, tol: float = 1e-6) -> None:
    """Condition (1) at window granularity: flow absorbed by each
    (window, region) node stays within its free capacity.

    ``model`` is a built :class:`repro.fbp.model.FBPModel`, ``result``
    a feasible solve of it.
    """
    if not result.feasible:
        return
    inflow = model.region_inflow(result)
    for key, absorbed in inflow.items():
        cap = model.region_capacity.get(key, 0.0)
        if absorbed > cap + tol * max(cap, 1.0):
            _fail(
                "fbp.region_capacity",
                f"window {key[0]} region {key[1]}: inflow {absorbed:.6g} "
                f"exceeds capacity {cap:.6g} (condition (1))",
            )


@register("movebound.containment")
def check_movebound_containment(
    netlist,
    bounds,
    cells: Optional[Iterable[int]] = None,
    tol: float = 1e-9,
) -> None:
    """Every (given) movable cell center lies inside its movebound area.

    ``cells`` defaults to all movable cells with an explicit movebound;
    realization passes the set of cells it actually assigned, so cells
    it deliberately left in relaxed windows are not audited.
    """
    if cells is None:
        cells = [
            c.index
            for c in netlist.cells
            if not c.fixed and c.movebound is not None
        ]
    for i in cells:
        cell = netlist.cells[i]
        if cell.movebound is None:
            continue
        area = bounds.get(cell.movebound).area
        x, y = float(netlist.x[i]), float(netlist.y[i])
        if area.contains_point(x, y):
            continue
        # tolerance: accept points within `tol` of the area boundary
        if tol > 0 and area.distance_to_point(x, y) <= tol:
            continue
        _fail(
            "movebound.containment",
            f"cell {cell.name!r} at ({x:.4g}, {y:.4g}) lies outside "
            f"movebound {cell.movebound!r}",
        )
