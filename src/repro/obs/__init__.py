"""Unified observability for the FBP pipeline.

Three pieces, all zero-dependency:

* :mod:`repro.obs.tracer` — nested spans (wall + CPU time, aggregated
  by path) and monotonic counters, with a process-wide default tracer;
* :mod:`repro.obs.invariants` — an opt-in registry of pipeline
  invariant checks (flow conservation, capacity condition (1),
  movebound containment) gated by ``REPRO_CHECK_INVARIANTS``;
* :mod:`repro.obs.report` — the canonical JSON stats payload shared by
  the CLI (``--trace-json``) and the benchmark harness.

See docs/observability.md for the span naming convention and schemas.
"""

from repro.obs.invariants import (
    ENV_VAR,
    InvariantViolation,
    check_flow_conservation,
    check_movebound_containment,
    check_region_capacity,
    checking,
    invariants_enabled,
    maybe_check,
    registered_checks,
    run_check,
    set_invariants_enabled,
)
from repro.obs.report import STATS_SCHEMA, stats_payload, write_stats_json
from repro.obs.tracer import (
    TRACE_SCHEMA,
    SpanNode,
    Tracer,
    get_tracer,
    incr,
    reset_tracer,
    set_tracer,
    span,
)

__all__ = [
    # tracer
    "TRACE_SCHEMA",
    "SpanNode",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "reset_tracer",
    "span",
    "incr",
    # invariants
    "ENV_VAR",
    "InvariantViolation",
    "invariants_enabled",
    "set_invariants_enabled",
    "checking",
    "maybe_check",
    "run_check",
    "registered_checks",
    "check_flow_conservation",
    "check_region_capacity",
    "check_movebound_containment",
    # reporting
    "STATS_SCHEMA",
    "stats_payload",
    "write_stats_json",
]
