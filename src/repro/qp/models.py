"""Net models: assembly of the per-axis quadratic system.

For one axis, the energy is

    E(x) = sum_springs w * (x_i + o_i - x_j - o_j)^2  +  anchors,

where each spring connects two pins with offsets o from their cell
centers; fixed cells and terminals contribute to the right-hand side.
Minimizing E gives the SPD linear system ``A x = b`` assembled here in
COO form.

Models
------
clique
    Every pin pair of a degree-p net gets weight ``w_net / (p - 1)``.
star
    One auxiliary unknown per net, edge weight ``w_net * p / (p - 1)``;
    by the star-mesh identity this is *exactly* the clique model after
    eliminating the star node (a tested invariant).
hybrid
    clique for p <= 3, star otherwise — the usual practical choice.
b2b
    Bound2Bound (Kraftwerk2): per axis, each pin connects to the two
    extreme pins of the net with weight ``w_net * 2 / ((p-1) * dist)``.
    The model linearizes HPWL around the current placement, so it
    requires current positions and is rebuilt every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix

from repro.netlist import Net, Netlist

NET_MODELS = ("clique", "star", "hybrid", "b2b")

#: Minimum pin separation used in B2B weights to avoid division blowup.
B2B_MIN_DIST = 1e-3


@dataclass
class AxisSystem:
    """Sparse SPD system for one axis, over movable + auxiliary unknowns."""

    matrix: csr_matrix
    rhs: np.ndarray
    #: unknown index of each movable cell (cell index -> column), -1 if fixed
    unknown_of_cell: np.ndarray
    num_cell_unknowns: int

    def energy(self, solution: np.ndarray) -> float:
        """Quadratic form value 0.5 x^T A x - b^T x (for monotonicity tests)."""
        return float(
            0.5 * solution @ (self.matrix @ solution) - self.rhs @ solution
        )


class _Builder:
    """COO accumulator for one axis."""

    def __init__(self, n_unknowns: int) -> None:
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[float] = []
        self.rhs = np.zeros(n_unknowns)
        self.n = n_unknowns

    def add_spring(
        self,
        iu: int,
        ju: int,
        i_const: float,
        j_const: float,
        w: float,
    ) -> None:
        """Spring w * ((x_iu + i_const) - (x_ju + j_const))^2.

        ``iu``/``ju`` are unknown indices or -1 for fixed ends, in which
        case the corresponding ``*_const`` is the absolute pin position.
        """
        if w <= 0:
            return
        if iu >= 0 and ju >= 0:
            self.rows += [iu, ju, iu, ju]
            self.cols += [iu, ju, ju, iu]
            self.vals += [w, w, -w, -w]
            self.rhs[iu] += w * (j_const - i_const)
            self.rhs[ju] += w * (i_const - j_const)
        elif iu >= 0:
            self.rows.append(iu)
            self.cols.append(iu)
            self.vals.append(w)
            self.rhs[iu] += w * (j_const - i_const)
        elif ju >= 0:
            self.rows.append(ju)
            self.cols.append(ju)
            self.vals.append(w)
            self.rhs[ju] += w * (i_const - j_const)
        # both fixed: constant energy, ignore

    def add_anchor(self, iu: int, target: float, w: float) -> None:
        """Anchor spring w * (x_iu - target)^2."""
        if iu < 0 or w <= 0:
            return
        self.rows.append(iu)
        self.cols.append(iu)
        self.vals.append(w)
        self.rhs[iu] += w * target

    def finish(self) -> Tuple[csr_matrix, np.ndarray]:
        a = coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=(self.n, self.n)
        ).tocsr()
        return a, self.rhs


def _pin_endpoint(
    netlist: Netlist,
    pin,
    axis: int,
    unknown_of_cell: np.ndarray,
    positions: np.ndarray,
) -> Tuple[int, float]:
    """(unknown index or -1, constant part) of a pin along one axis."""
    offset = pin.offset_x if axis == 0 else pin.offset_y
    if pin.is_fixed_terminal:
        return -1, offset  # terminal offsets *are* absolute coordinates
    iu = int(unknown_of_cell[pin.cell_index])
    if iu >= 0:
        return iu, offset
    return -1, positions[pin.cell_index] + offset


def build_axis_system(
    netlist: Netlist,
    axis: int,
    model: str = "hybrid",
    movable_mask: Optional[np.ndarray] = None,
    anchors: Optional[Sequence[Tuple[int, float, float]]] = None,
    regularization: float = 1e-8,
    nets: Optional[Sequence[Net]] = None,
) -> AxisSystem:
    """Assemble the quadratic system of one axis (0 = x, 1 = y).

    Parameters
    ----------
    movable_mask:
        Boolean per-cell mask of unknowns.  Defaults to the netlist's
        non-fixed cells; local QP passes the cells of the coarse window.
    anchors:
        Optional ``(cell_index, target, weight)`` pseudo-nets.
    regularization:
        Tiny diagonal term anchoring each unknown at its current
        position, guaranteeing positive definiteness even for cells
        with no path to a fixed pin.
    nets:
        Restrict assembly to these nets (local QP passes only the nets
        incident to the coarse window).  Defaults to all nets.
    """
    if model not in NET_MODELS:
        raise ValueError(f"unknown net model {model!r}")
    positions = netlist.x if axis == 0 else netlist.y
    if movable_mask is None:
        movable_mask = ~netlist.fixed_mask
    else:
        movable_mask = np.asarray(movable_mask, dtype=bool)
        if movable_mask.shape != (netlist.num_cells,):
            raise ValueError("movable_mask must cover all cells")

    unknown_of_cell = np.full(netlist.num_cells, -1, dtype=np.int64)
    movable_indices = np.nonzero(movable_mask)[0]
    unknown_of_cell[movable_indices] = np.arange(len(movable_indices))
    n_cells = len(movable_indices)

    # count star unknowns first so the builder is sized once
    def needs_star(net: Net) -> bool:
        if net.degree < 2:
            return False
        if model == "star":
            return True
        if model == "hybrid":
            return net.degree > 3
        return False

    net_list = netlist.nets if nets is None else list(nets)
    star_nets = [net for net in net_list if needs_star(net)]
    n_unknowns = n_cells + len(star_nets)
    builder = _Builder(n_unknowns)
    star_unknown = {id(net): n_cells + i for i, net in enumerate(star_nets)}

    for net in net_list:
        p = net.degree
        if p < 2:
            continue
        ends = [
            _pin_endpoint(netlist, pin, axis, unknown_of_cell, positions)
            for pin in net.pins
        ]
        if all(iu < 0 for iu, _ in ends):
            continue
        if needs_star(net):
            w = net.weight * p / (p - 1)
            su = star_unknown[id(net)]
            for iu, const in ends:
                builder.add_spring(iu, su, const, 0.0, w)
        elif model == "b2b":
            coords = []
            for (iu, const), pin in zip(ends, net.pins):
                if iu >= 0:
                    base = positions[movable_indices[iu]] if iu < n_cells else 0.0
                    coords.append(base + const)
                else:
                    coords.append(const)
            lo = int(np.argmin(coords))
            hi = int(np.argmax(coords))
            if lo == hi:
                hi = (lo + 1) % p
            for b in (lo, hi):
                for i in range(p):
                    if i == b or (b == hi and i == lo):
                        continue  # lo-hi pair added once (when b == lo)
                    dist = max(abs(coords[i] - coords[b]), B2B_MIN_DIST)
                    w = net.weight * 2.0 / ((p - 1) * dist)
                    builder.add_spring(
                        ends[i][0], ends[b][0], ends[i][1], ends[b][1], w
                    )
        else:  # clique
            w = net.weight / (p - 1)
            for i in range(p):
                for j in range(i + 1, p):
                    builder.add_spring(
                        ends[i][0], ends[j][0], ends[i][1], ends[j][1], w
                    )

    if anchors:
        for cell_index, target, w in anchors:
            builder.add_anchor(int(unknown_of_cell[cell_index]), target, w)

    if regularization > 0:
        for iu, ci in enumerate(movable_indices):
            builder.add_anchor(iu, positions[ci], regularization)
        for su in range(n_cells, n_unknowns):
            builder.rows.append(su)
            builder.cols.append(su)
            builder.vals.append(regularization)

    matrix, rhs = builder.finish()
    return AxisSystem(matrix, rhs, unknown_of_cell, n_cells)
