"""Net models: assembly of the per-axis quadratic system.

For one axis, the energy is

    E(x) = sum_springs w * (x_i + o_i - x_j - o_j)^2  +  anchors,

where each spring connects two pins with offsets o from their cell
centers; fixed cells and terminals contribute to the right-hand side.
Minimizing E gives the SPD linear system ``A x = b`` assembled here in
COO form.

Models
------
clique
    Every pin pair of a degree-p net gets weight ``w_net / (p - 1)``.
star
    One auxiliary unknown per net, edge weight ``w_net * p / (p - 1)``;
    by the star-mesh identity this is *exactly* the clique model after
    eliminating the star node (a tested invariant).
hybrid
    clique for p <= 3, star otherwise — the usual practical choice.
b2b
    Bound2Bound (Kraftwerk2): per axis, each pin connects to the two
    extreme pins of the net with weight ``w_net * 2 / ((p-1) * dist)``.
    The model linearizes HPWL around the current placement, so it
    requires current positions and is rebuilt every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix

from repro.netlist import Net, Netlist

NET_MODELS = ("clique", "star", "hybrid", "b2b")

#: Minimum pin separation used in B2B weights to avoid division blowup.
B2B_MIN_DIST = 1e-3


@dataclass
class AxisSystem:
    """Sparse SPD system for one axis, over movable + auxiliary unknowns."""

    matrix: csr_matrix
    rhs: np.ndarray
    #: unknown index of each movable cell (cell index -> column), -1 if fixed
    unknown_of_cell: np.ndarray
    num_cell_unknowns: int

    def energy(self, solution: np.ndarray) -> float:
        """Quadratic form value 0.5 x^T A x - b^T x (for monotonicity tests)."""
        return float(
            0.5 * solution @ (self.matrix @ solution) - self.rhs @ solution
        )


class _Builder:
    """COO accumulator for one axis."""

    def __init__(self, n_unknowns: int) -> None:
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[float] = []
        self.rhs = np.zeros(n_unknowns)
        self.n = n_unknowns

    def add_spring(
        self,
        iu: int,
        ju: int,
        i_const: float,
        j_const: float,
        w: float,
    ) -> None:
        """Spring w * ((x_iu + i_const) - (x_ju + j_const))^2.

        ``iu``/``ju`` are unknown indices or -1 for fixed ends, in which
        case the corresponding ``*_const`` is the absolute pin position.
        """
        if w <= 0:
            return
        if iu >= 0 and ju >= 0:
            self.rows += [iu, ju, iu, ju]
            self.cols += [iu, ju, ju, iu]
            self.vals += [w, w, -w, -w]
            self.rhs[iu] += w * (j_const - i_const)
            self.rhs[ju] += w * (i_const - j_const)
        elif iu >= 0:
            self.rows.append(iu)
            self.cols.append(iu)
            self.vals.append(w)
            self.rhs[iu] += w * (j_const - i_const)
        elif ju >= 0:
            self.rows.append(ju)
            self.cols.append(ju)
            self.vals.append(w)
            self.rhs[ju] += w * (i_const - j_const)
        # both fixed: constant energy, ignore

    def add_anchor(self, iu: int, target: float, w: float) -> None:
        """Anchor spring w * (x_iu - target)^2."""
        if iu < 0 or w <= 0:
            return
        self.rows.append(iu)
        self.cols.append(iu)
        self.vals.append(w)
        self.rhs[iu] += w * target

    def finish(self) -> Tuple[csr_matrix, np.ndarray]:
        a = coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=(self.n, self.n)
        ).tocsr()
        return a, self.rhs


def _flat_net_arrays(nets: Sequence[Net]) -> tuple:
    """(ptr, pin_cell, off_x, off_y, weights) for a net subset, in the
    same layout as ``Netlist._hpwl_arrays`` (degree < 2 nets dropped)."""
    ptr = [0]
    pin_cell: List[int] = []
    off_x: List[float] = []
    off_y: List[float] = []
    weights: List[float] = []
    for net in nets:
        if net.degree < 2:
            continue
        for pin in net.pins:
            pin_cell.append(pin.cell_index)
            off_x.append(pin.offset_x)
            off_y.append(pin.offset_y)
        ptr.append(len(pin_cell))
        weights.append(net.weight)
    return (
        np.array(ptr[:-1], dtype=np.int64),
        np.array(pin_cell, dtype=np.int64),
        np.array(off_x),
        np.array(off_y),
        np.array(weights),
    )


@dataclass
class _AxisSkeleton:
    """Axis-independent assembly state captured from one axis.

    For the clique/star/hybrid models the sparsity pattern *and* the
    matrix values are the same for x and y: spring endpoints and
    weights come from the netlist topology alone, and the per-axis
    data (pin offsets, current positions, anchor targets) feeds only
    the right-hand side.  Capturing the endpoint/weight arrays, the
    pin-index provenance of each spring end and the finished CSR
    matrix on the first axis lets the second axis skip the whole
    selection/concatenation/COO-to-CSR pipeline and just re-derive the
    rhs — gathering the identical values through identical index
    arrays, so the result is bit-for-bit what a full assembly emits.

    Anchors are the one axis-coupled matrix term: each applied anchor
    adds ``w`` on the diagonal at its unknown.  ``anchor_cols`` records
    the applied ``(unknown, weight)`` pairs; the skeleton is only
    reused when the other axis's anchors produce the same pairs (their
    targets may differ freely — targets are rhs-only).
    """

    matrix: csr_matrix
    ai: np.ndarray
    aj: np.ndarray
    aw: np.ndarray
    pos_i: np.ndarray
    pos_j: np.ndarray
    #: pin index feeding each spring end's constant (-1 = star center,
    #: whose constant is identically 0.0)
    pi_idx: np.ndarray
    pj_idx: np.ndarray
    cell_ix: np.ndarray
    fixed_pin: np.ndarray
    unknown_of_cell: np.ndarray
    movable_indices: np.ndarray
    n_unknowns: int
    n_cells: int
    anchor_cols: tuple
    regularization: float
    #: resolved (off_x, off_y) flat offset arrays
    off_xy: tuple


def _axis_system_from_skeleton(
    sk: _AxisSkeleton,
    axis: int,
    positions: np.ndarray,
    anchors: Optional[Sequence[Tuple[int, float, float]]],
) -> Optional[AxisSystem]:
    """Second-axis assembly from a captured skeleton: matrix reused,
    rhs re-derived with this axis's offsets/positions/anchor targets.
    Returns None when the anchors' diagonal structure differs from the
    captured axis (the matrix then can't be shared)."""
    applied = []
    if anchors:
        for cell_index, target, w in anchors:
            iu = int(sk.unknown_of_cell[cell_index])
            if iu >= 0 and w > 0:
                applied.append((iu, float(w)))
    if tuple(applied) != sk.anchor_cols:
        return None
    off = sk.off_xy[axis]
    const_pin = np.where(sk.fixed_pin, positions[sk.cell_ix] + off, off)
    aic = const_pin[sk.pi_idx]
    ajc = np.where(
        sk.pj_idx >= 0, const_pin[np.maximum(sk.pj_idx, 0)], 0.0
    )
    rhs = np.zeros(sk.n_unknowns)
    np.add.at(rhs, sk.ai[sk.pos_i], (sk.aw * (ajc - aic))[sk.pos_i])
    np.add.at(rhs, sk.aj[sk.pos_j], (sk.aw * (aic - ajc))[sk.pos_j])
    if anchors:
        for cell_index, target, w in anchors:
            iu = int(sk.unknown_of_cell[cell_index])
            if iu >= 0 and w > 0:
                rhs[iu] += w * target
    if sk.regularization > 0:
        rhs[: sk.n_cells] += (
            sk.regularization * positions[sk.movable_indices]
        )
    return AxisSystem(sk.matrix, rhs, sk.unknown_of_cell, sk.n_cells)


def _fast_axis_system(
    netlist: Netlist,
    axis: int,
    model: str,
    positions: np.ndarray,
    unknown_of_cell: np.ndarray,
    movable_indices: np.ndarray,
    anchors: Optional[Sequence[Tuple[int, float, float]]],
    regularization: float,
    nets: Optional[Sequence[Net]] = None,
    flat: Optional[tuple] = None,
    skeleton_out: Optional[list] = None,
) -> AxisSystem:
    """Vectorized assembly over flat pin arrays.

    Covers the clique/star/hybrid models — the netlist's cached arrays
    for the global QP, a one-pass subset extraction for local QPs; emits
    the same springs as the scalar builder, so the two paths assemble
    the same quadratic form.  ``flat`` lets a caller solving both axes
    share one subset extraction (the arrays are position-independent).
    ``skeleton_out`` (a one-element list) additionally captures an
    ``_AxisSkeleton`` so the caller can assemble the *other* axis
    without redoing the axis-independent work.
    """
    if flat is not None:
        ptr, pin_cell, off_x, off_y, weights = flat
    elif nets is None:
        ptr, pin_cell, off_x, off_y, weights = netlist._hpwl_arrays()
    else:
        ptr, pin_cell, off_x, off_y, weights = _flat_net_arrays(nets)
    n_nets = len(weights)
    n_cells = len(movable_indices)
    n_pins = len(pin_cell)
    counts = np.empty(n_nets, dtype=np.int64)
    if n_nets:
        counts[:-1] = np.diff(ptr)
        counts[-1] = n_pins - ptr[-1]

    off = off_x if axis == 0 else off_y
    cell_ix = np.maximum(pin_cell, 0)
    on_cell = pin_cell >= 0
    iu_pin = np.where(on_cell, unknown_of_cell[cell_ix], -1)
    fixed_pin = on_cell & (iu_pin < 0)
    const_pin = np.where(fixed_pin, positions[cell_ix] + off, off)
    net_of_pin = np.repeat(np.arange(n_nets), counts)
    if n_nets:
        active = np.maximum.reduceat(iu_pin, ptr) >= 0
    else:
        active = np.zeros(0, dtype=bool)

    if model == "star":
        star_mask = np.ones(n_nets, dtype=bool)
    elif model == "hybrid":
        star_mask = counts > 3
    else:
        star_mask = np.zeros(n_nets, dtype=bool)
    star_rank = np.cumsum(star_mask) - 1
    su_net = np.where(star_mask, n_cells + star_rank, -1)
    n_unknowns = n_cells + int(star_mask.sum() if n_nets else 0)

    si: List[np.ndarray] = []
    sj: List[np.ndarray] = []
    sic: List[np.ndarray] = []
    sjc: List[np.ndarray] = []
    sw: List[np.ndarray] = []
    capture = skeleton_out is not None
    # pin-index provenance of each spring end (for skeleton reuse):
    # mirrors the sic/sjc appends index for index, -1 marking a star
    # center whose constant is identically 0.0
    sii: List[np.ndarray] = []
    sjj: List[np.ndarray] = []

    pin_sel = star_mask[net_of_pin] & active[net_of_pin]
    if pin_sel.any():
        w_star = weights * counts / (counts - 1)
        si.append(iu_pin[pin_sel])
        sj.append(su_net[net_of_pin][pin_sel])
        sic.append(const_pin[pin_sel])
        sjc.append(np.zeros(int(pin_sel.sum())))
        sw.append(w_star[net_of_pin][pin_sel])
        if capture:
            idx = np.nonzero(pin_sel)[0]
            sii.append(idx)
            sjj.append(np.full(len(idx), -1, dtype=np.int64))

    cl_mask = active & ~star_mask
    w_cl = weights / np.maximum(counts - 1, 1)
    p2 = cl_mask & (counts == 2)
    if p2.any():
        s = ptr[p2]
        si.append(iu_pin[s])
        sj.append(iu_pin[s + 1])
        sic.append(const_pin[s])
        sjc.append(const_pin[s + 1])
        sw.append(w_cl[p2])
        if capture:
            sii.append(s)
            sjj.append(s + 1)
    p3 = cl_mask & (counts == 3)
    if p3.any():
        s = ptr[p3]
        a = np.concatenate([s, s, s + 1])
        b = np.concatenate([s + 1, s + 2, s + 2])
        si.append(iu_pin[a])
        sj.append(iu_pin[b])
        sic.append(const_pin[a])
        sjc.append(const_pin[b])
        sw.append(np.tile(w_cl[p3], 3))
        if capture:
            sii.append(a)
            sjj.append(b)
    pbig = np.nonzero(cl_mask & (counts > 3))[0]
    for ni in pbig:  # clique model on a big net: rare, scalar pairs
        s, p = int(ptr[ni]), int(counts[ni])
        a, b = np.triu_indices(p, k=1)
        si.append(iu_pin[s + a])
        sj.append(iu_pin[s + b])
        sic.append(const_pin[s + a])
        sjc.append(const_pin[s + b])
        sw.append(np.full(len(a), w_cl[ni]))
        if capture:
            sii.append(s + a)
            sjj.append(s + b)

    if si:
        ai = np.concatenate(si)
        aj = np.concatenate(sj)
        aic = np.concatenate(sic)
        ajc = np.concatenate(sjc)
        aw = np.concatenate(sw)
        keep = aw > 0
        ai, aj, aic, ajc, aw = (
            ai[keep], aj[keep], aic[keep], ajc[keep], aw[keep]
        )
        if capture:
            pi_idx = np.concatenate(sii)[keep]
            pj_idx = np.concatenate(sjj)[keep]
    else:
        ai = aj = np.zeros(0, dtype=np.int64)
        aic = ajc = aw = np.zeros(0)
        if capture:
            pi_idx = pj_idx = np.zeros(0, dtype=np.int64)

    pos_i = ai >= 0
    pos_j = aj >= 0
    both = pos_i & pos_j
    rows = [ai[both], aj[both], ai[both], aj[both]]
    cols = [ai[both], aj[both], aj[both], ai[both]]
    w_b = aw[both]
    vals = [w_b, w_b, -w_b, -w_b]
    i_only = pos_i & ~pos_j
    j_only = pos_j & ~pos_i
    rows += [ai[i_only], aj[j_only]]
    cols += [ai[i_only], aj[j_only]]
    vals += [aw[i_only], aw[j_only]]
    rhs = np.zeros(n_unknowns)
    np.add.at(rhs, ai[pos_i], (aw * (ajc - aic))[pos_i])
    np.add.at(rhs, aj[pos_j], (aw * (aic - ajc))[pos_j])

    extra_r: List[int] = []
    extra_v: List[float] = []
    if anchors:
        for cell_index, target, w in anchors:
            iu = int(unknown_of_cell[cell_index])
            if iu >= 0 and w > 0:
                extra_r.append(iu)
                extra_v.append(w)
                rhs[iu] += w * target
    if regularization > 0:
        rows.append(np.arange(n_unknowns, dtype=np.int64))
        cols.append(np.arange(n_unknowns, dtype=np.int64))
        vals.append(np.full(n_unknowns, regularization))
        rhs[:n_cells] += regularization * positions[movable_indices]
    if extra_r:
        rows.append(np.asarray(extra_r, dtype=np.int64))
        cols.append(np.asarray(extra_r, dtype=np.int64))
        vals.append(np.asarray(extra_v))

    matrix = coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n_unknowns, n_unknowns),
    ).tocsr()
    if capture:
        skeleton_out[0] = _AxisSkeleton(
            matrix=matrix,
            ai=ai,
            aj=aj,
            aw=aw,
            pos_i=pos_i,
            pos_j=pos_j,
            pi_idx=pi_idx,
            pj_idx=pj_idx,
            cell_ix=cell_ix,
            fixed_pin=fixed_pin,
            unknown_of_cell=unknown_of_cell,
            movable_indices=movable_indices,
            n_unknowns=n_unknowns,
            n_cells=n_cells,
            anchor_cols=tuple(zip(extra_r, extra_v)),
            regularization=regularization,
            off_xy=(off_x, off_y),
        )
    return AxisSystem(matrix, rhs, unknown_of_cell, n_cells)


def _pin_endpoint(
    netlist: Netlist,
    pin,
    axis: int,
    unknown_of_cell: np.ndarray,
    positions: np.ndarray,
) -> Tuple[int, float]:
    """(unknown index or -1, constant part) of a pin along one axis."""
    offset = pin.offset_x if axis == 0 else pin.offset_y
    if pin.is_fixed_terminal:
        return -1, offset  # terminal offsets *are* absolute coordinates
    iu = int(unknown_of_cell[pin.cell_index])
    if iu >= 0:
        return iu, offset
    return -1, positions[pin.cell_index] + offset


def build_axis_system(
    netlist: Netlist,
    axis: int,
    model: str = "hybrid",
    movable_mask: Optional[np.ndarray] = None,
    anchors: Optional[Sequence[Tuple[int, float, float]]] = None,
    regularization: float = 1e-8,
    nets: Optional[Sequence[Net]] = None,
    flat: Optional[tuple] = None,
) -> AxisSystem:
    """Assemble the quadratic system of one axis (0 = x, 1 = y).

    Parameters
    ----------
    movable_mask:
        Boolean per-cell mask of unknowns.  Defaults to the netlist's
        non-fixed cells; local QP passes the cells of the coarse window.
    anchors:
        Optional ``(cell_index, target, weight)`` pseudo-nets.
    regularization:
        Tiny diagonal term anchoring each unknown at its current
        position, guaranteeing positive definiteness even for cells
        with no path to a fixed pin.
    nets:
        Restrict assembly to these nets (local QP passes only the nets
        incident to the coarse window).  Defaults to all nets.
    flat:
        Optional precomputed ``_flat_net_arrays(nets)`` result so a
        caller assembling both axes extracts the subset only once.
    """
    if model not in NET_MODELS:
        raise ValueError(f"unknown net model {model!r}")
    positions = netlist.x if axis == 0 else netlist.y
    if movable_mask is None:
        movable_mask = ~netlist.fixed_mask
    else:
        movable_mask = np.asarray(movable_mask, dtype=bool)
        if movable_mask.shape != (netlist.num_cells,):
            raise ValueError("movable_mask must cover all cells")

    unknown_of_cell = np.full(netlist.num_cells, -1, dtype=np.int64)
    movable_indices = np.nonzero(movable_mask)[0]
    unknown_of_cell[movable_indices] = np.arange(len(movable_indices))
    n_cells = len(movable_indices)

    if model != "b2b":
        return _fast_axis_system(
            netlist,
            axis,
            model,
            positions,
            unknown_of_cell,
            movable_indices,
            anchors,
            regularization,
            nets=nets,
            flat=flat,
        )

    # count star unknowns first so the builder is sized once
    def needs_star(net: Net) -> bool:
        if net.degree < 2:
            return False
        if model == "star":
            return True
        if model == "hybrid":
            return net.degree > 3
        return False

    net_list = netlist.nets if nets is None else list(nets)
    star_nets = [net for net in net_list if needs_star(net)]
    n_unknowns = n_cells + len(star_nets)
    builder = _Builder(n_unknowns)
    star_unknown = {id(net): n_cells + i for i, net in enumerate(star_nets)}

    for net in net_list:
        p = net.degree
        if p < 2:
            continue
        ends = [
            _pin_endpoint(netlist, pin, axis, unknown_of_cell, positions)
            for pin in net.pins
        ]
        if all(iu < 0 for iu, _ in ends):
            continue
        if needs_star(net):
            w = net.weight * p / (p - 1)
            su = star_unknown[id(net)]
            for iu, const in ends:
                builder.add_spring(iu, su, const, 0.0, w)
        elif model == "b2b":
            coords = []
            for (iu, const), pin in zip(ends, net.pins):
                if iu >= 0:
                    base = positions[movable_indices[iu]] if iu < n_cells else 0.0
                    coords.append(base + const)
                else:
                    coords.append(const)
            lo = int(np.argmin(coords))
            hi = int(np.argmax(coords))
            if lo == hi:
                hi = (lo + 1) % p
            for b in (lo, hi):
                for i in range(p):
                    if i == b or (b == hi and i == lo):
                        continue  # lo-hi pair added once (when b == lo)
                    dist = max(abs(coords[i] - coords[b]), B2B_MIN_DIST)
                    w = net.weight * 2.0 / ((p - 1) * dist)
                    builder.add_spring(
                        ends[i][0], ends[b][0], ends[i][1], ends[b][1], w
                    )
        else:  # clique
            w = net.weight / (p - 1)
            for i in range(p):
                for j in range(i + 1, p):
                    builder.add_spring(
                        ends[i][0], ends[j][0], ends[i][1], ends[j][1], w
                    )

    if anchors:
        for cell_index, target, w in anchors:
            builder.add_anchor(int(unknown_of_cell[cell_index]), target, w)

    if regularization > 0:
        for iu, ci in enumerate(movable_indices):
            builder.add_anchor(iu, positions[ci], regularization)
        for su in range(n_cells, n_unknowns):
            builder.rows.append(su)
            builder.cols.append(su)
            builder.vals.append(regularization)

    matrix, rhs = builder.finish()
    return AxisSystem(matrix, rhs, unknown_of_cell, n_cells)


def build_axis_systems_xy(
    netlist: Netlist,
    model: str = "hybrid",
    movable_mask: Optional[np.ndarray] = None,
    anchors_x: Optional[Sequence[Tuple[int, float, float]]] = None,
    anchors_y: Optional[Sequence[Tuple[int, float, float]]] = None,
    regularization: float = 1e-8,
    nets: Optional[Sequence[Net]] = None,
    flat: Optional[tuple] = None,
) -> Tuple[AxisSystem, AxisSystem]:
    """Assemble both axis systems, sharing the matrix across axes.

    For the position-independent models (clique/star/hybrid) the x and
    y matrices are the same object: spring endpoints and weights come
    from the topology, anchors contribute per-axis *targets* to the
    rhs but the same ``(unknown, weight)`` diagonal entries whenever
    the caller anchors the same cells with the same weights on both
    axes (every placer here does).  The x assembly captures an
    ``_AxisSkeleton``; the y system is then just a fresh rhs over the
    shared matrix — bit-identical to two independent assemblies, at
    roughly half the cost.  B2B (position-dependent weights) and
    mismatched anchor structures fall back to two full assemblies.
    """
    if model == "b2b":
        return (
            build_axis_system(
                netlist, 0, model=model, movable_mask=movable_mask,
                anchors=anchors_x, regularization=regularization,
                nets=nets, flat=flat,
            ),
            build_axis_system(
                netlist, 1, model=model, movable_mask=movable_mask,
                anchors=anchors_y, regularization=regularization,
                nets=nets, flat=flat,
            ),
        )
    if model not in NET_MODELS:
        raise ValueError(f"unknown net model {model!r}")
    if movable_mask is None:
        movable_mask = ~netlist.fixed_mask
    else:
        movable_mask = np.asarray(movable_mask, dtype=bool)
        if movable_mask.shape != (netlist.num_cells,):
            raise ValueError("movable_mask must cover all cells")
    unknown_of_cell = np.full(netlist.num_cells, -1, dtype=np.int64)
    movable_indices = np.nonzero(movable_mask)[0]
    unknown_of_cell[movable_indices] = np.arange(len(movable_indices))

    sk_out: list = [None]
    sys_x = _fast_axis_system(
        netlist, 0, model, netlist.x, unknown_of_cell, movable_indices,
        anchors_x, regularization, nets=nets, flat=flat,
        skeleton_out=sk_out,
    )
    sys_y = _axis_system_from_skeleton(
        sk_out[0], 1, netlist.y, anchors_y
    )
    if sys_y is None:  # anchor diagonal structure differs across axes
        sys_y = _fast_axis_system(
            netlist, 1, model, netlist.y, unknown_of_cell,
            movable_indices, anchors_y, regularization, nets=nets,
            flat=flat,
        )
    return sys_x, sys_y
