"""Solving the quadratic placement systems.

Direct sparse factorization below a size threshold, Jacobi-
preconditioned conjugate gradients above it.  The systems are SPD by
construction (net springs are PSD; a tiny diagonal regularization
anchors floating unknowns), so CG is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import diags
from scipy.sparse.linalg import cg, spsolve

from repro.netlist import Netlist
from repro.obs import incr
from repro.qp.models import (
    AxisSystem,
    _flat_net_arrays,
    build_axis_systems_xy,
)

#: Unknown-count threshold below which a direct solve is used.
DIRECT_SOLVE_LIMIT = 4000


@dataclass
class QPOptions:
    """Knobs of a quadratic solve."""

    net_model: str = "hybrid"
    cg_tol: float = 1e-7
    cg_maxiter: int = 2000
    regularization: float = 1e-8


def _solve_axis(system: AxisSystem, x0: np.ndarray, opts: QPOptions) -> np.ndarray:
    n = system.matrix.shape[0]
    if n == 0:
        return np.zeros(0)
    if n <= DIRECT_SOLVE_LIMIT:
        # the two axes share one assembled matrix (see
        # build_axis_systems_xy), so memoize its CSC conversion on the
        # object; the matrix is never mutated after assembly
        csc = getattr(system.matrix, "_csc_cache", None)
        if csc is None:
            csc = system.matrix.tocsc()
            system.matrix._csc_cache = csc
        return spsolve(csc, system.rhs)
    diag = system.matrix.diagonal()
    diag[diag <= 0] = 1.0
    inv_diag = 1.0 / diag

    # the Jacobi preconditioner as a sparse diagonal matrix: applied
    # by scipy's C matvec (a diagonal row is one product, so the
    # result is bit-identical to ``inv_diag * v``) without the python
    # LinearOperator callback layers on every iteration
    m = diags(inv_diag)
    iters = 0

    def count_iteration(_xk: np.ndarray) -> None:
        nonlocal iters
        iters += 1

    solution, info = cg(
        system.matrix,
        system.rhs,
        x0=x0,
        rtol=opts.cg_tol,
        maxiter=opts.cg_maxiter,
        M=m,
        callback=count_iteration,
    )
    incr("qp.cg_iters", iters)
    if info > 0:
        # not fully converged — still usable as a placement iterate
        pass
    elif info < 0:
        raise RuntimeError(f"CG failed with code {info}")
    return solution


def solve_qp(
    netlist: Netlist,
    options: Optional[QPOptions] = None,
    movable_mask: Optional[np.ndarray] = None,
    anchors_x: Optional[Sequence[Tuple[int, float, float]]] = None,
    anchors_y: Optional[Sequence[Tuple[int, float, float]]] = None,
    apply: bool = True,
    nets=None,
    flat: Optional[tuple] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Minimize quadratic netlength over the movable cells.

    Cells outside ``movable_mask`` (and fixed cells) stay at their
    current positions and act as fixed pins — passing the cells of a
    coarse window gives the *local QP* of FBP realization (§IV.B).

    Returns the new full-length coordinate arrays; when ``apply`` is
    True (default) the netlist is updated in place.
    """
    opts = options or QPOptions()
    if movable_mask is None:
        movable_mask = ~netlist.fixed_mask

    new_x = netlist.x.copy()
    new_y = netlist.y.copy()
    # the flat pin arrays are position-independent, so both axis
    # assemblies share one subset extraction (or the caller's, e.g.
    # repartitioning passes Netlist.net_subset_arrays output) — and
    # for the position-independent models the whole assembled matrix
    # is shared across the two axes (only the rhs differs)
    if flat is None and nets is not None and opts.net_model != "b2b":
        flat = _flat_net_arrays(nets)
    sys_x, sys_y = build_axis_systems_xy(
        netlist,
        model=opts.net_model,
        movable_mask=movable_mask,
        anchors_x=anchors_x,
        anchors_y=anchors_y,
        regularization=opts.regularization,
        nets=nets,
        flat=flat,
    )
    movable_indices = np.nonzero(movable_mask)[0]
    for system, current, out in (
        (sys_x, netlist.x, new_x),
        (sys_y, netlist.y, new_y),
    ):
        x0 = np.zeros(system.matrix.shape[0])
        x0[: system.num_cell_unknowns] = current[movable_indices]
        solution = _solve_axis(system, x0, opts)
        out[movable_indices] = solution[: system.num_cell_unknowns]

    if apply:
        netlist.x = new_x
        netlist.y = new_y
        netlist.clamp_into_die()
        return netlist.x, netlist.y
    return new_x, new_y
