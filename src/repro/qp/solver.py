"""Solving the quadratic placement systems.

Direct sparse factorization below a size threshold, Jacobi-
preconditioned conjugate gradients above it.  The systems are SPD by
construction (net springs are PSD; a tiny diagonal regularization
anchors floating unknowns), so CG is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.sparse.linalg import LinearOperator, cg, spsolve

from repro.netlist import Netlist
from repro.obs import incr
from repro.qp.models import AxisSystem, build_axis_system

#: Unknown-count threshold below which a direct solve is used.
DIRECT_SOLVE_LIMIT = 4000


@dataclass
class QPOptions:
    """Knobs of a quadratic solve."""

    net_model: str = "hybrid"
    cg_tol: float = 1e-7
    cg_maxiter: int = 2000
    regularization: float = 1e-8


def _solve_axis(system: AxisSystem, x0: np.ndarray, opts: QPOptions) -> np.ndarray:
    n = system.matrix.shape[0]
    if n == 0:
        return np.zeros(0)
    if n <= DIRECT_SOLVE_LIMIT:
        return spsolve(system.matrix.tocsc(), system.rhs)
    diag = system.matrix.diagonal()
    diag[diag <= 0] = 1.0
    inv_diag = 1.0 / diag

    def precondition(v: np.ndarray) -> np.ndarray:
        return inv_diag * v

    m = LinearOperator((n, n), matvec=precondition)
    iters = 0

    def count_iteration(_xk: np.ndarray) -> None:
        nonlocal iters
        iters += 1

    solution, info = cg(
        system.matrix,
        system.rhs,
        x0=x0,
        rtol=opts.cg_tol,
        maxiter=opts.cg_maxiter,
        M=m,
        callback=count_iteration,
    )
    incr("qp.cg_iters", iters)
    if info > 0:
        # not fully converged — still usable as a placement iterate
        pass
    elif info < 0:
        raise RuntimeError(f"CG failed with code {info}")
    return solution


def solve_qp(
    netlist: Netlist,
    options: Optional[QPOptions] = None,
    movable_mask: Optional[np.ndarray] = None,
    anchors_x: Optional[Sequence[Tuple[int, float, float]]] = None,
    anchors_y: Optional[Sequence[Tuple[int, float, float]]] = None,
    apply: bool = True,
    nets=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Minimize quadratic netlength over the movable cells.

    Cells outside ``movable_mask`` (and fixed cells) stay at their
    current positions and act as fixed pins — passing the cells of a
    coarse window gives the *local QP* of FBP realization (§IV.B).

    Returns the new full-length coordinate arrays; when ``apply`` is
    True (default) the netlist is updated in place.
    """
    opts = options or QPOptions()
    if movable_mask is None:
        movable_mask = ~netlist.fixed_mask

    new_x = netlist.x.copy()
    new_y = netlist.y.copy()
    for axis, anchors, out in (
        (0, anchors_x, new_x),
        (1, anchors_y, new_y),
    ):
        system = build_axis_system(
            netlist,
            axis,
            model=opts.net_model,
            movable_mask=movable_mask,
            anchors=anchors,
            regularization=opts.regularization,
            nets=nets,
        )
        movable_indices = np.nonzero(movable_mask)[0]
        x0 = np.zeros(system.matrix.shape[0])
        current = netlist.x if axis == 0 else netlist.y
        x0[: system.num_cell_unknowns] = current[movable_indices]
        solution = _solve_axis(system, x0, opts)
        out[movable_indices] = solution[: system.num_cell_unknowns]

    if apply:
        netlist.x = new_x
        netlist.y = new_y
        netlist.clamp_into_die()
        return netlist.x, netlist.y
    return new_x, new_y
