"""Quadratic netlength minimization (the "QP" of the paper).

Analytical placers model each net as quadratic springs between pins and
minimize total quadratic netlength by solving one sparse linear system
per axis.  This package provides:

* net models — ``clique`` (pairwise springs, weight w/(p-1)), ``star``
  (auxiliary net node; exactly equivalent to the clique by star-mesh
  transformation, cheaper for high-degree nets), ``hybrid`` (clique up
  to degree 3, star above) and ``b2b`` (Kraftwerk2's Bound2Bound
  linearization of HPWL, position-dependent);
* :func:`solve_qp` — global or *local* QP (a movable-subset solve with
  every other cell fixed at its current position, as used by FBP
  realization, §IV.B);
* anchor (pseudo-net) support for force-directed baselines.
"""

from repro.qp.solver import QPOptions, solve_qp
from repro.qp.models import NET_MODELS, build_axis_system

__all__ = ["solve_qp", "QPOptions", "NET_MODELS", "build_axis_system"]
